// portalint data model: scanned files, findings, suppressions, baseline.
#pragma once

#include <filesystem>
#include <map>
#include <string>
#include <vector>

#include "lexer.hpp"

namespace portalint {

/// One `<rule-prefix>-ok(reason)` inline suppression.
struct Suppression {
  std::string rule_prefix;  // "mo", "ls-capture-write", ...
  std::string reason;
};

/// A scanned source file.
struct FileUnit {
  std::filesystem::path path;  // absolute
  std::string rel;             // root-relative display path, '/' separators
  std::vector<std::string> lines;
  LexOutput lex;
  bool is_header = false;
  bool is_fixture = false;  // path contains a "fixtures" component
  bool has_pragma_once = false;
  std::vector<std::pair<int, std::string>> quoted_includes;  // (line, path)
  std::map<int, std::vector<Suppression>> suppressions;      // keyed by line

  /// True when `rel` contains the given path component.
  [[nodiscard]] bool has_component(std::string_view comp) const;
  /// Source line (1-based), empty if out of range.
  [[nodiscard]] std::string line_text(int line) const;
  /// First suppression at `line` or the line above whose prefix covers
  /// `rule` (exact id or id starts with "<prefix>-"); nullptr otherwise.
  [[nodiscard]] const Suppression* find_suppression(int line,
                                                    std::string_view rule) const;
};

/// A secondary site participating in a cross-function or cross-file
/// finding (the helper that performs the escaped write, the other TU's
/// half of an ordering pair, ...).
struct RelatedSite {
  const FileUnit* unit = nullptr;
  int line = 0;
  std::string note;  // role of this site, e.g. "write escapes here"
};

struct Finding {
  std::string rule;
  std::string family;  // lane-safety | concurrency | determinism | hygiene
  std::string message;
  const FileUnit* unit = nullptr;
  int line = 0;
  /// Normalized (trimmed, whitespace-collapsed) text of the flagged line;
  /// the stable key baseline entries match against.
  std::string excerpt;
  /// Secondary sites (flow findings only); empty for token-level rules.
  std::vector<RelatedSite> related;
};

/// Path key baseline entries match against: the primary unit's rel, plus
/// "+<rel>" for each distinct related file (baseline format v2).  For
/// findings without related sites this is exactly `unit->rel`.
[[nodiscard]] std::string finding_path_key(const Finding& f);

struct Project {
  std::vector<FileUnit> files;
  std::filesystem::path root;  // paths in output are relative to this
};

struct BaselineEntry {
  std::string rule;
  std::string rel;      // root-relative path
  std::string excerpt;  // normalized flagged line
  std::string justification;
  int source_line = 0;  // line in the baseline file (diagnostics)
};

/// Trim + collapse runs of whitespace to single spaces.
[[nodiscard]] std::string normalize_excerpt(std::string_view s);

}  // namespace portalint
