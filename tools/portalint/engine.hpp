// portalint engine: file discovery, suppression parsing, baseline
// matching, and report rendering.  The CLI (main.cpp) and the test suite
// both drive the analyzer through run_portalint().
#pragma once

#include <filesystem>
#include <iosfwd>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "model.hpp"

namespace portalint {

struct Options {
  std::vector<std::filesystem::path> inputs;
  /// Repo root: output paths and baseline paths are relative to it.
  /// Empty: derived from the baseline location or the first input.
  std::filesystem::path root;
  /// Baseline file; empty + use_baseline: searched upward from the first
  /// input as "portalint.baseline".
  std::filesystem::path baseline_path;
  bool use_baseline = true;
  /// Scan directories named "fixtures" during recursive discovery.
  /// Inputs that themselves point inside a fixtures tree are always
  /// scanned (tests pass fixture files explicitly).
  bool include_fixtures = false;
  /// Run the portaflow interprocedural passes (fl-* rules).  Off, the
  /// legacy token-level mo-balance is reconstructed instead.
  bool run_flow = true;
  /// Incremental analysis cache file.  Empty: no caching.  Missing or
  /// corrupt caches are ignored (cold run), and the file is rewritten
  /// after every scan.
  std::filesystem::path cache_path;
};

struct Result {
  /// Owns the scanned FileUnits; Finding::unit points into it, so the
  /// project must outlive every finding the result carries.
  std::shared_ptr<const Project> project;
  std::vector<Finding> active;      // unsuppressed, unbaselined
  std::vector<Finding> suppressed;  // silenced by an inline -ok() comment
  std::vector<Finding> baselined;   // silenced by a baseline entry
  std::vector<BaselineEntry> stale;  // baseline entries matching nothing
  std::size_t files_scanned = 0;
  std::size_t cache_hits = 0;  // files served from the analysis cache
  std::filesystem::path root;
  std::vector<std::string> errors;  // unreadable inputs etc.

  [[nodiscard]] bool clean() const { return active.empty() && stale.empty() && errors.empty(); }
};

/// Load and lex one file into a FileUnit (suppressions, includes, flags).
/// Returns std::nullopt if the file cannot be read.
[[nodiscard]] std::optional<FileUnit> load_file(const std::filesystem::path& path,
                                                const std::filesystem::path& root);

/// Parse a baseline file.  Unparseable lines are reported via `errors`.
[[nodiscard]] std::vector<BaselineEntry> parse_baseline(const std::string& text,
                                                        std::vector<std::string>& errors);

/// Run the full pipeline: discover -> lex -> rules -> suppress -> baseline.
[[nodiscard]] Result run_portalint(const Options& opts);

/// Render the result as human-readable text (one finding per paragraph).
void print_text(const Result& r, std::ostream& os);

/// Render the result as a single JSON document.
void print_json(const Result& r, std::ostream& os);

/// Escape a string for embedding in a JSON string literal (shared with
/// the SARIF renderer).
[[nodiscard]] std::string json_escape(std::string_view s);

/// Exit status for a result: 0 clean, 1 findings or stale baseline.
[[nodiscard]] int exit_code(const Result& r);

}  // namespace portalint
