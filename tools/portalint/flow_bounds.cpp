// portaflow pass 2: symbolic affine bounds (fl-unproved-bounds).
//
// Index expressions in dispatch/launch lambda bodies are lowered into
// multivariate polynomials over symbolic names (sizes, lane variables).
// A lane variable's exclusive upper bound comes from the launch site
// (RangePolicy extent, grid x block product) or from a dominating guard
// (`if (i < n)`, `if (i >= n) return;`, `for (...; i < n; ...)`), and
// the access is proven in bounds when, after substituting every lane's
// maximum, the polynomial `extent - 1 - index` has only non-negative
// coefficients (all symbols are sizes, assumed non-negative).
//
// Firing policy is asymmetric-quiet: the rule fires only when the
// accessed name has a recorded extent in the enclosing function, the
// index is fully affine, and EVERY lane-varying symbol in it has a
// known range — and the proof still fails.  Anything unanalyzable
// (non-affine index, unknown loop variable, no extent fact) is skipped.
// The canonical catch: a gpusim launch sized with ceil-div blocks_for()
// whose kernel body indexes without the `if (i < n)` tail guard.
#include <algorithm>
#include <cctype>
#include <cstdint>
#include <cstdlib>
#include <map>
#include <optional>
#include <set>
#include <vector>

#include "flow.hpp"

namespace portalint {

namespace {

/// A monomial: sorted multiset of symbol names (empty = constant term).
using Mono = std::vector<std::string>;

/// Sparse multivariate polynomial with integer coefficients.
struct Poly {
  std::map<Mono, std::int64_t> c;

  static Poly constant(std::int64_t v) {
    Poly p;
    if (v != 0) p.c[{}] = v;
    return p;
  }
  static Poly symbol(const std::string& s) {
    Poly p;
    p.c[{s}] = 1;
    return p;
  }
  void add(const Poly& o, std::int64_t scale) {
    for (const auto& [m, v] : o.c) {
      auto it = c.emplace(m, 0).first;
      it->second += v * scale;
      if (it->second == 0) c.erase(it);
    }
  }
  [[nodiscard]] Poly mul(const Poly& o) const {
    Poly out;
    for (const auto& [m1, v1] : c) {
      for (const auto& [m2, v2] : o.c) {
        Mono m = m1;
        m.insert(m.end(), m2.begin(), m2.end());
        std::sort(m.begin(), m.end());
        auto it = out.c.emplace(std::move(m), 0).first;
        it->second += v1 * v2;
        if (it->second == 0) out.c.erase(it);
      }
    }
    return out;
  }
  [[nodiscard]] bool all_nonnegative() const {
    for (const auto& [m, v] : c) {
      if (v < 0) return false;
    }
    return true;
  }
  [[nodiscard]] std::set<std::string> symbols() const {
    std::set<std::string> out;
    for (const auto& [m, v] : c) out.insert(m.begin(), m.end());
    return out;
  }
};

bool ident_like(const std::string& tok) {
  return !tok.empty() && (std::isalpha(static_cast<unsigned char>(tok[0])) || tok[0] == '_');
}

bool number_like(const std::string& tok) {
  return !tok.empty() && std::isdigit(static_cast<unsigned char>(tok[0]));
}

/// Recursive-descent parser over flattened token texts.  Grammar:
///   expr   := term (('+'|'-') term)*
///   term   := factor ('*' factor)*
///   factor := NUMBER | IDENT | '(' expr ')' | '-' factor
/// Anything else (division, casts, calls, member access) returns
/// nullopt: the index is not affine-analyzable and the pass stays quiet.
class AffineParser {
 public:
  explicit AffineParser(const std::vector<std::string>& toks) : t_(toks) {}

  std::optional<Poly> parse() {
    auto p = expr();
    if (!p || pos_ != t_.size()) return std::nullopt;
    return p;
  }

 private:
  std::optional<Poly> expr() {
    auto lhs = term();
    if (!lhs) return std::nullopt;
    while (pos_ < t_.size() && (t_[pos_] == "+" || t_[pos_] == "-")) {
      const std::int64_t sign = t_[pos_] == "+" ? 1 : -1;
      ++pos_;
      auto rhs = term();
      if (!rhs) return std::nullopt;
      lhs->add(*rhs, sign);
    }
    return lhs;
  }
  std::optional<Poly> term() {
    auto lhs = factor();
    if (!lhs) return std::nullopt;
    while (pos_ < t_.size() && t_[pos_] == "*") {
      ++pos_;
      auto rhs = factor();
      if (!rhs) return std::nullopt;
      lhs = lhs->mul(*rhs);
    }
    return lhs;
  }
  std::optional<Poly> factor() {
    if (pos_ >= t_.size()) return std::nullopt;
    const std::string& tok = t_[pos_];
    if (tok == "-") {
      ++pos_;
      auto inner = factor();
      if (!inner) return std::nullopt;
      Poly out;
      out.add(*inner, -1);
      return out;
    }
    if (tok == "(") {
      ++pos_;
      auto inner = expr();
      if (!inner || pos_ >= t_.size() || t_[pos_] != ")") return std::nullopt;
      ++pos_;
      return inner;
    }
    if (number_like(tok)) {
      char* end = nullptr;
      const long long v = std::strtoll(tok.c_str(), &end, 0);
      // Reject floats and partial parses (suffixed literals are fine).
      if (end == tok.c_str() || tok.find('.') != std::string::npos) return std::nullopt;
      ++pos_;
      return Poly::constant(v);
    }
    if (ident_like(tok)) {
      // A call or member access makes the expression non-affine.
      if (pos_ + 1 < t_.size() &&
          (t_[pos_ + 1] == "(" || t_[pos_ + 1] == "." || t_[pos_ + 1] == "->" ||
           t_[pos_ + 1] == "::" || t_[pos_ + 1] == "[" || t_[pos_ + 1] == "<")) {
        return std::nullopt;
      }
      ++pos_;
      return Poly::symbol(tok);
    }
    return std::nullopt;
  }

  const std::vector<std::string>& t_;
  std::size_t pos_ = 0;
};

std::optional<Poly> parse_affine(const std::vector<std::string>& toks) {
  if (toks.empty()) return std::nullopt;
  return AffineParser(toks).parse();
}

/// Substitute every bounded symbol by its maximum (UB - 1 on positive
/// monomials, 0 on negative ones — lanes and sizes are non-negative)
/// and return the resulting upper-bound polynomial.  Returns nullopt if
/// a symbol in `must_bound` has no entry in `ub`.
std::optional<Poly> upper_bound(const Poly& p, const std::map<std::string, Poly>& ub,
                                const std::set<std::string>& must_bound) {
  Poly out;
  for (const auto& [mono, coeff] : p.c) {
    bool has_bounded = false;
    for (const std::string& s : mono) {
      if (ub.count(s)) has_bounded = true;
      if (must_bound.count(s) && !ub.count(s)) return std::nullopt;
    }
    if (!has_bounded) {
      Poly term = Poly::constant(coeff);
      Poly m = Poly::constant(1);
      for (const std::string& s : mono) m = m.mul(Poly::symbol(s));
      out.add(term.mul(m), 1);
      continue;
    }
    if (coeff < 0) continue;  // bounded symbols bottom out at 0: term <= 0 <= drop
    Poly term = Poly::constant(coeff);
    for (const std::string& s : mono) {
      auto it = ub.find(s);
      if (it != ub.end()) {
        Poly max = it->second;       // exclusive bound
        max.add(Poly::constant(1), -1);  // max value = UB - 1
        term = term.mul(max);
      } else {
        term = term.mul(Poly::symbol(s));
      }
    }
    out.add(term, 1);
  }
  return out;
}

std::string render_tokens(const std::vector<std::string>& toks) {
  std::string out;
  for (const std::string& tok : toks) {
    if (!out.empty()) out += ' ';
    out += tok;
  }
  return out;
}

void check_launch(const FileUnit& u, const FileIR& ir, const LaunchIR& l,
                  std::vector<Finding>& out) {
  // Extent facts from the enclosing function (includes view/vector
  // declarations lowered from the lambda body itself).
  const FunctionIR* host = nullptr;
  for (const FunctionIR& fn : ir.functions) {
    if (fn.name == l.enclosing_function) {
      host = &fn;
      break;
    }
  }
  if (host == nullptr) return;

  // Launch-site lane ranges.
  std::map<std::string, Poly> launch_ub;
  for (const auto& [lane, bound] : l.lane_bounds) {
    if (auto p = parse_affine(bound)) launch_ub.emplace(lane, *p);
  }

  std::set<std::string> reported_lines;
  for (const AccessIR& a : l.accesses) {
    if (a.indices.empty()) continue;
    // Nearest preceding declaration wins: a lambda-local vector shadows
    // a same-named host buffer declared earlier in the function.
    const ExtentIR* extent = nullptr;
    for (const ExtentIR& e : host->extents) {
      if (e.name != a.base || e.line > a.line) continue;
      if (extent == nullptr || e.line > extent->line) extent = &e;
    }
    if (extent == nullptr) continue;
    if (extent->dims.size() != a.indices.size()) continue;

    // Per-access bounds: dominating guards override launch ranges.
    std::map<std::string, Poly> ub = launch_ub;
    for (const GuardIR& g : a.guards) {
      if (auto p = parse_affine(g.bound)) ub[g.var] = *p;  // innermost last wins
    }

    for (std::size_t d = 0; d < a.indices.size(); ++d) {
      auto index = parse_affine(a.indices[d]);
      auto ext = parse_affine(extent->dims[d]);
      if (!index || !ext) continue;

      // Every lane-varying or lambda-local symbol must have a range;
      // free symbols (captured sizes) pass through and must cancel.
      std::set<std::string> must_bound;
      for (const std::string& s : index->symbols()) {
        if (l.lane_names.count(s) || l.locals.count(s)) must_bound.insert(s);
      }
      auto max_index = upper_bound(*index, ub, must_bound);
      if (!max_index) continue;  // unknown loop/lane variable: stay quiet

      Poly diff = *ext;
      diff.add(Poly::constant(1), -1);
      diff.add(*max_index, -1);
      if (diff.all_nonnegative()) continue;

      const std::string key = std::to_string(a.line) + ":" + a.base;
      if (!reported_lines.insert(key).second) continue;
      out.push_back([&] {
        Finding f;
        f.rule = "fl-unproved-bounds";
        f.family = "lane-safety";
        f.message = "index '" + render_tokens(a.indices[d]) + "' into '" + a.base +
                    "' (extent '" + render_tokens(extent->dims[d]) +
                    "') is not provably in bounds for every lane of this " + l.call +
                    ": the lane range exceeds the extent — guard the tail "
                    "(if (i < n) ...) or size the launch to the data";
        f.unit = &u;
        f.line = a.line;
        f.excerpt = normalize_excerpt(u.line_text(a.line));
        RelatedSite site;
        site.unit = &u;
        site.line = extent->line;
        site.note = "'" + a.base + "' extent declared here";
        f.related.push_back(std::move(site));
        return f;
      }());
    }
  }
}

}  // namespace

void flow_unproved_bounds(const FlowContext& ctx, std::vector<Finding>& out) {
  for (std::size_t i = 0; i < ctx.size(); ++i) {
    const FileUnit& u = ctx.unit(i);
    const FileIR& ir = ctx.ir(i);
    for (const LaunchIR& l : ir.launches) {
      // Serialized queue ops have no lane range to prove against.
      if (l.serialized) continue;
      check_launch(u, ir, l, out);
    }
  }
}

}  // namespace portalint
