// portalint lexer: a C++-shaped tokenizer sufficient for static analysis
// of this repository's sources.  It is not a conforming C++ lexer — it
// tokenizes identifiers, literals, and (longest-match) punctuators, and
// lifts comments and preprocessor directives out of the token stream so
// rules can consume them separately (suppression comments, #include /
// #pragma once directives).
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace portalint {

enum class Tok {
  kIdent,
  kNumber,
  kString,
  kChar,
  kPunct,
};

struct Token {
  Tok kind;
  std::string text;
  int line = 0;  // 1-based source line the token starts on
};

/// A // or /* */ comment.  `line` is the line the comment starts on;
/// `end_line` the line it ends on (same for line comments).
struct Comment {
  int line = 0;
  int end_line = 0;
  std::string text;  // without the comment markers
};

/// One preprocessor directive, backslash-continuations folded in.
struct Directive {
  int line = 0;
  std::string text;  // full text after '#', trimmed
};

struct LexOutput {
  std::vector<Token> tokens;
  std::vector<Comment> comments;
  std::vector<Directive> directives;
};

/// Tokenize `source`.  Never throws on malformed input: unterminated
/// literals/comments are closed at end of file.
[[nodiscard]] LexOutput lex(std::string_view source);

}  // namespace portalint
