// portaflow call graph: links FunctionIR definitions across translation
// units by unqualified name and computes fixpoint summaries the flow
// passes consume — per-parameter write effects (for the interprocedural
// lane-safety pass) and determinism taint (for fl-det-taint).
//
// Linking is deliberately conservative: a name defined in more than one
// scanned TU resolves to nothing, so the passes stay quiet instead of
// guessing which overload a call reaches.
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "ir.hpp"
#include "model.hpp"

namespace portalint {

/// How a function writes through one of its parameters, merged over all
/// paths including transitive helper calls.  std::atomic& parameters
/// carry no effects (writes through them are lane-safe by construction).
struct ParamEffect {
  /// Written without an index (`p = v`, `p += v`, `*p = v`, `++p`):
  /// every caller-side lane hits the same object.
  bool direct_write = false;
  /// Written at an index containing no identifier at all (`p[0] = v`):
  /// lane-invariant regardless of arguments.
  bool indexed_const = false;
  /// Indices of this function's parameters whose values feed the index
  /// expression of some write through this parameter.
  std::set<int> index_params;
  /// Some write's index depends on function-internal state (a local):
  /// not traceable to the call site, so the lane pass stays quiet.
  bool indexed_internal = false;
  /// Deepest known write site (for related-site reporting); null/0 when
  /// the effect arrived through a callee whose own site is recorded.
  const FileUnit* write_unit = nullptr;
  int write_line = 0;

  [[nodiscard]] bool any() const {
    return direct_write || indexed_const || !index_params.empty() || indexed_internal;
  }
};

/// Flow summary for one uniquely-linked function definition.
struct FunctionSummary {
  const FunctionIR* fn = nullptr;
  const FileUnit* unit = nullptr;  // TU the definition lives in
  std::vector<ParamEffect> effects;  // one per parameter
  /// Determinism taint reaching this function: its own sources plus the
  /// union over everything it transitively calls.
  std::set<std::string> taint;
  /// Line of the first direct taint-source use or tainted call (for
  /// related-site reporting); 0 when untainted.
  int taint_line = 0;
  /// Name of the callee the taint arrived through ("" for direct use).
  std::string taint_via;

  [[nodiscard]] bool tainted() const { return !taint.empty(); }
};

class CallGraph {
 public:
  /// `units[i]` owns `irs[i]`; both aligned with the scanned project.
  void build(const std::vector<const FileUnit*>& units,
             const std::vector<const FileIR*>& irs);

  /// Summary for a uniquely-defined function name; nullptr when the name
  /// is undefined in the scanned tree or defined in several places.
  [[nodiscard]] const FunctionSummary* resolve(const std::string& name) const;

  [[nodiscard]] const std::vector<FunctionSummary>& summaries() const { return all_; }

 private:
  std::vector<FunctionSummary> all_;
  std::map<std::string, int> by_name_;  // index into all_, or -1 = ambiguous
};

}  // namespace portalint
