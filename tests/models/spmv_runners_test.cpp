// Tests for the SpMV frontends.
#include "models/spmv_runners.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace portabench::models {
namespace {

using perfmodel::kAllFamilies;
using perfmodel::kAllPlatforms;

TEST(SpmvRunners, EverySupportedCombinationVerifies) {
  for (Platform p : kAllPlatforms) {
    for (Family f : kAllFamilies) {
      auto runner = make_spmv_runner(p, f);
      if (p == Platform::kCrusherGpu && f == Family::kNumba) {
        EXPECT_EQ(runner, nullptr);
        continue;
      }
      ASSERT_NE(runner, nullptr);
      SpmvRunConfig config;
      config.rows = 200;
      config.nnz_per_row = 9;
      const auto r = runner->run(config);
      EXPECT_TRUE(r.verified) << perfmodel::name(p) << "/" << perfmodel::name(f)
                              << " max_error=" << r.max_error;
      EXPECT_GT(r.model_gflops, 0.0);
    }
  }
}

TEST(SpmvRunners, ChecksumAgreesAcrossFamiliesOnSameSeed) {
  // Same matrix + vector for every frontend: identical y up to rounding.
  SpmvRunConfig config;
  config.rows = 300;
  config.seed = 2024;
  double reference = 0.0;
  for (Family f : kAllFamilies) {
    auto runner = make_spmv_runner(Platform::kCrusherCpu, f);
    const double checksum = runner->run(config).checksum;
    if (reference == 0.0) {
      reference = checksum;
    } else {
      EXPECT_NEAR(checksum, reference, 1e-8 * std::abs(reference)) << perfmodel::name(f);
    }
  }
}

TEST(SpmvRunners, GpuFrontendsShowDeviceActivity) {
  auto cuda = make_spmv_runner(Platform::kWombatGpu, Family::kVendor);
  SpmvRunConfig config;
  config.rows = 128;
  const auto r = cuda->run(config);
  EXPECT_GE(r.gpu.kernel_launches, 1u);
  EXPECT_GT(r.gpu.bytes_h2d, 0u);
  EXPECT_GT(r.gpu.bytes_d2h, 0u);

  auto julia = make_spmv_runner(Platform::kCrusherGpu, Family::kJulia);
  const auto rj = julia->run(config);
  // Vector kernel: one warp-wide block per row.
  EXPECT_EQ(rj.gpu.blocks_executed, 128u);
  EXPECT_TRUE(rj.verified);
}

TEST(SpmvRunners, BandwidthFactorsFlatterThanGemm) {
  // The workload contrast: on GEMM the family spread spans 0.095..1.05;
  // on bandwidth-bound SpMV every family sits within 20% of vendor.
  for (Family f : perfmodel::kPortableFamilies) {
    const double factor = SpmvRunner::family_bandwidth_factor(f);
    EXPECT_GE(factor, 0.8) << perfmodel::name(f);
    EXPECT_LE(factor, 1.0);
  }
}

TEST(SpmvRunners, ModeledRateScalesWithPlatformBandwidth) {
  SpmvRunConfig config;
  config.rows = 100;
  const double cpu =
      make_spmv_runner(Platform::kCrusherCpu, Family::kVendor)->run(config).model_gflops;
  const double gpu =
      make_spmv_runner(Platform::kCrusherGpu, Family::kVendor)->run(config).model_gflops;
  EXPECT_GT(gpu, 3.0 * cpu);  // HBM vs DDR4
}

TEST(SpmvRunners, NamesComeFromThePlatformTaxonomy) {
  EXPECT_EQ(make_spmv_runner(Platform::kWombatCpu, Family::kJulia)->name(),
            "Julia Threads");
  EXPECT_EQ(make_spmv_runner(Platform::kWombatGpu, Family::kKokkos)->name(),
            "Kokkos/CUDA");
}

TEST(SpmvRunners, InvalidConfigRejected) {
  auto runner = make_spmv_runner(Platform::kCrusherCpu, Family::kVendor);
  SpmvRunConfig config;
  config.rows = 0;
  EXPECT_THROW((void)runner->run(config), precondition_error);
}

}  // namespace
}  // namespace portabench::models
