// Tests for the KernelAbstractions.jl portable-layer frontend.
#include <gtest/gtest.h>

#include "models/gpu_runners.hpp"

namespace portabench::models {
namespace {

TEST(KernelAbstractions, RunsOnBothGpuVendors) {
  // The point of the portable layer: one kernel source, both devices.
  for (Platform p : {Platform::kWombatGpu, Platform::kCrusherGpu}) {
    KernelAbstractionsRunner runner(p);
    RunConfig config;
    config.n = 40;
    const auto result = runner.run(config);
    EXPECT_TRUE(result.verified) << perfmodel::name(p);
    EXPECT_EQ(result.gpu.kernel_launches, 1u);
  }
}

TEST(KernelAbstractions, NumericsIdenticalToDirectBackend) {
  RunConfig config;
  config.n = 48;
  config.seed = 31337;
  for (Platform p : {Platform::kWombatGpu, Platform::kCrusherGpu}) {
    JuliaGpuRunner direct(p);
    KernelAbstractionsRunner portable(p);
    EXPECT_EQ(direct.run(config).checksum, portable.run(config).checksum);
  }
}

TEST(KernelAbstractions, PaysAbstractionOverhead) {
  RunConfig config;
  config.n = 64;
  config.verify = false;
  JuliaGpuRunner direct(Platform::kWombatGpu);
  KernelAbstractionsRunner portable(Platform::kWombatGpu);
  const double direct_rate = direct.run(config).model_gflops;
  const double portable_rate = portable.run(config).model_gflops;
  EXPECT_LT(portable_rate, direct_rate);
  EXPECT_NEAR(portable_rate / direct_rate, KernelAbstractionsRunner::kAbstractionFactor,
              1e-9);
}

TEST(KernelAbstractions, ReportsOwnName) {
  KernelAbstractionsRunner runner(Platform::kCrusherGpu);
  EXPECT_EQ(runner.name(), "Julia KernelAbstractions.jl");
  EXPECT_EQ(runner.family(), Family::kJulia);
}

TEST(KernelAbstractions, JitCostHigherThanDirectBackend) {
  // The abstraction compiles through an extra layer: larger first-call
  // latency than CUDA.jl alone.
  KernelAbstractionsRunner portable(Platform::kWombatGpu);
  JuliaGpuRunner direct(Platform::kWombatGpu);
  RunConfig config;
  config.n = 16;
  EXPECT_GT(portable.run(config).jit_seconds, direct.run(config).jit_seconds);
}

TEST(KernelAbstractions, SupportsAllThreePrecisions) {
  KernelAbstractionsRunner runner(Platform::kCrusherGpu);
  for (Precision prec : kAllPrecisions) {
    EXPECT_TRUE(runner.supports(prec));
    RunConfig config;
    config.n = 24;
    config.precision = prec;
    EXPECT_TRUE(runner.run(config).verified) << name(prec);
  }
}

}  // namespace
}  // namespace portabench::models
