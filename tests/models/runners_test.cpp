// Integration tests for the programming-model frontends: every supported
// (platform, family, precision) runs functionally and validates against
// the reference GEMM.
#include "models/runner.hpp"

#include <gtest/gtest.h>

#include <cctype>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "models/cpu_runners.hpp"
#include "models/gpu_runners.hpp"

namespace portabench::models {
namespace {

using perfmodel::kAllFamilies;
using perfmodel::kAllPlatforms;

struct RunnerCase {
  Platform platform;
  Family family;
  Precision precision;
};

std::vector<RunnerCase> all_supported_cases() {
  std::vector<RunnerCase> cases;
  for (Platform p : kAllPlatforms) {
    for (Family f : kAllFamilies) {
      for (Precision prec : kAllPrecisions) {
        if (perfmodel::supported(p, f, prec)) cases.push_back({p, f, prec});
      }
    }
  }
  return cases;
}

class AllRunnersTest : public ::testing::TestWithParam<RunnerCase> {};

TEST_P(AllRunnersTest, FunctionalRunVerifiesAgainstReference) {
  const auto& c = GetParam();
  auto runner = make_runner(c.platform, c.family);
  ASSERT_NE(runner, nullptr);
  EXPECT_EQ(runner->family(), c.family);
  EXPECT_EQ(runner->platform(), c.platform);

  RunConfig config;
  config.n = 48;
  config.precision = c.precision;
  const RunResult result = runner->run(config);
  EXPECT_TRUE(result.verified) << "max_error=" << result.max_error
                               << " tolerance=" << result.tolerance;
  EXPECT_NE(result.checksum, 0.0);
  EXPECT_GT(result.model_gflops, 0.0);
}

std::string case_name(const ::testing::TestParamInfo<RunnerCase>& info) {
  std::string s = std::string(perfmodel::arch_label(info.param.platform)) + "_" +
                  std::string(perfmodel::name(info.param.family)) + "_" +
                  std::string(name(info.param.precision));
  for (char& ch : s) {
    if (!std::isalnum(static_cast<unsigned char>(ch))) ch = '_';
  }
  return s;
}

INSTANTIATE_TEST_SUITE_P(SupportMatrix, AllRunnersTest,
                         ::testing::ValuesIn(all_supported_cases()), case_name);

TEST(Runners, UnsupportedCombinationReturnsNull) {
  EXPECT_EQ(make_runner(Platform::kCrusherGpu, Family::kNumba), nullptr);
}

TEST(Runners, UnsupportedPrecisionRejected) {
  auto vendor = make_runner(Platform::kWombatGpu, Family::kVendor);
  RunConfig config;
  config.precision = Precision::kHalfIn;  // no vendor FP16 kernel in the paper
  EXPECT_THROW((void)vendor->run(config), precondition_error);
}

TEST(Runners, ChecksumDeterministicPerSeed) {
  auto r1 = make_runner(Platform::kWombatGpu, Family::kJulia);
  auto r2 = make_runner(Platform::kWombatGpu, Family::kJulia);
  RunConfig config;
  config.n = 32;
  config.seed = 777;
  const double first = r1->run(config).checksum;
  EXPECT_EQ(first, r2->run(config).checksum);  // same seed, same inputs
  config.seed = 778;
  EXPECT_NE(r1->run(config).checksum, first);  // new seed, new inputs
}

TEST(Runners, JitCostOnFirstRunOnly) {
  // Julia/Numba pay a one-time modeled JIT cost — the warm-up the paper
  // excludes.  AOT models (C/OpenMP, Kokkos, CUDA/HIP) pay none.
  auto julia = make_runner(Platform::kCrusherCpu, Family::kJulia);
  RunConfig config;
  config.n = 16;
  EXPECT_GT(julia->run(config).jit_seconds, 0.0);
  EXPECT_EQ(julia->run(config).jit_seconds, 0.0);

  auto openmp = make_runner(Platform::kCrusherCpu, Family::kVendor);
  EXPECT_EQ(openmp->run(config).jit_seconds, 0.0);
}

TEST(Runners, GpuCountersShowRealDeviceActivity) {
  // What the authors checked with nvprof: kernels actually ran on the GPU.
  auto cuda = make_runner(Platform::kWombatGpu, Family::kVendor);
  RunConfig config;
  config.n = 64;
  const RunResult r = cuda->run(config);
  EXPECT_EQ(r.gpu.kernel_launches, 1u);
  EXPECT_GT(r.gpu.threads_executed, 64u * 64u - 1u);
  EXPECT_EQ(r.gpu.bytes_h2d, 2u * 64u * 64u * sizeof(double));
  EXPECT_EQ(r.gpu.bytes_d2h, 64u * 64u * sizeof(double));
}

TEST(Runners, CpuRunnersHaveNoGpuActivity) {
  auto julia = make_runner(Platform::kWombatCpu, Family::kJulia);
  RunConfig config;
  config.n = 16;
  const RunResult r = julia->run(config);
  EXPECT_EQ(r.gpu.kernel_launches, 0u);
  EXPECT_EQ(r.gpu.bytes_h2d, 0u);
}

TEST(Runners, KokkosGpuUsesFlatBlockShape) {
  // The Kokkos frontend's template-time launch heuristic: flat 256x1
  // blocks instead of the paper's hand-picked 32x32.
  KokkosGpuRunner kokkos(Platform::kWombatGpu);
  EXPECT_EQ(kokkos.launch_config().block.x, 256u);
  EXPECT_EQ(kokkos.launch_config().block.y, 1u);
  VendorGpuRunner cuda(Platform::kWombatGpu);
  EXPECT_EQ(cuda.launch_config().block.x, 32u);
  EXPECT_EQ(cuda.launch_config().block.y, 32u);
}

TEST(Runners, NumbaFp16UsesMatricesOfOnes) {
  // Section IV-A: numpy can't generate random Float16, so inputs are 1s
  // and every C entry equals k exactly.
  auto numba = make_runner(Platform::kWombatCpu, Family::kNumba);
  RunConfig config;
  config.n = 24;
  config.precision = Precision::kHalfIn;
  const RunResult r = numba->run(config);
  EXPECT_TRUE(r.verified);
  EXPECT_DOUBLE_EQ(r.checksum, 24.0 * 24.0 * 24.0);  // n^2 entries of value k=n
}

TEST(Runners, JuliaFp16UsesRandomInputs) {
  // Julia *does* support FP16 random number generation (Section IV-B).
  auto julia = make_runner(Platform::kCrusherGpu, Family::kJulia);
  RunConfig config;
  config.n = 24;
  config.precision = Precision::kHalfIn;
  const RunResult r = julia->run(config);
  EXPECT_TRUE(r.verified);
  EXPECT_NE(r.checksum, 24.0 * 24.0 * 24.0);
}

TEST(Runners, ModelGflopsOrderingMatchesPaperOnA100) {
  // CUDA > Julia > Kokkos > Numba at double precision (Fig. 7a).
  RunConfig config;
  config.n = 8192;
  config.verify = false;  // modeled rate only; functional run stays small
  config.n = 64;
  double gflops[4];
  int idx = 0;
  for (Family f : {Family::kVendor, Family::kJulia, Family::kKokkos, Family::kNumba}) {
    auto runner = make_runner(Platform::kWombatGpu, f);
    gflops[idx++] = runner->run(config).model_gflops;
  }
  EXPECT_GT(gflops[0], gflops[1]);  // CUDA > Julia
  EXPECT_GT(gflops[1], gflops[2]);  // Julia > Kokkos
  EXPECT_GT(gflops[2], gflops[3]);  // Kokkos > Numba
}

TEST(Runners, NamesMatchFigureLegends) {
  EXPECT_EQ(make_runner(Platform::kWombatGpu, Family::kJulia)->name(), "Julia CUDA.jl");
  EXPECT_EQ(make_runner(Platform::kCrusherGpu, Family::kVendor)->name(), "HIP");
  EXPECT_EQ(make_runner(Platform::kCrusherCpu, Family::kKokkos)->name(), "Kokkos/OpenMP");
}

}  // namespace
}  // namespace portabench::models
