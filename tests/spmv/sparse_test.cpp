// Tests for the sparse containers and builders.
#include "spmv/sparse.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace portabench::spmv {
namespace {

TEST(Csr, RandomBuilderIsValid) {
  const auto m = random_csr<double>(100, 200, 8, 42);
  EXPECT_NO_THROW(m.validate());
  EXPECT_EQ(m.rows, 100u);
  EXPECT_EQ(m.cols, 200u);
  EXPECT_GT(m.nnz(), 100u * 4);  // jitter dedup can drop some, not most
  EXPECT_LE(m.nnz(), 100u * 8);
}

TEST(Csr, RandomBuilderDeterministic) {
  const auto a = random_csr<double>(50, 50, 4, 7);
  const auto b = random_csr<double>(50, 50, 4, 7);
  EXPECT_EQ(a.col_idx, b.col_idx);
  EXPECT_EQ(a.values, b.values);
  const auto c = random_csr<double>(50, 50, 4, 8);
  EXPECT_NE(a.values, c.values);
}

TEST(Csr, BandedShape) {
  const auto m = banded_csr<double>(10, 1, 1);  // tridiagonal
  EXPECT_NO_THROW(m.validate());
  EXPECT_EQ(m.nnz(), 28u);  // 3*10 - 2
  // Row 0: columns 0, 1.
  EXPECT_EQ(m.row_ptr[1] - m.row_ptr[0], 2u);
  EXPECT_EQ(m.col_idx[0], 0u);
  EXPECT_EQ(m.col_idx[1], 1u);
}

TEST(Csr, ValidateCatchesCorruption) {
  auto m = banded_csr<double>(5, 1, 1);
  m.col_idx[2] = 99;  // out of range
  EXPECT_THROW(m.validate(), precondition_error);
}

TEST(Csr, BuilderPreconditions) {
  EXPECT_THROW(random_csr<double>(0, 10, 2, 1), precondition_error);
  EXPECT_THROW(random_csr<double>(10, 10, 11, 1), precondition_error);
}

TEST(Csc, ConversionPreservesEntries) {
  const auto csr = random_csr<double>(30, 40, 5, 11);
  const auto csc = csr_to_csc(csr);
  EXPECT_EQ(csc.nnz(), csr.nnz());
  EXPECT_EQ(csc.rows, csr.rows);
  EXPECT_EQ(csc.cols, csr.cols);
  // Every CSR entry appears in the CSC structure.
  for (std::size_t r = 0; r < csr.rows; ++r) {
    for (std::size_t e = csr.row_ptr[r]; e < csr.row_ptr[r + 1]; ++e) {
      const std::size_t c = csr.col_idx[e];
      bool found = false;
      for (std::size_t f = csc.col_ptr[c]; f < csc.col_ptr[c + 1]; ++f) {
        if (csc.row_idx[f] == r && csc.values[f] == csr.values[e]) found = true;
      }
      EXPECT_TRUE(found) << "entry (" << r << "," << c << ")";
    }
  }
}

TEST(Csc, RowsAscendingWithinColumns) {
  const auto csc = csr_to_csc(random_csr<double>(60, 60, 6, 13));
  for (std::size_t c = 0; c < csc.cols; ++c) {
    for (std::size_t f = csc.col_ptr[c] + 1; f < csc.col_ptr[c + 1]; ++f) {
      EXPECT_GT(csc.row_idx[f], csc.row_idx[f - 1]);
    }
  }
}

}  // namespace
}  // namespace portabench::spmv
