// Tests for the SpMV kernels across substrates and conventions.
#include "spmv/kernels.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace portabench::spmv {
namespace {

std::vector<double> random_vector(std::size_t n, std::uint64_t seed) {
  std::vector<double> v(n);
  Xoshiro256 rng(seed);
  fill_uniform(std::span<double>(v), rng);
  return v;
}

double max_diff(std::span<const double> a, std::span<const double> b) {
  double worst = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    worst = std::max(worst, std::abs(a[i] - b[i]));
  }
  return worst;
}

class SpmvKernels : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  void SetUp() override {
    const std::uint64_t seed = GetParam();
    A_ = (seed % 2 == 0) ? random_csr<double>(137, 211, 7, seed)
                         : banded_csr<double>(150, 4, seed);
    x_ = random_vector(A_.cols, seed + 1);
    reference_.resize(A_.rows);
    spmv_reference<double>(A_, x_, std::span<double>(reference_));
  }

  CsrMatrix<double> A_;
  std::vector<double> x_;
  std::vector<double> reference_;
};

TEST_P(SpmvKernels, RowParallelCsrMatchesReference) {
  simrt::ThreadsSpace space(4);
  std::vector<double> y(A_.rows, -1.0);
  spmv_csr_row_parallel<double>(space, A_, x_, std::span<double>(y));
  // Same accumulation order as the reference: bitwise equal.
  EXPECT_EQ(max_diff(y, reference_), 0.0);
}

TEST_P(SpmvKernels, SerialSpaceWorksToo) {
  simrt::SerialSpace space;
  std::vector<double> y(A_.rows, -1.0);
  spmv_csr_row_parallel<double>(space, A_, x_, std::span<double>(y));
  EXPECT_EQ(max_diff(y, reference_), 0.0);
}

TEST_P(SpmvKernels, JuliaCscColumnParallelMatches) {
  simrt::ThreadsSpace space(4);
  const auto csc = csr_to_csc(A_);
  std::vector<double> y(A_.rows, -1.0);
  spmv_csc_column_parallel<double>(space, csc, x_, std::span<double>(y));
  // Column traversal reorders the additions: rounding-level tolerance.
  EXPECT_LE(max_diff(y, reference_), 1e-12 * static_cast<double>(A_.cols));
}

TEST_P(SpmvKernels, GpuScalarMatches) {
  gpusim::DeviceContext ctx(gpusim::GpuSpec::a100());
  gpusim::DeviceBuffer<double> dx(ctx, A_.cols);
  gpusim::DeviceBuffer<double> dy(ctx, A_.rows);
  dx.copy_from_host(x_);
  spmv_gpu_scalar<double>(ctx, A_, dx, dy);
  std::vector<double> y(A_.rows);
  dy.copy_to_host(std::span<double>(y));
  EXPECT_EQ(max_diff(y, reference_), 0.0);
  EXPECT_GE(ctx.counters().kernel_launches, 1u);
}

TEST_P(SpmvKernels, GpuVectorMatches) {
  gpusim::DeviceContext ctx(gpusim::GpuSpec::mi250x_gcd());  // 64-wide wavefronts
  gpusim::DeviceBuffer<double> dx(ctx, A_.cols);
  gpusim::DeviceBuffer<double> dy(ctx, A_.rows);
  dx.copy_from_host(x_);
  spmv_gpu_vector<double>(ctx, A_, dx, dy);
  std::vector<double> y(A_.rows);
  dy.copy_to_host(std::span<double>(y));
  // Tree reduction reorders additions.
  EXPECT_LE(max_diff(y, reference_), 1e-12 * static_cast<double>(A_.cols));
}

INSTANTIATE_TEST_SUITE_P(Seeds, SpmvKernels, ::testing::Values(2, 3, 4, 5, 10, 11));

TEST(SpmvEdge, EmptyRowsYieldZero) {
  CsrMatrix<double> A;
  A.rows = 3;
  A.cols = 3;
  A.row_ptr = {0, 1, 1, 2};  // middle row empty
  A.col_idx = {0, 2};
  A.values = {2.0, 3.0};
  A.validate();
  const std::vector<double> x{1.0, 1.0, 1.0};
  std::vector<double> y(3, -1.0);
  spmv_reference<double>(A, x, std::span<double>(y));
  EXPECT_EQ(y[0], 2.0);
  EXPECT_EQ(y[1], 0.0);
  EXPECT_EQ(y[2], 3.0);

  simrt::ThreadsSpace space(2);
  std::vector<double> y2(3, -1.0);
  spmv_csr_row_parallel<double>(space, A, x, std::span<double>(y2));
  EXPECT_EQ(y2, y);
}

TEST(SpmvEdge, SizeMismatchRejected) {
  const auto A = banded_csr<double>(10, 1, 1);
  std::vector<double> x(9);
  std::vector<double> y(10);
  simrt::SerialSpace space;
  EXPECT_THROW(
      spmv_csr_row_parallel<double>(space, A, std::span<const double>(x), std::span<double>(y)),
      precondition_error);
}

}  // namespace
}  // namespace portabench::spmv
