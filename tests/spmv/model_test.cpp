// Tests for the SpMV roofline model.
#include "spmv/model.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "perfmodel/machine_model.hpp"

namespace portabench::spmv {
namespace {

TEST(SpmvModel, DeepInTheMemoryBoundRegime) {
  const auto cpu = predict_spmv_cpu(perfmodel::CpuSpec::epyc_7a53(), 1 << 20, 16 << 20);
  // ~2 flops per 16+ bytes: AI far below any ridge point.
  EXPECT_LT(cpu.arithmetic_intensity, 0.2);
  EXPECT_GT(cpu.gflops, 0.0);
  // Bandwidth-bound: gflops ~ AI * BW * eff, nowhere near peak.
  EXPECT_LT(cpu.gflops, 0.05 * perfmodel::CpuSpec::epyc_7a53().peak_gflops(Precision::kDouble));
}

TEST(SpmvModel, GpuBandwidthAdvantageCarriesOver) {
  const std::size_t rows = 1 << 20;
  const std::size_t nnz = 16 << 20;
  const auto cpu = predict_spmv_cpu(perfmodel::CpuSpec::epyc_7a53(), rows, nnz);
  const auto gpu = predict_spmv_gpu(perfmodel::GpuPerfSpec::mi250x_gcd(), rows, nnz);
  // HBM2e vs DDR4: roughly the bandwidth ratio (~8x), damped by the
  // lower GPU bandwidth efficiency on gathers.
  EXPECT_GT(gpu.gflops / cpu.gflops, 4.0);
  EXPECT_LT(gpu.gflops / cpu.gflops, 12.0);
}

TEST(SpmvModel, TrafficComposition) {
  const auto p = predict_spmv_cpu(perfmodel::CpuSpec::epyc_7a53(), 1000, 16000, 8, 8, 0.0);
  // values+indices of A: 16000*16; row ptr: 1000*8; y: 1000*8.
  EXPECT_DOUBLE_EQ(p.bytes, 16000.0 * 16 + 1000.0 * 8 + 1000.0 * 8);
  EXPECT_DOUBLE_EQ(p.flops, 32000.0);
}

TEST(SpmvModel, XGatherFractionMatters) {
  const auto cached = predict_spmv_cpu(perfmodel::CpuSpec::epyc_7a53(), 1 << 18, 1 << 22, 8,
                                       8, 0.0);
  const auto streamed = predict_spmv_cpu(perfmodel::CpuSpec::epyc_7a53(), 1 << 18, 1 << 22,
                                         8, 8, 1.0);
  EXPECT_GT(streamed.bytes, cached.bytes);
  EXPECT_LT(streamed.gflops, cached.gflops);
}

TEST(SpmvModel, IndexWidthMatters) {
  // 4-byte indices (the common production choice) cut traffic ~25%.
  const auto wide = predict_spmv_cpu(perfmodel::CpuSpec::epyc_7a53(), 1 << 18, 1 << 22, 8, 8);
  const auto narrow = predict_spmv_cpu(perfmodel::CpuSpec::epyc_7a53(), 1 << 18, 1 << 22, 8, 4);
  EXPECT_GT(wide.bytes, narrow.bytes);
}

TEST(SpmvModel, PreconditionsEnforced) {
  EXPECT_THROW(predict_spmv_cpu(perfmodel::CpuSpec::epyc_7a53(), 0, 10), precondition_error);
  EXPECT_THROW(predict_spmv_cpu(perfmodel::CpuSpec::epyc_7a53(), 10, 10, 8, 8, 2.0),
               precondition_error);
}

}  // namespace
}  // namespace portabench::spmv
