// Property tests for device-wide reductions: every (type, op) cell must
// match the serial oracle bit for bit, under every schedule config —
// including the sanitized tier's permuted lane orders.
#include "primitives/reduce.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <vector>

#include "common/rng.hpp"
#include "primitives/serial.hpp"

namespace portabench::primitives {
namespace {

// Odd, prime, power-of-two, and segment-straddling sizes; empty and
// single-element inputs are the degenerate cells.
const std::size_t kSizes[] = {0, 1, 2, 3, 97, 1023, 1024, 1025, 4096, 10007};

const ReduceConfig kConfigs[] = {
    {},            // defaults
    {1, 1},        // degenerate single-lane
    {32, 1},       // warp-width lanes
    {256, 8},      // wide blocks, deep grain
    {7, 3},        // deliberately awkward non-power-of-two schedule
};

template <class T>
std::vector<T> random_values(std::size_t n, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<T> v(n);
  for (auto& x : v) {
    if constexpr (std::is_floating_point_v<T>) {
      x = static_cast<T>(rng.uniform() - 0.5);
    } else {
      x = static_cast<T>(rng());
    }
  }
  return v;
}

template <class T>
bool bits_equal(const T& a, const T& b) {
  return std::memcmp(&a, &b, sizeof(T)) == 0;
}

template <class T, class Op>
void check_reduce_all_schedules(std::uint64_t seed) {
  gpusim::DeviceContext ctx(gpusim::GpuSpec::a100());
  const Op op;
  for (const std::size_t n : kSizes) {
    const std::vector<T> in = random_values<T>(n, seed + n);
    const T want = reduce_oracle(std::span<const T>(in), op);
    for (const ReduceConfig& cfg : kConfigs) {
      const T got = device_reduce(ctx, std::span<const T>(in), op, cfg);
      EXPECT_TRUE(bits_equal(got, want))
          << "n=" << n << " lanes=" << cfg.lanes << " grain=" << cfg.items_per_lane;
    }
  }
}

TEST(DeviceReduce, SumInt32) { check_reduce_all_schedules<std::int32_t, SumOp<std::int32_t>>(1); }
TEST(DeviceReduce, SumUint64) { check_reduce_all_schedules<std::uint64_t, SumOp<std::uint64_t>>(2); }
TEST(DeviceReduce, SumDouble) { check_reduce_all_schedules<double, SumOp<double>>(3); }
TEST(DeviceReduce, SumFloat) { check_reduce_all_schedules<float, SumOp<float>>(4); }
TEST(DeviceReduce, ProdInt64) { check_reduce_all_schedules<std::int64_t, ProdOp<std::int64_t>>(5); }
TEST(DeviceReduce, MinDouble) { check_reduce_all_schedules<double, MinOp<double>>(6); }
TEST(DeviceReduce, MaxInt32) { check_reduce_all_schedules<std::int32_t, MaxOp<std::int32_t>>(7); }
TEST(DeviceReduce, MaxDouble) { check_reduce_all_schedules<double, MaxOp<double>>(8); }
TEST(DeviceReduce, BitAndUint32) { check_reduce_all_schedules<std::uint32_t, BitAndOp<std::uint32_t>>(9); }
TEST(DeviceReduce, BitOrUint64) { check_reduce_all_schedules<std::uint64_t, BitOrOp<std::uint64_t>>(10); }
TEST(DeviceReduce, BitXorInt32) { check_reduce_all_schedules<std::int32_t, BitXorOp<std::int32_t>>(11); }

TEST(DeviceReduce, ExactOpsEqualPlainLeftFold) {
  // For exact ops the pinned association is a left fold — the oracle's
  // segment structure must be invisible.
  gpusim::DeviceContext ctx(gpusim::GpuSpec::a100());
  const std::vector<std::int64_t> in = random_values<std::int64_t>(5000, 42);
  std::int64_t fold = 0;
  for (const std::int64_t x : in) fold += x;
  EXPECT_EQ(device_reduce(ctx, std::span<const std::int64_t>(in), SumOp<std::int64_t>{}),
            fold);
  std::int64_t mx = in[0];
  for (const std::int64_t x : in) mx = std::max(mx, x);
  EXPECT_EQ(device_reduce(ctx, std::span<const std::int64_t>(in), MaxOp<std::int64_t>{}),
            mx);
}

TEST(DeviceReduce, EmptyReturnsIdentity) {
  gpusim::DeviceContext ctx(gpusim::GpuSpec::a100());
  const std::span<const double> empty;
  EXPECT_EQ(device_reduce(ctx, empty, SumOp<double>{}), 0.0);
  EXPECT_EQ(device_reduce(ctx, empty, MaxOp<double>{}),
            -std::numeric_limits<double>::infinity());
}

double nan_with_payload(std::uint64_t payload) {
  // Quiet NaN with a distinguishing payload so "which NaN survived" is
  // observable bitwise.
  const std::uint64_t bits = 0x7ff8000000000000ull | (payload & 0xffffull);
  return std::bit_cast<double>(bits);
}

TEST(DeviceReduce, NanMaxPropagatesLeftmostNan) {
  gpusim::DeviceContext ctx(gpusim::GpuSpec::a100());
  for (const std::size_t n : {std::size_t{100}, std::size_t{3000}}) {
    for (const std::size_t first_nan : {std::size_t{0}, std::size_t{57}, n - 1}) {
      std::vector<double> in = random_values<double>(n, 77);
      in[first_nan] = nan_with_payload(first_nan + 1);
      if (first_nan + 500 < n) in[first_nan + 500] = nan_with_payload(9999);
      const double want = nan_with_payload(first_nan + 1);
      for (const ReduceConfig& cfg : kConfigs) {
        const double got =
            device_reduce(ctx, std::span<const double>(in), NanMaxOp<double>{}, cfg);
        EXPECT_TRUE(bits_equal(got, want))
            << "n=" << n << " first_nan=" << first_nan << " lanes=" << cfg.lanes;
      }
      const double oracle = reduce_oracle(std::span<const double>(in), NanMaxOp<double>{});
      EXPECT_TRUE(bits_equal(oracle, want));
    }
  }
}

TEST(DeviceReduce, NanMinPropagatesLeftmostNan) {
  gpusim::DeviceContext ctx(gpusim::GpuSpec::a100());
  std::vector<double> in = random_values<double>(2050, 78);
  in[1024] = nan_with_payload(5);
  in[2049] = nan_with_payload(6);
  const double want = nan_with_payload(5);
  const double got = device_reduce(ctx, std::span<const double>(in), NanMinOp<double>{});
  EXPECT_TRUE(bits_equal(got, want));
}

TEST(DeviceReduce, MaxTieKeepsLeftmostBits) {
  // -0.0 and +0.0 compare equal; the leftmost of a tie must survive so
  // the result is schedule-independent bitwise.
  gpusim::DeviceContext ctx(gpusim::GpuSpec::a100());
  std::vector<double> in(3000, -1.0);
  in[100] = -0.0;
  in[2500] = +0.0;
  const double want_bits = -0.0;
  for (const ReduceConfig& cfg : kConfigs) {
    const double got = device_reduce(ctx, std::span<const double>(in), MaxOp<double>{}, cfg);
    EXPECT_TRUE(bits_equal(got, want_bits)) << "lanes=" << cfg.lanes;
  }
}

TEST(DeviceTransformReduce, MatchesOracle) {
  gpusim::DeviceContext ctx(gpusim::GpuSpec::a100());
  for (const std::size_t n : kSizes) {
    const auto f = [](std::size_t i) {
      return static_cast<double>((i * 2654435761u) % 1000) * 0.001 - 0.5;
    };
    const double want = transform_reduce_oracle<double>(n, SumOp<double>{}, f);
    const double got = device_transform_reduce<double>(ctx, n, SumOp<double>{}, f);
    EXPECT_TRUE(bits_equal(got, want)) << "n=" << n;
  }
}

TEST(DeviceMaxAbsDiff, MatchesOracleAndScalar) {
  gpusim::DeviceContext ctx(gpusim::GpuSpec::a100());
  for (const std::size_t n : kSizes) {
    const std::vector<double> a = random_values<double>(n, 100 + n);
    const std::vector<double> b = random_values<double>(n, 200 + n);
    const double want = max_abs_diff_oracle(std::span<const double>(a),
                                            std::span<const double>(b));
    for (const ReduceConfig& cfg : kConfigs) {
      const double got =
          device_max_abs_diff(ctx, std::span<const double>(a), std::span<const double>(b), cfg);
      EXPECT_TRUE(bits_equal(got, want)) << "n=" << n << " lanes=" << cfg.lanes;
    }
    // Max is exact: the pinned value equals the scalar loop's value.
    double scalar = n == 0 ? -std::numeric_limits<double>::infinity() : 0.0;
    for (std::size_t i = 0; i < n; ++i) scalar = std::max(scalar, std::abs(a[i] - b[i]));
    if (n > 0) {
      EXPECT_EQ(want, scalar) << "n=" << n;
    }
  }
}

}  // namespace
}  // namespace portabench::primitives
