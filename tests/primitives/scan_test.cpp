// Property tests for device-wide exclusive/inclusive scans: bitwise
// identity against the serial oracle over a (type, op) grid, under
// multiple schedule configs, including in-place operation and the
// non-commutative affine-composition op that detects any combine whose
// operand order drifts.
#include "primitives/scan.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <numeric>
#include <vector>

#include "common/rng.hpp"
#include "primitives/serial.hpp"

namespace portabench::primitives {
namespace {

const std::size_t kSizes[] = {0, 1, 2, 3, 97, 1023, 1024, 1025, 4099, 10007};

const ScanConfig kConfigs[] = {
    {},           // defaults
    {1, 1},       // degenerate single-lane, single-element chunks
    {32, 4096},   // warp-width lanes, large chunks
    {256, 1024},  // chunk == kSegment boundary alignment
    {7, 129},     // awkward non-power-of-two schedule
};

template <class T>
std::vector<T> random_values(std::size_t n, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<T> v(n);
  for (auto& x : v) {
    if constexpr (std::is_floating_point_v<T>) {
      x = static_cast<T>(rng.uniform() - 0.5);
    } else {
      x = static_cast<T>(rng() % 1000) - 500;
    }
  }
  return v;
}

template <class T>
bool vectors_bits_equal(const std::vector<T>& a, const std::vector<T>& b) {
  return a.size() == b.size() &&
         (a.empty() || std::memcmp(a.data(), b.data(), a.size() * sizeof(T)) == 0);
}

template <class T, class Op>
void check_scans_all_schedules(std::uint64_t seed) {
  gpusim::DeviceContext ctx(gpusim::GpuSpec::a100());
  const Op op;
  for (const std::size_t n : kSizes) {
    const std::vector<T> in = random_values<T>(n, seed + n);
    std::vector<T> want_ex(n), want_in(n);
    exclusive_scan_oracle(std::span<const T>(in), std::span<T>(want_ex), op);
    inclusive_scan_oracle(std::span<const T>(in), std::span<T>(want_in), op);
    for (const ScanConfig& cfg : kConfigs) {
      std::vector<T> out(n);
      device_exclusive_scan(ctx, std::span<const T>(in), std::span<T>(out), op, cfg);
      EXPECT_TRUE(vectors_bits_equal(out, want_ex))
          << "exclusive n=" << n << " lanes=" << cfg.lanes << " chunk=" << cfg.chunk;
      device_inclusive_scan(ctx, std::span<const T>(in), std::span<T>(out), op, cfg);
      EXPECT_TRUE(vectors_bits_equal(out, want_in))
          << "inclusive n=" << n << " lanes=" << cfg.lanes << " chunk=" << cfg.chunk;
    }
  }
}

TEST(DeviceScan, SumInt64) { check_scans_all_schedules<std::int64_t, SumOp<std::int64_t>>(1); }
TEST(DeviceScan, SumUint32) { check_scans_all_schedules<std::uint32_t, SumOp<std::uint32_t>>(2); }
TEST(DeviceScan, SumDouble) { check_scans_all_schedules<double, SumOp<double>>(3); }
TEST(DeviceScan, SumFloat) { check_scans_all_schedules<float, SumOp<float>>(4); }
TEST(DeviceScan, MaxInt32) { check_scans_all_schedules<std::int32_t, MaxOp<std::int32_t>>(5); }
TEST(DeviceScan, MinDouble) { check_scans_all_schedules<double, MinOp<double>>(6); }
TEST(DeviceScan, BitOrUint64) { check_scans_all_schedules<std::uint64_t, BitOrOp<std::uint64_t>>(7); }

TEST(DeviceScan, ExactExclusiveEqualsStdExclusiveScan) {
  gpusim::DeviceContext ctx(gpusim::GpuSpec::a100());
  const std::vector<std::int64_t> in = random_values<std::int64_t>(5001, 42);
  std::vector<std::int64_t> want(in.size());
  std::exclusive_scan(in.begin(), in.end(), want.begin(), std::int64_t{0});
  std::vector<std::int64_t> out(in.size());
  device_exclusive_scan(ctx, std::span<const std::int64_t>(in),
                        std::span<std::int64_t>(out), SumOp<std::int64_t>{});
  EXPECT_EQ(out, want);
}

TEST(DeviceScan, NonCommutativeAffineKeepsElementOrder) {
  // Affine composition is associative but not commutative: a scan that
  // ever swaps combine operands (in the block tree, the chunk-total
  // pass, or the offset application) produces different coefficients.
  gpusim::DeviceContext ctx(gpusim::GpuSpec::a100());
  using Aff = Affine<std::int64_t>;
  const AffineComposeOp<std::int64_t> op;
  for (const std::size_t n : {std::size_t{0}, std::size_t{1}, std::size_t{97},
                              std::size_t{1025}, std::size_t{4099}}) {
    std::vector<Aff> in(n);
    for (std::size_t i = 0; i < n; ++i) {
      in[i] = Aff{static_cast<std::int64_t>(i % 3 + 1),
                  static_cast<std::int64_t>(i % 7) - 3};
    }
    // Serial left-fold prefix is the ground truth (op is exact).
    std::vector<Aff> want(n);
    Aff run = op.identity();
    for (std::size_t i = 0; i < n; ++i) {
      want[i] = run;
      run = op(run, in[i]);
    }
    for (const ScanConfig& cfg : kConfigs) {
      std::vector<Aff> out(n);
      device_exclusive_scan(ctx, std::span<const Aff>(in), std::span<Aff>(out), op, cfg);
      for (std::size_t i = 0; i < n; ++i) {
        ASSERT_TRUE(out[i] == want[i])
            << "n=" << n << " i=" << i << " lanes=" << cfg.lanes
            << " chunk=" << cfg.chunk << ": {" << out[i].mul << "," << out[i].add
            << "} vs {" << want[i].mul << "," << want[i].add << "}";
      }
    }
    std::vector<Aff> oracle(n);
    exclusive_scan_oracle(std::span<const Aff>(in), std::span<Aff>(oracle), op);
    for (std::size_t i = 0; i < n; ++i) ASSERT_TRUE(oracle[i] == want[i]) << "i=" << i;
  }
}

TEST(DeviceScan, InPlaceMatchesOutOfPlace) {
  gpusim::DeviceContext ctx(gpusim::GpuSpec::a100());
  for (const std::size_t n : {std::size_t{1}, std::size_t{1023}, std::size_t{4099}}) {
    const std::vector<double> in = random_values<double>(n, 9 + n);
    std::vector<double> out(n);
    device_exclusive_scan(ctx, std::span<const double>(in), std::span<double>(out),
                          SumOp<double>{});
    std::vector<double> inplace = in;
    device_exclusive_scan(ctx, std::span<const double>(inplace),
                          std::span<double>(inplace), SumOp<double>{});
    EXPECT_TRUE(vectors_bits_equal(inplace, out)) << "exclusive n=" << n;

    device_inclusive_scan(ctx, std::span<const double>(in), std::span<double>(out),
                          SumOp<double>{});
    inplace = in;
    device_inclusive_scan(ctx, std::span<const double>(inplace),
                          std::span<double>(inplace), SumOp<double>{});
    EXPECT_TRUE(vectors_bits_equal(inplace, out)) << "inclusive n=" << n;
  }
}

TEST(DeviceScan, InclusiveIsExclusiveShiftedForExactOps) {
  gpusim::DeviceContext ctx(gpusim::GpuSpec::a100());
  const std::vector<std::int64_t> in = random_values<std::int64_t>(2050, 17);
  std::vector<std::int64_t> ex(in.size()), inc(in.size());
  device_exclusive_scan(ctx, std::span<const std::int64_t>(in),
                        std::span<std::int64_t>(ex), SumOp<std::int64_t>{});
  device_inclusive_scan(ctx, std::span<const std::int64_t>(in),
                        std::span<std::int64_t>(inc), SumOp<std::int64_t>{});
  for (std::size_t i = 0; i < in.size(); ++i) {
    EXPECT_EQ(inc[i], ex[i] + in[i]) << "i=" << i;
  }
}

TEST(DeviceScan, MismatchedSpansRejected) {
  gpusim::DeviceContext ctx(gpusim::GpuSpec::a100());
  const std::vector<double> in(8);
  std::vector<double> out(7);
  EXPECT_THROW(device_exclusive_scan(ctx, std::span<const double>(in),
                                     std::span<double>(out), SumOp<double>{}),
               precondition_error);
}

}  // namespace
}  // namespace portabench::primitives
