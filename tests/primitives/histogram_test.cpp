// Property tests for the privatized device-wide histogram: exact count
// identity against the serial oracle for every schedule, bin count, and
// count type — integer counting is exact, so any mismatch is a lost or
// double-counted element.
#include "primitives/histogram.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>
#include <vector>

#include "common/rng.hpp"
#include "primitives/serial.hpp"

namespace portabench::primitives {
namespace {

const HistogramConfig kConfigs[] = {
    {},          // defaults
    {1, 1},      // one lane, one element per tile
    {32, 4096},  // warp-width lanes, big tiles
    {7, 129},    // awkward non-power-of-two schedule
    {256, 512},  // more lanes than most tiles have elements
};

template <class Count>
void check_histogram(std::size_t n, std::size_t bins, std::uint64_t seed) {
  gpusim::DeviceContext ctx(gpusim::GpuSpec::a100());
  Xoshiro256 rng(seed);
  std::vector<std::uint32_t> in(n);
  for (auto& x : in) x = static_cast<std::uint32_t>(rng());
  const auto bin_of = [bins](std::uint32_t x) { return x % bins; };

  std::vector<Count> want(bins);
  histogram_oracle(std::span<const std::uint32_t>(in), std::span<Count>(want), bin_of);
  const Count total = std::accumulate(want.begin(), want.end(), Count{0});
  EXPECT_EQ(static_cast<std::size_t>(total), n) << "oracle must count every element";

  for (const HistogramConfig& cfg : kConfigs) {
    std::vector<Count> got(bins, Count{123});  // poison: output must be overwritten
    device_histogram(ctx, std::span<const std::uint32_t>(in), std::span<Count>(got),
                     bin_of, cfg);
    EXPECT_EQ(got, want) << "n=" << n << " bins=" << bins << " lanes=" << cfg.lanes
                         << " chunk=" << cfg.chunk;
  }
}

TEST(DeviceHistogram, Uint32Counts) {
  for (const std::size_t n : {std::size_t{0}, std::size_t{1}, std::size_t{97},
                              std::size_t{1025}, std::size_t{10007}}) {
    for (const std::size_t bins : {std::size_t{1}, std::size_t{13}, std::size_t{256}}) {
      check_histogram<std::uint32_t>(n, bins, 1000 + n + bins);
    }
  }
}

TEST(DeviceHistogram, WideAndNarrowCountTypes) {
  check_histogram<std::uint64_t>(4099, 37, 1);
  check_histogram<std::int32_t>(4099, 37, 2);
  check_histogram<std::size_t>(1023, 5, 3);
}

TEST(DeviceHistogram, AllElementsInOneBin) {
  gpusim::DeviceContext ctx(gpusim::GpuSpec::a100());
  const std::size_t n = 5000;
  const std::vector<double> in(n, 0.25);
  const auto bin_of = [](double) { return std::size_t{2}; };
  std::vector<std::uint32_t> hist(8);
  device_histogram(ctx, std::span<const double>(in), std::span<std::uint32_t>(hist),
                   bin_of);
  for (std::size_t k = 0; k < hist.size(); ++k) {
    EXPECT_EQ(hist[k], k == 2 ? n : 0u) << "bin " << k;
  }
}

TEST(DeviceHistogram, FloatBinningMatchesOracle) {
  // Value-range binning of doubles — the bin function itself is where
  // fp subtleties would live; the counting stays exact.
  gpusim::DeviceContext ctx(gpusim::GpuSpec::a100());
  const std::size_t n = 4099;
  const std::size_t bins = 64;
  Xoshiro256 rng(55);
  std::vector<double> in(n);
  for (auto& x : in) x = rng.uniform();
  const auto bin_of = [bins](double x) {
    const auto b = static_cast<std::size_t>(x * static_cast<double>(bins));
    return b < bins ? b : bins - 1;
  };
  std::vector<std::uint64_t> want(bins), got(bins);
  histogram_oracle(std::span<const double>(in), std::span<std::uint64_t>(want), bin_of);
  for (const HistogramConfig& cfg : kConfigs) {
    device_histogram(ctx, std::span<const double>(in), std::span<std::uint64_t>(got),
                     bin_of, cfg);
    EXPECT_EQ(got, want) << "lanes=" << cfg.lanes << " chunk=" << cfg.chunk;
  }
}

TEST(DeviceHistogram, SharedMemoryCapClampsLanes) {
  // Huge bin count: the privatized rows cannot all fit, so the lane
  // count is clamped by shared memory — the result must be unchanged.
  gpusim::DeviceContext ctx(gpusim::GpuSpec::a100());
  const std::size_t n = 2048;
  const std::size_t bins = 8192;  // 8192 * 8B = 64 KiB per lane row
  Xoshiro256 rng(77);
  std::vector<std::uint32_t> in(n);
  for (auto& x : in) x = static_cast<std::uint32_t>(rng());
  const auto bin_of = [bins](std::uint32_t x) { return x % bins; };
  std::vector<std::uint64_t> want(bins), got(bins);
  histogram_oracle(std::span<const std::uint32_t>(in), std::span<std::uint64_t>(want),
                   bin_of);
  HistogramConfig cfg;
  cfg.lanes = 256;  // far beyond what 164 KiB of shared memory allows
  device_histogram(ctx, std::span<const std::uint32_t>(in),
                   std::span<std::uint64_t>(got), bin_of, cfg);
  EXPECT_EQ(got, want);
}

TEST(DeviceHistogram, EmptyBinsRejected) {
  gpusim::DeviceContext ctx(gpusim::GpuSpec::a100());
  const std::vector<std::uint32_t> in(4, 0);
  std::vector<std::uint32_t> hist;
  EXPECT_THROW(device_histogram(ctx, std::span<const std::uint32_t>(in),
                                std::span<std::uint32_t>(hist),
                                [](std::uint32_t) { return 0u; }),
               precondition_error);
}

}  // namespace
}  // namespace portabench::primitives
