// Property tests for device-wide radix and merge sorts: bitwise identity
// against the stable serial oracle across key types (including the
// signed/float monotone bit bijections), radix widths, schedules, input
// orders, and duplicate-heavy distributions that exercise stability.
#include "primitives/sort.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <numeric>
#include <vector>

#include "common/rng.hpp"
#include "primitives/serial.hpp"

namespace portabench::primitives {
namespace {

const std::size_t kSizes[] = {0, 1, 2, 3, 97, 1023, 1024, 1025, 4099};

const SortConfig kConfigs[] = {
    {},             // defaults
    {2, 64, 4},     // narrow digits, tiny chunks, few lanes
    {4, 2048, 32},  // mid-width digits
    {8, 512, 16},   // whole-byte digits
    {3, 100, 7},    // digit width not dividing the key width
};

template <class K>
std::vector<K> random_keys(std::size_t n, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<K> v(n);
  for (auto& x : v) {
    if constexpr (std::is_floating_point_v<K>) {
      x = static_cast<K>((rng.uniform() - 0.5) * 1e6);
    } else {
      x = static_cast<K>(rng());
    }
  }
  return v;
}

template <class K>
bool keys_bits_equal(const std::vector<K>& a, const std::vector<K>& b) {
  return a.size() == b.size() &&
         (a.empty() || std::memcmp(a.data(), b.data(), a.size() * sizeof(K)) == 0);
}

template <class K>
void check_sort_keys(std::uint64_t seed) {
  gpusim::DeviceContext ctx(gpusim::GpuSpec::a100());
  for (const std::size_t n : kSizes) {
    const std::vector<K> in = random_keys<K>(n, seed + n);
    std::vector<K> want = in;
    sort_keys_oracle(std::span<K>(want));
    for (const SortConfig& cfg : kConfigs) {
      std::vector<K> got = in;
      device_radix_sort_keys(ctx, std::span<K>(got), cfg);
      EXPECT_TRUE(keys_bits_equal(got, want))
          << "n=" << n << " radix_bits=" << cfg.radix_bits << " chunk=" << cfg.chunk
          << " lanes=" << cfg.lanes;
    }
  }
}

TEST(DeviceRadixSortKeys, Uint32) { check_sort_keys<std::uint32_t>(1); }
TEST(DeviceRadixSortKeys, Uint64) { check_sort_keys<std::uint64_t>(2); }
TEST(DeviceRadixSortKeys, Int32) { check_sort_keys<std::int32_t>(3); }
TEST(DeviceRadixSortKeys, Int64) { check_sort_keys<std::int64_t>(4); }
TEST(DeviceRadixSortKeys, Float) { check_sort_keys<float>(5); }
TEST(DeviceRadixSortKeys, Double) { check_sort_keys<double>(6); }

TEST(DeviceRadixSortKeys, SignedKeysOrderNumerically) {
  gpusim::DeviceContext ctx(gpusim::GpuSpec::a100());
  std::vector<std::int32_t> keys = {5, -1, 0, std::numeric_limits<std::int32_t>::min(),
                                    std::numeric_limits<std::int32_t>::max(), -7, 3, -7};
  device_radix_sort_keys(ctx, std::span<std::int32_t>(keys));
  EXPECT_TRUE(std::is_sorted(keys.begin(), keys.end()));
  EXPECT_EQ(keys.front(), std::numeric_limits<std::int32_t>::min());
  EXPECT_EQ(keys.back(), std::numeric_limits<std::int32_t>::max());
}

TEST(DeviceRadixSortKeys, FloatBijectionOrdersSpecials) {
  // The float bijection must yield: -inf < negatives < -0.0 < +0.0 <
  // positives < +inf < NaN (positive-sign NaNs sort above +inf).
  gpusim::DeviceContext ctx(gpusim::GpuSpec::a100());
  const double nan = std::numeric_limits<double>::quiet_NaN();
  std::vector<double> keys = {1.5,  -0.0, nan, -std::numeric_limits<double>::infinity(),
                              -2.5, 0.0,  std::numeric_limits<double>::infinity(), 3.0};
  std::vector<double> want = keys;
  sort_keys_oracle(std::span<double>(want));
  device_radix_sort_keys(ctx, std::span<double>(keys));
  EXPECT_TRUE(keys_bits_equal(keys, want));
  EXPECT_EQ(keys[0], -std::numeric_limits<double>::infinity());
  EXPECT_EQ(keys[1], -2.5);
  EXPECT_TRUE(std::signbit(keys[2]) && keys[2] == 0.0) << "expected -0.0 before +0.0";
  EXPECT_TRUE(!std::signbit(keys[3]) && keys[3] == 0.0);
  EXPECT_TRUE(std::isnan(keys.back())) << "positive NaN must sort last";
}

TEST(DeviceRadixSortKeys, SortedAndReverseInputs) {
  gpusim::DeviceContext ctx(gpusim::GpuSpec::a100());
  for (const std::size_t n : {std::size_t{1024}, std::size_t{4099}}) {
    std::vector<std::uint64_t> asc(n);
    std::iota(asc.begin(), asc.end(), std::uint64_t{0});
    std::vector<std::uint64_t> keys = asc;
    device_radix_sort_keys(ctx, std::span<std::uint64_t>(keys));
    EXPECT_EQ(keys, asc) << "already-sorted input must be a fixed point, n=" << n;
    std::vector<std::uint64_t> rev(asc.rbegin(), asc.rend());
    device_radix_sort_keys(ctx, std::span<std::uint64_t>(rev));
    EXPECT_EQ(rev, asc) << "reverse input, n=" << n;
  }
}

TEST(DeviceRadixSortPairs, StableOnDuplicateKeys) {
  // Dense duplicate keys with index payloads: stability means values
  // within every equal-key run stay in ascending input order — and the
  // whole result matches the stable oracle bitwise.
  gpusim::DeviceContext ctx(gpusim::GpuSpec::a100());
  for (const std::size_t n : {std::size_t{97}, std::size_t{1025}, std::size_t{4099}}) {
    Xoshiro256 rng(99 + n);
    std::vector<std::uint32_t> keys(n);
    for (auto& k : keys) k = static_cast<std::uint32_t>(rng() % 17);  // heavy duplication
    std::vector<std::uint32_t> values(n);
    std::iota(values.begin(), values.end(), std::uint32_t{0});

    std::vector<std::uint32_t> want_k = keys, want_v = values;
    sort_pairs_oracle(std::span<std::uint32_t>(want_k), std::span<std::uint32_t>(want_v));

    for (const SortConfig& cfg : kConfigs) {
      std::vector<std::uint32_t> k = keys, v = values;
      device_radix_sort_pairs(ctx, std::span<std::uint32_t>(k),
                              std::span<std::uint32_t>(v), cfg);
      EXPECT_TRUE(keys_bits_equal(k, want_k)) << "n=" << n << " rb=" << cfg.radix_bits;
      EXPECT_TRUE(keys_bits_equal(v, want_v)) << "n=" << n << " rb=" << cfg.radix_bits;
      for (std::size_t i = 1; i < n; ++i) {
        if (k[i] == k[i - 1]) {
          ASSERT_LT(v[i - 1], v[i]) << "stability violated at i=" << i;
        }
      }
    }
  }
}

TEST(DeviceRadixSortPairs, DoubleKeysWithPayload) {
  gpusim::DeviceContext ctx(gpusim::GpuSpec::a100());
  const std::size_t n = 2050;
  std::vector<double> keys = random_keys<double>(n, 7);
  for (std::size_t i = 0; i < n; i += 5) keys[i] = keys[0];  // inject duplicates
  std::vector<std::uint64_t> values(n);
  std::iota(values.begin(), values.end(), std::uint64_t{0});
  std::vector<double> want_k = keys;
  std::vector<std::uint64_t> want_v = values;
  sort_pairs_oracle(std::span<double>(want_k), std::span<std::uint64_t>(want_v));
  device_radix_sort_pairs(ctx, std::span<double>(keys), std::span<std::uint64_t>(values));
  EXPECT_TRUE(keys_bits_equal(keys, want_k));
  EXPECT_TRUE(keys_bits_equal(values, want_v));
}

TEST(DeviceMergeSort, KeysMatchStableSortUnderCustomLess) {
  // The merge path takes an arbitrary comparator the radix path cannot:
  // order by absolute value, where stability is observable because
  // x and -x are distinct elements that compare equal.
  gpusim::DeviceContext ctx(gpusim::GpuSpec::a100());
  const auto abs_less = [](double a, double b) { return std::abs(a) < std::abs(b); };
  for (const std::size_t n : kSizes) {
    std::vector<double> in = random_keys<double>(n, 11 + n);
    for (std::size_t i = 0; i + 1 < n; i += 2) in[i + 1] = -in[i];  // equal-|x| pairs
    std::vector<double> want = in;
    std::stable_sort(want.begin(), want.end(), abs_less);
    for (const SortConfig& cfg : kConfigs) {
      std::vector<double> got = in;
      device_merge_sort_keys(ctx, std::span<double>(got), abs_less, cfg);
      EXPECT_TRUE(keys_bits_equal(got, want))
          << "n=" << n << " chunk=" << cfg.chunk << " lanes=" << cfg.lanes;
    }
  }
}

TEST(DeviceMergeSort, PairsMatchStableSort) {
  gpusim::DeviceContext ctx(gpusim::GpuSpec::a100());
  const std::size_t n = 1025;
  Xoshiro256 rng(13);
  std::vector<std::int32_t> keys(n);
  for (auto& k : keys) k = static_cast<std::int32_t>(rng() % 40) - 20;
  std::vector<std::uint32_t> values(n);
  std::iota(values.begin(), values.end(), std::uint32_t{0});
  std::vector<std::int32_t> want_k = keys;
  std::vector<std::uint32_t> want_v = values;
  sort_pairs_oracle(std::span<std::int32_t>(want_k), std::span<std::uint32_t>(want_v));
  device_merge_sort_pairs(ctx, std::span<std::int32_t>(keys),
                          std::span<std::uint32_t>(values));
  EXPECT_TRUE(keys_bits_equal(keys, want_k));
  EXPECT_TRUE(keys_bits_equal(values, want_v));
}

TEST(DeviceMergeSort, AgreesWithRadixUnderBijectionOrder) {
  gpusim::DeviceContext ctx(gpusim::GpuSpec::a100());
  const std::size_t n = 4099;
  const std::vector<float> in = random_keys<float>(n, 21);
  std::vector<float> radix = in, merge = in;
  device_radix_sort_keys(ctx, std::span<float>(radix));
  device_merge_sort_keys(ctx, std::span<float>(merge), [](float a, float b) {
    return RadixTraits<float>::to_bits(a) < RadixTraits<float>::to_bits(b);
  });
  EXPECT_TRUE(keys_bits_equal(radix, merge));
}

TEST(HostRadixSortPairs, MatchesOracleAndReusesScratch) {
  const std::size_t n = 10007;
  Xoshiro256 rng(31);
  std::vector<std::uint64_t> keys(n);
  for (auto& k : keys) k = rng() & 0xffffu;  // dense duplicates
  std::vector<std::uint32_t> values(n);
  std::iota(values.begin(), values.end(), std::uint32_t{0});
  std::vector<std::uint64_t> want_k = keys;
  std::vector<std::uint32_t> want_v = values;
  sort_pairs_oracle(std::span<std::uint64_t>(want_k), std::span<std::uint32_t>(want_v));

  HostRadixScratch<std::uint64_t, std::uint32_t> scratch;
  for (const std::size_t radix_bits : {std::size_t{1}, std::size_t{4}, std::size_t{5},
                                       std::size_t{8}}) {
    std::vector<std::uint64_t> k = keys;
    std::vector<std::uint32_t> v = values;
    // Reusing one scratch across widths must not leak state between runs.
    host_radix_sort_pairs(std::span<std::uint64_t>(k), std::span<std::uint32_t>(v),
                          scratch, radix_bits);
    EXPECT_TRUE(keys_bits_equal(k, want_k)) << "radix_bits=" << radix_bits;
    EXPECT_TRUE(keys_bits_equal(v, want_v)) << "radix_bits=" << radix_bits;
  }
}

TEST(DeviceRadixSort, BadConfigRejected) {
  gpusim::DeviceContext ctx(gpusim::GpuSpec::a100());
  std::vector<std::uint32_t> keys(16, 1);
  SortConfig cfg;
  cfg.radix_bits = 0;
  EXPECT_THROW(device_radix_sort_keys(ctx, std::span<std::uint32_t>(keys), cfg),
               precondition_error);
  cfg.radix_bits = 9;
  EXPECT_THROW(device_radix_sort_keys(ctx, std::span<std::uint32_t>(keys), cfg),
               precondition_error);
}

TEST(DeviceRadixSortPairs, MismatchedSpansRejected) {
  gpusim::DeviceContext ctx(gpusim::GpuSpec::a100());
  std::vector<std::uint32_t> keys(8);
  std::vector<std::uint32_t> values(7);
  EXPECT_THROW(device_radix_sort_pairs(ctx, std::span<std::uint32_t>(keys),
                                       std::span<std::uint32_t>(values)),
               precondition_error);
}

}  // namespace
}  // namespace portabench::primitives
