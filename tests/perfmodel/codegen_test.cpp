// Tests for the inner-loop codegen model.
#include "perfmodel/codegen.hpp"

#include <gtest/gtest.h>

namespace portabench::perfmodel {
namespace {

TEST(GpuCodegen, UnrollRatioReproducesPaperPtxFinding) {
  // Section IV-B: CUDA.jl unrolls 2x, native CUDA 4x; Table III measures
  // the resulting efficiency at 0.867 on the A100.
  EXPECT_NEAR(julia_a100_unroll_ratio(), 0.867, 0.005);
}

TEST(GpuCodegen, EfficiencyMonotoneInUnroll) {
  double prev = 0.0;
  for (int u : {1, 2, 3, 4}) {
    CodegenProfile p = CodegenProfile::vendor_gpu();
    p.unroll = u;
    const double eff = gpu_inner_loop_efficiency(p);
    EXPECT_GT(eff, prev);
    prev = eff;
  }
  // Saturates at 4 chains (the pipeline depth).
  CodegenProfile p8 = CodegenProfile::vendor_gpu();
  p8.unroll = 8;
  EXPECT_DOUBLE_EQ(gpu_inner_loop_efficiency(p8), prev);
}

TEST(GpuCodegen, VendorProfileIsIdeal) {
  EXPECT_DOUBLE_EQ(gpu_inner_loop_efficiency(CodegenProfile::vendor_gpu()), 1.0);
}

TEST(GpuCodegen, BoundsChecksCost) {
  CodegenProfile checked = CodegenProfile::vendor_gpu();
  checked.bounds_checked = true;
  EXPECT_LT(gpu_inner_loop_efficiency(checked),
            gpu_inner_loop_efficiency(CodegenProfile::vendor_gpu()));
}

TEST(GpuCodegen, NumbaWorstOfTheThree) {
  const double vendor = gpu_inner_loop_efficiency(CodegenProfile::vendor_gpu());
  const double julia = gpu_inner_loop_efficiency(CodegenProfile::julia_gpu());
  const double numba = gpu_inner_loop_efficiency(CodegenProfile::numba_gpu());
  EXPECT_GT(vendor, julia);
  EXPECT_GT(julia, numba);
}

TEST(CpuCodegen, VendorProfileIsIdeal) {
  const auto epyc = CpuSpec::epyc_7a53();
  EXPECT_DOUBLE_EQ(cpu_inner_loop_efficiency(CodegenProfile::vendor_cpu(epyc), epyc), 1.0);
}

TEST(CpuCodegen, JuliaNearVendorNumbaBehind) {
  // Fig. 4/5 ordering: Julia ~ vendor, Numba well behind.
  const auto epyc = CpuSpec::epyc_7a53();
  const double julia = cpu_inner_loop_efficiency(CodegenProfile::julia_cpu(epyc), epyc);
  const double numba = cpu_inner_loop_efficiency(CodegenProfile::numba_cpu(epyc), epyc);
  EXPECT_GT(julia, 0.9);
  EXPECT_LT(numba, 0.6);
  EXPECT_GT(numba, 0.15);
}

TEST(CpuCodegen, ScalarCodeScalesWithVectorWidth) {
  // Scalar fallback costs more on wider-SIMD machines.
  const auto epyc = CpuSpec::epyc_7a53();    // 256-bit
  const auto altra = CpuSpec::ampere_altra();  // 128-bit
  CodegenProfile scalar;
  scalar.vector_bits = 0;
  EXPECT_LT(cpu_inner_loop_efficiency(scalar, epyc),
            cpu_inner_loop_efficiency(scalar, altra));
}

TEST(CpuCodegen, EfficienciesInUnitInterval) {
  const auto epyc = CpuSpec::epyc_7a53();
  for (int unroll : {1, 2, 4}) {
    for (std::size_t vec : {0u, 128u, 256u}) {
      for (bool checked : {false, true}) {
        CodegenProfile p{unroll, vec, checked, true, true};
        const double eff = cpu_inner_loop_efficiency(p, epyc);
        EXPECT_GT(eff, 0.0);
        EXPECT_LE(eff, 1.0);
      }
    }
  }
}

}  // namespace
}  // namespace portabench::perfmodel
