// Tests for the interconnect / end-to-end transfer model.
#include "perfmodel/interconnect.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace portabench::perfmodel {
namespace {

TEST(LinkSpec, TransferTimeIsLatencyPlusBandwidth) {
  LinkSpec link;
  link.bw_gbs = 10.0;
  link.latency_us = 100.0;
  // 10 GB at 10 GB/s = 1 s, plus 100 us latency.
  EXPECT_NEAR(link.transfer_seconds(10.0e9), 1.0001, 1e-9);
  // Zero bytes still pays latency.
  EXPECT_NEAR(link.transfer_seconds(0.0), 1.0e-4, 1e-12);
}

TEST(LinkSpec, FactoryParameters) {
  EXPECT_GT(LinkSpec::infinity_fabric().bw_gbs, LinkSpec::pcie4_x16().bw_gbs);
  EXPECT_TRUE(LinkSpec::pcie4_x16().duplex);
}

class EndToEndTest : public ::testing::Test {
 protected:
  GpuMachineModel model_{GpuPerfSpec::a100()};
  LinkSpec link_ = LinkSpec::pcie4_x16();
};

TEST_F(EndToEndTest, SerialIsSumOfStages) {
  const auto t = end_to_end_gemm(model_, link_, Precision::kDouble, 4096, 1);
  EXPECT_NEAR(t.serial_s, t.h2d_s + t.kernel_s + t.d2h_s, 1e-12);
}

TEST_F(EndToEndTest, OverlapNeverWorseThanSerial) {
  for (std::size_t n : {1024u, 4096u, 8192u}) {
    for (std::size_t batches : {1u, 2u, 8u, 32u}) {
      const auto t = end_to_end_gemm(model_, link_, Precision::kDouble, n, batches);
      EXPECT_LE(t.overlapped_s, t.serial_s + 1e-12) << n << "x" << batches;
      EXPECT_GE(t.overlapped_s, t.kernel_s);  // can't beat pure compute
    }
  }
}

TEST_F(EndToEndTest, LargeGemmIsKernelDominated) {
  // The paper's single-kernel protocol: at large n the kernel dwarfs the
  // transfers, so excluding them (Section IV) is benign.  O(n^3) compute
  // vs O(n^2) movement: the ratio grows linearly in n.
  const auto t8k = end_to_end_gemm(model_, link_, Precision::kDouble, 8192, 1);
  EXPECT_GT(t8k.kernel_s, 3.0 * (t8k.h2d_s + t8k.d2h_s));
  const auto t20k = end_to_end_gemm(model_, link_, Precision::kDouble, 20480, 1);
  EXPECT_GT(t20k.kernel_s, 8.0 * (t20k.h2d_s + t20k.d2h_s));
}

TEST_F(EndToEndTest, SmallGemmIsTransferDominated) {
  const auto t = end_to_end_gemm(model_, link_, Precision::kDouble, 512, 1);
  EXPECT_GT(t.h2d_s + t.d2h_s, t.kernel_s);
}

TEST_F(EndToEndTest, BatchedOverlapApproachesBottleneck) {
  // With many batches the makespan per batch approaches the slowest
  // stage.
  const std::size_t n = 2048;
  const auto t = end_to_end_gemm(model_, link_, Precision::kDouble, n, 64);
  const double per_batch = t.overlapped_s / 64.0;
  const double bottleneck = std::max({t.kernel_s, t.h2d_s, t.d2h_s});
  EXPECT_NEAR(per_batch, bottleneck, 0.1 * bottleneck);
}

TEST_F(EndToEndTest, HalfDuplexSerializesTransfers) {
  LinkSpec half = link_;
  half.duplex = false;
  const auto full = end_to_end_gemm(model_, link_, Precision::kDouble, 1024, 16);
  const auto halfd = end_to_end_gemm(model_, half, Precision::kDouble, 1024, 16);
  EXPECT_GE(halfd.overlapped_s, full.overlapped_s);
}

TEST_F(EndToEndTest, InvalidArgsRejected) {
  EXPECT_THROW(end_to_end_gemm(model_, link_, Precision::kDouble, 0, 1), precondition_error);
  EXPECT_THROW(end_to_end_gemm(model_, link_, Precision::kDouble, 128, 0), precondition_error);
}

}  // namespace
}  // namespace portabench::perfmodel
