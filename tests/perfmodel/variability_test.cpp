// Tests for the run-to-run variability model.
#include "perfmodel/variability.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/stats.hpp"

namespace portabench::perfmodel {
namespace {

TEST(Variability, DeterministicForFixedSeed) {
  const auto spec = VariabilitySpec::for_platform(Platform::kWombatGpu);
  const auto a = sample_timings(spec, 0.1, 10, 42);
  const auto b = sample_timings(spec, 0.1, 10, 42);
  EXPECT_EQ(a, b);
  const auto c = sample_timings(spec, 0.1, 10, 43);
  EXPECT_NE(a, c);
}

TEST(Variability, FirstRepCarriesColdStart) {
  const auto spec = VariabilitySpec::for_platform(Platform::kCrusherGpu);
  const auto samples = sample_timings(spec, 0.1, 8, 7);
  // cold_start_factor 2.0: first rep ~3x the modeled time, rest ~1x.
  EXPECT_GT(samples[0], 2.0 * 0.1);
  for (std::size_t i = 1; i < samples.size(); ++i) {
    EXPECT_LT(samples[i], 1.5 * 0.1) << i;
  }
}

TEST(Variability, WarmupExclusionRecoversModeledTime) {
  // The Section IV protocol end to end: discard the warm-up rep, the
  // remaining mean lands on the modeled time within a few CV.
  const auto spec = VariabilitySpec::for_platform(Platform::kWombatGpu);
  const auto samples = sample_timings(spec, 0.25, 200, 99);
  RunStats stats(/*warmup=*/1);
  for (double s : samples) stats.add(s);
  const auto summary = stats.summary();
  EXPECT_NEAR(summary.mean, 0.25, 0.25 * 3.0 * spec.cv / std::sqrt(199.0) + 0.25 * 0.001);
  // Without exclusion the cold start inflates the mean visibly.
  EXPECT_GT(mean_of(samples), summary.mean);
}

TEST(Variability, CvMatchesSpecStatistically) {
  const auto spec = VariabilitySpec::for_platform(Platform::kCrusherCpu);
  const auto samples = sample_timings(spec, 1.0, 4000, 1234);
  RunStats stats(1);
  for (double s : samples) stats.add(s);
  const auto summary = stats.summary();
  EXPECT_NEAR(summary.stddev / summary.mean, spec.cv, spec.cv * 0.15);
}

TEST(Variability, PlatformOrdering) {
  // Dedicated single-GPU runs are tighter than 4-NUMA CPU runs.
  EXPECT_LT(VariabilitySpec::for_platform(Platform::kWombatGpu).cv,
            VariabilitySpec::for_platform(Platform::kCrusherCpu).cv);
}

TEST(Variability, AllSamplesPositive) {
  for (Platform p : kAllPlatforms) {
    const auto spec = VariabilitySpec::for_platform(p);
    for (double s : sample_timings(spec, 1e-4, 100, 5)) EXPECT_GT(s, 0.0);
  }
}

TEST(Variability, InvalidArgsRejected) {
  const auto spec = VariabilitySpec::for_platform(Platform::kWombatCpu);
  EXPECT_THROW(sample_timings(spec, 0.0, 5, 1), precondition_error);
  EXPECT_THROW(sample_timings(spec, -1.0, 5, 1), precondition_error);
}

}  // namespace
}  // namespace portabench::perfmodel
