// Tests for the paper-data module and the deviation report.
#include "perfmodel/paper_data.hpp"

#include <gtest/gtest.h>

#include "common/stats.hpp"

namespace portabench::perfmodel {
namespace {

TEST(PaperData, KnownCells) {
  EXPECT_DOUBLE_EQ(
      *paper_table3_efficiency(Family::kKokkos, Precision::kDouble, Platform::kCrusherCpu),
      0.994);
  EXPECT_DOUBLE_EQ(
      *paper_table3_efficiency(Family::kJulia, Precision::kSingle, Platform::kCrusherGpu),
      1.050);
  EXPECT_DOUBLE_EQ(
      *paper_table3_efficiency(Family::kNumba, Precision::kSingle, Platform::kWombatGpu),
      0.095);
}

TEST(PaperData, NumbaAmdGpuIsMissing) {
  EXPECT_FALSE(
      paper_table3_efficiency(Family::kNumba, Precision::kDouble, Platform::kCrusherGpu));
  EXPECT_FALSE(
      paper_table3_efficiency(Family::kNumba, Precision::kSingle, Platform::kCrusherGpu));
}

TEST(PaperData, PhiRowsInternallyConsistent) {
  // Each published Phi equals the mean of its published e_i over |T| = 4
  // with the missing cell as zero — validating our reading of Eq. (1).
  for (Family f : kPortableFamilies) {
    for (Precision prec : {Precision::kDouble, Precision::kSingle}) {
      double sum = 0.0;
      for (Platform p : kAllPlatforms) {
        sum += paper_table3_efficiency(f, prec, p).value_or(0.0);
      }
      EXPECT_NEAR(sum / 4.0, paper_table3_phi(f, prec), 0.002)
          << name(f) << "/" << name(prec);
    }
  }
}

TEST(PaperData, DeviationReportCoversAllPublishedCells) {
  const auto report = table3_deviation_report();
  EXPECT_EQ(report.size(), 22u);  // 11 FP64 + 11 FP32 published cells
  // Sorted worst-first.
  for (std::size_t i = 1; i < report.size(); ++i) {
    EXPECT_GE(report[i - 1].abs_error(), report[i].abs_error());
  }
}

TEST(PaperData, WorstDeviationIsTheDocumentedKokkosDip) {
  // EXPERIMENTS.md: the only cell off by more than a few thousandths is
  // Kokkos MI250X FP64 (the largest-size dip sits inside our mean).
  const auto report = table3_deviation_report();
  ASSERT_FALSE(report.empty());
  EXPECT_EQ(report.front().family, Family::kKokkos);
  EXPECT_EQ(report.front().platform, Platform::kCrusherGpu);
  EXPECT_EQ(report.front().precision, Precision::kDouble);
  EXPECT_LT(report.front().abs_error(), 0.02);
  // Every other cell within 0.01.
  for (std::size_t i = 1; i < report.size(); ++i) {
    EXPECT_LT(report[i].abs_error(), 0.01) << i;
  }
}

}  // namespace
}  // namespace portabench::perfmodel
