// Tests for the multi-device scaling model.
#include "perfmodel/multigpu.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace portabench::perfmodel {
namespace {

class MultiGpuTest : public ::testing::Test {
 protected:
  GpuMachineModel model_{GpuPerfSpec::mi250x_gcd()};
  LinkSpec link_ = LinkSpec::infinity_fabric();
};

TEST_F(MultiGpuTest, OneDeviceIsBaseline) {
  const auto strong = strong_scaling_gemm(model_, link_, Precision::kDouble, 8192, 1);
  ASSERT_EQ(strong.size(), 1u);
  EXPECT_DOUBLE_EQ(strong[0].speedup, 1.0);
  EXPECT_DOUBLE_EQ(strong[0].efficiency, 1.0);
}

TEST_F(MultiGpuTest, StrongScalingSpeedsUpButSubLinearly) {
  // Crusher: 8 GCDs per node.
  const auto sweep = strong_scaling_gemm(model_, link_, Precision::kDouble, 16384, 8);
  ASSERT_EQ(sweep.size(), 8u);
  for (std::size_t i = 1; i < sweep.size(); ++i) {
    EXPECT_GT(sweep[i].speedup, sweep[i - 1].speedup) << i;   // still gains
    EXPECT_LT(sweep[i].efficiency, 1.0 + 1e-12) << i;          // never superlinear
  }
  // Full-B broadcast + link contention erode efficiency visibly by G=8.
  EXPECT_LT(sweep[7].efficiency, 0.95);
  EXPECT_GT(sweep[7].speedup, 3.0);  // but scaling is far from broken
}

TEST_F(MultiGpuTest, KernelTimeSplitsExactly) {
  const auto sweep = strong_scaling_gemm(model_, link_, Precision::kDouble, 8192, 4);
  EXPECT_NEAR(sweep[3].kernel_s, sweep[0].kernel_s / 4.0, 1e-12);
}

TEST_F(MultiGpuTest, WeakScalingEfficiencyDropsOnlyViaLink) {
  const auto sweep = weak_scaling_gemm(model_, link_, Precision::kDouble, 8192, 8);
  ASSERT_EQ(sweep.size(), 8u);
  // Kernel time constant; only staging contends.
  for (const auto& p : sweep) EXPECT_DOUBLE_EQ(p.kernel_s, sweep[0].kernel_s);
  EXPECT_GE(sweep[7].transfer_s, sweep[0].transfer_s);
  // Large kernels dominate: weak efficiency stays high (the 170 GB/s
  // host ceiling shared by 8 links costs ~17% at this size).
  EXPECT_GT(sweep[7].efficiency, 0.75);
  EXPECT_LT(sweep[7].efficiency, 0.95);
}

TEST_F(MultiGpuTest, HostBandwidthCapsContention) {
  // With a host ceiling equal to a single link, 4 devices stage at 1/4
  // the rate each: transfer time ~4x the single-device time.
  const auto capped =
      weak_scaling_gemm(model_, link_, Precision::kDouble, 4096, 4, link_.bw_gbs);
  EXPECT_NEAR(capped[3].transfer_s / capped[0].transfer_s, 4.0, 0.2);
  // With an unlimited host, staging stays flat.
  const auto uncapped =
      weak_scaling_gemm(model_, link_, Precision::kDouble, 4096, 4, 1.0e6);
  EXPECT_NEAR(uncapped[3].transfer_s, uncapped[0].transfer_s, 1e-9);
}

TEST_F(MultiGpuTest, A100PairMatchesWombat) {
  // Wombat: 2 A100s.
  GpuMachineModel a100(GpuPerfSpec::a100());
  const auto sweep =
      strong_scaling_gemm(a100, LinkSpec::pcie4_x16(), Precision::kDouble, 16384, 2);
  EXPECT_GT(sweep[1].speedup, 1.5);
}

TEST_F(MultiGpuTest, InvalidArgsRejected) {
  EXPECT_THROW(strong_scaling_gemm(model_, link_, Precision::kDouble, 0, 2),
               precondition_error);
  EXPECT_THROW(weak_scaling_gemm(model_, link_, Precision::kDouble, 128, 0),
               precondition_error);
}

TEST_F(MultiGpuTest, ShardedPipelineScalesMonotonically) {
  // 16384 like the strong-scaling sweep: large enough that compute
  // dominates the contended B broadcast through the full 8-GCD node.
  ShardedGemmParams params;
  params.n = 16384;
  params.panel_rows = 1024;
  const auto sweep = sharded_pipeline_gemm(model_, NodeShape::crusher(),
                                           Precision::kDouble, params, 8);
  ASSERT_EQ(sweep.size(), 8u);
  EXPECT_DOUBLE_EQ(sweep[0].speedup, 1.0);
  for (std::size_t i = 1; i < 7; ++i) {
    EXPECT_GT(sweep[i].speedup, sweep[i - 1].speedup) << i;
  }
  for (const auto& p : sweep) EXPECT_LT(p.efficiency, 1.0 + 1e-12) << p.devices;
  // The compute-dominated regime scales well...
  EXPECT_GT(sweep[7].speedup, 3.5);
  // ...but the unhidden, host-contended B broadcast grows linearly once
  // the aggregate link draw passes the host ceiling, while the kernel
  // share keeps shrinking: the model predicts saturation at the full
  // node (the broadcast overtakes the per-device kernel by G=8).
  EXPECT_LT(sweep[7].speedup, sweep[6].speedup);
  EXPECT_GT(sweep[7].broadcast_s, sweep[3].broadcast_s);
}

TEST_F(MultiGpuTest, NumaAwareStagingBeatsDomainZeroStaging) {
  ShardedGemmParams local;
  local.n = 4096;
  local.panel_rows = 256;
  ShardedGemmParams remote = local;
  remote.numa_aware_staging = false;
  const auto aware = sharded_pipeline_gemm(model_, NodeShape::crusher(),
                                           Precision::kDouble, local, 8);
  const auto naive = sharded_pipeline_gemm(model_, NodeShape::crusher(),
                                           Precision::kDouble, remote, 8);
  // One device always stages locally; with 8 devices on 4 domains, six
  // of the eight ride the remote link when everything stages from
  // domain 0 — a strictly slower node.
  EXPECT_EQ(aware[7].remote_devices, 0u);
  EXPECT_EQ(naive[7].remote_devices, 6u);
  EXPECT_DOUBLE_EQ(aware[0].total_s, naive[0].total_s);  // g=1: domain 0 IS local
  EXPECT_GT(naive[7].total_s, aware[7].total_s);
  // Wombat's single domain makes staging placement a no-op.
  const auto wa = sharded_pipeline_gemm(model_, NodeShape::wombat(),
                                        Precision::kDouble, local, 2);
  const auto wn = sharded_pipeline_gemm(model_, NodeShape::wombat(),
                                        Precision::kDouble, remote, 2);
  EXPECT_DOUBLE_EQ(wa[1].total_s, wn[1].total_s);
}

TEST_F(MultiGpuTest, OverlapNeverSlowerThanStrictOrder) {
  ShardedGemmParams over;
  over.n = 4096;
  over.panel_rows = 256;
  ShardedGemmParams strict = over;
  strict.overlap = false;
  for (std::size_t g : {1u, 2u, 4u, 8u}) {
    const auto o = sharded_pipeline_gemm(model_, NodeShape::crusher(),
                                         Precision::kDouble, over, g);
    const auto s = sharded_pipeline_gemm(model_, NodeShape::crusher(),
                                         Precision::kDouble, strict, g);
    EXPECT_LE(o.back().total_s, s.back().total_s + 1e-12) << g;
  }
  // With several panels in flight the pipeline must actually hide time.
  const auto o = sharded_pipeline_gemm(model_, NodeShape::crusher(),
                                       Precision::kDouble, over, 2);
  const auto s = sharded_pipeline_gemm(model_, NodeShape::crusher(),
                                       Precision::kDouble, strict, 2);
  EXPECT_LT(o[1].total_s, s[1].total_s);
}

TEST_F(MultiGpuTest, RanksAgreeHandlesOrderAndTies) {
  EXPECT_TRUE(ranks_agree({3.0, 2.0, 1.0}, {30.0, 20.0, 10.0}));
  EXPECT_FALSE(ranks_agree({3.0, 2.0, 1.0}, {10.0, 20.0, 30.0}));
  EXPECT_FALSE(ranks_agree({1.0, 2.0, 3.0}, {1.0, 3.0, 2.0}));
  EXPECT_TRUE(ranks_agree({1.0, 1.0, 3.0}, {2.0, 1.0, 9.0}));  // tie: any order
  EXPECT_FALSE(ranks_agree({1.0, 2.0}, {1.0}));                // length mismatch
  EXPECT_TRUE(ranks_agree({}, {}));
}

TEST_F(MultiGpuTest, ShardedPipelineRanksMatchStrongScalingShape) {
  // The two models disagree in absolute terms but must rank the bench's
  // device counts (1, 2, 4 — the BENCH_multigpu sweep) the same way on
  // a compute-dominated problem.  (At the full node they legitimately
  // diverge: only the pipeline model leaves the B broadcast unhidden.)
  ShardedGemmParams params;
  params.n = 16384;
  params.panel_rows = 1024;
  const auto pipe = sharded_pipeline_gemm(model_, NodeShape::crusher(),
                                          Precision::kDouble, params, 8);
  const auto strong = strong_scaling_gemm(model_, link_, Precision::kDouble, 16384, 8);
  std::vector<double> a;
  std::vector<double> b;
  for (std::size_t i : {0u, 1u, 3u}) {
    a.push_back(pipe[i].total_s);
    b.push_back(strong[i].total_s);
  }
  EXPECT_TRUE(ranks_agree(a, b));
}

}  // namespace
}  // namespace portabench::perfmodel
