// Tests for the multi-device scaling model.
#include "perfmodel/multigpu.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace portabench::perfmodel {
namespace {

class MultiGpuTest : public ::testing::Test {
 protected:
  GpuMachineModel model_{GpuPerfSpec::mi250x_gcd()};
  LinkSpec link_ = LinkSpec::infinity_fabric();
};

TEST_F(MultiGpuTest, OneDeviceIsBaseline) {
  const auto strong = strong_scaling_gemm(model_, link_, Precision::kDouble, 8192, 1);
  ASSERT_EQ(strong.size(), 1u);
  EXPECT_DOUBLE_EQ(strong[0].speedup, 1.0);
  EXPECT_DOUBLE_EQ(strong[0].efficiency, 1.0);
}

TEST_F(MultiGpuTest, StrongScalingSpeedsUpButSubLinearly) {
  // Crusher: 8 GCDs per node.
  const auto sweep = strong_scaling_gemm(model_, link_, Precision::kDouble, 16384, 8);
  ASSERT_EQ(sweep.size(), 8u);
  for (std::size_t i = 1; i < sweep.size(); ++i) {
    EXPECT_GT(sweep[i].speedup, sweep[i - 1].speedup) << i;   // still gains
    EXPECT_LT(sweep[i].efficiency, 1.0 + 1e-12) << i;          // never superlinear
  }
  // Full-B broadcast + link contention erode efficiency visibly by G=8.
  EXPECT_LT(sweep[7].efficiency, 0.95);
  EXPECT_GT(sweep[7].speedup, 3.0);  // but scaling is far from broken
}

TEST_F(MultiGpuTest, KernelTimeSplitsExactly) {
  const auto sweep = strong_scaling_gemm(model_, link_, Precision::kDouble, 8192, 4);
  EXPECT_NEAR(sweep[3].kernel_s, sweep[0].kernel_s / 4.0, 1e-12);
}

TEST_F(MultiGpuTest, WeakScalingEfficiencyDropsOnlyViaLink) {
  const auto sweep = weak_scaling_gemm(model_, link_, Precision::kDouble, 8192, 8);
  ASSERT_EQ(sweep.size(), 8u);
  // Kernel time constant; only staging contends.
  for (const auto& p : sweep) EXPECT_DOUBLE_EQ(p.kernel_s, sweep[0].kernel_s);
  EXPECT_GE(sweep[7].transfer_s, sweep[0].transfer_s);
  // Large kernels dominate: weak efficiency stays high (the 170 GB/s
  // host ceiling shared by 8 links costs ~17% at this size).
  EXPECT_GT(sweep[7].efficiency, 0.75);
  EXPECT_LT(sweep[7].efficiency, 0.95);
}

TEST_F(MultiGpuTest, HostBandwidthCapsContention) {
  // With a host ceiling equal to a single link, 4 devices stage at 1/4
  // the rate each: transfer time ~4x the single-device time.
  const auto capped =
      weak_scaling_gemm(model_, link_, Precision::kDouble, 4096, 4, link_.bw_gbs);
  EXPECT_NEAR(capped[3].transfer_s / capped[0].transfer_s, 4.0, 0.2);
  // With an unlimited host, staging stays flat.
  const auto uncapped =
      weak_scaling_gemm(model_, link_, Precision::kDouble, 4096, 4, 1.0e6);
  EXPECT_NEAR(uncapped[3].transfer_s, uncapped[0].transfer_s, 1e-9);
}

TEST_F(MultiGpuTest, A100PairMatchesWombat) {
  // Wombat: 2 A100s.
  GpuMachineModel a100(GpuPerfSpec::a100());
  const auto sweep =
      strong_scaling_gemm(a100, LinkSpec::pcie4_x16(), Precision::kDouble, 16384, 2);
  EXPECT_GT(sweep[1].speedup, 1.5);
}

TEST_F(MultiGpuTest, InvalidArgsRejected) {
  EXPECT_THROW(strong_scaling_gemm(model_, link_, Precision::kDouble, 0, 2),
               precondition_error);
  EXPECT_THROW(weak_scaling_gemm(model_, link_, Precision::kDouble, 128, 0),
               precondition_error);
}

}  // namespace
}  // namespace portabench::perfmodel
