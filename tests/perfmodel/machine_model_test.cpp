// Invariant tests for the analytical machine models.
#include "perfmodel/machine_model.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace portabench::perfmodel {
namespace {

using simrt::BindPolicy;

class CpuModelTest : public ::testing::Test {
 protected:
  CpuMachineModel epyc_{CpuSpec::epyc_7a53()};
  CpuMachineModel altra_{CpuSpec::ampere_altra()};
};

TEST_F(CpuModelTest, TimesArePositiveAndDecomposed) {
  for (std::size_t n : {256u, 1024u, 4096u, 16384u}) {
    const auto t = epyc_.reference_time(Precision::kDouble, n, 64, BindPolicy::kClose);
    EXPECT_GT(t.compute_s, 0.0);
    EXPECT_GT(t.memory_s, 0.0);
    EXPECT_GT(t.overhead_s, 0.0);
    EXPECT_GE(t.total_s, std::max(t.compute_s, t.memory_s));
    EXPECT_GT(t.gflops, 0.0);
  }
}

TEST_F(CpuModelTest, TimeGrowsWithProblemSize) {
  double prev = 0.0;
  for (std::size_t n = 1024; n <= 16384; n *= 2) {
    const double t = epyc_.reference_time(Precision::kDouble, n, 64, BindPolicy::kClose).total_s;
    EXPECT_GT(t, prev);
    prev = t;
  }
}

TEST_F(CpuModelTest, GflopsBelowPeak) {
  for (std::size_t n : {1024u, 8192u}) {
    for (Precision prec : {Precision::kDouble, Precision::kSingle}) {
      const auto t = epyc_.reference_time(prec, n, 64, BindPolicy::kClose);
      EXPECT_LT(t.gflops, epyc_.spec().peak_gflops(prec));
    }
  }
}

TEST_F(CpuModelTest, SinglePrecisionFasterThanDouble) {
  for (std::size_t n : {2048u, 8192u}) {
    const double d = epyc_.reference_time(Precision::kDouble, n, 64, BindPolicy::kClose).gflops;
    const double s = epyc_.reference_time(Precision::kSingle, n, 64, BindPolicy::kClose).gflops;
    EXPECT_GT(s, d);
  }
}

TEST_F(CpuModelTest, MoreThreadsFaster) {
  const double t16 = epyc_.reference_time(Precision::kDouble, 8192, 16, BindPolicy::kClose).total_s;
  const double t64 = epyc_.reference_time(Precision::kDouble, 8192, 64, BindPolicy::kClose).total_s;
  EXPECT_LT(t64, t16);
}

TEST_F(CpuModelTest, UnpinnedSlowerOnMultiNumaOnly) {
  // EPYC (4 NUMA): no binding costs bandwidth.  Altra (1 NUMA): no effect.
  const double epyc_pinned =
      epyc_.reference_time(Precision::kDouble, 16384, 64, BindPolicy::kClose).total_s;
  const double epyc_unpinned =
      epyc_.reference_time(Precision::kDouble, 16384, 64, BindPolicy::kNone).total_s;
  EXPECT_GE(epyc_unpinned, epyc_pinned);

  const double altra_pinned =
      altra_.reference_time(Precision::kDouble, 16384, 80, BindPolicy::kClose).total_s;
  const double altra_unpinned =
      altra_.reference_time(Precision::kDouble, 16384, 80, BindPolicy::kNone).total_s;
  EXPECT_DOUBLE_EQ(altra_unpinned, altra_pinned);
}

TEST_F(CpuModelTest, TrafficIncludesCompulsoryMinimum) {
  for (std::size_t n : {512u, 4096u}) {
    const double traffic = epyc_.dram_traffic_bytes(Precision::kDouble, n, 64);
    const double compulsory = static_cast<double>(n) * n * (2.0 * 8 + 2.0 * 8);
    EXPECT_GE(traffic, compulsory);
  }
}

TEST_F(CpuModelTest, CachedRegimeHasNoRestream) {
  // B (2048^2 * 8 = 32 MB) fits Epyc's 256 MB L3: traffic == compulsory.
  const double traffic = epyc_.dram_traffic_bytes(Precision::kDouble, 2048, 64);
  const double compulsory = 2048.0 * 2048.0 * 32.0;
  EXPECT_DOUBLE_EQ(traffic, compulsory);
  // On Altra's 32 MB LLC the same problem re-streams.
  EXPECT_GT(altra_.dram_traffic_bytes(Precision::kDouble, 2048, 80), compulsory);
}

TEST_F(CpuModelTest, UtilizationFullWithAmpleRows) {
  EXPECT_DOUBLE_EQ(epyc_.utilization(4096, 64), 1.0);
  EXPECT_LT(epyc_.utilization(16, 64), 1.0);  // fewer rows than threads
  EXPECT_GT(epyc_.utilization(16, 64), 0.0);
}

TEST_F(CpuModelTest, InvalidArgsRejected) {
  EXPECT_THROW(epyc_.reference_time(Precision::kDouble, 0, 64, BindPolicy::kClose),
               precondition_error);
  EXPECT_THROW(epyc_.reference_time(Precision::kDouble, 128, 0, BindPolicy::kClose),
               precondition_error);
}

class GpuModelTest : public ::testing::Test {
 protected:
  GpuMachineModel a100_{GpuPerfSpec::a100()};
  GpuMachineModel mi250x_{GpuPerfSpec::mi250x_gcd()};
};

TEST_F(GpuModelTest, TimesPositiveAndBelowPeak) {
  for (std::size_t n : {4096u, 10240u, 20480u}) {
    for (Precision prec : {Precision::kDouble, Precision::kSingle}) {
      const auto t = a100_.reference_time(prec, n);
      EXPECT_GT(t.total_s, 0.0);
      EXPECT_LT(t.gflops, a100_.spec().peak_gflops(prec));
    }
  }
}

TEST_F(GpuModelTest, CudaFp32MuchFasterThanFp64) {
  // Fig. 7b: "the performance of the vendor-provided CUDA implementation
  // increases significantly" at FP32 (2x peak ratio on the A100).
  const double d = a100_.reference_time(Precision::kDouble, 16384).gflops;
  const double s = a100_.reference_time(Precision::kSingle, 16384).gflops;
  EXPECT_GT(s / d, 1.5);
}

TEST_F(GpuModelTest, HipFp32FasterThanFp64) {
  // Fig. 6b: "all models provide an increase in performance" at FP32.
  const double d = mi250x_.reference_time(Precision::kDouble, 16384).gflops;
  const double s = mi250x_.reference_time(Precision::kSingle, 16384).gflops;
  EXPECT_GT(s, d);
}

TEST_F(GpuModelTest, SmallGridsUnderfillDevice) {
  // A 64x64 problem with 32x32 blocks is 4 blocks on a 108-SM device:
  // GFLOPS must be far below the large-problem rate.
  const double small = a100_.reference_time(Precision::kDouble, 64).gflops;
  const double large = a100_.reference_time(Precision::kDouble, 8192).gflops;
  EXPECT_LT(small * 5.0, large);
}

TEST_F(GpuModelTest, TrafficScalesWithCubeOverTile) {
  const double t32 = a100_.dram_traffic_bytes(Precision::kDouble, 8192, 32);
  const double t16 = a100_.dram_traffic_bytes(Precision::kDouble, 8192, 16);
  // Smaller tiles read B more often: strictly more traffic.
  EXPECT_GT(t16, t32);
}

TEST_F(GpuModelTest, LaunchOverheadVisibleAtTinySizes) {
  const auto t = a100_.reference_time(Precision::kDouble, 32);
  EXPECT_GT(t.overhead_s, 0.0);
  EXPECT_GT(t.overhead_s / t.total_s, 0.01);  // not negligible at n=32
}

TEST_F(GpuModelTest, InvalidArgsRejected) {
  EXPECT_THROW(a100_.reference_time(Precision::kDouble, 0), precondition_error);
  EXPECT_THROW(a100_.dram_traffic_bytes(Precision::kDouble, 128, 0), precondition_error);
}

}  // namespace
}  // namespace portabench::perfmodel
