// Tests for the device specifications of Tables I/II.
#include "perfmodel/device_specs.hpp"

#include <gtest/gtest.h>

namespace portabench::perfmodel {
namespace {

TEST(CpuSpecs, EpycTopologyMatchesTable1) {
  const CpuSpec s = CpuSpec::epyc_7a53();
  EXPECT_EQ(s.cores, 64u);
  EXPECT_EQ(s.numa_domains, 4u);
  EXPECT_EQ(s.topology().cores_per_domain(), 16u);
  EXPECT_FALSE(s.native_fp16);
}

TEST(CpuSpecs, AltraTopologyMatchesTable1) {
  const CpuSpec s = CpuSpec::ampere_altra();
  EXPECT_EQ(s.cores, 80u);
  EXPECT_EQ(s.numa_domains, 1u);
  EXPECT_TRUE(s.native_fp16);  // Armv8.2 FP16
}

TEST(CpuSpecs, FlopsPerCycleDoublesAtSingle) {
  for (const CpuSpec& s : {CpuSpec::epyc_7a53(), CpuSpec::ampere_altra()}) {
    EXPECT_DOUBLE_EQ(s.flops_per_cycle(Precision::kSingle),
                     2.0 * s.flops_per_cycle(Precision::kDouble));
  }
}

TEST(CpuSpecs, EpycPeakFp64) {
  // 64 cores * 2.0 GHz * (2 pipes * 4 lanes * 2 flops) = 2048 GFLOP/s.
  EXPECT_DOUBLE_EQ(CpuSpec::epyc_7a53().peak_gflops(Precision::kDouble), 2048.0);
}

TEST(CpuSpecs, AltraPeakFp64) {
  // 80 cores * 3.0 GHz * (2 pipes * 2 lanes * 2 flops) = 1920 GFLOP/s.
  EXPECT_DOUBLE_EQ(CpuSpec::ampere_altra().peak_gflops(Precision::kDouble), 1920.0);
}

TEST(CpuSpecs, Fp16OnlyPaysOffWithNativeSupport) {
  const CpuSpec arm = CpuSpec::ampere_altra();
  const CpuSpec x86 = CpuSpec::epyc_7a53();
  EXPECT_GT(arm.peak_gflops(Precision::kHalfIn), arm.peak_gflops(Precision::kSingle));
  EXPECT_LE(x86.peak_gflops(Precision::kHalfIn), x86.peak_gflops(Precision::kSingle));
}

TEST(GpuSpecs, A100Peaks) {
  const GpuPerfSpec s = GpuPerfSpec::a100();
  EXPECT_DOUBLE_EQ(s.peak_gflops(Precision::kDouble), 9700.0);
  EXPECT_DOUBLE_EQ(s.peak_gflops(Precision::kSingle), 19500.0);
  EXPECT_GT(s.peak_gflops(Precision::kHalfIn), s.peak_gflops(Precision::kSingle));
  EXPECT_EQ(s.warp_size, 32u);
}

TEST(GpuSpecs, Mi250xGcdPeaks) {
  const GpuPerfSpec s = GpuPerfSpec::mi250x_gcd();
  EXPECT_DOUBLE_EQ(s.peak_gflops(Precision::kDouble), 23950.0);
  EXPECT_GT(s.peak_gflops(Precision::kSingle), s.peak_gflops(Precision::kDouble));
  EXPECT_EQ(s.warp_size, 64u);
  EXPECT_GT(s.mem_bw_gbs, GpuPerfSpec::a100().mem_bw_gbs);  // HBM2e per GCD
}

TEST(SpecTables, Table1HasSoftwareStackRows) {
  const auto rows = table1_rows();
  ASSERT_GE(rows.size(), 10u);
  bool found_julia = false;
  bool found_kokkos_arch = false;
  for (const auto& r : rows) {
    if (r.item == "Julia") {
      found_julia = true;
      EXPECT_EQ(r.wombat, "v1.7.2");
      EXPECT_EQ(r.crusher, "v1.8.0-rc1");
    }
    if (r.item == "KOKKOS_ARCH") {
      found_kokkos_arch = true;
      EXPECT_EQ(r.wombat, "Armv8-TX2");
      EXPECT_EQ(r.crusher, "Zen 3");
    }
  }
  EXPECT_TRUE(found_julia);
  EXPECT_TRUE(found_kokkos_arch);
}

TEST(SpecTables, Table2MarksNumbaUnsupportedOnAmd) {
  const auto rows = table2_rows();
  bool found = false;
  for (const auto& r : rows) {
    if (r.item == "Numba") {
      found = true;
      EXPECT_EQ(r.crusher, "Not supported");
    }
  }
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace portabench::perfmodel
