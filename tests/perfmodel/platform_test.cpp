// Tests for the platform/family taxonomy and the paper's support matrix.
#include "perfmodel/platform.hpp"

#include <gtest/gtest.h>

namespace portabench::perfmodel {
namespace {

TEST(Platform, GpuClassification) {
  EXPECT_FALSE(is_gpu(Platform::kCrusherCpu));
  EXPECT_FALSE(is_gpu(Platform::kWombatCpu));
  EXPECT_TRUE(is_gpu(Platform::kCrusherGpu));
  EXPECT_TRUE(is_gpu(Platform::kWombatGpu));
}

TEST(Platform, ArchLabelsMatchTable3) {
  EXPECT_EQ(arch_label(Platform::kCrusherCpu), "Epyc 7A53");
  EXPECT_EQ(arch_label(Platform::kWombatCpu), "Ampere Altra");
  EXPECT_EQ(arch_label(Platform::kCrusherGpu), "MI250x");
  EXPECT_EQ(arch_label(Platform::kWombatGpu), "A100");
}

TEST(ImplementationName, VendorPerPlatform) {
  EXPECT_EQ(implementation_name(Platform::kCrusherCpu, Family::kVendor), "C/OpenMP");
  EXPECT_EQ(implementation_name(Platform::kWombatGpu, Family::kVendor), "CUDA");
  EXPECT_EQ(implementation_name(Platform::kCrusherGpu, Family::kVendor), "HIP");
}

TEST(ImplementationName, JuliaBackends) {
  EXPECT_EQ(implementation_name(Platform::kWombatGpu, Family::kJulia), "Julia CUDA.jl");
  EXPECT_EQ(implementation_name(Platform::kCrusherGpu, Family::kJulia), "Julia AMDGPU.jl");
  EXPECT_EQ(implementation_name(Platform::kCrusherCpu, Family::kJulia), "Julia Threads");
}

TEST(Support, NumbaDeprecatedOnAmdGpus) {
  // Section II-a footnote 3: Numba deprecated AMD GPU support.
  for (Precision prec : kAllPrecisions) {
    EXPECT_FALSE(supported(Platform::kCrusherGpu, Family::kNumba, prec));
  }
}

TEST(Support, DoubleAndSingleEverywhereElse) {
  for (Platform p : kAllPlatforms) {
    for (Family f : kAllFamilies) {
      if (p == Platform::kCrusherGpu && f == Family::kNumba) continue;
      EXPECT_TRUE(supported(p, f, Precision::kDouble)) << name(p) << "/" << name(f);
      EXPECT_TRUE(supported(p, f, Precision::kSingle)) << name(p) << "/" << name(f);
    }
  }
}

TEST(Support, Fp16JuliaEverywhere) {
  for (Platform p : kAllPlatforms) {
    EXPECT_TRUE(supported(p, Family::kJulia, Precision::kHalfIn)) << name(p);
  }
}

TEST(Support, Fp16NotInVendorOrKokkos) {
  for (Platform p : kAllPlatforms) {
    EXPECT_FALSE(supported(p, Family::kVendor, Precision::kHalfIn)) << name(p);
    EXPECT_FALSE(supported(p, Family::kKokkos, Precision::kHalfIn)) << name(p);
  }
}

TEST(Support, Fp16NumbaOnNvidiaAndCpusOnly) {
  EXPECT_TRUE(supported(Platform::kWombatGpu, Family::kNumba, Precision::kHalfIn));
  EXPECT_TRUE(supported(Platform::kCrusherCpu, Family::kNumba, Precision::kHalfIn));
  EXPECT_TRUE(supported(Platform::kWombatCpu, Family::kNumba, Precision::kHalfIn));
  EXPECT_FALSE(supported(Platform::kCrusherGpu, Family::kNumba, Precision::kHalfIn));
}

TEST(FigureFamilies, Fig6PlotsHipKokkosJulia) {
  // Crusher GPU, double precision: HIP, Kokkos, Julia — no Numba.
  const auto fams = figure_families(Platform::kCrusherGpu, Precision::kDouble);
  EXPECT_EQ(fams.size(), 3u);
  EXPECT_EQ(fams[0], Family::kVendor);
  EXPECT_EQ(fams[1], Family::kKokkos);
  EXPECT_EQ(fams[2], Family::kJulia);
}

TEST(FigureFamilies, Fig7PlotsAllFour) {
  const auto fams = figure_families(Platform::kWombatGpu, Precision::kDouble);
  EXPECT_EQ(fams.size(), 4u);
}

TEST(FigureFamilies, Fp16GpuPanelsAreJuliaLedOnly) {
  const auto crusher = figure_families(Platform::kCrusherGpu, Precision::kHalfIn);
  EXPECT_EQ(crusher.size(), 1u);
  EXPECT_EQ(crusher[0], Family::kJulia);
  const auto wombat = figure_families(Platform::kWombatGpu, Precision::kHalfIn);
  EXPECT_EQ(wombat.size(), 2u);  // Julia + Numba (Fig. 7c)
}

}  // namespace
}  // namespace portabench::perfmodel
