// Tests for the prediction API: Table III reproduction and the
// qualitative curve shapes reported in Section IV.
#include "perfmodel/predict.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "common/stats.hpp"

namespace portabench::perfmodel {
namespace {

/// Mean Eq.-2 efficiency of a family on a platform over the standard sweep.
double mean_efficiency(Platform p, Family f, Precision prec) {
  const auto sweep = predict_sweep(p, f, prec);
  if (sweep.empty()) return -1.0;
  std::vector<double> eff;
  for (const auto& pt : sweep) eff.push_back(pt.efficiency);
  return mean_of(eff);
}

struct Table3Case {
  Platform platform;
  Family family;
  Precision precision;
  double paper_value;
};

class Table3Reproduction : public ::testing::TestWithParam<Table3Case> {};

TEST_P(Table3Reproduction, EfficiencyWithinFivePercentOfPaper) {
  const auto& c = GetParam();
  const double measured = mean_efficiency(c.platform, c.family, c.precision);
  EXPECT_NEAR(measured, c.paper_value, 0.05)
      << name(c.platform) << " / " << name(c.family) << " / " << name(c.precision);
}

INSTANTIATE_TEST_SUITE_P(
    PaperTable3, Table3Reproduction,
    ::testing::Values(
        // Double precision rows of Table III.
        Table3Case{Platform::kCrusherCpu, Family::kKokkos, Precision::kDouble, 0.994},
        Table3Case{Platform::kCrusherCpu, Family::kJulia, Precision::kDouble, 0.912},
        Table3Case{Platform::kCrusherCpu, Family::kNumba, Precision::kDouble, 0.550},
        Table3Case{Platform::kWombatCpu, Family::kKokkos, Precision::kDouble, 0.854},
        Table3Case{Platform::kWombatCpu, Family::kJulia, Precision::kDouble, 0.907},
        Table3Case{Platform::kWombatCpu, Family::kNumba, Precision::kDouble, 0.713},
        Table3Case{Platform::kCrusherGpu, Family::kKokkos, Precision::kDouble, 0.842},
        Table3Case{Platform::kCrusherGpu, Family::kJulia, Precision::kDouble, 0.903},
        Table3Case{Platform::kWombatGpu, Family::kKokkos, Precision::kDouble, 0.260},
        Table3Case{Platform::kWombatGpu, Family::kJulia, Precision::kDouble, 0.867},
        Table3Case{Platform::kWombatGpu, Family::kNumba, Precision::kDouble, 0.130},
        // Single precision rows.
        Table3Case{Platform::kCrusherCpu, Family::kKokkos, Precision::kSingle, 1.014},
        Table3Case{Platform::kCrusherCpu, Family::kJulia, Precision::kSingle, 0.976},
        Table3Case{Platform::kCrusherCpu, Family::kNumba, Precision::kSingle, 0.655},
        Table3Case{Platform::kWombatCpu, Family::kKokkos, Precision::kSingle, 0.836},
        Table3Case{Platform::kWombatCpu, Family::kJulia, Precision::kSingle, 0.900},
        Table3Case{Platform::kWombatCpu, Family::kNumba, Precision::kSingle, 0.400},
        Table3Case{Platform::kCrusherGpu, Family::kKokkos, Precision::kSingle, 0.677},
        Table3Case{Platform::kCrusherGpu, Family::kJulia, Precision::kSingle, 1.050},
        Table3Case{Platform::kWombatGpu, Family::kKokkos, Precision::kSingle, 0.208},
        Table3Case{Platform::kWombatGpu, Family::kJulia, Precision::kSingle, 0.600},
        Table3Case{Platform::kWombatGpu, Family::kNumba, Precision::kSingle, 0.095}));

TEST(StandardSizes, MatchAppendixSweeps) {
  const auto gpu = standard_sizes(Platform::kWombatGpu);
  EXPECT_EQ(gpu.front(), 4096u);  // Appendix A: Ms = (4096 5120 ... 20480)
  EXPECT_EQ(gpu.back(), 20480u);
  EXPECT_EQ(gpu.size(), 17u);
  const auto cpu = standard_sizes(Platform::kCrusherCpu);
  EXPECT_EQ(cpu.front(), 1024u);
  EXPECT_EQ(cpu.back(), 16384u);
}

TEST(Predict, UnsupportedCombinationsReturnNullopt) {
  EXPECT_FALSE(predict(Platform::kCrusherGpu, Family::kNumba, Precision::kDouble, 4096));
  EXPECT_FALSE(predict(Platform::kWombatGpu, Family::kVendor, Precision::kHalfIn, 4096));
  EXPECT_TRUE(predict_sweep(Platform::kCrusherGpu, Family::kNumba, Precision::kDouble).empty());
}

TEST(Predict, VendorEfficiencyIsUnity) {
  for (Platform p : kAllPlatforms) {
    for (Precision prec : {Precision::kDouble, Precision::kSingle}) {
      const auto pt = predict(p, Family::kVendor, prec, 8192);
      ASSERT_TRUE(pt);
      EXPECT_DOUBLE_EQ(pt->efficiency, 1.0);
      EXPECT_DOUBLE_EQ(pt->gflops, pt->ref_gflops);
    }
  }
}

// --- Section IV qualitative shapes ----------------------------------------

TEST(Shapes, Fig6aKokkosDipsAtLargestSize) {
  // "Kokkos has a repeatable slowdown at the largest size."
  const auto sweep = predict_sweep(Platform::kCrusherGpu, Family::kKokkos, Precision::kDouble);
  ASSERT_GE(sweep.size(), 3u);
  const double last = sweep.back().efficiency;
  const double second_last = sweep[sweep.size() - 2].efficiency;
  EXPECT_LT(last, 0.8 * second_last);
}

TEST(Shapes, Fig6bKokkosFp32ConsistentlyDecreases) {
  // "Kokkos + HIP exhibits a consistent decrease" with size at FP32.
  const auto sweep = predict_sweep(Platform::kCrusherGpu, Family::kKokkos, Precision::kSingle);
  ASSERT_GE(sweep.size(), 3u);
  for (std::size_t i = 1; i < sweep.size(); ++i) {
    EXPECT_LT(sweep[i].efficiency, sweep[i - 1].efficiency) << "i=" << i;
  }
}

TEST(Shapes, Fig6bJuliaBeatsHipAtFp32) {
  // "Julia with AMDGPU.jl shows slightly better performance than the
  // vendor HIP implementation" — efficiency above 1 early in the sweep,
  // with the advantage shrinking at larger sizes.
  const auto sweep = predict_sweep(Platform::kCrusherGpu, Family::kJulia, Precision::kSingle);
  ASSERT_FALSE(sweep.empty());
  EXPECT_GT(sweep.front().efficiency, 1.0);
  EXPECT_LT(sweep.back().efficiency - 1.0, sweep.front().efficiency - 1.0);
}

TEST(Shapes, Fig7KokkosAndNumbaUnderperformJulia) {
  // Fig. 7: "Kokkos and Python/Numba using a CUDA back end consistently
  // underperform", while Julia sits close to CUDA.
  for (Precision prec : {Precision::kDouble, Precision::kSingle}) {
    for (const auto& pt : predict_sweep(Platform::kWombatGpu, Family::kKokkos, prec)) {
      EXPECT_LT(pt.efficiency, 0.35);
    }
    for (const auto& pt : predict_sweep(Platform::kWombatGpu, Family::kNumba, prec)) {
      EXPECT_LT(pt.efficiency, 0.2);
    }
    for (const auto& pt : predict_sweep(Platform::kWombatGpu, Family::kJulia, prec)) {
      EXPECT_GT(pt.efficiency, 0.5);
    }
  }
}

TEST(Shapes, CpuPlatformsJuliaAndKokkosComparableToOpenMP) {
  // Fig. 4/5: Kokkos and Julia perform comparably with C/OpenMP on CPUs.
  for (Platform p : {Platform::kCrusherCpu, Platform::kWombatCpu}) {
    for (Family f : {Family::kKokkos, Family::kJulia}) {
      const double eff = mean_efficiency(p, f, Precision::kDouble);
      EXPECT_GT(eff, 0.8) << name(p) << "/" << name(f);
    }
    // Numba "is still behind in terms of performance".
    EXPECT_LT(mean_efficiency(p, Family::kNumba, Precision::kDouble), 0.8) << name(p);
  }
}

TEST(Shapes, Fp16NoGainOverFp32OnGpus) {
  // Figs. 6c / 7c: no noticeable FP16 improvement over FP32.
  for (Platform p : {Platform::kCrusherGpu, Platform::kWombatGpu}) {
    const auto h = predict(p, Family::kJulia, Precision::kHalfIn, 8192);
    const auto s = predict(p, Family::kJulia, Precision::kSingle, 8192);
    ASSERT_TRUE(h && s);
    EXPECT_NEAR(h->gflops / s->gflops, 1.0, 0.05) << name(p);
  }
}

TEST(Shapes, Fp16WinsOnArmLosesBigOnAmdCpu) {
  // Fig. 5c: Arm FP16 "provided the expected levels of performance";
  // Crusher CPU FP16 was "very low performance (not reported)".
  const auto arm16 = predict(Platform::kWombatCpu, Family::kJulia, Precision::kHalfIn, 8192);
  const auto arm32 = predict(Platform::kWombatCpu, Family::kJulia, Precision::kSingle, 8192);
  ASSERT_TRUE(arm16 && arm32);
  EXPECT_GT(arm16->gflops, arm32->gflops);

  const auto amd16 = predict(Platform::kCrusherCpu, Family::kJulia, Precision::kHalfIn, 8192);
  const auto amd32 = predict(Platform::kCrusherCpu, Family::kJulia, Precision::kSingle, 8192);
  ASSERT_TRUE(amd16 && amd32);
  EXPECT_LT(amd16->gflops, 0.2 * amd32->gflops);
}

TEST(Predict, EfficienciesBoundedSanity) {
  // FP64/FP32 portable-model efficiencies stay within (0, 1.3]; FP16
  // efficiencies are quoted against the vendor *FP32* reference (no FP16
  // vendor kernel exists), so Arm's native-FP16 speedup can push them to
  // ~1.4.
  for (Platform p : kAllPlatforms) {
    for (Family f : kPortableFamilies) {
      for (Precision prec : kAllPrecisions) {
        const double bound = prec == Precision::kHalfIn ? 1.6 : 1.3;
        for (const auto& pt : predict_sweep(p, f, prec)) {
          EXPECT_GT(pt.efficiency, 0.0);
          EXPECT_LE(pt.efficiency, bound);
        }
      }
    }
  }
}

TEST(Predict, SinglePrecisionNeverSlowerThanDouble) {
  // Every model on every platform gains (or at worst ties) moving from
  // FP64 to FP32 — true in all four of the paper's figures.
  for (Platform p : kAllPlatforms) {
    for (Family f : kAllFamilies) {
      const auto d = predict(p, f, Precision::kDouble, 8192);
      const auto s = predict(p, f, Precision::kSingle, 8192);
      if (!d || !s) continue;
      EXPECT_GE(s->gflops, d->gflops * 0.99) << name(p) << "/" << name(f);
    }
  }
}

TEST(Predict, ReferenceRateNonDecreasingAcrossSweep) {
  // Vendor curves rise to their plateau; no mid-sweep regressions.
  for (Platform p : kAllPlatforms) {
    const auto sweep = predict_sweep(p, Family::kVendor, Precision::kDouble);
    for (std::size_t i = 1; i < sweep.size(); ++i) {
      EXPECT_GE(sweep[i].ref_gflops, sweep[i - 1].ref_gflops * 0.999)
          << name(p) << " i=" << i;
    }
  }
}

TEST(Predict, GpusOutrunCpusAtScale) {
  // Cross-figure sanity: the accelerators dominate the CPUs at large n.
  const double epyc =
      predict(Platform::kCrusherCpu, Family::kVendor, Precision::kDouble, 16384)->gflops;
  const double mi250x =
      predict(Platform::kCrusherGpu, Family::kVendor, Precision::kDouble, 16384)->gflops;
  EXPECT_GT(mi250x, 3.0 * epyc);
}

TEST(Predict, ZeroSizeRejected) {
  EXPECT_THROW(predict(Platform::kWombatGpu, Family::kJulia, Precision::kDouble, 0),
               precondition_error);
}

}  // namespace
}  // namespace portabench::perfmodel
