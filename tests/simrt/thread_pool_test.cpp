// Tests for the fork-join thread pool.
#include "simrt/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <set>
#include <stdexcept>
#include <vector>

#include "common/error.hpp"

namespace portabench::simrt {
namespace {

TEST(ThreadPool, SingleThreadRunsInline) {
  ThreadPool pool(1);
  std::size_t calls = 0;
  pool.run([&](std::size_t tid) {
    EXPECT_EQ(tid, 0u);
    // portalint: ls-capture-write-ok(pool of size 1: only one lane exists)
    ++calls;
  });
  EXPECT_EQ(calls, 1u);
}

TEST(ThreadPool, EveryThreadIdRunsExactlyOnce) {
  for (std::size_t nt : {2u, 4u, 8u}) {
    ThreadPool pool(nt);
    std::vector<std::atomic<int>> counts(nt);
    pool.run([&](std::size_t tid) { counts[tid].fetch_add(1); });
    for (std::size_t t = 0; t < nt; ++t) EXPECT_EQ(counts[t].load(), 1) << "nt=" << nt;
  }
}

TEST(ThreadPool, ReusableAcrossRegions) {
  ThreadPool pool(4);
  std::atomic<int> total{0};
  for (int region = 0; region < 50; ++region) {
    pool.run([&](std::size_t) { total.fetch_add(1); });
  }
  EXPECT_EQ(total.load(), 200);
}

TEST(ThreadPool, ParallelSumMatchesSerial) {
  constexpr std::size_t kN = 100000;
  ThreadPool pool(4);
  std::vector<double> partial(4, 0.0);
  pool.run([&](std::size_t tid) {
    for (std::size_t i = tid; i < kN; i += 4) partial[tid] += static_cast<double>(i);
  });
  const double sum = std::accumulate(partial.begin(), partial.end(), 0.0);
  EXPECT_DOUBLE_EQ(sum, static_cast<double>(kN) * (kN - 1) / 2.0);
}

TEST(ThreadPool, ExceptionFromWorkerPropagates) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.run([](std::size_t tid) {
    if (tid == 3) throw std::runtime_error("worker failed");
  }),
               std::runtime_error);
  // Pool remains usable after the failure.
  std::atomic<int> ok{0};
  pool.run([&](std::size_t) { ok.fetch_add(1); });
  EXPECT_EQ(ok.load(), 4);
}

TEST(ThreadPool, ExceptionFromCallerThreadPropagates) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.run([](std::size_t tid) {
    if (tid == 0) throw std::logic_error("master failed");
  }),
               std::logic_error);
}

TEST(ThreadPool, ZeroThreadsRejected) {
  EXPECT_THROW(ThreadPool(0), precondition_error);
}

TEST(ThreadPool, PlacementRecorded) {
  Placement p = compute_placement(CpuTopology{8, 1}, 4, BindPolicy::kClose);
  ThreadPool pool(4, p);
  EXPECT_TRUE(pool.placement().pinned());
  EXPECT_EQ(pool.placement().core_of_thread.size(), 4u);
}

TEST(ThreadPool, UndersizedPlacementRejected) {
  Placement p = compute_placement(CpuTopology{8, 1}, 2, BindPolicy::kClose);
  EXPECT_THROW(ThreadPool(4, p), precondition_error);
}

TEST(ThreadPool, ManyThreadsOnFewCores) {
  // Oversubscription (the simulation-host case) must still be correct.
  ThreadPool pool(16);
  std::atomic<int> count{0};
  pool.run([&](std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 16);
}

TEST(ThreadPool, StressManyRegionsWithIntermittentFailures) {
  // Alternating failing and succeeding regions must neither deadlock nor
  // leak state between regions.
  ThreadPool pool(4);
  int failures = 0;
  std::atomic<int> work{0};
  for (int region = 0; region < 100; ++region) {
    if (region % 7 == 3) {
      try {
        pool.run([&](std::size_t tid) {
          work.fetch_add(1);
          if (tid == 2) throw std::runtime_error("intermittent");
        });
      } catch (const std::runtime_error&) {
        ++failures;
      }
    } else {
      pool.run([&](std::size_t) { work.fetch_add(1); });
    }
  }
  EXPECT_EQ(failures, 14);      // regions 3, 10, ..., 94
  EXPECT_EQ(work.load(), 400);  // every region ran all 4 threads
}

TEST(ThreadPool, DistinctThreadsObserved) {
  ThreadPool pool(4);
  std::mutex m;
  std::set<std::thread::id> ids;
  pool.run([&](std::size_t) {
    std::lock_guard lock(m);
    ids.insert(std::this_thread::get_id());
  });
  EXPECT_EQ(ids.size(), 4u);
}

}  // namespace
}  // namespace portabench::simrt
