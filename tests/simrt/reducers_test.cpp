// Tests for typed reducers.
#include "simrt/reducers.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace portabench::simrt {
namespace {

class ReducerSpaces : public ::testing::TestWithParam<std::size_t> {
 protected:
  ThreadsSpace space_{GetParam()};
};

TEST_P(ReducerSpaces, SumMatchesClosedForm) {
  const long result = parallel_reduce(space_, RangePolicy(0, 1001), Sum<long>{},
                                      [](std::size_t i, long& acc) { acc += static_cast<long>(i); });
  EXPECT_EQ(result, 500500L);
}

TEST_P(ReducerSpaces, MinFindsGlobalMinimum) {
  std::vector<double> data(997);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<double>((i * 7919) % 1000);
  }
  data[513] = -42.0;
  const double result = parallel_reduce(
      space_, RangePolicy(0, data.size()), Min<double>{},
      [&](std::size_t i, double& acc) { acc = Min<double>::join(acc, data[i]); });
  EXPECT_EQ(result, -42.0);
}

TEST_P(ReducerSpaces, MaxFindsGlobalMaximum) {
  std::vector<int> data(500);
  for (std::size_t i = 0; i < data.size(); ++i) data[i] = static_cast<int>(i % 100);
  data[77] = 100000;
  const int result =
      parallel_reduce(space_, RangePolicy(0, data.size()), Max<int>{},
                      [&](std::size_t i, int& acc) { acc = Max<int>::join(acc, data[i]); });
  EXPECT_EQ(result, 100000);
}

TEST_P(ReducerSpaces, ProdOverSmallRange) {
  const long result = parallel_reduce(space_, RangePolicy(1, 11), Prod<long>{},
                                      [](std::size_t i, long& acc) { acc *= static_cast<long>(i); });
  EXPECT_EQ(result, 3628800L);  // 10!
}

TEST_P(ReducerSpaces, MinLocTracksIndex) {
  std::vector<double> data(300, 5.0);
  data[123] = -1.0;
  const auto result = parallel_reduce(
      space_, RangePolicy(0, data.size()), MinLoc<double>{},
      [&](std::size_t i, MinLoc<double>::value_type& acc) {
        acc = MinLoc<double>::join(acc, {data[i], i});
      });
  EXPECT_EQ(result.value, -1.0);
  EXPECT_EQ(result.index, 123u);
}

TEST_P(ReducerSpaces, EmptyRangeYieldsIdentity) {
  const long sum = parallel_reduce(space_, RangePolicy(5, 5), Sum<long>{},
                                   [](std::size_t, long& acc) { acc += 1; });
  EXPECT_EQ(sum, 0L);
  const double min = parallel_reduce(space_, RangePolicy(5, 5), Min<double>{},
                                     [](std::size_t, double&) {});
  EXPECT_EQ(min, std::numeric_limits<double>::max());
}

INSTANTIATE_TEST_SUITE_P(ThreadCounts, ReducerSpaces, ::testing::Values(1, 2, 4, 7));

TEST(Reducers, SerialMatchesThreaded) {
  SerialSpace serial;
  ThreadsSpace threads(4);
  auto body = [](std::size_t i, long& acc) { acc += static_cast<long>(i * i); };
  const long a = parallel_reduce(serial, RangePolicy(0, 4000), Sum<long>{}, body);
  const long b = parallel_reduce(threads, RangePolicy(0, 4000), Sum<long>{}, body);
  EXPECT_EQ(a, b);
}

TEST(Reducers, Identities) {
  EXPECT_EQ(Sum<int>::identity(), 0);
  EXPECT_EQ(Prod<int>::identity(), 1);
  EXPECT_EQ(Min<int>::identity(), std::numeric_limits<int>::max());
  EXPECT_EQ(Max<int>::identity(), std::numeric_limits<int>::lowest());
}

TEST(Reducers, JoinIsAssociativeOnSamples) {
  // Property: join(a, join(b, c)) == join(join(a, b), c) for Min/Max.
  const int samples[] = {3, -7, 0, 42, -1};
  for (int a : samples) {
    for (int b : samples) {
      for (int c : samples) {
        EXPECT_EQ(Min<int>::join(a, Min<int>::join(b, c)),
                  Min<int>::join(Min<int>::join(a, b), c));
        EXPECT_EQ(Max<int>::join(a, Max<int>::join(b, c)),
                  Max<int>::join(Max<int>::join(a, b), c));
      }
    }
  }
}

}  // namespace
}  // namespace portabench::simrt
