// Tests for parallel_for / parallel_reduce over the host execution spaces.
#include "simrt/parallel.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "common/error.hpp"

namespace portabench::simrt {
namespace {

class ParallelRangeTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ParallelRangeTest, StaticCoversEveryIndexOnce) {
  const std::size_t extent = GetParam();
  ThreadsSpace space(4);
  std::vector<std::atomic<int>> hits(extent);
  parallel_for(space, RangePolicy(0, extent), [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < extent; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST_P(ParallelRangeTest, DynamicCoversEveryIndexOnce) {
  const std::size_t extent = GetParam();
  ThreadsSpace space(4);
  std::vector<std::atomic<int>> hits(extent);
  parallel_for(space, RangePolicy(0, extent, Schedule::kDynamic, 3),
               [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < extent; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

INSTANTIATE_TEST_SUITE_P(Extents, ParallelRangeTest,
                         ::testing::Values(0, 1, 3, 4, 5, 63, 64, 65, 1000));

TEST(ParallelFor, SerialMatchesThreads) {
  SerialSpace serial;
  ThreadsSpace threads(3);
  std::vector<int> a(100, 0);
  std::vector<int> b(100, 0);
  parallel_for(serial, RangePolicy(10, 90), [&](std::size_t i) { a[i] = static_cast<int>(i); });
  parallel_for(threads, RangePolicy(10, 90), [&](std::size_t i) { b[i] = static_cast<int>(i); });
  EXPECT_EQ(a, b);
}

TEST(ParallelFor, OffsetRangeRespected) {
  ThreadsSpace space(4);
  std::atomic<std::size_t> min_seen{~0ull};
  std::atomic<std::size_t> max_seen{0};
  parallel_for(space, RangePolicy(100, 200), [&](std::size_t i) {
    std::size_t cur = min_seen.load();
    while (i < cur && !min_seen.compare_exchange_weak(cur, i)) {
    }
    cur = max_seen.load();
    while (i > cur && !max_seen.compare_exchange_weak(cur, i)) {
    }
  });
  EXPECT_EQ(min_seen.load(), 100u);
  EXPECT_EQ(max_seen.load(), 199u);
}

TEST(RangePolicy, RejectsInvertedRange) {
  EXPECT_THROW(RangePolicy(5, 2), precondition_error);
}

TEST(StaticBlock, PartitionIsExactAndOrdered) {
  // Property: blocks tile [0, extent) without gaps or overlap, sizes
  // differ by at most 1 (OpenMP static semantics).
  for (std::size_t extent : {0u, 1u, 7u, 64u, 100u, 1001u}) {
    for (std::size_t nt : {1u, 3u, 4u, 64u}) {
      std::size_t expected_begin = 0;
      std::size_t min_len = ~0ull;
      std::size_t max_len = 0;
      for (std::size_t t = 0; t < nt; ++t) {
        const auto b = detail::static_block(extent, nt, t);
        EXPECT_EQ(b.begin, expected_begin);
        expected_begin = b.end;
        min_len = std::min(min_len, b.end - b.begin);
        max_len = std::max(max_len, b.end - b.begin);
      }
      EXPECT_EQ(expected_begin, extent);
      EXPECT_LE(max_len - min_len, 1u);
    }
  }
}

class MDRangeTest
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t, std::size_t>> {};

TEST_P(MDRangeTest, CoversRectangleOnce) {
  const auto [e0, e1, tile] = GetParam();
  ThreadsSpace space(4);
  std::vector<std::atomic<int>> hits(e0 * e1);
  MDRangePolicy2 policy({0, 0}, {e0, e1}, {tile, tile});
  parallel_for(space, policy,
               [&](std::size_t i, std::size_t j) { hits[i * e1 + j].fetch_add(1); });
  for (std::size_t idx = 0; idx < hits.size(); ++idx) EXPECT_EQ(hits[idx].load(), 1) << idx;
}

INSTANTIATE_TEST_SUITE_P(Shapes, MDRangeTest,
                         ::testing::Values(std::tuple{1u, 1u, 4u}, std::tuple{7u, 5u, 4u},
                                           std::tuple{16u, 16u, 4u}, std::tuple{33u, 17u, 8u},
                                           std::tuple{64u, 3u, 16u}, std::tuple{5u, 64u, 0u}));

TEST(MDRange, SerialMatchesThreadsOrderIndependent) {
  SerialSpace serial;
  ThreadsSpace threads(3);
  std::vector<int> a(20 * 30, 0);
  std::vector<int> b(20 * 30, 0);
  MDRangePolicy2 policy({0, 0}, {20, 30});
  parallel_for(serial, policy,
               [&](std::size_t i, std::size_t j) { a[i * 30 + j] = static_cast<int>(i + j); });
  parallel_for(threads, policy,
               [&](std::size_t i, std::size_t j) { b[i * 30 + j] = static_cast<int>(i + j); });
  EXPECT_EQ(a, b);
}

TEST(MDRange, LowerBoundsRespected) {
  SerialSpace space;
  std::size_t count = 0;
  parallel_for(space, MDRangePolicy2({2, 3}, {5, 7}), [&](std::size_t i, std::size_t j) {
    EXPECT_GE(i, 2u);
    EXPECT_LT(i, 5u);
    EXPECT_GE(j, 3u);
    EXPECT_LT(j, 7u);
    // portalint: ls-capture-write-ok(SerialSpace runs every iteration on the calling thread)
    ++count;
  });
  EXPECT_EQ(count, 12u);
}

TEST(TeamPolicy, AllTeamsAndLanesRun) {
  ThreadsSpace space(4);
  constexpr std::size_t kLeague = 10;
  constexpr std::size_t kTeam = 8;
  std::vector<std::atomic<int>> hits(kLeague * kTeam);
  parallel_for(space, TeamPolicy(kLeague, kTeam), [&](const TeamMember& m) {
    EXPECT_EQ(m.team_size(), kTeam);
    hits[m.league_rank() * kTeam + m.team_rank()].fetch_add(1);
  });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(TeamPolicy, LanesOfATeamRunOnOneThread) {
  // Host lowering contract: a team's lanes execute sequentially on a
  // single pool thread.
  ThreadsSpace space(4);
  constexpr std::size_t kLeague = 6;
  constexpr std::size_t kTeam = 5;
  std::vector<std::thread::id> lane_thread(kLeague * kTeam);
  parallel_for(space, TeamPolicy(kLeague, kTeam), [&](const TeamMember& m) {
    lane_thread[m.league_rank() * kTeam + m.team_rank()] = std::this_thread::get_id();
  });
  for (std::size_t league = 0; league < kLeague; ++league) {
    for (std::size_t lane = 1; lane < kTeam; ++lane) {
      EXPECT_EQ(lane_thread[league * kTeam + lane], lane_thread[league * kTeam]);
    }
  }
}

TEST(TeamPolicy, ZeroTeamSizeRejected) {
  EXPECT_THROW(TeamPolicy(4, 0), precondition_error);
}

TEST(TeamPolicy, ScratchSharedWithinTeam) {
  // Lane 0 stages into team scratch; later lanes read it (lanes run
  // sequentially on the host, so no barrier is needed).
  ThreadsSpace space(4);
  constexpr std::size_t kLeague = 12;
  constexpr std::size_t kTeam = 4;
  std::vector<std::atomic<int>> observed(kLeague * kTeam);
  parallel_for(space, TeamPolicy(kLeague, kTeam, sizeof(int)), [&](const TeamMember& m) {
    auto shared = m.scratch<int>(1);
    if (m.team_rank() == 0) shared[0] = static_cast<int>(m.league_rank() + 100);
    observed[m.league_rank() * kTeam + m.team_rank()] = shared[0];
  });
  for (std::size_t league = 0; league < kLeague; ++league) {
    for (std::size_t lane = 0; lane < kTeam; ++lane) {
      EXPECT_EQ(observed[league * kTeam + lane].load(), static_cast<int>(league + 100));
    }
  }
}

TEST(TeamPolicy, ScratchZeroedPerTeam) {
  // A team must never see a previous team's scratch contents.
  ThreadsSpace space(2);
  std::atomic<bool> saw_dirty{false};
  parallel_for(space, TeamPolicy(20, 2, 8), [&](const TeamMember& m) {
    auto bytes = m.scratch<std::uint8_t>(8);
    if (m.team_rank() == 0) {
      for (auto b : bytes) {
        if (b != 0) saw_dirty = true;
      }
      std::fill(bytes.begin(), bytes.end(), std::uint8_t{0xFF});  // dirty it
    }
  });
  EXPECT_FALSE(saw_dirty.load());
}

TEST(TeamPolicy, ScratchBoundsChecked) {
  SerialSpace space;
  parallel_for(space, TeamPolicy(1, 1, 16), [&](const TeamMember& m) {
    EXPECT_NO_THROW(m.scratch<int>(4));
    EXPECT_THROW(m.scratch<int>(5), precondition_error);
    EXPECT_THROW(m.scratch<int>(1, 3), precondition_error);  // misaligned
    EXPECT_EQ(m.scratch_bytes(), 16u);
  });
}

TEST(TeamThreadRange, CoversExtentOnceAcrossLanes) {
  ThreadsSpace space(3);
  constexpr std::size_t kExtent = 37;
  constexpr std::size_t kTeam = 5;
  std::vector<std::atomic<int>> hits(kExtent);
  parallel_for(space, TeamPolicy(1, kTeam), [&](const TeamMember& m) {
    team_thread_range(m, kExtent, [&](std::size_t i) { hits[i].fetch_add(1); });
  });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(TeamThreadRange, EmptyExtentIsNoop) {
  SerialSpace space;
  parallel_for(space, TeamPolicy(1, 4), [&](const TeamMember& m) {
    team_thread_range(m, 0, [&](std::size_t) { FAIL(); });
  });
}

TEST(ParallelReduce, SumMatchesClosedForm) {
  ThreadsSpace space(4);
  double sum = -1.0;
  parallel_reduce(space, RangePolicy(0, 1000),
                  [](std::size_t i, double& acc) { acc += static_cast<double>(i); }, sum);
  EXPECT_DOUBLE_EQ(sum, 999.0 * 1000.0 / 2.0);
}

TEST(ParallelReduce, EmptyRangeYieldsZero) {
  ThreadsSpace space(4);
  double sum = 42.0;
  parallel_reduce(space, RangePolicy(5, 5),
                  [](std::size_t, double& acc) { acc += 1.0; }, sum);
  EXPECT_EQ(sum, 0.0);
}

TEST(ParallelReduce, DeterministicAcrossRuns) {
  // Per-thread partials joined in thread order: bitwise identical runs.
  ThreadsSpace space(4);
  auto run = [&] {
    double sum = 0.0;
    parallel_reduce(space, RangePolicy(0, 10000),
                    [](std::size_t i, double& acc) { acc += 1.0 / (1.0 + static_cast<double>(i)); },
                    sum);
    return sum;
  };
  const double first = run();
  for (int rep = 0; rep < 5; ++rep) EXPECT_EQ(run(), first);
}

TEST(ParallelReduce, SerialMatchesThreadsWithIntegers) {
  // Integer sums are associative: serial and threaded must agree exactly.
  SerialSpace serial;
  ThreadsSpace threads(4);
  long a = 0;
  long b = 0;
  auto body = [](std::size_t i, long& acc) { acc += static_cast<long>(i * i); };
  parallel_reduce(serial, RangePolicy(0, 5000), body, a);
  parallel_reduce(threads, RangePolicy(0, 5000), body, b);
  EXPECT_EQ(a, b);
}

TEST(ParallelFor, ExceptionPropagatesFromBody) {
  ThreadsSpace space(4);
  EXPECT_THROW(parallel_for(space, RangePolicy(0, 100),
                            [](std::size_t i) {
                              if (i == 57) throw std::runtime_error("body failed");
                            }),
               std::runtime_error);
}

}  // namespace
}  // namespace portabench::simrt
