// Tests for parallel prefix sums.
#include "simrt/scan.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "common/error.hpp"

namespace portabench::simrt {
namespace {

class ScanTest : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {};

TEST_P(ScanTest, ExclusiveMatchesSerialReference) {
  const auto [extent, threads] = GetParam();
  std::vector<long> in(extent);
  for (std::size_t i = 0; i < extent; ++i) in[i] = static_cast<long>((i * 31 + 7) % 100);

  std::vector<long> expected(extent);
  long running = 0;
  for (std::size_t i = 0; i < extent; ++i) {
    expected[i] = running;
    running += in[i];
  }

  ThreadsSpace space(threads);
  std::vector<long> out(extent, -1);
  exclusive_scan(space, std::span<const long>(in), std::span<long>(out));
  EXPECT_EQ(out, expected);
}

TEST_P(ScanTest, InclusiveMatchesPartialSum) {
  const auto [extent, threads] = GetParam();
  std::vector<long> in(extent, 0);
  for (std::size_t i = 0; i < extent; ++i) in[i] = static_cast<long>(i % 13);
  std::vector<long> expected(extent);
  std::partial_sum(in.begin(), in.end(), expected.begin());

  ThreadsSpace space(threads);
  std::vector<long> out(extent, -1);
  inclusive_scan(space, std::span<const long>(in), std::span<long>(out));
  EXPECT_EQ(out, expected);
}

INSTANTIATE_TEST_SUITE_P(ExtentsAndThreads, ScanTest,
                         ::testing::Combine(::testing::Values(0, 1, 2, 5, 64, 1000),
                                            ::testing::Values(1, 3, 4, 8)));

TEST(Scan, SerialSpaceWorks) {
  SerialSpace space;
  const std::vector<int> in{1, 2, 3, 4};
  std::vector<int> out(4);
  exclusive_scan(space, std::span<const int>(in), std::span<int>(out));
  EXPECT_EQ(out, (std::vector<int>{0, 1, 3, 6}));
  inclusive_scan(space, std::span<const int>(in), std::span<int>(out));
  EXPECT_EQ(out, (std::vector<int>{1, 3, 6, 10}));
}

TEST(Scan, SizeMismatchRejected) {
  SerialSpace space;
  const std::vector<int> in{1, 2, 3};
  std::vector<int> out(2);
  EXPECT_THROW(exclusive_scan(space, std::span<const int>(in), std::span<int>(out)),
               precondition_error);
}

TEST(Scan, InPlaceRejected) {
  ThreadsSpace space(2);
  std::vector<int> buf{1, 2, 3};
  EXPECT_THROW(
      exclusive_scan(space, std::span<const int>(buf.data(), 3), std::span<int>(buf)),
      precondition_error);
}

TEST(FunctorScan, SerialComputesExclusivePrefixes) {
  SerialSpace space;
  const std::vector<long> in{3, 1, 4, 1, 5};
  std::vector<long> prefixes(5, -1);
  const long total = parallel_scan<long>(
      space, RangePolicy(0, 5), [&](std::size_t i, long& partial, bool is_final) {
        if (is_final) prefixes[i] = partial;  // exclusive prefix
        partial += in[i];
      });
  EXPECT_EQ(total, 14L);
  EXPECT_EQ(prefixes, (std::vector<long>{0, 3, 4, 8, 9}));
}

TEST(FunctorScan, ThreadedMatchesSerial) {
  SerialSpace serial;
  ThreadsSpace threads(4);
  constexpr std::size_t kN = 1003;
  std::vector<long> in(kN);
  for (std::size_t i = 0; i < kN; ++i) in[i] = static_cast<long>((i * 13) % 17);

  std::vector<long> a(kN, -1);
  std::vector<long> b(kN, -1);
  auto body_into = [&](std::vector<long>& out) {
    return [&in, &out](std::size_t i, long& partial, bool is_final) {
      if (is_final) out[i] = partial;
      partial += in[i];
    };
  };
  const long ta = parallel_scan<long>(serial, RangePolicy(0, kN), body_into(a));
  const long tb = parallel_scan<long>(threads, RangePolicy(0, kN), body_into(b));
  EXPECT_EQ(ta, tb);
  EXPECT_EQ(a, b);
}

TEST(FunctorScan, StreamCompactionUseCase) {
  // The canonical scan application: compact the even numbers of [0, 100).
  ThreadsSpace space(3);
  constexpr std::size_t kN = 100;
  std::vector<std::size_t> out(kN / 2, 0);
  parallel_scan<std::size_t>(space, RangePolicy(0, kN),
                             [&](std::size_t i, std::size_t& partial, bool is_final) {
                               const bool keep = i % 2 == 0;
                               if (is_final && keep) out[partial] = i;
                               if (keep) ++partial;
                             });
  for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], 2 * i);
}

TEST(FunctorScan, EmptyRangeReturnsIdentity) {
  ThreadsSpace space(2);
  const long total = parallel_scan<long>(space, RangePolicy(7, 7),
                                         [](std::size_t, long&, bool) { FAIL(); });
  EXPECT_EQ(total, 0L);
}

TEST(Scan, DoubleScanIsDeterministic) {
  ThreadsSpace space(4);
  std::vector<double> in(777);
  for (std::size_t i = 0; i < in.size(); ++i) in[i] = 1.0 / (1.0 + static_cast<double>(i));
  std::vector<double> out1(in.size());
  std::vector<double> out2(in.size());
  exclusive_scan(space, std::span<const double>(in), std::span<double>(out1));
  exclusive_scan(space, std::span<const double>(in), std::span<double>(out2));
  EXPECT_EQ(out1, out2);  // bitwise: fixed block partition
}

}  // namespace
}  // namespace portabench::simrt
