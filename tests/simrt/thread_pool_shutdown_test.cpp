// Shutdown-ordering tests for ThreadPool: the destructor must drain an
// in-flight parallel region (run() issued from another thread) before
// telling workers to exit, instead of tearing down a rendezvous that
// still has chunks mid-flight.
#include "simrt/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <stdexcept>
#include <thread>

#include "simrt/parallel.hpp"

namespace portabench::simrt {
namespace {

TEST(ThreadPoolShutdown, DestructorDrainsInFlightRun) {
  for (int iter = 0; iter < 25; ++iter) {
    std::atomic<bool> started{false};
    std::atomic<int> completed{0};
    auto pool = std::make_unique<ThreadPool>(4);

    std::thread caller([&] {
      pool->run([&](std::size_t) {
        started.store(true);
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        completed.fetch_add(1);
      });
    });

    while (!started.load()) std::this_thread::yield();
    // Destroy the pool while the region is executing: the destructor must
    // block until every logical thread has finished its chunk.
    pool.reset();
    EXPECT_EQ(completed.load(), 4);
    caller.join();
  }
}

TEST(ThreadPoolShutdown, DestructorDrainsInFlightReduce) {
  for (int iter = 0; iter < 10; ++iter) {
    std::atomic<bool> started{false};
    auto space = std::make_unique<ThreadsSpace>(4);
    double sum = 0.0;

    std::thread caller([&] {
      parallel_reduce(*space, RangePolicy(0, 4000),
                      [&](std::size_t i, double& acc) {
                        started.store(true);
                        acc += static_cast<double>(i);
                      },
                      sum);
    });

    while (!started.load()) std::this_thread::yield();
    space.reset();  // drops the pool's last handle mid-reduce
    caller.join();
    EXPECT_EQ(sum, 4000.0 * 3999.0 / 2.0);
  }
}

TEST(ThreadPoolShutdown, ImmediateDestructionAfterRunIsClean) {
  // Back-to-back create/run/destroy: stresses the window between the last
  // worker's completion notification and teardown.
  for (int iter = 0; iter < 50; ++iter) {
    std::atomic<int> hits{0};
    {
      ThreadPool pool(3);
      pool.run([&](std::size_t) { hits.fetch_add(1); });
    }
    EXPECT_EQ(hits.load(), 3);
  }
}

TEST(ThreadPoolShutdown, PoolSurvivesThrowingTaskThenShutsDown) {
  auto pool = std::make_unique<ThreadPool>(4);
  EXPECT_THROW(pool->run([](std::size_t t) {
                 if (t == 2) throw std::runtime_error("boom");
               }),
               std::runtime_error);
  // The pool must be reusable after an exceptional region...
  std::atomic<int> hits{0};
  pool->run([&](std::size_t) { hits.fetch_add(1); });
  EXPECT_EQ(hits.load(), 4);
  // ...and destructible without hanging.
  pool.reset();
}

TEST(ThreadPoolShutdown, SingleThreadPoolDegenerateCase) {
  auto pool = std::make_unique<ThreadPool>(1);
  int hits = 0;
  pool->run([&](std::size_t) { ++hits; });
  EXPECT_EQ(hits, 1);
  pool.reset();
}

}  // namespace
}  // namespace portabench::simrt
