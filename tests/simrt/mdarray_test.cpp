// Tests for the multi-dimensional views.
#include "simrt/mdarray.hpp"

#include <gtest/gtest.h>

#include <cstdint>

#include "common/error.hpp"

namespace portabench::simrt {
namespace {

TEST(View1, AllocatesZeroed) {
  View1<double> v(10);
  EXPECT_EQ(v.size(), 10u);
  for (std::size_t i = 0; i < 10; ++i) EXPECT_EQ(v(i), 0.0);
}

TEST(View1, CheckedAccessThrows) {
  View1<int> v(3);
  EXPECT_NO_THROW(v.at(2));
  EXPECT_THROW(v.at(3), precondition_error);
}

TEST(View1, SubviewAliases) {
  View1<int> v(10);
  for (std::size_t i = 0; i < 10; ++i) v(i) = static_cast<int>(i);
  View1<int> sub = v.subview(3, 7);
  EXPECT_EQ(sub.size(), 4u);
  EXPECT_EQ(sub(0), 3);
  sub(0) = 99;
  EXPECT_EQ(v(3), 99);  // shared storage
}

TEST(View1, SubviewBoundsChecked) {
  View1<int> v(10);
  EXPECT_THROW(v.subview(5, 11), precondition_error);
  EXPECT_THROW(v.subview(7, 3), precondition_error);
}

TEST(View2, RowMajorStrides) {
  View2<double, LayoutRight> v(3, 5);
  EXPECT_EQ(v.extent(0), 3u);
  EXPECT_EQ(v.extent(1), 5u);
  EXPECT_EQ(v.stride(0), 5u);
  EXPECT_EQ(v.stride(1), 1u);
  EXPECT_TRUE(v.contiguous());
}

TEST(View2, ColMajorStrides) {
  View2<double, LayoutLeft> v(3, 5);
  EXPECT_EQ(v.stride(0), 1u);
  EXPECT_EQ(v.stride(1), 3u);
  EXPECT_TRUE(v.contiguous());
}

TEST(View2, LayoutsStoreDifferently) {
  View2<int, LayoutRight> r(2, 3);
  View2<int, LayoutLeft> l(2, 3);
  r(0, 1) = 7;
  l(0, 1) = 7;
  // Same logical element, different storage offset.
  EXPECT_EQ(r.data()[1], 7);  // row-major: (0,1) at offset 1
  EXPECT_EQ(l.data()[2], 7);  // col-major: (0,1) at offset 0 + 1*2
}

TEST(View2, AdjacencyMatchesLayout) {
  View2<int, LayoutRight> r(4, 4);
  View2<int, LayoutLeft> l(4, 4);
  // Row-major: (i, j) and (i, j+1) adjacent; col-major: (i, j) and (i+1, j).
  EXPECT_EQ(&r(0, 1) - &r(0, 0), 1);
  EXPECT_EQ(&l(1, 0) - &l(0, 0), 1);
}

TEST(View2, CopiesShareStorage) {
  View2<int, LayoutRight> a(2, 2);
  View2<int, LayoutRight> b = a;  // Kokkos::View semantics
  b(1, 1) = 5;
  EXPECT_EQ(a(1, 1), 5);
  EXPECT_TRUE(a.same_storage(b));
}

TEST(View2, CheckedAccess) {
  View2<int, LayoutRight> v(2, 3);
  EXPECT_NO_THROW(v.at(1, 2));
  EXPECT_THROW(v.at(2, 0), precondition_error);
  EXPECT_THROW(v.at(0, 3), precondition_error);
}

TEST(View2, SubviewRowMajor) {
  View2<int, LayoutRight> v(4, 4);
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t j = 0; j < 4; ++j) v(i, j) = static_cast<int>(10 * i + j);
  }
  auto sub = v.subview(1, 3, 2, 4);
  EXPECT_EQ(sub.extent(0), 2u);
  EXPECT_EQ(sub.extent(1), 2u);
  EXPECT_EQ(sub(0, 0), 12);
  EXPECT_EQ(sub(1, 1), 23);
  EXPECT_FALSE(sub.contiguous());
  sub(0, 0) = -1;
  EXPECT_EQ(v(1, 2), -1);
}

TEST(View2, SubviewColMajor) {
  View2<int, LayoutLeft> v(4, 4);
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t j = 0; j < 4; ++j) v(i, j) = static_cast<int>(10 * i + j);
  }
  auto sub = v.subview(2, 4, 1, 3);
  EXPECT_EQ(sub(0, 0), 21);
  EXPECT_EQ(sub(1, 1), 32);
}

TEST(View2, SubviewBounds) {
  View2<int, LayoutRight> v(3, 3);
  EXPECT_THROW(v.subview(0, 4, 0, 3), precondition_error);
  EXPECT_THROW(v.subview(2, 1, 0, 3), precondition_error);
}

TEST(View2, DeepCopyAcrossLayouts) {
  View2<int, LayoutRight> src(3, 4);
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 4; ++j) src(i, j) = static_cast<int>(i * 4 + j);
  }
  View2<int, LayoutLeft> dst(3, 4);
  deep_copy(dst, src);
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 4; ++j) EXPECT_EQ(dst(i, j), src(i, j));
  }
  EXPECT_FALSE(dst.same_storage(View2<int, LayoutLeft>(3, 4)));
}

TEST(View2, DeepCopyShapeMismatchRejected) {
  View2<int, LayoutRight> a(2, 3);
  View2<int, LayoutRight> b(3, 2);
  EXPECT_THROW(deep_copy(b, a), precondition_error);
}

TEST(View2, SubviewOfSubviewComposes) {
  View2<int, LayoutRight> v(8, 8);
  for (std::size_t i = 0; i < 8; ++i) {
    for (std::size_t j = 0; j < 8; ++j) v(i, j) = static_cast<int>(10 * i + j);
  }
  auto outer = v.subview(2, 7, 1, 6);   // rows 2..6, cols 1..5
  auto inner = outer.subview(1, 3, 2, 4);  // -> rows 3..4, cols 3..4 of v
  EXPECT_EQ(inner.extent(0), 2u);
  EXPECT_EQ(inner.extent(1), 2u);
  EXPECT_EQ(inner(0, 0), 33);
  EXPECT_EQ(inner(1, 1), 44);
  inner(0, 1) = -9;
  EXPECT_EQ(v(3, 4), -9);
}

TEST(View2, SharedStorageSurvivesOriginalGoingOutOfScope) {
  View2<int, LayoutRight> kept;
  {
    View2<int, LayoutRight> original(4, 4);
    original(2, 2) = 11;
    kept = original.subview(1, 4, 1, 4);
  }
  // The subview holds a reference on the storage.
  EXPECT_EQ(kept(1, 1), 11);
}

TEST(View2, DataIsCacheAligned) {
  View2<double, LayoutRight> v(17, 31);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(v.data()) % kCacheLineBytes, 0u);
}

TEST(View2, ExtentDimChecked) {
  View2<int, LayoutRight> v(2, 2);
  EXPECT_THROW(v.extent(2), precondition_error);
  EXPECT_THROW(v.stride(2), precondition_error);
}

}  // namespace
}  // namespace portabench::simrt
