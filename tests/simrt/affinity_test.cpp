// Tests for the thread-affinity placement model.
#include "simrt/affinity.hpp"

#include <gtest/gtest.h>

#include <set>

namespace portabench::simrt {
namespace {

const CpuTopology kCrusher{64, 4};  // EPYC 7A53
const CpuTopology kWombat{80, 1};   // Ampere Altra

TEST(Topology, CoresPerDomain) {
  EXPECT_EQ(kCrusher.cores_per_domain(), 16u);
  EXPECT_EQ(kWombat.cores_per_domain(), 80u);
}

TEST(Topology, DomainOfCore) {
  EXPECT_EQ(kCrusher.domain_of(0), 0u);
  EXPECT_EQ(kCrusher.domain_of(15), 0u);
  EXPECT_EQ(kCrusher.domain_of(16), 1u);
  EXPECT_EQ(kCrusher.domain_of(63), 3u);
  EXPECT_THROW(kCrusher.domain_of(64), precondition_error);
}

TEST(Topology, UnevenDomainsRejected) {
  const CpuTopology bad{10, 3};
  EXPECT_THROW(bad.cores_per_domain(), precondition_error);
}

TEST(Placement, NoneLeavesUnpinned) {
  const Placement p = compute_placement(kCrusher, 64, BindPolicy::kNone);
  EXPECT_FALSE(p.pinned());
  for (auto c : p.core_of_thread) EXPECT_EQ(c, Placement::kUnpinned);
}

TEST(Placement, ClosePacksConsecutively) {
  // JULIA_EXCLUSIVE / OMP_PROC_BIND=close: thread i on core i.
  const Placement p = compute_placement(kCrusher, 64, BindPolicy::kClose);
  ASSERT_TRUE(p.pinned());
  for (std::size_t t = 0; t < 64; ++t) EXPECT_EQ(p.core_of_thread[t], t);
}

TEST(Placement, CloseWrapsWhenOversubscribed) {
  const Placement p = compute_placement(kWombat, 160, BindPolicy::kClose);
  EXPECT_EQ(p.core_of_thread[80], 0u);
  EXPECT_EQ(p.core_of_thread[159], 79u);
}

TEST(Placement, SpreadRoundRobinsDomains) {
  const Placement p = compute_placement(kCrusher, 8, BindPolicy::kSpread);
  // First four threads land on distinct domains.
  std::set<std::size_t> domains;
  for (std::size_t t = 0; t < 4; ++t) domains.insert(kCrusher.domain_of(p.core_of_thread[t]));
  EXPECT_EQ(domains.size(), 4u);
}

TEST(Placement, SpreadUsesAllCoresAtFullCount) {
  const Placement p = compute_placement(kCrusher, 64, BindPolicy::kSpread);
  std::set<std::size_t> cores(p.core_of_thread.begin(), p.core_of_thread.end());
  EXPECT_EQ(cores.size(), 64u);  // a bijection onto all cores
}

TEST(Placement, ZeroThreadsRejected) {
  EXPECT_THROW(compute_placement(kCrusher, 0, BindPolicy::kClose), precondition_error);
}

TEST(RemoteFraction, SingleDomainIsAlwaysLocal) {
  // Wombat (1 NUMA): pinning policy cannot matter for locality.
  for (auto policy : {BindPolicy::kNone, BindPolicy::kClose, BindPolicy::kSpread}) {
    const Placement p = compute_placement(kWombat, 80, policy);
    EXPECT_EQ(remote_access_fraction(kWombat, p), 0.0);
  }
}

TEST(RemoteFraction, UnpinnedPaysMostOnMultiDomain) {
  const Placement unpinned = compute_placement(kCrusher, 64, BindPolicy::kNone);
  const Placement pinned = compute_placement(kCrusher, 64, BindPolicy::kClose);
  const double remote_unpinned = remote_access_fraction(kCrusher, unpinned);
  const double remote_pinned = remote_access_fraction(kCrusher, pinned);
  // Numba (no pinning API) sees a strictly larger remote share than
  // OpenMP/Julia with binding — the Section IV-A explanation.
  EXPECT_GT(remote_unpinned, remote_pinned);
  EXPECT_NEAR(remote_unpinned, 0.75, 1e-12);  // (d-1)/d for d=4
  EXPECT_GE(remote_pinned, 0.0);
  EXPECT_LE(remote_pinned, 1.0);
}

TEST(RemoteFraction, BoundedByOne) {
  for (std::size_t domains : {1u, 2u, 4u, 8u}) {
    const CpuTopology topo{64, domains};
    for (auto policy : {BindPolicy::kNone, BindPolicy::kClose, BindPolicy::kSpread}) {
      const Placement p = compute_placement(topo, 64, policy);
      const double r = remote_access_fraction(topo, p);
      EXPECT_GE(r, 0.0);
      EXPECT_LE(r, 1.0);
    }
  }
}

TEST(Placement, SpreadWithFewerThreadsThanDomains) {
  // 2 threads on a 4-domain machine: distinct domains, one each.
  const Placement p = compute_placement(kCrusher, 2, BindPolicy::kSpread);
  EXPECT_NE(kCrusher.domain_of(p.core_of_thread[0]),
            kCrusher.domain_of(p.core_of_thread[1]));
}

TEST(Placement, SingleThreadAnyPolicy) {
  for (auto policy : {BindPolicy::kClose, BindPolicy::kSpread}) {
    const Placement p = compute_placement(kCrusher, 1, policy);
    ASSERT_EQ(p.core_of_thread.size(), 1u);
    EXPECT_LT(p.core_of_thread[0], kCrusher.cores);
  }
}

TEST(BindPolicyNames, Stable) {
  EXPECT_EQ(name(BindPolicy::kNone), "none");
  EXPECT_EQ(name(BindPolicy::kClose), "close");
  EXPECT_EQ(name(BindPolicy::kSpread), "spread");
}

}  // namespace
}  // namespace portabench::simrt
