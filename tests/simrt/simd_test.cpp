// Property tests for simrt::simd — every lane op checked against a plain
// scalar loop over every width and element type, plus the determinism
// contract the dispatched kernels rely on: pinned horizontal-reduction
// order, masked tails that never read or write past n, and GEMM
// micro-kernel tiers that are bit-identical to the scalar geometry.
#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <cstring>
#include <vector>

#include "common/rng.hpp"
#include "gemm/kernels_tiled.hpp"
#include "simrt/simd.hpp"
#include "simrt/simd_reduce.hpp"

namespace portabench {
namespace {

using simrt::simd;
using simrt::SimdTier;

// Lane inputs that exercise sign, magnitude, and (for float) rounding:
// deterministic per (type, lane, salt) so failures reproduce.
template <class T>
T probe_value(std::size_t lane, std::size_t salt) {
  if constexpr (std::is_floating_point_v<T>) {
    const double raw = (static_cast<double>((lane * 2654435761u + salt * 40503u) % 2000) -
                        1000.0) /
                       64.0;
    return static_cast<T>(raw == 0.0 ? 0.5 : raw);
  } else {
    return static_cast<T>(lane * 2654435761u + salt * 40503u + 1u);
  }
}

template <class T, std::size_t W>
simd<T, W> make_pack(std::size_t salt) {
  std::array<T, W> lanes;
  for (std::size_t w = 0; w < W; ++w) lanes[w] = probe_value<T>(w, salt);
  return simd<T, W>::load(lanes.data());
}

// --- arithmetic: every op lane-for-lane vs the scalar expression ------------

template <class T, std::size_t W>
void check_arithmetic() {
  const auto a = make_pack<T, W>(1);
  const auto b = make_pack<T, W>(2);
  for (std::size_t w = 0; w < W; ++w) {
    EXPECT_EQ((a + b)[w], static_cast<T>(a[w] + b[w]));
    EXPECT_EQ((a - b)[w], static_cast<T>(a[w] - b[w]));
    EXPECT_EQ((a * b)[w], static_cast<T>(a[w] * b[w]));
    EXPECT_EQ(min(a, b)[w], a[w] < b[w] ? a[w] : b[w]);
    EXPECT_EQ(max(a, b)[w], a[w] < b[w] ? b[w] : a[w]);
  }
  if constexpr (std::is_floating_point_v<T>) {
    const auto c = make_pack<T, W>(3);
    for (std::size_t w = 0; w < W; ++w) {
      EXPECT_EQ((a / b)[w], static_cast<T>(a[w] / b[w]));
      EXPECT_EQ((-a)[w], static_cast<T>(-a[w]));
      // fma is the two-rounding shape by contract, not a hardware FMA.
      EXPECT_EQ(fma(a, b, c)[w], static_cast<T>(static_cast<T>(a[w] * b[w]) + c[w]));
    }
  }
}

template <class T, std::size_t W>
void check_bit_ops() {
  const auto a = make_pack<T, W>(4);
  const auto b = make_pack<T, W>(5);
  for (std::size_t w = 0; w < W; ++w) {
    EXPECT_EQ((a & b)[w], static_cast<T>(a[w] & b[w]));
    EXPECT_EQ((a | b)[w], static_cast<T>(a[w] | b[w]));
    EXPECT_EQ((a ^ b)[w], static_cast<T>(a[w] ^ b[w]));
    EXPECT_EQ((~a)[w], static_cast<T>(~a[w]));
    EXPECT_EQ((a << 3)[w], static_cast<T>(a[w] << 3));
    EXPECT_EQ((a >> 2)[w], static_cast<T>(a[w] >> 2));
  }
}

// --- comparisons and select: canonical masks --------------------------------

template <class T, std::size_t W>
void check_compare_select() {
  using Mask = typename simd<T, W>::mask_type;
  using M = typename Mask::value_type;
  auto a = make_pack<T, W>(6);
  auto b = make_pack<T, W>(7);
  a.set_lane(0, b[0]);  // force at least one equal lane
  const Mask eq = a.eq(b);
  const Mask lt = a.lt(b);
  const Mask le = a.le(b);
  for (std::size_t w = 0; w < W; ++w) {
    EXPECT_EQ(eq[w], a[w] == b[w] ? static_cast<M>(~M{0}) : M{0});
    EXPECT_EQ(lt[w], a[w] < b[w] ? static_cast<M>(~M{0}) : M{0});
    EXPECT_EQ(le[w], a[w] <= b[w] ? static_cast<M>(~M{0}) : M{0});
  }
  const auto sel = simd<T, W>::select(lt, a, b);
  for (std::size_t w = 0; w < W; ++w) EXPECT_EQ(sel[w], a[w] < b[w] ? a[w] : b[w]);
}

// --- loads / stores: alignment and masked tails -----------------------------

template <class T, std::size_t W>
void check_loads_stores() {
  alignas(64) std::array<T, W + 8> src{};
  for (std::size_t i = 0; i < src.size(); ++i) src[i] = probe_value<T>(i, 8);

  const auto aligned = simd<T, W>::load_aligned(src.data());
  const auto unaligned = simd<T, W>::load(src.data() + 1);
  for (std::size_t w = 0; w < W; ++w) {
    EXPECT_EQ(aligned[w], src[w]);
    EXPECT_EQ(unaligned[w], src[w + 1]);
  }

  alignas(64) std::array<T, W + 8> dst{};
  aligned.store_aligned(dst.data());
  EXPECT_EQ(std::memcmp(dst.data(), src.data(), W * sizeof(T)), 0);
  unaligned.store(dst.data() + 1);
  EXPECT_EQ(std::memcmp(dst.data() + 1, src.data() + 1, W * sizeof(T)), 0);

  // Partial forms over every tail length: lanes >= n must come back zero
  // on load and stay untouched on store.
  for (std::size_t n = 0; n <= W; ++n) {
    const auto part = simd<T, W>::load_partial(src.data(), n);
    for (std::size_t w = 0; w < W; ++w) EXPECT_EQ(part[w], w < n ? src[w] : T{});

    std::array<T, W> out;
    const T sentinel = probe_value<T>(99, 9);
    out.fill(sentinel);
    aligned.store_partial(out.data(), n);
    for (std::size_t w = 0; w < W; ++w) EXPECT_EQ(out[w], w < n ? src[w] : sentinel);
  }
}

// --- shuffles, conversions, reductions --------------------------------------

template <class T, std::size_t W>
void check_shuffles() {
  const auto a = make_pack<T, W>(10);
  const auto rev = a.reverse_lanes();
  for (std::size_t w = 0; w < W; ++w) EXPECT_EQ(rev[w], a[W - 1 - w]);
  for (std::size_t n = 0; n <= W + 1; ++n) {
    const auto rot = a.rotate_lanes(n);
    for (std::size_t w = 0; w < W; ++w) EXPECT_EQ(rot[w], a[(w + n) % W]);
  }
}

template <class T, std::size_t W>
void check_reductions() {
  const auto a = make_pack<T, W>(11);
  // hsum combines lanes in ascending order — the exact loop below, by
  // contract, so dispatched reductions are reproducible across tiers.
  T sum = a[0];
  for (std::size_t w = 1; w < W; ++w) sum = static_cast<T>(sum + a[w]);
  EXPECT_EQ(a.hsum(), sum);
  T lo = a[0];
  T hi = a[0];
  for (std::size_t w = 1; w < W; ++w) {
    lo = a[w] < lo ? a[w] : lo;
    hi = hi < a[w] ? a[w] : hi;
  }
  EXPECT_EQ(a.hmin(), lo);
  EXPECT_EQ(a.hmax(), hi);
}

template <std::size_t W>
void check_conversions() {
  const auto f = make_pack<float, W>(12);
  const auto d = f.template convert_to<double>();
  const auto i = f.template convert_to<std::int32_t>();
  for (std::size_t w = 0; w < W; ++w) {
    EXPECT_EQ(d[w], static_cast<double>(f[w]));
    EXPECT_EQ(i[w], static_cast<std::int32_t>(f[w]));
  }
  const auto bits = f.template bit_cast_to<std::uint32_t>();
  for (std::size_t w = 0; w < W; ++w) {
    std::uint32_t ref;
    const float fv = f[w];
    std::memcpy(&ref, &fv, sizeof(ref));
    EXPECT_EQ(bits[w], ref);
  }
  const auto back = bits.template bit_cast_to<float>();
  for (std::size_t w = 0; w < W; ++w) EXPECT_EQ(back[w], f[w]);
}

// --- the width/type matrix --------------------------------------------------

template <class T, std::size_t W>
void run_common_suite() {
  check_arithmetic<T, W>();
  check_compare_select<T, W>();
  check_loads_stores<T, W>();
  check_shuffles<T, W>();
  check_reductions<T, W>();
  if constexpr (std::is_integral_v<T>) check_bit_ops<T, W>();
}

template <class T>
void run_all_widths() {
  run_common_suite<T, 1>();
  run_common_suite<T, 2>();
  run_common_suite<T, 4>();
  run_common_suite<T, 8>();
  run_common_suite<T, 16>();
}

TEST(Simd, FloatAllWidths) { run_all_widths<float>(); }
TEST(Simd, DoubleAllWidths) { run_all_widths<double>(); }
TEST(Simd, Uint16AllWidths) { run_all_widths<std::uint16_t>(); }
TEST(Simd, Uint32AllWidths) { run_all_widths<std::uint32_t>(); }

TEST(Simd, FloatConversions) {
  check_conversions<1>();
  check_conversions<4>();
  check_conversions<8>();
}

TEST(Simd, BroadcastAndDefault) {
  const simd<float, 8> zero;
  const simd<float, 8> pi(3.25f);
  for (std::size_t w = 0; w < 8; ++w) {
    EXPECT_EQ(zero[w], 0.0f);
    EXPECT_EQ(pi[w], 3.25f);
  }
}

// --- tier plumbing ----------------------------------------------------------

TEST(SimdTiers, DispatchTierIsAvailable) {
  const SimdTier t = simrt::simd_dispatch_tier();
  EXPECT_TRUE(simrt::simd_tier_available(t));
  EXPECT_TRUE(simrt::simd_tier_available(SimdTier::kScalar));
  EXPECT_FALSE(simd_tier_name(t).empty());
}

TEST(SimdTiers, TierNamesRoundTrip) {
  EXPECT_EQ(simd_tier_name(SimdTier::kScalar), "scalar");
  EXPECT_EQ(simd_tier_name(SimdTier::kVector), "vector");
  EXPECT_EQ(simd_tier_name(SimdTier::kAvx2), "avx2");
  EXPECT_EQ(simd_tier_name(SimdTier::kAvx512), "avx512");
}

// --- dispatched reductions: value-identical to the pinned-order loops -------

template <class T>
void check_simd_reduce() {
  Xoshiro256 rng(42);
  for (std::size_t n : {std::size_t{0}, std::size_t{1}, std::size_t{7}, std::size_t{8},
                        std::size_t{63}, std::size_t{1000}}) {
    std::vector<T> a(n);
    std::vector<T> b(n);
    for (std::size_t i = 0; i < n; ++i) {
      a[i] = static_cast<T>(rng.uniform(-1.0, 1.0));
      b[i] = static_cast<T>(rng.uniform(-1.0, 1.0));
    }
    // Reference: the same W-lane-column, ascending-l order the simd path
    // commits to (block sums in lane columns, combined ascending).
    constexpr std::size_t W = simrt::native_lanes<T>;
    T lanes[W] = {};
    const std::size_t blocks = n / W;
    for (std::size_t blk = 0; blk < blocks; ++blk) {
      for (std::size_t w = 0; w < W; ++w) lanes[w] += a[blk * W + w];
    }
    T sum_ref = lanes[0];
    for (std::size_t w = 1; w < W; ++w) sum_ref += lanes[w];
    if (blocks == 0) sum_ref = T{};
    for (std::size_t i = blocks * W; i < n; ++i) sum_ref += a[i];
    EXPECT_EQ(simrt::simd_sum(a.data(), n), sum_ref);

    if (n > 0) {
      T max_ref = a[0];
      for (std::size_t i = 1; i < n; ++i) max_ref = max_ref < a[i] ? a[i] : max_ref;
      EXPECT_EQ(simrt::simd_max(a.data(), n), max_ref);
    }

    T diff_ref = T{};
    for (std::size_t i = 0; i < n; ++i) {
      const T d = a[i] < b[i] ? static_cast<T>(b[i] - a[i]) : static_cast<T>(a[i] - b[i]);
      diff_ref = diff_ref < d ? d : diff_ref;
    }
    EXPECT_EQ(simrt::simd_max_abs_diff(a.data(), b.data(), n), diff_ref);
  }
}

TEST(SimdReduce, FloatMatchesPinnedOrder) { check_simd_reduce<float>(); }
TEST(SimdReduce, DoubleMatchesPinnedOrder) { check_simd_reduce<double>(); }

// --- GEMM micro-kernel: every dispatchable tier bit-identical ---------------

template <class Acc>
void check_microkernel_tiers() {
  using gemm::tiled::kKC;
  using gemm::tiled::kMR;
  using gemm::tiled::kNR;
  using gemm::tiled::kNRMax;
  Xoshiro256 rng(7);
  for (std::size_t kc : {std::size_t{1}, std::size_t{5}, std::size_t{64}, kKC}) {
    std::vector<Acc> ap(kc * kMR), bp(kc * kNRMax);
    for (auto& v : ap) v = static_cast<Acc>(rng.uniform(-1.0, 1.0));
    for (auto& v : bp) v = static_cast<Acc>(rng.uniform(-1.0, 1.0));
    for (const SimdTier t : {SimdTier::kScalar, SimdTier::kVector, SimdTier::kAvx2,
                             SimdTier::kAvx512}) {
      if (!simrt::simd_tier_available(t)) continue;
      const auto mk = gemm::tiled_detail::microkernel_for_tier<Acc>(t);
      std::vector<Acc> acc(kMR * kNRMax, Acc{});
      std::vector<Acc> ref(kMR * kNRMax, Acc{});
      mk.fn(ap.data(), bp.data(), kc, acc.data());
      // Reference at the SAME panel geometry: NR decides how the packed
      // bp panel is interpreted, so the scalar kernel must match it.
      if (mk.nr == kNR) {
        gemm::tiled_detail::microkernel_scalar<Acc, kNR>(ap.data(), bp.data(), kc,
                                                         ref.data());
      } else {
        ASSERT_EQ(mk.nr, kNRMax);
        gemm::tiled_detail::microkernel_scalar<Acc, kNRMax>(ap.data(), bp.data(), kc,
                                                            ref.data());
      }
      EXPECT_EQ(std::memcmp(acc.data(), ref.data(), kMR * mk.nr * sizeof(Acc)), 0)
          << "tier " << simd_tier_name(t) << " kc=" << kc;
    }
  }
}

TEST(SimdMicrokernel, FloatTiersBitIdentical) { check_microkernel_tiers<float>(); }
TEST(SimdMicrokernel, DoubleTiersBitIdentical) { check_microkernel_tiers<double>(); }

}  // namespace
}  // namespace portabench
