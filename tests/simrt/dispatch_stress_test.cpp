// Stress tests for the epoch-based fork-join pool and the work-stealing
// dynamic dispatch (the hot path rebuilt by the low-overhead-dispatch
// PR).  Runs in the default tier and again under the `sanitized` ctest
// label with PORTABENCH_CHECK_SEED = 1/2/3, where every region is
// permutation-scheduled.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "simrt/parallel.hpp"

namespace portabench::simrt {
namespace {

TEST(DispatchStress, ManyTinyBackToBackRegions) {
  // Thousands of minimal forked regions in a row (run() bypasses the
  // grain cutoff): the pool's epoch publication, spin detection, and
  // arrival counter must never miss or double-count a region even when
  // workers oscillate between spinning and parking.
  ThreadsSpace space(4);
  std::atomic<std::size_t> total{0};
  constexpr int kRegions = 4000;
  for (int r = 0; r < kRegions; ++r) {
    space.pool().run([&](std::size_t) { total.fetch_add(1, std::memory_order_relaxed); });
  }
  EXPECT_EQ(total.load(), static_cast<std::size_t>(kRegions) * 4u);
}

TEST(DispatchStress, SpinParkTransitions) {
  // Alternate bursts of back-to-back forked regions (workers stay in the
  // spin phase) with idle gaps long enough to exhaust the spin budget and
  // park.  Both wake-up paths must deliver every region exactly once.
  ThreadsSpace space(3);
  std::atomic<std::size_t> total{0};
  for (int cycle = 0; cycle < 10; ++cycle) {
    for (int burst = 0; burst < 50; ++burst) {
      space.pool().run(
          [&](std::size_t) { total.fetch_add(1, std::memory_order_relaxed); });
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));  // workers park
  }
  EXPECT_EQ(total.load(), 10u * 50u * 3u);
}

TEST(DispatchStress, SubCutoffRegionsRunInlineCorrectly) {
  // Regions below the fork cutoff execute every lane serially on the
  // caller — same coverage, same exception contract, no rendezvous.
  ThreadsSpace space(4);
  for (std::size_t extent : {std::size_t{1}, std::size_t{3}, std::size_t{100}}) {
    std::vector<std::atomic<int>> hits(extent);
    parallel_for(space, RangePolicy(0, extent),
                 [&](std::size_t i) { hits[i].fetch_add(1, std::memory_order_relaxed); });
    for (std::size_t i = 0; i < extent; ++i) ASSERT_EQ(hits[i].load(), 1);
  }
  // Exception from an inline lane propagates and the pool stays usable.
  EXPECT_THROW(parallel_for(space, RangePolicy(0, 16),
                            [&](std::size_t i) {
                              if (i == 7) throw std::runtime_error("inline lane failed");
                            }),
               std::runtime_error);
  std::atomic<std::size_t> ok{0};
  parallel_for(space, RangePolicy(0, 32),
               [&](std::size_t) { ok.fetch_add(1, std::memory_order_relaxed); });
  EXPECT_EQ(ok.load(), 32u);
}

TEST(DispatchStress, DynamicStealCoversEveryIterationOnce) {
  ThreadsSpace space(4);
  constexpr std::size_t kN = 10007;  // prime: odd chunk edges everywhere
  std::vector<std::atomic<int>> hits(kN);
  parallel_for(space, RangePolicy(0, kN, Schedule::kDynamic, 7),
               [&](std::size_t i) { hits[i].fetch_add(1, std::memory_order_relaxed); });
  for (std::size_t i = 0; i < kN; ++i) ASSERT_EQ(hits[i].load(), 1) << "i=" << i;
}

TEST(DispatchStress, StealPathDrainsImbalancedWork) {
  // All the expensive iterations land in thread 0's queue; the other
  // queues drain instantly and must steal the remainder.  Correctness
  // check: every index executed exactly once, full sum accumulated.
  // (kN is above the fork cutoff so the region really forks.)
  ThreadsSpace space(4);
  constexpr std::size_t kN = 8192;
  std::vector<std::atomic<int>> hits(kN);
  std::atomic<long> work{0};
  parallel_for(space, RangePolicy(0, kN, Schedule::kDynamic, 16), [&](std::size_t i) {
    if (i < kN / 4) {  // thread 0's static deal: artificially heavy
      volatile long spin = 0;
      for (int s = 0; s < 1000; ++s) spin = spin + s;
    }
    hits[i].fetch_add(1, std::memory_order_relaxed);
    work.fetch_add(static_cast<long>(i), std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < kN; ++i) ASSERT_EQ(hits[i].load(), 1) << "i=" << i;
  EXPECT_EQ(work.load(), static_cast<long>(kN) * (kN - 1) / 2);
}

TEST(DispatchStress, ExceptionFromStolenChunkPropagates) {
  ThreadsSpace space(4);
  constexpr std::size_t kN = 8192;  // above the fork cutoff: real steal queues
  // The throwing iteration sits at the tail of the last thread's queue,
  // the likeliest chunk to be executed via the steal path.
  EXPECT_THROW(
      parallel_for(space, RangePolicy(0, kN, Schedule::kDynamic, 8),
                   [&](std::size_t i) {
                     if (i == kN - 1) throw std::runtime_error("stolen chunk failed");
                   }),
      std::runtime_error);
  // The pool and queues must be reusable after the failed region.
  std::atomic<std::size_t> ok{0};
  parallel_for(space, RangePolicy(0, 64, Schedule::kDynamic, 1),
               [&](std::size_t) { ok.fetch_add(1, std::memory_order_relaxed); });
  EXPECT_EQ(ok.load(), 64u);
}

TEST(DispatchStress, StaticReduceBitwiseDeterministic) {
  // Static reductions never steal: per-thread partials joined in thread
  // order must be bitwise-identical run over run, across pool instances,
  // and (under the sanitized tier) across scheduler seeds.
  constexpr std::size_t kN = 40000;
  auto body = [](std::size_t i, double& acc) {
    acc += 1.0 / (1.0 + static_cast<double>(i));
  };
  double first = 0.0;
  {
    ThreadsSpace space(4);
    parallel_reduce(space, RangePolicy(0, kN), body, first);
  }
  for (int rep = 0; rep < 10; ++rep) {
    ThreadsSpace space(4);
    double again = 0.0;
    parallel_reduce(space, RangePolicy(0, kN), body, again);
    ASSERT_EQ(first, again) << "rep=" << rep;  // bitwise, not approximate
  }
}

TEST(DispatchStress, ReduceMatchesBlockOrderedSerialJoin) {
  // The padded-partials layout must not change the join: the result is
  // exactly the block-by-block sum in thread order.
  constexpr std::size_t kN = 9999;
  const std::size_t nt = 4;
  ThreadsSpace space(nt);
  double parallel_sum = 0.0;
  parallel_reduce(space, RangePolicy(0, kN),
                  [](std::size_t i, double& acc) { acc += std::sqrt(static_cast<double>(i)); },
                  parallel_sum);
  double expected = 0.0;
  for (std::size_t t = 0; t < nt; ++t) {
    const auto block = detail::static_block(kN, nt, t);
    double acc = 0.0;
    for (std::size_t i = block.begin; i < block.end; ++i) {
      acc += std::sqrt(static_cast<double>(i));
    }
    expected += acc;
  }
  EXPECT_EQ(parallel_sum, expected);
}

TEST(DispatchStress, TeamDynamicScheduleCoversEveryTeam) {
  ThreadsSpace space(4);
  constexpr std::size_t kLeague = 2048;  // league * team_size above the cutoff
  std::vector<std::atomic<int>> hits(kLeague);
  parallel_for(space, TeamPolicy(kLeague, 4, 0, Schedule::kDynamic),
               [&](const TeamMember& member) {
                 if (member.team_rank() == 0) {
                   hits[member.league_rank()].fetch_add(1, std::memory_order_relaxed);
                 }
               });
  for (std::size_t l = 0; l < kLeague; ++l) ASSERT_EQ(hits[l].load(), 1) << "league=" << l;
}

TEST(DispatchStress, TeamDynamicScratchZeroedPerTeam) {
  ThreadsSpace space(3);
  constexpr std::size_t kLeague = 64;
  std::atomic<int> dirty{0};
  parallel_for(space, TeamPolicy(kLeague, 2, 64, Schedule::kDynamic),
               [&](const TeamMember& member) {
                 auto scratch = member.scratch<std::uint8_t>(64);
                 if (member.team_rank() == 0) {
                   for (std::uint8_t b : scratch) {
                     if (b != 0) dirty.fetch_add(1, std::memory_order_relaxed);
                   }
                   scratch[0] = 0xFF;  // must not leak into the next team
                 }
               });
  EXPECT_EQ(dirty.load(), 0);
}

TEST(DispatchStress, TeamZeroScratchBytesSkipsArena) {
  // scratch_bytes == 0 must not allocate or fill; the member just reports
  // an empty arena.
  for (auto schedule : {Schedule::kStatic, Schedule::kDynamic}) {
    ThreadsSpace space(2);
    std::atomic<std::size_t> seen{0};
    parallel_for(space, TeamPolicy(16, 2, 0, schedule), [&](const TeamMember& member) {
      EXPECT_EQ(member.scratch_bytes(), 0u);
      seen.fetch_add(1, std::memory_order_relaxed);
    });
    EXPECT_EQ(seen.load(), 16u * 2u);
  }
}

TEST(DispatchStress, DefaultChunkClampsDegenerateGrain) {
  // Tiny extents used to yield 1-iteration chunks whose scheduling
  // overhead exceeds the work; the clamp enforces a minimum grain derived
  // from extent/nt while keeping every thread able to participate.
  using detail::default_chunk;
  // Large extent: ~8 chunks per thread, unaffected by the clamp.
  EXPECT_EQ(default_chunk(1 << 20, 8), (1u << 20) / 64);
  // Mid extent where the old heuristic degenerated to 1-iteration chunks:
  // 100 iterations over 8 threads gave chunk=1 (100 dispatches); now >= 8.
  EXPECT_GE(default_chunk(100, 8), 8u);
  // The clamp never starves threads: with extent barely above nt, the
  // chunk stays small enough that every thread can get work.
  EXPECT_LE(default_chunk(12, 8), 12u / 8 + 1);
  EXPECT_GE(default_chunk(12, 8), 1u);
  // Degenerate extents still produce a valid chunk.
  EXPECT_EQ(default_chunk(0, 4), 1u);
  EXPECT_EQ(default_chunk(1, 4), 1u);
  // Chunks always cover the extent in a bounded number of dispatches:
  // at most ~8 chunks per thread once the clamp is inactive.
  for (std::size_t extent : {50u, 100u, 1000u, 100000u}) {
    for (std::size_t nt : {1u, 2u, 4u, 8u}) {
      const std::size_t chunk = default_chunk(extent, nt);
      ASSERT_GE(chunk, 1u);
      const std::size_t nchunks = (extent + chunk - 1) / chunk;
      ASSERT_LE(nchunks, nt * 8 + nt) << "extent=" << extent << " nt=" << nt;
    }
  }
}

TEST(DispatchStress, DynamicAutoChunkCoversExtent) {
  // End-to-end: the clamped default grain must still execute every
  // iteration exactly once (chunk = 0 selects the heuristic).
  ThreadsSpace space(4);
  for (std::size_t extent : {std::size_t{1}, std::size_t{37}, std::size_t{100},
                             std::size_t{4096}, std::size_t{10000}}) {
    std::vector<std::atomic<int>> hits(extent);
    parallel_for(space, RangePolicy(0, extent, Schedule::kDynamic, 0),
                 [&](std::size_t i) { hits[i].fetch_add(1, std::memory_order_relaxed); });
    for (std::size_t i = 0; i < extent; ++i) {
      ASSERT_EQ(hits[i].load(), 1) << "extent=" << extent << " i=" << i;
    }
  }
}

TEST(DispatchStress, TemplatedRunAvoidsFunctionWrapper) {
  // run() must accept arbitrary callables (not just std::function) and
  // propagate mutations through reference captures — the raw
  // (fn, ctx) erasure must point at the original functor.
  ThreadPool pool(3);
  std::vector<int> counts(3, 0);
  auto task = [&counts](std::size_t tid) { counts[tid] += static_cast<int>(tid) + 1; };
  pool.run(task);
  const std::vector<int> expected{1, 2, 3};
  EXPECT_EQ(counts, expected);
}

}  // namespace
}  // namespace portabench::simrt
