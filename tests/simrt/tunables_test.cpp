// Runtime dispatch/launch tunables: env parsing round-trips through an
// injected lookup (no real-environment mutation), setters clamp and
// round-trip, reset restores defaults — and the load-bearing contract,
// pinned bitwise: every tunable setting changes ONLY scheduling, so
// parallel_for / parallel_reduce results are byte-identical across the
// whole knob matrix.
#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "gpusim/tunables.hpp"
#include "simrt/parallel.hpp"
#include "simrt/tunables.hpp"

namespace {

using namespace portabench;
using namespace portabench::simrt;

/// Injected environment: a map standing in for getenv.
EnvLookup fake_env(const std::map<std::string, std::string>& vars) {
  return [vars](const char* name) -> const char* {
    const auto it = vars.find(name);
    return it == vars.end() ? nullptr : it->second.c_str();
  };
}

TEST(ParseTunableSize, AcceptsNonNegativeIntegersOnly) {
  std::size_t v = 77;
  EXPECT_FALSE(parse_tunable_size(nullptr, &v));
  EXPECT_FALSE(parse_tunable_size("", &v));
  EXPECT_FALSE(parse_tunable_size("-5", &v));
  EXPECT_FALSE(parse_tunable_size("abc", &v));
  EXPECT_FALSE(parse_tunable_size("12abc", &v));
  EXPECT_FALSE(parse_tunable_size("4.5", &v));
  EXPECT_FALSE(parse_tunable_size("99999999999999999999999999", &v));  // overflow
  EXPECT_EQ(v, 77u) << "failed parses must leave *out untouched";

  EXPECT_TRUE(parse_tunable_size("0", &v));
  EXPECT_EQ(v, 0u);
  EXPECT_TRUE(parse_tunable_size("4096", &v));
  EXPECT_EQ(v, 4096u);
}

TEST(DispatchEnv, RoundTripThroughInjectedLookup) {
  const DispatchTunables base;  // defaults
  const DispatchTunables t = parse_dispatch_env(
      base, fake_env({{"PORTABENCH_TUNE_FORK_CUTOFF", "1024"},
                      {"PORTABENCH_TUNE_CHUNK", "16"},
                      {"PORTABENCH_TUNE_MIN_GRAIN", "4"}}));
  EXPECT_EQ(t.fork_cutoff, 1024u);
  EXPECT_EQ(t.chunks_per_thread, 16u);
  EXPECT_EQ(t.min_grain, 4u);
}

TEST(DispatchEnv, UnsetAndGarbageKeepBaseValues) {
  DispatchTunables base;
  base.fork_cutoff = 2048;
  base.chunks_per_thread = 12;
  base.min_grain = 3;
  const DispatchTunables untouched = parse_dispatch_env(base, fake_env({}));
  EXPECT_EQ(untouched.fork_cutoff, 2048u);
  EXPECT_EQ(untouched.chunks_per_thread, 12u);
  EXPECT_EQ(untouched.min_grain, 3u);

  const DispatchTunables garbage = parse_dispatch_env(
      base, fake_env({{"PORTABENCH_TUNE_FORK_CUTOFF", "fast"},
                      {"PORTABENCH_TUNE_CHUNK", "-1"},
                      {"PORTABENCH_TUNE_MIN_GRAIN", "8"}}));
  EXPECT_EQ(garbage.fork_cutoff, 2048u);    // unparseable: base kept
  EXPECT_EQ(garbage.chunks_per_thread, 12u);
  EXPECT_EQ(garbage.min_grain, 8u);         // the one valid var applies
}

TEST(LaunchEnv, RoundTripThroughInjectedLookup) {
  const gpusim::LaunchTunables t = gpusim::parse_launch_env(
      gpusim::LaunchTunables{},
      fake_env({{"PORTABENCH_TUNE_LAUNCH_CUTOFF", "512"},
                {"PORTABENCH_TUNE_LAUNCH_CHUNKS", "4"}}));
  EXPECT_EQ(t.fork_cutoff, 512u);
  EXPECT_EQ(t.chunks_per_worker, 4u);

  const gpusim::LaunchTunables kept =
      gpusim::parse_launch_env(gpusim::LaunchTunables{}, fake_env({}));
  EXPECT_EQ(kept.fork_cutoff, simrt::kDefaultForkCutoff);
  EXPECT_EQ(kept.chunks_per_worker, gpusim::kDefaultLaunchChunksPerWorker);
}

/// Setter tests mutate process-global knobs; restore defaults afterwards
/// (the real PORTABENCH_TUNE_* vars are cleared first so "reset" means
/// "back to compile-time defaults" in this process).
class TunablesRoundTrip : public ::testing::Test {
 protected:
  void SetUp() override {
    for (const char* var :
         {"PORTABENCH_TUNE_FORK_CUTOFF", "PORTABENCH_TUNE_CHUNK",
          "PORTABENCH_TUNE_MIN_GRAIN", "PORTABENCH_TUNE_LAUNCH_CUTOFF",
          "PORTABENCH_TUNE_LAUNCH_CHUNKS"}) {
      ::unsetenv(var);
    }
  }
  void TearDown() override {
    reset_dispatch_tunables();
    gpusim::reset_launch_tunables();
  }
};

TEST_F(TunablesRoundTrip, DispatchSetterRoundTripsAndClamps) {
  DispatchTunables t;
  t.fork_cutoff = 0;        // 0 = always fork: legal
  t.chunks_per_thread = 0;  // clamped to 1
  t.min_grain = 0;          // clamped to 1
  set_dispatch_tunables(t);
  const DispatchTunables got = dispatch_tunables();
  EXPECT_EQ(got.fork_cutoff, 0u);
  EXPECT_EQ(got.chunks_per_thread, 1u);
  EXPECT_EQ(got.min_grain, 1u);
  EXPECT_EQ(dispatch_fork_cutoff(), 0u);

  reset_dispatch_tunables();
  const DispatchTunables def = dispatch_tunables();
  EXPECT_EQ(def.fork_cutoff, kDefaultForkCutoff);
  EXPECT_EQ(def.chunks_per_thread, kDefaultChunksPerThread);
  EXPECT_EQ(def.min_grain, kDefaultMinGrain);
}

TEST_F(TunablesRoundTrip, LaunchSetterRoundTripsAndClamps) {
  gpusim::LaunchTunables t;
  t.fork_cutoff = 7;
  t.chunks_per_worker = 0;  // clamped to 1
  gpusim::set_launch_tunables(t);
  const gpusim::LaunchTunables got = gpusim::launch_tunables();
  EXPECT_EQ(got.fork_cutoff, 7u);
  EXPECT_EQ(got.chunks_per_worker, 1u);

  gpusim::reset_launch_tunables();
  const gpusim::LaunchTunables def = gpusim::launch_tunables();
  EXPECT_EQ(def.fork_cutoff, simrt::kDefaultForkCutoff);
  EXPECT_EQ(def.chunks_per_worker, gpusim::kDefaultLaunchChunksPerWorker);
}

// --- the bitwise contract --------------------------------------------------
//
// Every (fork_cutoff, chunks_per_thread, min_grain) point — including the
// degenerate always-fork / always-inline extremes — must produce byte-
// identical parallel_for output and a byte-identical non-associative
// parallel_reduce sum, because lane decomposition and partial-join order
// depend only on the thread count.

struct ForReduceResult {
  std::vector<double> cells;
  double sum = 0.0;
};

ForReduceResult run_workload() {
  constexpr std::size_t kExtent = 4097;  // odd, not a chunk multiple
  ThreadsSpace space(4);
  ForReduceResult r;
  r.cells.assign(kExtent, 0.0);
  parallel_for(space, RangePolicy(0, kExtent, Schedule::kDynamic, 0),
               [&](std::size_t i) {
                 r.cells[i] = 1.0 / (1.0 + static_cast<double>(i * i % 97));
               });
  parallel_reduce(space, RangePolicy(0, kExtent),
                  [](std::size_t i, double& acc) {
                    acc += 1.0 / (1.0 + static_cast<double>(i));
                  },
                  r.sum);
  return r;
}

TEST_F(TunablesRoundTrip, ResultsAreBitwiseInvariantAcrossTheKnobMatrix) {
  reset_dispatch_tunables();
  const ForReduceResult baseline = run_workload();

  for (const std::size_t cutoff : {std::size_t{0}, std::size_t{64}, std::size_t{1u << 20}}) {
    for (const std::size_t chunks : {std::size_t{1}, std::size_t{2}, std::size_t{32}}) {
      for (const std::size_t grain : {std::size_t{1}, std::size_t{16}}) {
        DispatchTunables t;
        t.fork_cutoff = cutoff;
        t.chunks_per_thread = chunks;
        t.min_grain = grain;
        set_dispatch_tunables(t);
        const ForReduceResult got = run_workload();
        ASSERT_EQ(std::memcmp(got.cells.data(), baseline.cells.data(),
                              baseline.cells.size() * sizeof(double)),
                  0)
            << "parallel_for bytes changed at cutoff=" << cutoff
            << " chunks=" << chunks << " grain=" << grain;
        ASSERT_EQ(std::memcmp(&got.sum, &baseline.sum, sizeof(double)), 0)
            << "reduce bytes changed at cutoff=" << cutoff << " chunks=" << chunks
            << " grain=" << grain;
      }
    }
  }
}

}  // namespace
