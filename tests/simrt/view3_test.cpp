// Tests for rank-3 views and batch slicing.
#include "simrt/view3.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace portabench::simrt {
namespace {

TEST(View3, ExtentsAndZeroInit) {
  View3<double, LayoutRight> v(2, 3, 4);
  EXPECT_EQ(v.extent(0), 2u);
  EXPECT_EQ(v.extent(1), 3u);
  EXPECT_EQ(v.extent(2), 4u);
  EXPECT_EQ(v.size(), 24u);
  for (std::size_t i = 0; i < 2; ++i) {
    for (std::size_t j = 0; j < 3; ++j) {
      for (std::size_t k = 0; k < 4; ++k) EXPECT_EQ(v(i, j, k), 0.0);
    }
  }
}

TEST(View3, RowMajorAdjacency) {
  View3<int, LayoutRight> v(2, 3, 4);
  EXPECT_EQ(&v(0, 0, 1) - &v(0, 0, 0), 1);       // k fastest
  EXPECT_EQ(&v(0, 1, 0) - &v(0, 0, 0), 4);       // j stride = n2
  EXPECT_EQ(&v(1, 0, 0) - &v(0, 0, 0), 12);      // i stride = n1*n2
}

TEST(View3, ColMajorAdjacency) {
  View3<int, LayoutLeft> v(2, 3, 4);
  EXPECT_EQ(&v(1, 0, 0) - &v(0, 0, 0), 1);       // i fastest (Julia Array{T,3})
  EXPECT_EQ(&v(0, 1, 0) - &v(0, 0, 0), 2);       // j stride = n0
  EXPECT_EQ(&v(0, 0, 1) - &v(0, 0, 0), 6);       // k stride = n0*n1
}

TEST(View3, CheckedAccess) {
  View3<int, LayoutRight> v(2, 2, 2);
  EXPECT_NO_THROW(v.at(1, 1, 1));
  EXPECT_THROW(v.at(2, 0, 0), precondition_error);
  EXPECT_THROW(v.at(0, 2, 0), precondition_error);
  EXPECT_THROW(v.at(0, 0, 2), precondition_error);
}

TEST(View3, RowMajorSliceIsBatchMatrix) {
  // C convention: batch along dim 0.
  View3<int, LayoutRight> v(3, 4, 5);
  for (std::size_t b = 0; b < 3; ++b) {
    for (std::size_t i = 0; i < 4; ++i) {
      for (std::size_t j = 0; j < 5; ++j) v(b, i, j) = static_cast<int>(100 * b + 10 * i + j);
    }
  }
  auto m = v.slice(1);
  EXPECT_EQ(m.extent(0), 4u);
  EXPECT_EQ(m.extent(1), 5u);
  EXPECT_EQ(m(2, 3), 123);
  m(2, 3) = -1;
  EXPECT_EQ(v(1, 2, 3), -1);  // aliases the rank-3 storage
}

TEST(View3, ColMajorSliceIsJuliaConvention) {
  // Julia convention: A[:, :, b] — batch along the last axis.
  View3<int, LayoutLeft> v(4, 5, 3);
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t j = 0; j < 5; ++j) {
      for (std::size_t b = 0; b < 3; ++b) v(i, j, b) = static_cast<int>(100 * b + 10 * i + j);
    }
  }
  auto m = v.slice(2);
  EXPECT_EQ(m.extent(0), 4u);
  EXPECT_EQ(m.extent(1), 5u);
  EXPECT_EQ(m(1, 4), 214);
  // The slice preserves column-major adjacency.
  EXPECT_EQ(&m(1, 0) - &m(0, 0), 1);
}

TEST(View3, SliceOutOfRangeRejected) {
  View3<int, LayoutRight> r(2, 3, 3);
  EXPECT_THROW(r.slice(2), precondition_error);
  View3<int, LayoutLeft> l(3, 3, 2);
  EXPECT_THROW(l.slice(2), precondition_error);
}

TEST(View3, ExtentDimChecked) {
  View3<int, LayoutRight> v(1, 1, 1);
  EXPECT_THROW(v.extent(3), precondition_error);
}

}  // namespace
}  // namespace portabench::simrt
