// Negative-path admission: every malformed, unsupported, or over-limit
// request maps to a typed AdmitError — the serving layer never aborts on
// input.  Includes a seeded fuzz loop over arbitrary JobDesc bit
// patterns (garbage enum values included) and a queue-full storm, and
// checks the engine stays fully usable after each abuse.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "serve/engine.hpp"
#include "serve/serial.hpp"
#include "serve/trace.hpp"

namespace portabench::serve {
namespace {

JobDesc gemm_job(std::uint64_t id, std::uint32_t n) {
  JobDesc d;
  d.id = id;
  d.kind = JobKind::kGemm;
  d.frontend = Frontend::kTiled;
  d.precision = Precision::kDouble;
  d.n = n;
  d.seed = 0xD1CEull + id;
  return d;
}

TEST(ServeNegativeTest, ZeroSizeIsTypedReject) {
  ServeEngine engine;
  EXPECT_EQ(engine.try_submit(gemm_job(0, 0)), AdmitError::kZeroSize);
  const ServeStats st = engine.stats();
  EXPECT_EQ(st.rejected_total, 1u);
  EXPECT_EQ(st.rejected_by[static_cast<std::size_t>(AdmitError::kZeroSize)], 1u);
  EXPECT_EQ(st.accepted, 0u);
}

TEST(ServeNegativeTest, OversizeIsTypedReject) {
  ServeConfig cfg;
  cfg.max_n = 64;
  ServeEngine engine(cfg);
  EXPECT_EQ(engine.try_submit(gemm_job(0, 64)), AdmitError::kNone);
  EXPECT_EQ(engine.try_submit(gemm_job(1, 65)), AdmitError::kTooLarge);
  engine.drain();
  const ServeStats st = engine.stats();
  EXPECT_EQ(st.completed, 1u);
  EXPECT_EQ(st.rejected_by[static_cast<std::size_t>(AdmitError::kTooLarge)], 1u);
}

TEST(ServeNegativeTest, UnsupportedTriplesAreTypedRejects) {
  ServeEngine engine;
  const auto reject = [&](JobKind k, Frontend f, Precision p) {
    JobDesc d = gemm_job(0, 8);
    d.kind = k;
    d.frontend = f;
    d.precision = p;
    EXPECT_EQ(engine.try_submit(d), AdmitError::kUnsupported)
        << name(k) << "/" << name(f);
  };
  reject(JobKind::kSpmv, Frontend::kJulia, Precision::kDouble);
  reject(JobKind::kSpmv, Frontend::kTiled, Precision::kDouble);
  reject(JobKind::kSpmv, Frontend::kOpenMP, Precision::kHalfIn);
  reject(JobKind::kStencil, Frontend::kJulia, Precision::kDouble);
  reject(JobKind::kStencil, Frontend::kNumba, Precision::kDouble);
  reject(JobKind::kStencil, Frontend::kOpenMP, Precision::kSingle);
  reject(JobKind::kStencil, Frontend::kOpenMP, Precision::kHalfIn);
  EXPECT_EQ(engine.stats().rejected_by[static_cast<std::size_t>(AdmitError::kUnsupported)],
            7u);
}

TEST(ServeNegativeTest, QueueFullStormShedsAndRecovers) {
  ServeConfig cfg;
  cfg.shards = 1;
  cfg.queue_capacity = 4;
  cfg.batch_jobs = 1024;  // storm outruns the flush trigger immediately
  std::vector<JobResult> results;
  cfg.on_complete = [&](const JobResult& r) { results.push_back(r); };
  ServeEngine engine(cfg);

  std::uint64_t accepted = 0;
  std::uint64_t shed = 0;
  for (std::uint64_t id = 0; id < 10'000; ++id) {
    const AdmitError e = engine.try_submit(gemm_job(id, 6));
    if (e == AdmitError::kNone) {
      ++accepted;
    } else {
      ASSERT_EQ(e, AdmitError::kQueueFull) << "id " << id;
      ++shed;
    }
  }
  EXPECT_GT(shed, 0u);
  engine.drain();

  ServeStats st = engine.stats();
  EXPECT_EQ(st.accepted, accepted);
  EXPECT_EQ(st.completed, accepted);
  EXPECT_EQ(st.rejected_by[static_cast<std::size_t>(AdmitError::kQueueFull)], shed);
  EXPECT_EQ(results.size(), accepted);

  // The storm is shed load, not damage: the engine keeps serving, and
  // results stay bitwise-identical to the serial oracle.
  const JobDesc after = gemm_job(20'000, 10);
  ASSERT_EQ(engine.try_submit(after), AdmitError::kNone);
  engine.drain();
  ASSERT_EQ(results.back().id, after.id);
  EXPECT_EQ(results.back().checksum, run_serial(after).checksum);
}

TEST(ServeNegativeTest, SubmitAfterShutdownIsTypedReject) {
  ServeEngine engine;
  ASSERT_EQ(engine.try_submit(gemm_job(0, 8)), AdmitError::kNone);
  engine.shutdown();
  EXPECT_EQ(engine.try_submit(gemm_job(1, 8)), AdmitError::kShutdown);
  const ServeStats st = engine.stats();
  EXPECT_EQ(st.completed, 1u);
  EXPECT_EQ(st.rejected_by[static_cast<std::size_t>(AdmitError::kShutdown)], 1u);
}

TEST(ServeNegativeTest, FuzzedDescsNeverAbortAndAcceptedOnesComplete) {
  ServeConfig cfg;
  cfg.shards = 3;
  cfg.queue_capacity = 16;
  cfg.batch_jobs = 8;
  cfg.max_n = 48;
  std::uint64_t delivered = 0;
  cfg.on_complete = [&](const JobResult&) { ++delivered; };
  ServeEngine engine(cfg);

  Xoshiro256 rng(0xFA22ull);
  std::uint64_t accepted = 0;
  for (std::uint64_t id = 0; id < 4'000; ++id) {
    JobDesc d;
    d.id = id;
    // Raw bit patterns: enum values beyond the defined range included.
    d.kind = static_cast<JobKind>(rng() % 5);
    d.frontend = static_cast<Frontend>(rng() % 8);
    d.precision = static_cast<Precision>(rng() % 5);
    d.n = static_cast<std::uint32_t>(rng() % 80);  // 0 and > max_n included
    d.seed = rng();
    const AdmitError e = engine.try_submit(d);
    if (e == AdmitError::kNone) {
      ++accepted;
      // Whatever the engine admits it must also claim to support.
      EXPECT_TRUE(supported(d.kind, d.frontend, d.precision));
      EXPECT_GE(d.n, 1u);
      EXPECT_LE(d.n, cfg.max_n);
    } else {
      EXPECT_NE(e, AdmitError::kShutdown);
    }
  }
  engine.drain();

  const ServeStats st = engine.stats();
  EXPECT_GT(accepted, 0u) << "fuzzer never produced a valid desc; widen ranges";
  EXPECT_EQ(st.accepted, accepted);
  EXPECT_EQ(st.completed + st.failed, accepted);
  EXPECT_EQ(delivered, accepted);
  EXPECT_EQ(st.rejected_total,
            st.rejected_by[1] + st.rejected_by[2] + st.rejected_by[3] +
                st.rejected_by[4] + st.rejected_by[5]);
}

}  // namespace
}  // namespace portabench::serve
