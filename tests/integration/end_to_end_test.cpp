// End-to-end integration: the full study pipeline in miniature — run every
// supported frontend functionally, derive efficiencies the way the benches
// do, and check the resulting picture against the paper's conclusions.
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "common/stats.hpp"
#include "models/runner.hpp"
#include "perfmodel/predict.hpp"
#include "portability/metric.hpp"

namespace portabench {
namespace {

using models::make_runner;
using models::RunConfig;
using perfmodel::Family;
using perfmodel::kAllPlatforms;
using perfmodel::kPortableFamilies;
using perfmodel::Platform;

TEST(EndToEnd, FullStudyPipelineVerifiesFunctionally) {
  // Every figure's worth of (platform, family, precision) combinations
  // executes functionally at a reduced size and validates.
  int combinations_run = 0;
  for (Platform p : kAllPlatforms) {
    for (Family f : perfmodel::kAllFamilies) {
      auto runner = make_runner(p, f);
      if (!runner) continue;
      for (Precision prec : kAllPrecisions) {
        if (!runner->supports(prec)) continue;
        RunConfig config;
        config.n = 32;
        config.precision = prec;
        const auto result = runner->run(config);
        EXPECT_TRUE(result.verified)
            << perfmodel::name(p) << "/" << perfmodel::name(f) << "/" << name(prec);
        ++combinations_run;
      }
    }
  }
  // 4 platforms x {vendor, kokkos: 2 precisions} + julia: 3 precisions
  // each + numba on 3 platforms x 3 precisions.
  EXPECT_EQ(combinations_run, 4 * 2 + 4 * 2 + 4 * 3 + 3 * 3);
}

TEST(EndToEnd, BenchStyleEfficienciesMatchTable3Builder) {
  // Deriving efficiencies from predicted sweeps by hand (the way the
  // fig benches print them) must agree with the portability module.
  const auto table = portability::build_table3();
  for (const auto& fp : table) {
    for (const auto& entry : fp.entries) {
      if (!entry.supported) continue;
      const auto model = perfmodel::predict_sweep(entry.platform, fp.family, fp.precision);
      const auto vendor =
          perfmodel::predict_sweep(entry.platform, Family::kVendor, fp.precision);
      ASSERT_FALSE(model.empty());
      std::vector<double> ratios;
      for (std::size_t i = 0; i < model.size(); ++i) {
        ratios.push_back(model[i].gflops / vendor[i].gflops);
      }
      EXPECT_NEAR(mean_of(ratios), entry.efficiency, 1e-12);
    }
  }
}

TEST(EndToEnd, PaperHeadlineConclusionsHold) {
  // Section VI, reproduced end to end from the model:
  // (1) "Julia implementations have comparable performance on these
  //     platforms" — efficiency >= 0.85 everywhere except the A100 FP32
  //     open question.
  for (Platform p : kAllPlatforms) {
    const auto sweep = perfmodel::predict_sweep(p, Family::kJulia, Precision::kDouble);
    ASSERT_FALSE(sweep.empty());
    std::vector<double> eff;
    for (const auto& pt : sweep) eff.push_back(pt.efficiency);
    EXPECT_GT(mean_of(eff), 0.85) << perfmodel::name(p);
  }
  // (2) "there is still a performance gap on NVIDIA A100 GPUs for
  //     single-precision floating point cases" (Julia).
  const auto a100_fp32 =
      perfmodel::predict_sweep(Platform::kWombatGpu, Family::kJulia, Precision::kSingle);
  std::vector<double> eff32;
  for (const auto& pt : a100_fp32) eff32.push_back(pt.efficiency);
  EXPECT_LT(mean_of(eff32), 0.7);
  // (3) "Python/Numba implementations still lack the support needed to
  //     reach comparable CPU and GPU performance".
  for (Platform p : {Platform::kCrusherCpu, Platform::kWombatCpu, Platform::kWombatGpu}) {
    const auto sweep = perfmodel::predict_sweep(p, Family::kNumba, Precision::kDouble);
    std::vector<double> eff;
    for (const auto& pt : sweep) eff.push_back(pt.efficiency);
    EXPECT_LT(mean_of(eff), 0.75) << perfmodel::name(p);
  }
}

TEST(EndToEnd, FunctionalChecksumsAgreeAcrossModelsOnSameSeed) {
  // All row-major CPU frontends compute the same C for the same seed
  // (identical inputs, mathematically identical kernel).
  RunConfig config;
  config.n = 40;
  config.seed = 4242;
  auto vendor = make_runner(Platform::kCrusherCpu, Family::kVendor);
  auto kokkos = make_runner(Platform::kCrusherCpu, Family::kKokkos);
  auto numba = make_runner(Platform::kCrusherCpu, Family::kNumba);
  const double ref = vendor->run(config).checksum;
  EXPECT_NEAR(kokkos->run(config).checksum, ref, 1e-6);
  EXPECT_NEAR(numba->run(config).checksum, ref, 1e-6);
}

TEST(EndToEnd, WarmupProtocolAbsorbsJit) {
  // The Section IV measurement protocol: with warm-up exclusion, JIT cost
  // never contaminates the recorded sample.
  auto julia = make_runner(Platform::kWombatCpu, Family::kJulia);
  RunConfig config;
  config.n = 24;
  RunStats stats(/*warmup=*/1);
  for (int rep = 0; rep < 6; ++rep) {
    const auto result = julia->run(config);
    stats.add(result.host_seconds + result.jit_seconds);
  }
  EXPECT_EQ(stats.recorded(), 5u);
  // All recorded samples are JIT-free: far below the 0.35 s compile cost.
  for (double s : stats.sample()) EXPECT_LT(s, 0.35);
}

}  // namespace
}  // namespace portabench
