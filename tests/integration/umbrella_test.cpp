// Compile-and-smoke test for the umbrella header: everything a downstream
// user reaches through <portabench.hpp> is available and coherent.
#include "portabench.hpp"

#include <gtest/gtest.h>

namespace {

TEST(Umbrella, EndToEndThroughPublicApi) {
  using namespace portabench;

  // Host runtime.
  simrt::ThreadsSpace space(2);
  simrt::View2<double, simrt::LayoutRight> a(8, 8);
  simrt::View2<double, simrt::LayoutRight> b(8, 8);
  simrt::View2<double, simrt::LayoutRight> c(8, 8);
  Xoshiro256 rng(1);
  fill_uniform(std::span<double>(a.data(), 64), rng);
  fill_uniform(std::span<double>(b.data(), 64), rng);
  gemm::gemm_openmp_style<double>(space, a, b, c);
  EXPECT_GT(gemm::checksum(c), 0.0);

  // Reduction through the reducer API.
  const double sum = simrt::parallel_reduce(
      space, simrt::RangePolicy(0, 64), simrt::Sum<double>{},
      [&](std::size_t i, double& acc) { acc += c.data()[i]; });
  EXPECT_NEAR(sum, gemm::checksum(c), 1e-9);

  // Device simulator.
  gpusim::DeviceContext ctx(gpusim::GpuSpec::a100());
  gpusim::DeviceBuffer<double> buf(ctx, 64);
  EXPECT_EQ(ctx.bytes_in_use(), 64 * sizeof(double));

  // Performance model + metric.
  const auto pt =
      perfmodel::predict(perfmodel::Platform::kWombatGpu, perfmodel::Family::kJulia,
                         Precision::kDouble, 8192);
  ASSERT_TRUE(pt);
  EXPECT_NEAR(pt->efficiency, 0.867, 0.01);

  // Frontend.
  auto runner = models::make_runner(perfmodel::Platform::kCrusherCpu,
                                    perfmodel::Family::kJulia);
  models::RunConfig config;
  config.n = 16;
  EXPECT_TRUE(runner->run(config).verified);
}

}  // namespace
