// Property tests for the serving layer: for every (shards x batch x
// precision x frontend) point, results streamed through ServeEngine are
// bitwise-identical to serve::run_serial — including under backpressure
// rejects, fail injection, and the portacheck permutation scheduler (the
// sanitized tier re-runs this whole suite under three seeds).
#include "serve/engine.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <mutex>
#include <vector>

#include "serve/serial.hpp"
#include "serve/trace.hpp"

namespace portabench::serve {
namespace {

/// Collects completions keyed by id.  The engine delivers from shard
/// flush threads, so the sink takes a lock (tests are exempt from the
/// raw-thread lint rule).
class ResultSink {
 public:
  void operator()(const JobResult& r) {
    std::lock_guard<std::mutex> lock(mutex_);
    results_[r.id] = r;
  }

  [[nodiscard]] std::map<std::uint64_t, JobResult> take() {
    std::lock_guard<std::mutex> lock(mutex_);
    return results_;
  }

 private:
  std::mutex mutex_;
  std::map<std::uint64_t, JobResult> results_;
};

std::vector<JobDesc> make_trace(const TraceConfig& cfg, std::size_t jobs) {
  TraceGen gen(cfg);
  std::vector<JobDesc> trace;
  trace.reserve(jobs);
  for (std::size_t i = 0; i < jobs; ++i) trace.push_back(gen.next());
  return trace;
}

/// Submit with bounded retry on backpressure; fails the test if a job is
/// rejected for any non-queue-full reason.
void submit_all(ServeEngine& engine, const std::vector<JobDesc>& trace) {
  for (const auto& d : trace) {
    AdmitError e = engine.try_submit(d);
    while (e == AdmitError::kQueueFull) e = engine.try_submit(d);
    ASSERT_EQ(e, AdmitError::kNone) << "job " << d.id << " rejected: " << name(e);
  }
}

void expect_bitwise_identical(const std::vector<JobDesc>& trace,
                              const std::map<std::uint64_t, JobResult>& results) {
  for (const auto& d : trace) {
    const auto it = results.find(d.id);
    ASSERT_NE(it, results.end()) << "job " << d.id << " never completed";
    EXPECT_EQ(it->second.status, JobStatus::kOk);
    const JobResult oracle = run_serial(d);
    EXPECT_EQ(it->second.checksum, oracle.checksum)
        << name(d.kind) << "/" << name(d.frontend) << " n=" << d.n
        << " seed=" << d.seed;
  }
}

TEST(ServeEngineTest, BitwiseIdenticalAcrossShardAndBatchGrid) {
  TraceConfig tcfg;
  tcfg.seed = 7;
  tcfg.min_n = 5;
  tcfg.max_n = 24;
  const auto trace = make_trace(tcfg, 120);

  for (std::size_t shards : {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
    for (std::size_t batch : {std::size_t{4}, std::size_t{32}}) {
      ResultSink sink;
      ServeConfig cfg;
      cfg.shards = shards;
      cfg.batch_jobs = batch;
      cfg.on_complete = std::ref(sink);
      ServeEngine engine(cfg);
      submit_all(engine, trace);
      engine.drain();
      SCOPED_TRACE("shards=" + std::to_string(shards) + " batch=" + std::to_string(batch));
      expect_bitwise_identical(trace, sink.take());
      const ServeStats st = engine.stats();
      EXPECT_EQ(st.accepted, trace.size());
      EXPECT_EQ(st.completed, trace.size());
      EXPECT_EQ(st.failed, 0u);
      EXPECT_GE(st.batches, 1u);
    }
  }
}

TEST(ServeEngineTest, EveryGemmFrontendAndPrecisionBucketMatchesSerial) {
  constexpr Frontend kFronts[] = {Frontend::kOpenMP, Frontend::kKokkos, Frontend::kJulia,
                                  Frontend::kNumba, Frontend::kTiled};
  constexpr Precision kPrecs[] = {Precision::kDouble, Precision::kSingle,
                                  Precision::kHalfIn};
  std::vector<JobDesc> trace;
  std::uint64_t id = 0;
  for (Frontend f : kFronts) {
    for (Precision p : kPrecs) {
      for (std::uint32_t n : {3u, 8u, 17u}) {
        JobDesc d;
        d.id = id++;
        d.kind = JobKind::kGemm;
        d.frontend = f;
        d.precision = p;
        d.n = n;
        d.seed = 0xACE0ull + id;
        trace.push_back(d);
      }
    }
  }

  ResultSink sink;
  ServeConfig cfg;
  cfg.shards = 3;
  cfg.batch_jobs = 8;
  cfg.on_complete = std::ref(sink);
  ServeEngine engine(cfg);
  submit_all(engine, trace);
  engine.drain();
  expect_bitwise_identical(trace, sink.take());
}

TEST(ServeEngineTest, SpmvAndStencilBucketsMatchSerial) {
  std::vector<JobDesc> trace;
  std::uint64_t id = 0;
  for (Frontend f : {Frontend::kOpenMP, Frontend::kKokkos, Frontend::kNumba}) {
    for (Precision p : {Precision::kDouble, Precision::kSingle}) {
      for (std::uint32_t n : {1u, 7u, 33u}) {
        trace.push_back({id++, JobKind::kSpmv, f, p, n, 0xBEEFull + id});
      }
    }
  }
  for (Frontend f : {Frontend::kOpenMP, Frontend::kKokkos, Frontend::kTiled}) {
    // n = 2 pins the degenerate no-interior sweep (output stays zero).
    for (std::uint32_t n : {2u, 9u, 20u}) {
      trace.push_back({id++, JobKind::kStencil, f, Precision::kDouble, n, 0xF00Dull + id});
    }
  }

  ResultSink sink;
  ServeConfig cfg;
  cfg.shards = 2;
  cfg.batch_jobs = 5;
  cfg.on_complete = std::ref(sink);
  ServeEngine engine(cfg);
  submit_all(engine, trace);
  engine.drain();
  expect_bitwise_identical(trace, sink.take());
}

TEST(ServeEngineTest, BackpressureShedsAreTypedAndSurvivorsStayBitwise) {
  TraceConfig tcfg;
  tcfg.seed = 11;
  tcfg.min_n = 4;
  tcfg.max_n = 16;
  const auto trace = make_trace(tcfg, 400);

  ResultSink sink;
  ServeConfig cfg;
  cfg.shards = 2;
  cfg.queue_capacity = 4;  // tiny bound: force queue-full sheds
  cfg.batch_jobs = 64;     // flush trigger rarely fires before the queue fills
  cfg.on_complete = std::ref(sink);
  ServeEngine engine(cfg);

  std::vector<JobDesc> accepted;
  std::uint64_t shed = 0;
  for (const auto& d : trace) {
    const AdmitError e = engine.try_submit(d);  // no retry: sheds are expected
    if (e == AdmitError::kNone) {
      accepted.push_back(d);
    } else {
      ASSERT_EQ(e, AdmitError::kQueueFull);
      ++shed;
    }
  }
  engine.drain();

  const ServeStats st = engine.stats();
  EXPECT_GT(shed, 0u) << "queue bound never engaged; shrink queue_capacity";
  EXPECT_EQ(st.accepted, accepted.size());
  EXPECT_EQ(st.completed, accepted.size());
  EXPECT_EQ(st.rejected_total, shed);
  EXPECT_EQ(st.rejected_by[static_cast<std::size_t>(AdmitError::kQueueFull)], shed);

  // Sheds leave the engine untouched: every accepted job is still
  // bitwise-identical to its serial replay.
  expect_bitwise_identical(accepted, sink.take());
}

TEST(ServeEngineTest, ReplayOfSameTraceIsDeterministic) {
  TraceConfig tcfg;
  tcfg.seed = 23;
  tcfg.min_n = 6;
  tcfg.max_n = 20;
  const auto trace = make_trace(tcfg, 150);
  ASSERT_EQ(make_trace(tcfg, 150), trace) << "TraceGen must be pure in its config";

  const auto run_once = [&] {
    ResultSink sink;
    ServeConfig cfg;
    cfg.shards = 4;
    cfg.batch_jobs = 16;
    cfg.on_complete = std::ref(sink);
    ServeEngine engine(cfg);
    submit_all(engine, trace);
    engine.drain();
    return sink.take();
  };

  const auto first = run_once();
  const auto second = run_once();
  ASSERT_EQ(first.size(), second.size());
  for (const auto& [id, r] : first) {
    const auto it = second.find(id);
    ASSERT_NE(it, second.end());
    EXPECT_EQ(r.checksum, it->second.checksum) << "job " << id;
  }
}

TEST(ServeEngineTest, FailInjectionMarksJobsFailedAndSparesTheRest) {
  TraceConfig tcfg;
  tcfg.seed = 31;
  tcfg.min_n = 4;
  tcfg.max_n = 12;
  const auto trace = make_trace(tcfg, 96);

  ResultSink sink;
  ServeConfig cfg;
  cfg.shards = 2;
  cfg.batch_jobs = 8;
  cfg.on_complete = std::ref(sink);
  cfg.fail_injection = [](const JobDesc& d) { return d.id % 7 == 0; };
  ServeEngine engine(cfg);
  submit_all(engine, trace);
  engine.drain();

  const auto results = sink.take();
  std::vector<JobDesc> healthy;
  std::uint64_t injected = 0;
  for (const auto& d : trace) {
    const auto it = results.find(d.id);
    ASSERT_NE(it, results.end());
    if (d.id % 7 == 0) {
      EXPECT_EQ(it->second.status, JobStatus::kFailed);
      ++injected;
    } else {
      healthy.push_back(d);
    }
  }
  expect_bitwise_identical(healthy, results);

  const ServeStats st = engine.stats();
  EXPECT_EQ(st.failed, injected);
  EXPECT_EQ(st.completed, trace.size() - injected);
  EXPECT_GE(st.batch_errors, 1u) << "injected batches must surface as batch errors";
}

TEST(ServeEngineTest, EqualDescsLandInOneBucketAndAgree) {
  // Identical jobs (same kind/frontend/precision/size class/seed) must
  // produce identical checksums regardless of which batch slot they fill.
  std::vector<JobDesc> trace;
  for (std::uint64_t id = 0; id < 24; ++id) {
    trace.push_back({id, JobKind::kGemm, Frontend::kTiled, Precision::kSingle, 12,
                     0x5EEDull});
  }
  ResultSink sink;
  ServeConfig cfg;
  cfg.shards = 1;
  cfg.batch_jobs = 24;
  cfg.on_complete = std::ref(sink);
  ServeEngine engine(cfg);
  submit_all(engine, trace);
  engine.drain();

  const auto results = sink.take();
  ASSERT_EQ(results.size(), trace.size());
  const double expected = run_serial(trace.front()).checksum;
  for (const auto& [id, r] : results) {
    EXPECT_EQ(r.checksum, expected) << "job " << id;
  }
}

TEST(ServeEngineTest, MultiDeviceTopologyRoutesShardsAndStaysBitwise) {
  TraceConfig tcfg;
  tcfg.seed = 29;
  tcfg.min_n = 5;
  tcfg.max_n = 20;
  const auto trace = make_trace(tcfg, 160);

  ResultSink sink;
  ServeConfig cfg;
  cfg.shards = 4;
  cfg.batch_jobs = 8;
  cfg.on_complete = std::ref(sink);
  cfg.topology = gpusim::TopologyConfig::wombat_node(2);
  cfg.topology.workers_per_device = 2;  // keep the suite light under ctest -j
  ServeEngine engine(cfg);

  // Shards deal round-robin across the two devices, each with its own
  // private engine (not the process-shared one).
  ASSERT_EQ(engine.topology().devices(), 2u);
  EXPECT_EQ(engine.device_of(0), 0u);
  EXPECT_EQ(engine.device_of(1), 1u);
  EXPECT_EQ(engine.device_of(2), 0u);
  EXPECT_EQ(engine.device_of(3), 1u);
  EXPECT_NE(&engine.topology().engine(0), &engine.topology().engine(1));
  EXPECT_NE(&engine.topology().engine(0), &gpusim::LaunchEngine::shared());

  submit_all(engine, trace);
  engine.drain();
  expect_bitwise_identical(trace, sink.take());

  // Both devices actually ran work: the fill/launch counters tally per
  // device, so each context must have seen launches.
  EXPECT_GT(engine.topology().context(0).counters().kernel_launches, 0u);
  EXPECT_GT(engine.topology().context(1).counters().kernel_launches, 0u);
}

TEST(ServeEngineTest, WorkStealingDrainsSkewedShardsBitwise) {
  // Skew the bucket mix: every job's id hashes to shards 1-3, so shard
  // 0's own queue is empty.  With work_steal on, drain()'s first flush
  // (shard 0) tops its batch up from the victims in pinned order —
  // every job in this trace is flushed by a thief.
  TraceConfig tcfg;
  tcfg.seed = 37;
  tcfg.min_n = 4;
  tcfg.max_n = 16;
  auto trace = make_trace(tcfg, 90);
  std::uint64_t next_id = 1;
  for (auto& d : trace) {
    d.id = next_id;  // ids 1,2,3, 5,6,7, ... — never 0 mod 4
    next_id = (next_id + 1) % 4 == 0 ? next_id + 2 : next_id + 1;
  }

  const auto run_once = [&](bool steal) {
    ResultSink sink;
    ServeConfig cfg;
    cfg.shards = 4;
    cfg.batch_jobs = 16;
    cfg.queue_capacity = 128;
    cfg.on_complete = std::ref(sink);
    cfg.work_steal = steal;
    ServeEngine engine(cfg);
    // Submit without tripping the flush trigger per shard (30 jobs per
    // victim < batch_jobs would flush; cap via batch size 64 instead).
    submit_all(engine, trace);
    engine.drain();
    const ServeStats st = engine.stats();
    EXPECT_EQ(st.completed, trace.size());
    expect_bitwise_identical(trace, sink.take());
    return st.stolen;
  };

  const std::uint64_t stolen = run_once(true);
  EXPECT_GT(stolen, 0u) << "skewed trace with stealing on must steal";
  // Pinned steal order: a replay steals the identical job count.
  EXPECT_EQ(run_once(true), stolen);
  EXPECT_EQ(run_once(false), 0u) << "stealing off must never steal";
}

}  // namespace
}  // namespace portabench::serve
