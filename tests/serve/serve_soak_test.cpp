// Soak tier: stream >= 100k small mixed jobs through one ServeEngine and
// hold it to the zero-steady-state-allocation contract — after a warmup
// that sizes every shard's arena for the worst-case batch, the high-water
// mark and grow-event count must stay exactly flat for every wave of the
// soak.  Registered three times under `ctest -L soak`, each run under a
// different portacheck permutation seed (PORTABENCH_CHECK_SEED=1..3), so
// the whole soak also executes under the sanitizer's permuted serial
// schedule.
//
// A systematic 1-in-97 sample of the trace is bitwise-verified against
// serve::run_serial; verifying all 100k serially would double the
// runtime without adding coverage (every bucket shape recurs thousands
// of times).
#include <gtest/gtest.h>

#include <vector>

#include "serve/engine.hpp"
#include "serve/serial.hpp"
#include "serve/trace.hpp"

namespace portabench::serve {
namespace {

constexpr std::size_t kTotalJobs = 100'000;
constexpr std::size_t kWaveJobs = 10'000;
constexpr std::size_t kVerifyStride = 97;
constexpr std::uint32_t kMaxN = 16;  // small mixed jobs: the serving regime

TEST(ServeSoakTest, ArenaHighWaterIsFlatAfterWarmup) {
  ServeConfig cfg;
  cfg.shards = 4;
  cfg.batch_jobs = 32;

  std::vector<double> checksums(kTotalJobs, 0.0);
  std::vector<unsigned char> done(kTotalJobs, 0);
  cfg.on_complete = [&](const JobResult& r) {
    if (r.id < kTotalJobs) {  // warmup ids live above the trace range
      checksums[r.id] = r.checksum;
      done[r.id] = 1;
    }
  };
  ServeEngine engine(cfg);

  const auto submit = [&](const JobDesc& d) {
    while (engine.try_submit(d) == AdmitError::kQueueFull) {
    }
  };

  // Warmup: one full batch of byte-maximal jobs (FP64 GEMM at the trace's
  // size cap dominates job_bytes for every supported kind at n <= kMaxN)
  // per shard, so each arena slab reaches its worst-case batch footprint
  // up front.  Consecutive ids round-robin the shards.
  const std::size_t warm_jobs = cfg.shards * cfg.batch_jobs;
  for (std::size_t i = 0; i < warm_jobs; ++i) {
    JobDesc d;
    d.id = kTotalJobs + i;
    d.kind = JobKind::kGemm;
    d.frontend = Frontend::kTiled;
    d.precision = Precision::kDouble;
    d.n = kMaxN;
    d.seed = 0xA5A5ull + i;
    submit(d);
  }
  engine.drain();
  const ServeStats warm = engine.stats();
  ASSERT_EQ(warm.completed, warm_jobs);
  ASSERT_GT(warm.arena_high_water, 0u);

  // Soak: every batch is <= batch_jobs jobs of <= the warmed-up byte
  // size, so the slabs must already fit — exactly zero growth allowed.
  TraceConfig tcfg;
  tcfg.seed = 404;
  tcfg.min_n = 4;
  tcfg.max_n = kMaxN;
  TraceGen gen(tcfg);
  std::vector<JobDesc> trace;
  trace.reserve(kTotalJobs);

  std::size_t streamed = 0;
  while (streamed < kTotalJobs) {
    for (std::size_t i = 0; i < kWaveJobs; ++i) {
      const JobDesc d = gen.next();
      trace.push_back(d);
      submit(d);
    }
    engine.drain();
    streamed += kWaveJobs;
    const ServeStats st = engine.stats();
    ASSERT_EQ(st.arena_high_water, warm.arena_high_water)
        << "arena grew after warmup at " << streamed << " jobs";
    ASSERT_EQ(st.arena_grow_events, warm.arena_grow_events)
        << "slab reallocation after warmup at " << streamed << " jobs";
  }

  const ServeStats st = engine.stats();
  EXPECT_EQ(st.accepted, kTotalJobs + warm_jobs);
  EXPECT_EQ(st.completed, kTotalJobs + warm_jobs);
  EXPECT_EQ(st.failed, 0u);
  EXPECT_EQ(st.batch_errors, 0u);

  // Systematic bitwise sample against the serial oracle.
  std::size_t verified = 0;
  for (std::size_t i = 0; i < kTotalJobs; i += kVerifyStride) {
    ASSERT_EQ(done[i], 1u) << "job " << i << " never completed";
    const JobResult oracle = run_serial(trace[i]);
    ASSERT_EQ(checksums[i], oracle.checksum)
        << name(trace[i].kind) << "/" << name(trace[i].frontend)
        << " n=" << trace[i].n;
    ++verified;
  }
  EXPECT_GE(verified, kTotalJobs / kVerifyStride);
}

}  // namespace
}  // namespace portabench::serve
