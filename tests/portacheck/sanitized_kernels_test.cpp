// The sanitizer's end-to-end contract, both directions:
//
//   1. The kernel zoo (GEMM, SpMV, stencil — host and device shapes) is
//      race- and bounds-clean under shadow instrumentation and produces
//      correct results under every permutation-scheduler seed; reductions
//      stay bitwise-identical across seeds.
//   2. The intentionally defective fixture kernels are caught, with the
//      offending array named and the conflicting cell identified.
//
// Runs in the default tier with seed 1; the `sanitized` ctest tier reruns
// it (and the kernel suites) under PORTABENCH_CHECK_SEED = 1, 2, 3.
#include <gtest/gtest.h>

#include <cstdlib>
#include <span>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "gemm/kernels_cpu.hpp"
#include "gemm/kernels_gpu.hpp"
#include "gemm/reference.hpp"
#include "gemm/validate.hpp"
#include "gpusim/device.hpp"
#include "gpusim/launch.hpp"
#include "gpusim/memory.hpp"
#include "portacheck/fixtures.hpp"
#include "portacheck/portacheck.hpp"
#include "simrt/mdarray.hpp"
#include "simrt/parallel.hpp"
#include "spmv/kernels.hpp"
#include "spmv/sparse.hpp"
#include "stencil/kernels.hpp"

namespace portabench {
namespace {

namespace pc = portacheck;

/// Scheduler seed for this process: the sanitized ctest tier sets
/// PORTABENCH_CHECK_SEED to 1/2/3; the default tier runs with seed 1.
std::uint64_t test_seed() {
  const char* env = std::getenv("PORTABENCH_CHECK_SEED");
  if (env != nullptr && *env != '\0') return std::strtoull(env, nullptr, 10);
  return 1;
}

template <class T, class Layout>
simrt::View2<T, Layout> random_matrix(std::size_t rows, std::size_t cols,
                                      std::uint64_t seed) {
  simrt::View2<T, Layout> v(rows, cols);
  Xoshiro256 rng(seed);
  fill_uniform(std::span<T>(v.data(), rows * cols), rng);
  return v;
}

// --- CPU GEMM frontends over shadow views ----------------------------------

template <class Layout, class Kernel>
void check_cpu_gemm_clean(Kernel&& kernel) {
  pc::ScopedCheck check(test_seed());
  const std::size_t n = 24;
  auto A = random_matrix<double, Layout>(n, n, 11);
  auto B = random_matrix<double, Layout>(n, n, 12);
  simrt::View2<double, Layout> C(n, n);

  simrt::ThreadsSpace space(4);
  pc::ShadowView2<double, Layout> sA(A, "A");
  pc::ShadowView2<double, Layout> sB(B, "B");
  pc::ShadowView2<double, Layout> sC(C, "C");
  kernel(space, sA, sB, sC);

  EXPECT_GT(sC.log().accesses(), 0u);
  simrt::View2<double, Layout> C_ref(n, n);
  gemm::reference_gemm<double>(A, B, C_ref);
  EXPECT_LE(gemm::max_abs_diff(C, C_ref), 1e-11);
}

TEST(SanitizedGemmCpu, OpenMPStyleClean) {
  check_cpu_gemm_clean<simrt::LayoutRight>([](auto& s, auto& A, auto& B, auto& C) {
    gemm::gemm_openmp_style<double>(s, A, B, C);
  });
}

TEST(SanitizedGemmCpu, KokkosStyleClean) {
  check_cpu_gemm_clean<simrt::LayoutRight>([](auto& s, auto& A, auto& B, auto& C) {
    gemm::gemm_kokkos_style<double>(s, A, B, C);
  });
}

TEST(SanitizedGemmCpu, JuliaStyleCleanBothBoundsModes) {
  check_cpu_gemm_clean<simrt::LayoutLeft>([](auto& s, auto& A, auto& B, auto& C) {
    gemm::gemm_julia_style<double>(s, A, B, C, /*inbounds=*/true);
  });
  check_cpu_gemm_clean<simrt::LayoutLeft>([](auto& s, auto& A, auto& B, auto& C) {
    gemm::gemm_julia_style<double>(s, A, B, C, /*inbounds=*/false);
  });
}

TEST(SanitizedGemmCpu, NumbaStyleClean) {
  check_cpu_gemm_clean<simrt::LayoutRight>([](auto& s, auto& A, auto& B, auto& C) {
    gemm::gemm_numba_style<double>(s, A, B, C);
  });
}

TEST(SanitizedGemmCpu, TeamStyleClean) {
  check_cpu_gemm_clean<simrt::LayoutRight>([](auto& s, auto& A, auto& B, auto& C) {
    gemm::gemm_team_style<double>(s, A, B, C, /*team_size=*/4);
  });
}

// --- GPU GEMM frontends over shadow device buffers -------------------------

/// Row-major host reference for the flat device layouts.
std::vector<double> flat_gemm_reference(const std::vector<double>& A,
                                        const std::vector<double>& B, std::size_t m,
                                        std::size_t n, std::size_t k, bool column_major) {
  std::vector<double> C(m * n, 0.0);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      double sum = 0.0;
      for (std::size_t l = 0; l < k; ++l) {
        sum += column_major ? A[i + l * m] * B[l + j * k] : A[i * k + l] * B[l * n + j];
      }
      C[column_major ? i + j * m : i * n + j] = sum;
    }
  }
  return C;
}

template <class Kernel>
void check_gpu_gemm_clean(bool column_major, Kernel&& kernel) {
  pc::ScopedCheck check(test_seed());
  gpusim::DeviceContext ctx(gpusim::GpuSpec::a100());
  // n = 20 with 8x8 blocks: partial edge blocks exercise the guards.
  const std::size_t n = 20;
  std::vector<double> hA(n * n);
  std::vector<double> hB(n * n);
  Xoshiro256 rng(7);
  fill_uniform(std::span<double>(hA), rng);
  fill_uniform(std::span<double>(hB), rng);

  gpusim::DeviceBuffer<double> dA(ctx, n * n);
  gpusim::DeviceBuffer<double> dB(ctx, n * n);
  gpusim::DeviceBuffer<double> dC(ctx, n * n);
  dA.copy_from_host(hA);
  dB.copy_from_host(hB);

  pc::ShadowDeviceBuffer<double> sA(dA, "dA");
  pc::ShadowDeviceBuffer<double> sB(dB, "dB");
  pc::ShadowDeviceBuffer<double> sC(dC, "dC");
  gemm::GpuLaunchConfig cfg{.block = {8, 8, 1}};
  kernel(ctx, cfg, sA, sB, sC, n);

  std::vector<double> hC(n * n);
  dC.copy_to_host(hC);
  const auto ref = flat_gemm_reference(hA, hB, n, n, n, column_major);
  for (std::size_t i = 0; i < n * n; ++i) EXPECT_NEAR(hC[i], ref[i], 1e-11) << i;
  EXPECT_GT(sC.log().accesses(), 0u);
}

TEST(SanitizedGemmGpu, CudaStyleClean) {
  check_gpu_gemm_clean(false, [](auto& ctx, const auto& cfg, auto& A, auto& B, auto& C,
                                 std::size_t n) {
    gemm::gemm_cuda_style<double>(ctx, cfg, A, B, C, n, n, n);
  });
}

TEST(SanitizedGemmGpu, KokkosGpuStyleClean) {
  check_gpu_gemm_clean(false, [](auto& ctx, const auto& cfg, auto& A, auto& B, auto& C,
                                 std::size_t n) {
    gemm::gemm_kokkos_gpu_style<double>(ctx, cfg, A, B, C, n, n, n);
  });
}

TEST(SanitizedGemmGpu, JuliaGpuStyleClean) {
  check_gpu_gemm_clean(true, [](auto& ctx, const auto& cfg, auto& A, auto& B, auto& C,
                                std::size_t n) {
    gemm::gemm_julia_gpu_style<double>(ctx, cfg, A, B, C, n, n, n);
  });
}

TEST(SanitizedGemmGpu, NumbaCudaStyleClean) {
  check_gpu_gemm_clean(false, [](auto& ctx, const auto& cfg, auto& A, auto& B, auto& C,
                                 std::size_t n) {
    gemm::gemm_numba_cuda_style<double>(ctx, cfg, A, B, C, n, n, n);
  });
}

TEST(SanitizedGemmGpu, TiledSharedClean) {
  // Cooperative kernel: for_lanes barriers open fresh epochs, so the
  // cross-phase reuse of the shared tiles must not be flagged.
  check_gpu_gemm_clean(false, [](auto& ctx, const auto& cfg, auto& A, auto& B, auto& C,
                                 std::size_t n) {
    gemm::gemm_tiled_shared<double>(ctx, cfg, A, B, C, n, n, n);
  });
}

// --- SpMV frontends --------------------------------------------------------

TEST(SanitizedSpmv, CsrRowParallelClean) {
  pc::ScopedCheck check(test_seed());
  const auto A = spmv::random_csr<double>(64, 64, 8, 42);
  simrt::View1<double> x(64);
  simrt::View1<double> y(64);
  Xoshiro256 rng(3);
  fill_uniform(x.span(), rng);
  std::vector<double> y_ref(64);
  spmv::spmv_reference<double>(A, std::span<const double>(x.data(), 64),
                               std::span<double>(y_ref));

  simrt::ThreadsSpace space(4);
  pc::ShadowView1<double> sx(x, "x");
  pc::ShadowView1<double> sy(y, "y");
  spmv::spmv_csr_row_parallel<double>(space, A, sx, sy);

  // Row-parallel keeps each row's entry order: bitwise-equal to serial.
  for (std::size_t r = 0; r < 64; ++r) EXPECT_EQ(y(r), y_ref[r]) << r;
}

TEST(SanitizedSpmv, CscColumnParallelClean) {
  pc::ScopedCheck check(test_seed());
  const auto csr = spmv::random_csr<double>(48, 48, 6, 17);
  const auto csc = spmv::csr_to_csc(csr);
  simrt::View1<double> x(48);
  simrt::View1<double> y(48);
  Xoshiro256 rng(4);
  fill_uniform(x.span(), rng);
  std::vector<double> y_ref(48);
  spmv::spmv_reference<double>(csr, std::span<const double>(x.data(), 48),
                               std::span<double>(y_ref));

  simrt::ThreadsSpace space(4);
  pc::ShadowView1<double> sx(x, "x");
  pc::ShadowView1<double> sy(y, "y");
  spmv::spmv_csc_column_parallel<double>(space, csc, sx, sy);

  for (std::size_t r = 0; r < 48; ++r) EXPECT_NEAR(y(r), y_ref[r], 1e-12) << r;
}

TEST(SanitizedSpmv, GpuScalarAndVectorClean) {
  pc::ScopedCheck check(test_seed());
  gpusim::DeviceContext ctx(gpusim::GpuSpec::a100());
  const auto A = spmv::random_csr<double>(100, 100, 10, 23);
  std::vector<double> hx(100);
  Xoshiro256 rng(5);
  fill_uniform(std::span<double>(hx), rng);
  std::vector<double> y_ref(100);
  spmv::spmv_reference<double>(A, std::span<const double>(hx), std::span<double>(y_ref));

  gpusim::DeviceBuffer<double> dx(ctx, 100);
  gpusim::DeviceBuffer<double> dy(ctx, 100);
  dx.copy_from_host(hx);
  pc::ShadowDeviceBuffer<double> sx(dx, "x");
  pc::ShadowDeviceBuffer<double> sy(dy, "y");

  spmv::spmv_gpu_scalar<double>(ctx, A, sx, sy);
  std::vector<double> hy(100);
  dy.copy_to_host(hy);
  for (std::size_t r = 0; r < 100; ++r) EXPECT_EQ(hy[r], y_ref[r]) << "scalar row " << r;

  dy.zero();
  spmv::spmv_gpu_vector<double>(ctx, A, sx, sy);
  dy.copy_to_host(hy);
  for (std::size_t r = 0; r < 100; ++r) {
    EXPECT_NEAR(hy[r], y_ref[r], 1e-12) << "vector row " << r;
  }
}

// --- Stencil sweeps --------------------------------------------------------

TEST(SanitizedStencil, MdrangeSweepClean) {
  pc::ScopedCheck check(test_seed());
  const std::size_t rows = 33, cols = 29;
  auto in = random_matrix<double, simrt::LayoutRight>(rows, cols, 9);
  simrt::View2<double> out(rows, cols);
  simrt::View2<double> out_ref(rows, cols);
  stencil::sweep_serial(in, out_ref);

  simrt::ThreadsSpace space(4);
  pc::ShadowView2<double> sin(in, "in");
  pc::ShadowView2<double> sout(out, "out");
  stencil::sweep_mdrange(space, sin, sout);

  EXPECT_EQ(gemm::max_abs_diff(out, out_ref), 0.0);
}

TEST(SanitizedStencil, GpuSweepsClean) {
  pc::ScopedCheck check(test_seed());
  gpusim::DeviceContext ctx(gpusim::GpuSpec::a100());
  const std::size_t rows = 35, cols = 27;
  std::vector<double> host(rows * cols);
  Xoshiro256 rng(13);
  fill_uniform(std::span<double>(host), rng);

  simrt::View2<double> in_v(rows, cols);
  simrt::View2<double> ref_v(rows, cols);
  for (std::size_t i = 0; i < rows; ++i) {
    for (std::size_t j = 0; j < cols; ++j) in_v(i, j) = host[i * cols + j];
  }
  stencil::sweep_serial(in_v, ref_v);

  gpusim::DeviceBuffer<double> din(ctx, rows * cols);
  gpusim::DeviceBuffer<double> dout(ctx, rows * cols);
  din.copy_from_host(host);
  pc::ShadowDeviceBuffer<double> sin(din, "in");
  pc::ShadowDeviceBuffer<double> sout(dout, "out");

  stencil::sweep_gpu_naive(ctx, sin, sout, rows, cols);
  std::vector<double> back(rows * cols);
  dout.copy_to_host(back);
  for (std::size_t i = 1; i + 1 < rows; ++i) {
    for (std::size_t j = 1; j + 1 < cols; ++j) {
      EXPECT_EQ(back[i * cols + j], ref_v(i, j)) << "naive (" << i << ", " << j << ")";
    }
  }

  dout.zero();
  stencil::sweep_gpu_tiled(ctx, sin, sout, rows, cols, /*tile=*/8);
  dout.copy_to_host(back);
  for (std::size_t i = 1; i + 1 < rows; ++i) {
    for (std::size_t j = 1; j + 1 < cols; ++j) {
      EXPECT_EQ(back[i * cols + j], ref_v(i, j)) << "tiled (" << i << ", " << j << ")";
    }
  }
}

// --- Order-independence: results must not depend on the schedule seed ------

TEST(SanitizedDeterminism, GemmChecksumBitwiseIdenticalAcrossSeeds) {
  const std::size_t n = 32;
  auto A = random_matrix<float, simrt::LayoutRight>(n, n, 21);
  auto B = random_matrix<float, simrt::LayoutRight>(n, n, 22);

  std::vector<double> sums;
  for (std::uint64_t seed : {0ull, 1ull, 2ull, 3ull}) {
    pc::ScopedCheck check(seed);
    simrt::View2<float> C(n, n);
    simrt::ThreadsSpace space(3);
    pc::ShadowView2<float> sA(A, "A");
    pc::ShadowView2<float> sB(B, "B");
    pc::ShadowView2<float> sC(C, "C");
    gemm::gemm_openmp_style<float>(space, sA, sB, sC);
    sums.push_back(gemm::checksum(C));
  }
  for (std::size_t i = 1; i < sums.size(); ++i) EXPECT_EQ(sums[0], sums[i]);
}

TEST(SanitizedDeterminism, ParallelReduceBitwiseIdenticalAcrossSeeds) {
  // The permuted scheduler reassigns blocks to threads but must preserve
  // the fp summation order (partials joined in block order).
  std::vector<double> results;
  for (std::uint64_t seed : {0ull, 1ull, 5ull, 99ull}) {
    pc::ScopedCheck check(seed);
    simrt::ThreadsSpace space(4);
    double sum = 0.0;
    simrt::parallel_reduce(space, simrt::RangePolicy(0, 10'000),
                           [](std::size_t i, double& acc) {
                             acc += 1.0 / static_cast<double>(i + 1);
                           },
                           sum);
    results.push_back(sum);
  }
  for (std::size_t i = 1; i < results.size(); ++i) EXPECT_EQ(results[0], results[i]);
}

// --- Negative controls: the defective fixtures must be caught --------------

TEST(RacyFixtures, HistogramRaceCaughtSerially) {
  // Schedule-independence: the logical race is flagged even under the
  // serial space, where the accesses never actually interleave.
  pc::ScopedCheck check(test_seed());
  simrt::View1<int> bins(8);
  pc::ShadowView1<int> sbins(bins, "bins");
  simrt::SerialSpace space;
  try {
    pc::fixtures::racy_histogram(space, sbins, 64);
    FAIL() << "expected race_error";
  } catch (const pc::race_error& e) {
    EXPECT_EQ(e.array(), "bins");
    EXPECT_LT(e.indices()[0], 8u);
    EXPECT_NE(e.lane_a(), e.lane_b());
    const std::string what = e.what();
    EXPECT_NE(what.find("bins"), std::string::npos);
    EXPECT_NE(what.find("race"), std::string::npos);
  }
}

TEST(RacyFixtures, HistogramRaceCaughtThreaded) {
  pc::ScopedCheck check(test_seed());
  simrt::View1<int> bins(4);
  pc::ShadowView1<int> sbins(bins, "bins");
  simrt::ThreadsSpace space(4);
  EXPECT_THROW(pc::fixtures::racy_histogram(space, sbins, 64), pc::race_error);
}

TEST(RacyFixtures, InPlaceStencilRaceCaught) {
  pc::ScopedCheck check(test_seed());
  gpusim::DeviceContext ctx(gpusim::GpuSpec::a100());
  const std::size_t rows = 16, cols = 16;
  gpusim::DeviceBuffer<double> buf(ctx, rows * cols);
  std::vector<double> host(rows * cols, 1.0);
  buf.copy_from_host(host);
  pc::ShadowDeviceBuffer<double> grid(buf, "grid");
  try {
    pc::fixtures::racy_inplace_stencil(ctx, grid, rows, cols);
    FAIL() << "expected race_error";
  } catch (const pc::race_error& e) {
    EXPECT_EQ(e.array(), "grid");
    EXPECT_LT(e.indices()[0], rows * cols);
  }
}

TEST(RacyFixtures, UnguardedGemmBoundsCaught) {
  pc::ScopedCheck check(test_seed());
  gpusim::DeviceContext ctx(gpusim::GpuSpec::a100());
  const std::size_t n = 20;  // 16x16 blocks over-cover a 20x20 output
  gpusim::DeviceBuffer<double> dA(ctx, n * n);
  gpusim::DeviceBuffer<double> dB(ctx, n * n);
  gpusim::DeviceBuffer<double> dC(ctx, n * n);
  pc::ShadowDeviceBuffer<double> sA(dA, "A");
  pc::ShadowDeviceBuffer<double> sB(dB, "B");
  pc::ShadowDeviceBuffer<double> sC(dC, "C");
  const gpusim::Dim3 block{16, 16, 1};
  const gpusim::Dim3 grid{gpusim::blocks_for(n, block.x), gpusim::blocks_for(n, block.y), 1};
  try {
    pc::fixtures::unguarded_gemm<double>(ctx, grid, block, sA, sB, sC, n, n, n);
    FAIL() << "expected bounds_error";
  } catch (const pc::bounds_error& e) {
    EXPECT_GE(e.indices()[0], n * n);  // past the allocation
    EXPECT_EQ(e.extents()[0], n * n);
  }
}

}  // namespace
}  // namespace portabench
