// Tests for the portacheck hook substrate: activation state, the seeded
// permutation scheduler, lane scoping, and region epochs.
#include "portacheck/hooks.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <vector>

namespace portabench::portacheck {
namespace {

TEST(Permutation, SeedZeroIsIdentity) {
  const auto order = permutation(64, 0);
  for (std::size_t i = 0; i < order.size(); ++i) EXPECT_EQ(order[i], i);
}

TEST(Permutation, IsAPermutation) {
  for (std::uint64_t seed : {1ull, 2ull, 3ull, 12345ull}) {
    auto order = permutation(257, seed);
    std::sort(order.begin(), order.end());
    for (std::size_t i = 0; i < order.size(); ++i) EXPECT_EQ(order[i], i);
  }
}

TEST(Permutation, DeterministicPerSeed) {
  EXPECT_EQ(permutation(100, 7), permutation(100, 7));
  EXPECT_NE(permutation(100, 7), permutation(100, 8));
}

TEST(Permutation, SeedsActuallyShuffle) {
  const auto order = permutation(128, 1);
  std::size_t moved = 0;
  for (std::size_t i = 0; i < order.size(); ++i) moved += order[i] != i;
  // Fisher-Yates leaves only ~1 fixed point in expectation.
  EXPECT_GT(moved, 100u);
}

TEST(Permutation, EmptyAndSingleton) {
  EXPECT_TRUE(permutation(0, 5).empty());
  EXPECT_EQ(permutation(1, 5), std::vector<std::size_t>{0});
}

TEST(ScopedCheck, ActivatesAndRestores) {
  // The suite may already run under PORTABENCH_CHECK=1; save whatever the
  // ambient state is and verify restoration against it.
  const bool ambient = active();
  const std::uint64_t ambient_seed = order_seed();
  {
    ScopedCheck check(42);
    EXPECT_TRUE(active());
    EXPECT_EQ(order_seed(), 42u);
    {
      ScopedCheck inner(7);
      EXPECT_EQ(order_seed(), 7u);
    }
    EXPECT_EQ(order_seed(), 42u);
  }
  EXPECT_EQ(active(), ambient);
  EXPECT_EQ(order_seed(), ambient_seed);
}

TEST(LaneScopeTest, NestsAndRestores) {
  set_current_lane(0);
  {
    LaneScope outer(5);
    EXPECT_EQ(current_lane(), 5u);
    {
      LaneScope inner(9);
      EXPECT_EQ(current_lane(), 9u);
    }
    EXPECT_EQ(current_lane(), 5u);
  }
  EXPECT_EQ(current_lane(), 0u);
}

TEST(RegionEpochs, MonotonicallyIncrease) {
  const std::uint64_t before = current_region();
  const std::uint64_t opened = begin_region();
  EXPECT_GT(opened, before);
  EXPECT_EQ(current_region(), opened);
  EXPECT_GT(begin_region(), opened);
}

}  // namespace
}  // namespace portabench::portacheck
