// Unit tests for the shadow access log: race detection semantics, bounds
// enforcement, and the Ref proxy's read/write recording.
#include "portacheck/shadow.hpp"

#include <gtest/gtest.h>

#include <string>

#include "portacheck/shadow_view.hpp"
#include "simrt/mdarray.hpp"

namespace portabench::portacheck {
namespace {

class ShadowLogTest : public ::testing::Test {
 protected:
  void SetUp() override { begin_region(); }
  ScopedCheck check_{0};
  ShadowLog log_{"arr", {4, 4, 1}, 2};
};

TEST_F(ShadowLogTest, WriteWriteRaceAcrossLanes) {
  {
    LaneScope lane(0);
    log_.record_write(1, 2);
  }
  LaneScope lane(1);
  try {
    log_.record_write(1, 2);
    FAIL() << "expected race_error";
  } catch (const race_error& e) {
    EXPECT_EQ(e.array(), "arr");
    EXPECT_EQ(e.kind(), race_error::Kind::kWriteWrite);
    EXPECT_EQ(e.indices()[0], 1u);
    EXPECT_EQ(e.indices()[1], 2u);
    EXPECT_NE(e.lane_a(), e.lane_b());
    const std::string what = e.what();
    EXPECT_NE(what.find("arr"), std::string::npos);
    EXPECT_NE(what.find("race"), std::string::npos);
  }
}

TEST_F(ShadowLogTest, ReadAfterWriteAcrossLanesIsRace) {
  {
    LaneScope lane(0);
    log_.record_write(0, 0);
  }
  LaneScope lane(1);
  EXPECT_THROW(log_.record_read(0, 0), race_error);
}

TEST_F(ShadowLogTest, WriteAfterReadAcrossLanesIsRace) {
  {
    LaneScope lane(0);
    log_.record_read(3, 3);
  }
  LaneScope lane(1);
  try {
    log_.record_write(3, 3);
    FAIL() << "expected race_error";
  } catch (const race_error& e) {
    EXPECT_EQ(e.kind(), race_error::Kind::kReadWrite);
  }
}

TEST_F(ShadowLogTest, SameLaneNeverConflicts) {
  LaneScope lane(5);
  log_.record_write(2, 2);
  log_.record_read(2, 2);
  log_.record_write(2, 2);  // read-modify-write by one lane is fine
}

TEST_F(ShadowLogTest, ConcurrentReadsAllowed) {
  {
    LaneScope lane(0);
    log_.record_read(1, 1);
  }
  LaneScope lane(1);
  log_.record_read(1, 1);  // shared reads don't conflict
}

TEST_F(ShadowLogTest, RegionBoundaryRetiresConflicts) {
  {
    LaneScope lane(0);
    log_.record_write(1, 2);
  }
  begin_region();  // synchronization point: prior accesses are ordered
  LaneScope lane(1);
  log_.record_write(1, 2);
}

TEST_F(ShadowLogTest, DistinctCellsNeverConflict) {
  {
    LaneScope lane(0);
    log_.record_write(0, 1);
  }
  LaneScope lane(1);
  log_.record_write(1, 0);
}

TEST_F(ShadowLogTest, BoundsCheckedPerExtent) {
  log_.check_bounds(3, 3);  // in range
  try {
    log_.check_bounds(1, 4);
    FAIL() << "expected bounds_error";
  } catch (const bounds_error& e) {
    EXPECT_EQ(e.array(), "arr");
    EXPECT_EQ(e.indices()[1], 4u);
    EXPECT_EQ(e.extents()[1], 4u);
    EXPECT_NE(std::string(e.what()).find("arr"), std::string::npos);
  }
  EXPECT_THROW(log_.check_bounds(4, 0), bounds_error);
}

TEST(ShadowViewTest, BoundsEnforcedEvenWhenCheckingInactive) {
  // Extent enforcement is unconditional on the shadow path — the property
  // the Julia @inbounds ablation gives up.
  simrt::View2<double> v(3, 5);
  ShadowView2<double> sv(v, "V");
  EXPECT_THROW((void)static_cast<double>(sv(3, 0)), bounds_error);
  EXPECT_THROW((void)static_cast<double>(sv(0, 5)), bounds_error);
}

TEST(ShadowViewTest, RefRoutesReadsAndWritesThroughTheLog) {
  ScopedCheck check(0);
  simrt::View2<float> v(2, 2);
  ShadowView2<float> sv(v, "V");
  begin_region();
  LaneScope lane(0);

  sv(0, 1) = 2.5f;
  EXPECT_EQ(v(0, 1), 2.5f);         // writes hit the aliased storage
  const float r = sv(0, 1);         // implicit conversion records a read
  EXPECT_EQ(r, 2.5f);
  sv(0, 1) += 1.0f;                 // compound op: read + write
  EXPECT_EQ(v(0, 1), 3.5f);
  EXPECT_EQ(static_cast<double>(sv(0, 1)), 3.5);  // explicit cross-type read
  EXPECT_GE(sv.log().accesses(), 5u);
}

TEST(ShadowViewTest, Rank1AndRank3Surfaces) {
  ScopedCheck check(0);
  begin_region();
  LaneScope lane(0);

  simrt::View1<int> v1(4);
  ShadowView1<int> s1(v1, "v1");
  s1[2] = 7;
  EXPECT_EQ(static_cast<int>(s1.at(2)), 7);
  EXPECT_THROW((void)static_cast<int>(s1(4)), bounds_error);

  simrt::View3<double> v3(2, 3, 4);
  ShadowView3<double> s3(v3, "v3");
  s3(1, 2, 3) = 9.0;
  EXPECT_EQ(v3(1, 2, 3), 9.0);
  EXPECT_THROW((void)static_cast<double>(s3(1, 2, 4)), bounds_error);
}

}  // namespace
}  // namespace portabench::portacheck
