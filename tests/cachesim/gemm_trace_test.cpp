// Tests for the trace-driven GEMM cache walks, including validation of
// the analytical traffic model's regimes.
#include "cachesim/gemm_trace.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "perfmodel/machine_model.hpp"

namespace portabench::cachesim {
namespace {

TEST(GemmTrace, AccessCountMatchesLoopStructure) {
  Hierarchy h;
  h.add_level("L1", 32 * 1024, 64, 8);
  const std::size_t n = 24;
  const auto r = trace_openmp_gemm(h, n, 8, 0, n);
  // Per (i, l): 1 A access + n * (B + C) accesses.
  EXPECT_EQ(r.accesses, n * n * (1 + 2 * n));
}

TEST(GemmTrace, PartialRowRange) {
  Hierarchy h;
  h.add_level("L1", 32 * 1024, 64, 8);
  const auto r = trace_openmp_gemm(h, 32, 8, 4, 12);
  EXPECT_EQ(r.accesses, 8u * 32u * (1 + 2 * 32));
  EXPECT_THROW(trace_openmp_gemm(h, 32, 8, 10, 40), precondition_error);
}

TEST(GemmTrace, TinyProblemIsCompulsoryOnly) {
  // All three 32x32 FP64 matrices (24 KiB total) fit in a 512 KiB L2:
  // DRAM traffic equals the compulsory line fetches.
  Hierarchy h;
  h.add_level("L2", 512 * 1024, 64, 8);
  const std::size_t n = 32;
  const auto r = trace_openmp_gemm(h, n, 8, 0, n);
  const std::uint64_t matrix_lines = (n * n * 8 + 63) / 64;
  // Base padding can add one boundary line per matrix.
  EXPECT_GE(r.dram_bytes, 3 * matrix_lines * 64);
  EXPECT_LE(r.dram_bytes, (3 * matrix_lines + 3) * 64);
}

TEST(GemmTrace, BRestreamsWhenCacheTooSmall) {
  // A cache smaller than B forces B to re-stream once per output row:
  // DRAM traffic ~ n * B_bytes, far above compulsory.
  Hierarchy small;
  small.add_level("L1", 8 * 1024, 64, 8);
  const std::size_t n = 64;  // B = 32 KiB >> 8 KiB cache
  const auto r = trace_openmp_gemm(small, n, 8, 0, n);
  const double compulsory = 3.0 * n * n * 8;
  EXPECT_GT(static_cast<double>(r.dram_bytes), 10.0 * compulsory);
  // Upper bound: every B access missing, plus A/C streams.
  EXPECT_LT(static_cast<double>(r.dram_bytes),
            1.2 * (static_cast<double>(n) * n * n * 8 / 8 * 8));
}

TEST(GemmTrace, CachedVsUncachedRegimeMatchesAnalyticalModel) {
  // The perfmodel traffic law says: B cached -> compulsory-only traffic;
  // B uncached -> ~ rounds * B re-streamed.  Drive both regimes through
  // the simulator and check the analytical model agrees on the *regime*
  // (within 2x, since the law is deliberately coarse).
  const std::size_t n = 96;
  const std::size_t elem = 8;

  // Regime 1: LLC holds everything (1 MiB >> 3 * 72 KiB).
  Hierarchy big;
  big.add_level("L1", 32 * 1024, 64, 8);
  big.add_level("LLC", 1024 * 1024, 64, 16);
  const auto cached = trace_openmp_gemm(big, n, elem, 0, n);
  const double compulsory = 3.0 * n * n * elem;
  EXPECT_LT(static_cast<double>(cached.dram_bytes), 1.5 * compulsory);

  // Regime 2: LLC far smaller than B.
  Hierarchy tiny;
  tiny.add_level("L1", 8 * 1024, 64, 8);
  tiny.add_level("LLC", 16 * 1024, 64, 8);
  const auto uncached = trace_openmp_gemm(tiny, n, elem, 0, n);
  EXPECT_GT(uncached.dram_bytes, 20 * cached.dram_bytes);
}

TEST(GemmTrace, JuliaColumnMajorSameOrderOfTraffic) {
  // The column-major j-l-i walk is the mirror image of the row-major
  // i-k-j walk: same compulsory traffic in the cached regime.
  const std::size_t n = 64;
  Hierarchy a;
  a.add_level("LLC", 1024 * 1024, 64, 16);
  Hierarchy b;
  b.add_level("LLC", 1024 * 1024, 64, 16);
  const auto openmp = trace_openmp_gemm(a, n, 8, 0, n);
  const auto julia = trace_julia_gemm(b, n, 8, 0, n);
  EXPECT_EQ(openmp.accesses, julia.accesses);
  EXPECT_NEAR(static_cast<double>(julia.dram_bytes),
              static_cast<double>(openmp.dram_bytes),
              0.1 * static_cast<double>(openmp.dram_bytes));
}

TEST(GemmTrace, Fp32HalvesTraffic) {
  const std::size_t n = 64;
  Hierarchy h64;
  h64.add_level("LLC", 1024 * 1024, 64, 16);
  Hierarchy h32;
  h32.add_level("LLC", 1024 * 1024, 64, 16);
  const auto fp64 = trace_openmp_gemm(h64, n, 8, 0, n);
  const auto fp32 = trace_openmp_gemm(h32, n, 4, 0, n);
  EXPECT_NEAR(static_cast<double>(fp32.dram_bytes),
              0.5 * static_cast<double>(fp64.dram_bytes),
              0.1 * static_cast<double>(fp64.dram_bytes));
}

}  // namespace
}  // namespace portabench::cachesim
