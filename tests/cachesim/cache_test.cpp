// Tests for the set-associative cache simulator.
#include "cachesim/cache.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace portabench::cachesim {
namespace {

TEST(Cache, GeometryDerived) {
  Cache c(32 * 1024, 64, 8);
  EXPECT_EQ(c.sets(), 64u);
  EXPECT_EQ(c.size_bytes(), 32u * 1024u);
  EXPECT_EQ(c.line_bytes(), 64u);
}

TEST(Cache, InvalidGeometryRejected) {
  EXPECT_THROW(Cache(1000, 64, 8), precondition_error);   // not divisible
  EXPECT_THROW(Cache(1024, 48, 2), precondition_error);   // line not pow2
  EXPECT_THROW(Cache(1024, 64, 0), precondition_error);   // zero ways
}

TEST(Cache, ColdMissThenHit) {
  Cache c(1024, 64, 2);
  EXPECT_EQ(c.access(0), Access::kMiss);
  EXPECT_EQ(c.access(0), Access::kHit);
  EXPECT_EQ(c.access(63), Access::kHit);   // same line
  EXPECT_EQ(c.access(64), Access::kMiss);  // next line
  EXPECT_EQ(c.hits(), 2u);
  EXPECT_EQ(c.misses(), 2u);
}

TEST(Cache, LruEviction) {
  // 2-way, 8 sets, 64B lines: three lines mapping to the same set evict
  // the least recently used.
  Cache c(1024, 64, 2);
  const std::uint64_t set_stride = 8 * 64;  // lines that collide in set 0
  c.access(0 * set_stride);
  c.access(1 * set_stride);
  c.access(0 * set_stride);             // touch line 0: line 1 becomes LRU
  c.access(2 * set_stride);             // evicts line 1
  EXPECT_TRUE(c.contains(0 * set_stride));
  EXPECT_FALSE(c.contains(1 * set_stride));
  EXPECT_TRUE(c.contains(2 * set_stride));
}

TEST(Cache, FullyAssociativeHoldsWorkingSet) {
  Cache c(8 * 64, 64, 8);  // one set, 8 ways
  for (std::uint64_t i = 0; i < 8; ++i) c.access(i * 64);
  c.reset_stats();
  for (int round = 0; round < 3; ++round) {
    for (std::uint64_t i = 0; i < 8; ++i) c.access(i * 64);
  }
  EXPECT_EQ(c.misses(), 0u);  // working set exactly fits
  EXPECT_EQ(c.hits(), 24u);
}

TEST(Cache, StreamingLargerThanCapacityAlwaysMisses) {
  Cache c(1024, 64, 2);  // 16 lines
  // Cyclic stream of 32 lines with LRU: every access misses.
  c.reset_stats();
  for (int round = 0; round < 4; ++round) {
    for (std::uint64_t i = 0; i < 32; ++i) c.access(i * 64);
  }
  EXPECT_EQ(c.hits(), 0u);
}

TEST(Cache, FlushDropsContents) {
  Cache c(1024, 64, 2);
  c.access(0);
  EXPECT_TRUE(c.contains(0));
  c.flush();
  EXPECT_FALSE(c.contains(0));
  EXPECT_EQ(c.access(0), Access::kMiss);
}

TEST(Hierarchy, MissesCascade) {
  Hierarchy h;
  h.add_level("L1", 1024, 64, 2);
  h.add_level("L2", 8192, 64, 4);
  EXPECT_EQ(h.access(0), 2u);  // cold: DRAM
  EXPECT_EQ(h.access(0), 0u);  // L1 hit
  EXPECT_EQ(h.dram_lines(), 1u);
  EXPECT_EQ(h.dram_bytes(), 64u);
}

TEST(Hierarchy, L2CatchesL1Evictions) {
  Hierarchy h;
  h.add_level("L1", 2 * 64, 64, 2);  // 2 lines
  h.add_level("L2", 64 * 64, 64, 4);
  // Touch 3 lines: line 0 falls out of L1 but stays in L2.
  h.access(0);
  h.access(64);
  h.access(128);
  EXPECT_EQ(h.access(0), 1u);  // L1 miss, L2 hit
  EXPECT_EQ(h.dram_lines(), 3u);
}

TEST(Hierarchy, LevelsMustGrow) {
  Hierarchy h;
  h.add_level("L1", 8192, 64, 4);
  EXPECT_THROW(h.add_level("L2", 1024, 64, 2), precondition_error);
}

TEST(Hierarchy, FactoryShapes) {
  auto epyc = Hierarchy::epyc_7a53_core();
  EXPECT_EQ(epyc.levels(), 3u);
  auto altra = Hierarchy::ampere_altra_core();
  EXPECT_EQ(altra.levels(), 3u);
}

TEST(Hierarchy, StatsNamed) {
  Hierarchy h;
  h.add_level("L1", 1024, 64, 2);
  h.access(0);
  const auto stats = h.stats();
  ASSERT_EQ(stats.size(), 1u);
  EXPECT_EQ(stats[0].name, "L1");
  EXPECT_EQ(stats[0].misses, 1u);
}

}  // namespace
}  // namespace portabench::cachesim
