// Tests for the performance-portability metrics and the Table III builder.
#include "portability/metric.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "common/error.hpp"

namespace portabench::portability {
namespace {

std::vector<EfficiencyEntry> entries(std::initializer_list<double> effs) {
  std::vector<EfficiencyEntry> out;
  Platform p = Platform::kCrusherCpu;
  for (double e : effs) out.push_back({p, e, true});
  return out;
}

TEST(SeriesEfficiency, MeanOfRatios) {
  const std::vector<double> model{50.0, 100.0};
  const std::vector<double> vendor{100.0, 100.0};
  EXPECT_DOUBLE_EQ(series_efficiency(model, vendor), 0.75);
}

TEST(SeriesEfficiency, RejectsMismatchedOrEmpty) {
  const std::vector<double> a{1.0};
  const std::vector<double> b{1.0, 2.0};
  EXPECT_THROW(series_efficiency(a, b), precondition_error);
  EXPECT_THROW(series_efficiency({}, {}), precondition_error);
}

TEST(SeriesEfficiency, RejectsZeroVendor) {
  const std::vector<double> m{1.0};
  const std::vector<double> v{0.0};
  EXPECT_THROW(series_efficiency(m, v), precondition_error);
}

TEST(PhiArithmetic, PaperKokkosDoubleRow) {
  // Table III: Kokkos double = (0.994 + 0.854 + 0.842 + 0.260) / 4 = 0.738.
  const auto e = entries({0.994, 0.854, 0.842, 0.260});
  EXPECT_NEAR(phi_arithmetic(e), 0.738, 0.001);
}

TEST(PhiArithmetic, PaperNumbaRowChargesUnsupportedAmdGpu) {
  // Numba double in Table III: Phi = (0.550 + 0.713 + 0 + 0.130) / 4 =
  // 0.348 — the unsupported AMD GPU stays in |T| and contributes zero.
  std::vector<EfficiencyEntry> e = entries({0.550, 0.713, 0.130});
  e.push_back({Platform::kCrusherGpu, 0.0, false});
  EXPECT_NEAR(phi_arithmetic(e), 0.348, 0.001);
}

TEST(PhiArithmetic, EmptyIsZero) {
  EXPECT_EQ(phi_arithmetic({}), 0.0);
}

TEST(PhiPennycook, ZeroWhenAnyUnsupported) {
  std::vector<EfficiencyEntry> e = entries({0.9, 0.8});
  e.push_back({Platform::kCrusherGpu, 0.0, false});
  EXPECT_EQ(phi_pennycook(e), 0.0);
}

TEST(PhiPennycook, HarmonicWhenAllSupported) {
  const auto e = entries({1.0, 0.25});
  EXPECT_DOUBLE_EQ(phi_pennycook(e), 0.4);  // HM(1, 0.25)
}

TEST(PhiHarmonicSupported, SkipsUnsupported) {
  std::vector<EfficiencyEntry> e = entries({1.0, 0.25});
  e.push_back({Platform::kWombatGpu, 0.0, false});
  EXPECT_DOUBLE_EQ(phi_harmonic_supported(e), 0.4);
}

TEST(PhiVariants, HarmonicNeverExceedsArithmetic) {
  const auto e = entries({0.994, 0.854, 0.842, 0.260});
  EXPECT_LE(phi_pennycook(e), phi_arithmetic(e));
}

TEST(Cascade, MonotoneNonIncreasingWhenSortedBestFirst) {
  const auto e = entries({0.9, 0.5, 0.7, 0.2});
  const auto c = cascade(e);
  ASSERT_EQ(c.size(), 4u);
  EXPECT_DOUBLE_EQ(c[0], 0.9);
  for (std::size_t i = 1; i < c.size(); ++i) EXPECT_LE(c[i], c[i - 1]);
  EXPECT_NEAR(c.back(), (0.9 + 0.7 + 0.5 + 0.2) / 4.0, 1e-12);
}

TEST(Table3, HasSixFamilyBlocks) {
  // 3 portable families x 2 precisions.
  const auto table = build_table3();
  EXPECT_EQ(table.size(), 6u);
  for (const auto& row : table) {
    EXPECT_EQ(row.entries.size(), 4u);  // one per platform
  }
}

TEST(Table3, ReproducesPaperPhiValues) {
  // Paper Table III Phi_M, computed with unsupported => 0 in a |T|=4
  // denominator: Kokkos 0.738/0.684, Julia 0.897/0.882, Numba 0.348/0.288.
  const auto table = build_table3();
  for (const auto& fp : table) {
    const double phi = fp.phi;
    const bool is_double = fp.precision == Precision::kDouble;
    switch (fp.family) {
      case Family::kKokkos:
        EXPECT_NEAR(phi, is_double ? 0.738 : 0.684, 0.05);
        break;
      case Family::kJulia:
        EXPECT_NEAR(phi, is_double ? 0.897 : 0.882, 0.05);
        break;
      case Family::kNumba:
        EXPECT_NEAR(phi, is_double ? 0.348 : 0.288, 0.05);
        break;
      default:
        FAIL() << "unexpected family";
    }
  }
}

TEST(Table3, JuliaHasBestPhi) {
  // "Julia has the best scores followed by Kokkos and Python/Numba."
  const auto table = build_table3();
  for (Precision prec : {Precision::kDouble, Precision::kSingle}) {
    double julia = 0.0;
    double kokkos = 0.0;
    double numba = 0.0;
    for (const auto& fp : table) {
      if (fp.precision != prec) continue;
      if (fp.family == Family::kJulia) julia = fp.phi;
      if (fp.family == Family::kKokkos) kokkos = fp.phi;
      if (fp.family == Family::kNumba) numba = fp.phi;
    }
    EXPECT_GT(julia, kokkos);
    EXPECT_GT(kokkos, numba);
  }
}

TEST(Table3, NumbaAmdGpuMarkedUnsupported) {
  const auto table = build_table3();
  for (const auto& fp : table) {
    if (fp.family != Family::kNumba) continue;
    bool found = false;
    for (const auto& e : fp.entries) {
      if (e.platform == Platform::kCrusherGpu) {
        EXPECT_FALSE(e.supported);
        found = true;
      }
    }
    EXPECT_TRUE(found);
  }
}

}  // namespace
}  // namespace portabench::portability
