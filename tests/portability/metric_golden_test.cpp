// Golden-file regression test for the portability metrics: feeding the
// paper's Table III efficiencies through metric.cpp must reproduce the
// published Phi values (FP64 and FP32) to two decimal places, and the
// Pennycook harmonic-mean variant must match precomputed goldens.  The
// golden file pins the paper's numbers so a metric regression cannot
// silently drift the headline table.
#include <gtest/gtest.h>

#include <cstddef>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "portability/metric.hpp"

#ifndef PORTABENCH_GOLDEN_DIR
#error "PORTABENCH_GOLDEN_DIR must point at tests/portability/golden"
#endif

namespace portabench::portability {
namespace {

Platform parse_platform(const std::string& token) {
  if (token == "crusher-cpu") return Platform::kCrusherCpu;
  if (token == "wombat-cpu") return Platform::kWombatCpu;
  if (token == "crusher-gpu") return Platform::kCrusherGpu;
  if (token == "wombat-gpu") return Platform::kWombatGpu;
  throw std::runtime_error("unknown platform in golden file: " + token);
}

struct GoldenTable {
  // (family, precision) -> entries in Table III platform order.
  std::map<std::string, std::vector<EfficiencyEntry>> entries;
  std::map<std::string, double> phi_arithmetic;
  std::map<std::string, double> phi_pennycook;
};

GoldenTable load_golden() {
  const std::string path = std::string(PORTABENCH_GOLDEN_DIR) + "/table3_paper.txt";
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "cannot open golden file " << path;

  GoldenTable table;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ss(line);
    std::string tag, family, precision;
    ss >> tag >> family >> precision;
    const std::string key = family + "/" + precision;
    if (tag == "entry") {
      std::string platform, eff;
      int supported = 0;
      ss >> platform >> eff >> supported;
      EfficiencyEntry e;
      e.platform = parse_platform(platform);
      e.supported = supported != 0;
      e.efficiency = e.supported ? std::stod(eff) : 0.0;
      table.entries[key].push_back(e);
    } else if (tag == "phi_arithmetic") {
      double value = 0.0;
      ss >> value;
      table.phi_arithmetic[key] = value;
    } else if (tag == "phi_pennycook") {
      double value = 0.0;
      ss >> value;
      table.phi_pennycook[key] = value;
    } else {
      ADD_FAILURE() << "unknown golden tag: " << tag;
    }
  }
  return table;
}

TEST(MetricGolden, GoldenFileIsComplete) {
  const GoldenTable golden = load_golden();
  ASSERT_EQ(golden.entries.size(), 6u);  // 3 families x 2 precisions
  for (const auto& [key, entries] : golden.entries) {
    EXPECT_EQ(entries.size(), 4u) << key;  // the four Table III platforms
    ASSERT_TRUE(golden.phi_arithmetic.contains(key)) << key;
    ASSERT_TRUE(golden.phi_pennycook.contains(key)) << key;
  }
}

TEST(MetricGolden, PhiArithmeticReproducesPaperTable3ToTwoDecimals) {
  const GoldenTable golden = load_golden();
  for (const auto& [key, entries] : golden.entries) {
    const double phi = phi_arithmetic(entries);
    // The paper publishes Phi to three decimals; matching to two decimal
    // places (|diff| < 0.005) is exact modulo Table III's own rounding.
    EXPECT_NEAR(phi, golden.phi_arithmetic.at(key), 0.005) << key;
  }
}

TEST(MetricGolden, PhiPennycookMatchesPrecomputedGoldens) {
  const GoldenTable golden = load_golden();
  for (const auto& [key, entries] : golden.entries) {
    const double phi = phi_pennycook(entries);
    EXPECT_NEAR(phi, golden.phi_pennycook.at(key), 5e-4) << key;
  }
}

TEST(MetricGolden, UnsupportedPlatformZeroesPennycookButNotArithmetic) {
  const GoldenTable golden = load_golden();
  for (const std::string precision : {"double", "single"}) {
    const auto& numba = golden.entries.at("numba/" + precision);
    EXPECT_EQ(phi_pennycook(numba), 0.0);
    EXPECT_GT(phi_arithmetic(numba), 0.0);
  }
}

TEST(MetricGolden, CascadeIsNonIncreasingForGoldenSeries) {
  // Pennycook's cascade: adding platforms (best-first) can only erode Phi.
  const GoldenTable golden = load_golden();
  for (const auto& [key, entries] : golden.entries) {
    const auto steps = cascade(entries);
    std::size_t supported = 0;
    for (const auto& e : entries) supported += e.supported ? 1 : 0;
    ASSERT_EQ(steps.size(), supported) << key;
    for (std::size_t i = 1; i < steps.size(); ++i) {
      EXPECT_LE(steps[i], steps[i - 1] + 1e-12) << key << " step " << i;
    }
  }
}

}  // namespace
}  // namespace portabench::portability
