// Tests for the paper-listing snippets and the SLOC counter.
#include "portability/snippets.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace portabench::portability {
namespace {

using perfmodel::Family;

TEST(Sloc, BlankAndCommentLinesExcludedC) {
  constexpr std::string_view code = R"(
// a comment
int x = 1;   // trailing comment counts the line

/* block
   comment */
int y = 2; /* inline */ int z = 3;
)";
  EXPECT_EQ(count_sloc(code, Language::kC), 2u);
}

TEST(Sloc, BlockCommentSpansLines) {
  constexpr std::string_view code = R"(/* open
still comment
*/ int live = 1;
)";
  EXPECT_EQ(count_sloc(code, Language::kC), 1u);
}

TEST(Sloc, PythonHashComments) {
  constexpr std::string_view code = R"(# header
x = 1
   # indented comment
y = 2  # trailing
)";
  EXPECT_EQ(count_sloc(code, Language::kPython), 2u);
}

TEST(Sloc, JuliaBlockComments) {
  constexpr std::string_view code = R"(#= block
comment =# x = 1
# line comment
y = 2
)";
  EXPECT_EQ(count_sloc(code, Language::kJulia), 2u);
}

TEST(Sloc, EmptyIsZero) {
  EXPECT_EQ(count_sloc("", Language::kC), 0u);
  EXPECT_EQ(count_sloc("\n\n  \n", Language::kPython), 0u);
}

TEST(Snippets, AllEightListingsPresent) {
  const auto& all = paper_snippets();
  EXPECT_EQ(all.size(), 8u);
  int cpu = 0;
  int gpu = 0;
  for (const auto& s : all) {
    (s.gpu ? gpu : cpu) += 1;
    EXPECT_GT(count_sloc(s.source, s.language), 5u) << s.figure;
  }
  EXPECT_EQ(cpu, 4);
  EXPECT_EQ(gpu, 4);
}

TEST(Snippets, SlocReflectsInvasivenessOrdering) {
  // The paper's qualitative productivity story in numbers: the GPU
  // kernels cost more lines than the directive/macro CPU ports, and no
  // kernel exceeds ~a dozen lines (the "simple kernel" premise).
  for (const auto& s : paper_snippets()) {
    const std::size_t sloc = count_sloc(s.source, s.language);
    EXPECT_LE(sloc, 13u) << s.figure;
  }
  EXPECT_LT(snippet_sloc(Family::kVendor, false), snippet_sloc(Family::kVendor, true));
}

TEST(Snippets, LookupThrowsForMissingListing) {
  EXPECT_NO_THROW(snippet_sloc(Family::kNumba, true));
  // Every (family, target) pair exists in the paper's listing set, so
  // exercise the error path via the private contract instead: an
  // out-of-range enum value.
  EXPECT_THROW(snippet_sloc(static_cast<Family>(99), true), precondition_error);
}

TEST(Snippets, KokkosSingleSourceForCpuAndGpu) {
  // Kokkos' selling point: the Fig. 2b source *is* the GPU kernel.
  EXPECT_EQ(snippet_sloc(Family::kKokkos, false), snippet_sloc(Family::kKokkos, true));
}

}  // namespace
}  // namespace portabench::portability
