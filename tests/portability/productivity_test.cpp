// Tests for the productivity analysis.
#include "portability/productivity.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace portabench::portability {
namespace {

TEST(Productivity, ProfilesCoverAllFamiliesOnBothTargets) {
  const auto profiles = study_profiles();
  int cpu = 0;
  int gpu = 0;
  for (const auto& p : profiles) (p.gpu ? gpu : cpu) += 1;
  EXPECT_EQ(cpu, 4);
  EXPECT_EQ(gpu, 4);
}

TEST(Productivity, VendorReferenceEffort) {
  const auto profiles = study_profiles();
  for (const auto& p : profiles) {
    if (p.family != Family::kVendor) continue;
    if (p.gpu) {
      // CUDA/HIP are separate per-vendor sources: the vendor GPU baseline
      // itself carries the rebuild penalty (1.0 SLOC ratio * 1.2).
      EXPECT_DOUBLE_EQ(relative_effort(p, profiles), 1.2);
    } else {
      EXPECT_DOUBLE_EQ(relative_effort(p, profiles), 1.0);
    }
  }
}

TEST(Productivity, JuliaCheapestOnCpu) {
  // Fig. 2c is the least invasive port: one macro, no harness to speak
  // of, plus the seamless-FP16 credit.
  const auto profiles = study_profiles();
  double julia = 0.0;
  double vendor = 0.0;
  double kokkos = 0.0;
  for (const auto& p : profiles) {
    if (p.gpu) continue;
    if (p.family == Family::kJulia) julia = relative_effort(p, profiles);
    if (p.family == Family::kVendor) vendor = relative_effort(p, profiles);
    if (p.family == Family::kKokkos) kokkos = relative_effort(p, profiles);
  }
  EXPECT_LT(julia, vendor);
  EXPECT_LT(julia, kokkos);
}

TEST(Productivity, KokkosPaysRebuildPenalty) {
  const auto profiles = study_profiles();
  for (const auto& p : profiles) {
    if (p.family == Family::kKokkos) {
      EXPECT_TRUE(p.needs_rebuild_per_target);  // KOKKOS_DEVICES at build time
    }
    if (p.family == Family::kJulia || p.family == Family::kNumba) {
      EXPECT_FALSE(p.needs_rebuild_per_target);  // JIT retargets at run time
    }
  }
}

TEST(Productivity, OnlyNumbaLacksPinningOnCpu) {
  // Section III-A: OpenMP, Kokkos(OpenMP), and Julia all pin; Numba can't.
  const auto profiles = study_profiles();
  for (const auto& p : profiles) {
    if (p.gpu) continue;
    EXPECT_EQ(p.thread_pinning_api, p.family != Family::kNumba)
        << p.implementation;
  }
}

TEST(Productivity, OnlyJuliaHasSeamlessFp16) {
  const auto profiles = study_profiles();
  for (const auto& p : profiles) {
    EXPECT_EQ(p.seamless_fp16, p.family == Family::kJulia) << p.implementation;
  }
}

TEST(Productivity, PpScoreDivides) {
  EXPECT_DOUBLE_EQ(pp_score(0.9, 0.5), 1.8);
  EXPECT_DOUBLE_EQ(pp_score(0.9, 1.0), 0.9);
  EXPECT_THROW(pp_score(0.9, 0.0), precondition_error);
}

TEST(Productivity, MechanismNames) {
  EXPECT_EQ(name(Mechanism::kPragma), "pragma");
  EXPECT_EQ(name(Mechanism::kDecorator), "decorator");
  EXPECT_EQ(name(Mechanism::kKernel), "device kernel");
}

TEST(Productivity, TotalSlocSums) {
  EffortProfile p;
  p.kernel_sloc = 9;
  p.harness_sloc = 5;
  EXPECT_EQ(total_sloc(p), 14u);
}

}  // namespace
}  // namespace portabench::portability
