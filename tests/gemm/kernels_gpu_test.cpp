// Correctness tests for the GPU GEMM kernels of Fig. 3 on the SIMT
// simulator, including guard handling and the tiled shared-memory variant.
#include "gemm/kernels_gpu.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "common/half.hpp"
#include "common/rng.hpp"
#include "gemm/reference.hpp"
#include "gemm/validate.hpp"
#include "simrt/mdarray.hpp"

namespace portabench::gemm {
namespace {

using gpusim::DeviceBuffer;
using gpusim::DeviceContext;
using gpusim::GpuSpec;

/// Row-major host reference: C = A*B (GPU kernels overwrite C).
template <class T, class Acc>
std::vector<Acc> host_reference_rowmajor(const std::vector<T>& A, const std::vector<T>& B,
                                         std::size_t m, std::size_t n, std::size_t k) {
  std::vector<Acc> C(m * n, Acc{});
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t l = 0; l < k; ++l) {
      const Acc a = static_cast<Acc>(A[i * k + l]);
      for (std::size_t j = 0; j < n; ++j) C[i * n + j] += a * static_cast<Acc>(B[l * n + j]);
    }
  }
  return C;
}

template <class T>
std::vector<T> random_flat(std::size_t count, std::uint64_t seed) {
  std::vector<T> v(count);
  Xoshiro256 rng(seed);
  fill_uniform(std::span<T>(v), rng);
  return v;
}

class GpuGemmTest : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {
 protected:
  DeviceContext ctx_{GpuSpec::a100()};
};

TEST_P(GpuGemmTest, CudaStyleMatchesHostReference) {
  const auto [n, block] = GetParam();
  auto hA = random_flat<double>(n * n, 31);
  auto hB = random_flat<double>(n * n, 32);
  DeviceBuffer<double> dA(ctx_, n * n);
  DeviceBuffer<double> dB(ctx_, n * n);
  DeviceBuffer<double> dC(ctx_, n * n);
  dA.copy_from_host(hA);
  dB.copy_from_host(hB);

  GpuLaunchConfig cfg;
  cfg.block = {block, block, 1};
  gemm_cuda_style<double>(ctx_, cfg, dA, dB, dC, n, n, n);

  std::vector<double> hC(n * n);
  dC.copy_to_host(std::span<double>(hC));
  const auto expected = host_reference_rowmajor<double, double>(hA, hB, n, n, n);
  EXPECT_LE(max_abs_diff<double>(hC, expected), gemm_tolerance(Precision::kDouble, n));
}

TEST_P(GpuGemmTest, NumbaStyleMatchesCudaStyle) {
  const auto [n, block] = GetParam();
  auto hA = random_flat<double>(n * n, 33);
  auto hB = random_flat<double>(n * n, 34);
  DeviceBuffer<double> dA(ctx_, n * n);
  DeviceBuffer<double> dB(ctx_, n * n);
  DeviceBuffer<double> dC_cuda(ctx_, n * n);
  DeviceBuffer<double> dC_numba(ctx_, n * n);
  dA.copy_from_host(hA);
  dB.copy_from_host(hB);

  GpuLaunchConfig cfg;
  cfg.block = {block, block, 1};
  gemm_cuda_style<double>(ctx_, cfg, dA, dB, dC_cuda, n, n, n);
  gemm_numba_cuda_style<double>(ctx_, cfg, dA, dB, dC_numba, n, n, n);

  std::vector<double> a(n * n);
  std::vector<double> b(n * n);
  dC_cuda.copy_to_host(std::span<double>(a));
  dC_numba.copy_to_host(std::span<double>(b));
  // Same k-order accumulation: bitwise identical.
  EXPECT_EQ(a, b);
}

INSTANTIATE_TEST_SUITE_P(SizesAndBlocks, GpuGemmTest,
                         ::testing::Values(std::tuple{8u, 4u}, std::tuple{16u, 16u},
                                           std::tuple{33u, 8u},  // guard exercised
                                           std::tuple{48u, 32u}, std::tuple{65u, 16u}));

TEST(GpuGemm, JuliaColumnMajorMatchesReference) {
  constexpr std::size_t kN = 40;
  DeviceContext ctx(GpuSpec::mi250x_gcd());
  // Column-major host data.
  auto hA_cm = random_flat<double>(kN * kN, 35);
  auto hB_cm = random_flat<double>(kN * kN, 36);
  DeviceBuffer<double> dA(ctx, kN * kN);
  DeviceBuffer<double> dB(ctx, kN * kN);
  DeviceBuffer<double> dC(ctx, kN * kN);
  dA.copy_from_host(hA_cm);
  dB.copy_from_host(hB_cm);

  gemm_julia_gpu_style<double>(ctx, GpuLaunchConfig{}, dA, dB, dC, kN, kN, kN);
  std::vector<double> hC(kN * kN);
  dC.copy_to_host(std::span<double>(hC));

  // Reference in column-major index space.
  for (std::size_t i = 0; i < kN; ++i) {
    for (std::size_t j = 0; j < kN; ++j) {
      double sum = 0.0;
      for (std::size_t l = 0; l < kN; ++l) sum += hA_cm[i + l * kN] * hB_cm[l + j * kN];
      EXPECT_NEAR(hC[i + j * kN], sum, gemm_tolerance(Precision::kDouble, kN))
          << i << "," << j;
    }
  }
}

TEST(GpuGemm, RectangularShapes) {
  constexpr std::size_t kM = 20;
  constexpr std::size_t kK = 50;
  constexpr std::size_t kN = 35;
  DeviceContext ctx(GpuSpec::a100());
  auto hA = random_flat<double>(kM * kK, 37);
  auto hB = random_flat<double>(kK * kN, 38);
  DeviceBuffer<double> dA(ctx, kM * kK);
  DeviceBuffer<double> dB(ctx, kK * kN);
  DeviceBuffer<double> dC(ctx, kM * kN);
  dA.copy_from_host(hA);
  dB.copy_from_host(hB);
  GpuLaunchConfig cfg;
  cfg.block = {16, 16, 1};
  gemm_cuda_style<double>(ctx, cfg, dA, dB, dC, kM, kN, kK);
  std::vector<double> hC(kM * kN);
  dC.copy_to_host(std::span<double>(hC));
  const auto expected = host_reference_rowmajor<double, double>(hA, hB, kM, kN, kK);
  EXPECT_LE(max_abs_diff<double>(hC, expected), gemm_tolerance(Precision::kDouble, kK));
}

TEST(GpuGemm, HalfInputsFloatAccumulate) {
  constexpr std::size_t kN = 24;
  DeviceContext ctx(GpuSpec::a100());
  auto hA = random_flat<half>(kN * kN, 39);
  auto hB = random_flat<half>(kN * kN, 40);
  DeviceBuffer<half> dA(ctx, kN * kN);
  DeviceBuffer<half> dB(ctx, kN * kN);
  DeviceBuffer<float> dC(ctx, kN * kN);
  dA.copy_from_host(hA);
  dB.copy_from_host(hB);
  GpuLaunchConfig cfg;
  cfg.block = {8, 8, 1};
  gemm_cuda_style<float>(ctx, cfg, dA, dB, dC, kN, kN, kN);
  std::vector<float> hC(kN * kN);
  dC.copy_to_host(std::span<float>(hC));
  const auto expected = host_reference_rowmajor<half, float>(hA, hB, kN, kN, kN);
  EXPECT_LE(max_abs_diff<float>(hC, expected), gemm_tolerance(Precision::kHalfIn, kN));
}

TEST(GpuGemm, TiledSharedMatchesNaive) {
  // The optimization-headroom ablation kernel must agree with the naive
  // kernel numerically (same FP32/FP64 dot products, different staging).
  constexpr std::size_t kN = 50;  // not a multiple of the tile
  DeviceContext ctx(GpuSpec::a100());
  auto hA = random_flat<double>(kN * kN, 41);
  auto hB = random_flat<double>(kN * kN, 42);
  DeviceBuffer<double> dA(ctx, kN * kN);
  DeviceBuffer<double> dB(ctx, kN * kN);
  DeviceBuffer<double> dC_naive(ctx, kN * kN);
  DeviceBuffer<double> dC_tiled(ctx, kN * kN);
  dA.copy_from_host(hA);
  dB.copy_from_host(hB);

  GpuLaunchConfig cfg;
  cfg.block = {16, 16, 1};
  gemm_cuda_style<double>(ctx, cfg, dA, dB, dC_naive, kN, kN, kN);
  gemm_tiled_shared<double>(ctx, cfg, dA, dB, dC_tiled, kN, kN, kN);

  std::vector<double> naive(kN * kN);
  std::vector<double> tiled(kN * kN);
  dC_naive.copy_to_host(std::span<double>(naive));
  dC_tiled.copy_to_host(std::span<double>(tiled));
  EXPECT_LE(max_abs_diff<double>(tiled, naive), gemm_tolerance(Precision::kDouble, kN));
}

TEST(GpuGemm, TiledRequiresSquareBlock) {
  DeviceContext ctx(GpuSpec::a100());
  DeviceBuffer<double> dA(ctx, 64);
  DeviceBuffer<double> dB(ctx, 64);
  DeviceBuffer<double> dC(ctx, 64);
  GpuLaunchConfig cfg;
  cfg.block = {8, 4, 1};
  EXPECT_THROW(gemm_tiled_shared<double>(ctx, cfg, dA, dB, dC, 8, 8, 8), precondition_error);
}

TEST(GpuGemm, BufferSizeMismatchRejected) {
  DeviceContext ctx(GpuSpec::a100());
  DeviceBuffer<double> dA(ctx, 63);  // should be 64
  DeviceBuffer<double> dB(ctx, 64);
  DeviceBuffer<double> dC(ctx, 64);
  EXPECT_THROW(gemm_cuda_style<double>(ctx, GpuLaunchConfig{}, dA, dB, dC, 8, 8, 8),
               precondition_error);
}

TEST(GpuGemm, LaunchConfigGridCoversProblem) {
  GpuLaunchConfig cfg;  // 32x32 default
  const auto grid = cfg.grid_for(100, 70);
  EXPECT_EQ(grid.x, 3u);  // ceil(70/32) columns
  EXPECT_EQ(grid.y, 4u);  // ceil(100/32) rows
  EXPECT_EQ(grid.z, 1u);
}

}  // namespace
}  // namespace portabench::gemm
