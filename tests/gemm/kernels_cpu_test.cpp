// Correctness tests for the four CPU GEMM kernels of Fig. 2 against the
// blocked reference, across precisions, layouts, and shapes.
#include "gemm/kernels_cpu.hpp"

#include <gtest/gtest.h>

#include <tuple>

#include "common/half.hpp"
#include "common/rng.hpp"
#include "gemm/reference.hpp"
#include "gemm/validate.hpp"

namespace portabench::gemm {
namespace {

using simrt::LayoutLeft;
using simrt::LayoutRight;
using simrt::SerialSpace;
using simrt::ThreadsSpace;
using simrt::View2;

template <class T, class Layout>
View2<T, Layout> random_matrix(std::size_t rows, std::size_t cols, std::uint64_t seed) {
  View2<T, Layout> v(rows, cols);
  Xoshiro256 rng(seed);
  fill_uniform(std::span<T>(v.data(), rows * cols), rng);
  return v;
}

// ---- parameterized shape sweep: (m, k, n) including non-square ----------
class CpuGemmShapes
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t, std::size_t>> {};

TEST_P(CpuGemmShapes, OpenMPStyleMatchesReference) {
  const auto [m, k, n] = GetParam();
  auto A = random_matrix<double, LayoutRight>(m, k, 1);
  auto B = random_matrix<double, LayoutRight>(k, n, 2);
  View2<double, LayoutRight> C(m, n);
  View2<double, LayoutRight> C_ref(m, n);
  ThreadsSpace space(4);
  gemm_openmp_style<double>(space, A, B, C);
  reference_gemm<double>(A, B, C_ref);
  EXPECT_LE(max_abs_diff(C, C_ref), gemm_tolerance(Precision::kDouble, k));
}

TEST_P(CpuGemmShapes, KokkosStyleMatchesReference) {
  const auto [m, k, n] = GetParam();
  auto A = random_matrix<double, LayoutRight>(m, k, 3);
  auto B = random_matrix<double, LayoutRight>(k, n, 4);
  View2<double, LayoutRight> C(m, n);
  View2<double, LayoutRight> C_ref(m, n);
  ThreadsSpace space(4);
  gemm_kokkos_style<double>(space, A, B, C);
  reference_gemm<double>(A, B, C_ref);
  EXPECT_LE(max_abs_diff(C, C_ref), gemm_tolerance(Precision::kDouble, k));
}

TEST_P(CpuGemmShapes, JuliaStyleMatchesReference) {
  const auto [m, k, n] = GetParam();
  auto A = random_matrix<double, LayoutLeft>(m, k, 5);
  auto B = random_matrix<double, LayoutLeft>(k, n, 6);
  View2<double, LayoutLeft> C(m, n);
  View2<double, LayoutLeft> C_ref(m, n);
  ThreadsSpace space(4);
  gemm_julia_style<double>(space, A, B, C);
  reference_gemm<double>(A, B, C_ref);
  EXPECT_LE(max_abs_diff(C, C_ref), gemm_tolerance(Precision::kDouble, k));
}

TEST_P(CpuGemmShapes, NumbaStyleMatchesReference) {
  const auto [m, k, n] = GetParam();
  auto A = random_matrix<double, LayoutRight>(m, k, 7);
  auto B = random_matrix<double, LayoutRight>(k, n, 8);
  View2<double, LayoutRight> C(m, n);
  View2<double, LayoutRight> C_ref(m, n);
  ThreadsSpace space(4);
  gemm_numba_style<double>(space, A, B, C);
  reference_gemm<double>(A, B, C_ref);
  EXPECT_LE(max_abs_diff(C, C_ref), gemm_tolerance(Precision::kDouble, k));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, CpuGemmShapes,
    ::testing::Values(std::tuple{1u, 1u, 1u}, std::tuple{2u, 3u, 4u}, std::tuple{16u, 16u, 16u},
                      std::tuple{17u, 31u, 13u}, std::tuple{64u, 64u, 64u},
                      std::tuple{100u, 1u, 100u}, std::tuple{1u, 128u, 1u},
                      std::tuple{33u, 65u, 129u}));

// ---- precision behaviour -------------------------------------------------

TEST(CpuGemm, SinglePrecisionWithinTolerance) {
  constexpr std::size_t kN = 48;
  auto A = random_matrix<float, LayoutRight>(kN, kN, 11);
  auto B = random_matrix<float, LayoutRight>(kN, kN, 12);
  View2<float, LayoutRight> C(kN, kN);
  View2<float, LayoutRight> C_ref(kN, kN);
  ThreadsSpace space(3);
  gemm_openmp_style<float>(space, A, B, C);
  reference_gemm<float>(A, B, C_ref);
  EXPECT_LE(max_abs_diff(C, C_ref), gemm_tolerance(Precision::kSingle, kN));
}

TEST(CpuGemm, HalfInputsFloatAccumulate) {
  // The Fig. 1c scheme: binary16 inputs, FP32 accumulation and output.
  constexpr std::size_t kN = 32;
  auto A = random_matrix<half, LayoutLeft>(kN, kN, 13);
  auto B = random_matrix<half, LayoutLeft>(kN, kN, 14);
  View2<float, LayoutLeft> C(kN, kN);
  View2<float, LayoutLeft> C_ref(kN, kN);
  ThreadsSpace space(2);
  gemm_julia_style<float>(space, A, B, C);
  reference_gemm<float>(A, B, C_ref);
  EXPECT_LE(static_cast<double>(max_abs_diff(C, C_ref)),
            gemm_tolerance(Precision::kHalfIn, kN));
}

TEST(CpuGemm, HalfOfOnesIsExactlyK) {
  // With A = B = 1 (the numpy Float16 workaround), every C entry equals k
  // exactly — k fits in FP32 with no rounding.
  constexpr std::size_t kN = 40;
  View2<half, LayoutRight> A(kN, kN);
  View2<half, LayoutRight> B(kN, kN);
  fill_constant(std::span<half>(A.data(), kN * kN), half(1.0f));
  fill_constant(std::span<half>(B.data(), kN * kN), half(1.0f));
  View2<float, LayoutRight> C(kN, kN);
  ThreadsSpace space(2);
  gemm_numba_style<float>(space, A, B, C);
  for (std::size_t i = 0; i < kN; ++i) {
    for (std::size_t j = 0; j < kN; ++j) EXPECT_EQ(C(i, j), static_cast<float>(kN));
  }
}

// ---- semantics -----------------------------------------------------------

TEST(CpuGemm, AccumulatesIntoC) {
  // All Fig. 2 kernels compute C += A*B; pre-filled C must be preserved.
  constexpr std::size_t kN = 8;
  auto A = random_matrix<double, LayoutRight>(kN, kN, 15);
  auto B = random_matrix<double, LayoutRight>(kN, kN, 16);
  View2<double, LayoutRight> C(kN, kN);
  View2<double, LayoutRight> C_expected(kN, kN);
  for (std::size_t i = 0; i < kN; ++i) {
    for (std::size_t j = 0; j < kN; ++j) {
      C(i, j) = 100.0;
      C_expected(i, j) = 100.0;
    }
  }
  SerialSpace space;
  gemm_openmp_style<double>(space, A, B, C);
  reference_gemm<double>(A, B, C_expected);
  EXPECT_LE(max_abs_diff(C, C_expected), gemm_tolerance(Precision::kDouble, kN));
}

TEST(CpuGemm, SerialAndThreadedBitwiseIdentical) {
  // Row/column-parallel kernels do not change summation order vs serial:
  // results must match bit for bit.
  constexpr std::size_t kN = 33;
  auto A = random_matrix<double, LayoutRight>(kN, kN, 17);
  auto B = random_matrix<double, LayoutRight>(kN, kN, 18);
  View2<double, LayoutRight> C_serial(kN, kN);
  View2<double, LayoutRight> C_threads(kN, kN);
  SerialSpace serial;
  ThreadsSpace threads(4);
  gemm_openmp_style<double>(serial, A, B, C_serial);
  gemm_openmp_style<double>(threads, A, B, C_threads);
  EXPECT_EQ(max_abs_diff(C_serial, C_threads), 0.0);
}

TEST(CpuGemm, JuliaBoundsCheckedPathMatchesInbounds) {
  constexpr std::size_t kN = 24;
  auto A = random_matrix<double, LayoutLeft>(kN, kN, 19);
  auto B = random_matrix<double, LayoutLeft>(kN, kN, 20);
  View2<double, LayoutLeft> C_fast(kN, kN);
  View2<double, LayoutLeft> C_checked(kN, kN);
  SerialSpace space;
  gemm_julia_style<double>(space, A, B, C_fast, /*inbounds=*/true);
  gemm_julia_style<double>(space, A, B, C_checked, /*inbounds=*/false);
  EXPECT_EQ(max_abs_diff(C_fast, C_checked), 0.0);
}

TEST(CpuGemm, ShapeMismatchRejected) {
  View2<double, LayoutRight> A(4, 5);
  View2<double, LayoutRight> B(6, 4);  // inner dims disagree
  View2<double, LayoutRight> C(4, 4);
  SerialSpace space;
  EXPECT_THROW(gemm_openmp_style<double>(space, A, B, C), precondition_error);
  View2<double, LayoutRight> B_ok(5, 4);
  View2<double, LayoutRight> C_bad(4, 7);
  EXPECT_THROW(gemm_openmp_style<double>(space, A, B_ok, C_bad), precondition_error);
}

class TeamGemmTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(TeamGemmTest, MatchesReferenceForAnyTeamSize) {
  const std::size_t team_size = GetParam();
  constexpr std::size_t kN = 40;
  auto A = random_matrix<double, LayoutRight>(kN, kN, 51);
  auto B = random_matrix<double, LayoutRight>(kN, kN, 52);
  View2<double, LayoutRight> C(kN, kN);
  View2<double, LayoutRight> C_ref(kN, kN);
  ThreadsSpace space(4);
  gemm_team_style<double>(space, A, B, C, team_size);
  reference_gemm<double>(A, B, C_ref);
  EXPECT_LE(max_abs_diff(C, C_ref), gemm_tolerance(Precision::kDouble, kN));
}

INSTANTIATE_TEST_SUITE_P(TeamSizes, TeamGemmTest, ::testing::Values(1, 2, 8, 33, 64));

TEST(TeamGemm, ColumnMajorAndSerialSpace) {
  constexpr std::size_t kN = 24;
  auto A = random_matrix<double, LayoutLeft>(kN, kN, 53);
  auto B = random_matrix<double, LayoutLeft>(kN, kN, 54);
  View2<double, LayoutLeft> C(kN, kN);
  View2<double, LayoutLeft> C_ref(kN, kN);
  SerialSpace space;
  gemm_team_style<double>(space, A, B, C, 4);
  reference_gemm<double>(A, B, C_ref);
  EXPECT_LE(max_abs_diff(C, C_ref), gemm_tolerance(Precision::kDouble, kN));
}

TEST(TeamGemm, ZeroTeamSizeRejected) {
  View2<double, LayoutRight> A(4, 4);
  View2<double, LayoutRight> B(4, 4);
  View2<double, LayoutRight> C(4, 4);
  SerialSpace space;
  EXPECT_THROW(gemm_team_style<double>(space, A, B, C, 0), precondition_error);
}

TEST(ReferenceGemm, BlockSizeInvariant) {
  // Property: the blocked reference gives identical results for any block
  // size (it never reorders the k-accumulation).
  constexpr std::size_t kN = 37;
  auto A = random_matrix<double, LayoutRight>(kN, kN, 21);
  auto B = random_matrix<double, LayoutRight>(kN, kN, 22);
  View2<double, LayoutRight> C1(kN, kN);
  View2<double, LayoutRight> C2(kN, kN);
  reference_gemm<double>(A, B, C1, /*block=*/64);
  reference_gemm<double>(A, B, C2, /*block=*/7);
  // Same partial order within blocks of k? No: blocking over k reorders
  // accumulation, so allow rounding-level differences.
  EXPECT_LE(max_abs_diff(C1, C2), gemm_tolerance(Precision::kDouble, kN));
}

}  // namespace
}  // namespace portabench::gemm
