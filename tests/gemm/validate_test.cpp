// Tests for the validation helpers.
#include "gemm/validate.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "simrt/mdarray.hpp"

namespace portabench::gemm {
namespace {

using simrt::LayoutLeft;
using simrt::LayoutRight;
using simrt::View2;

TEST(MaxAbsDiff, ZeroForIdenticalViews) {
  View2<double, LayoutRight> a(3, 3);
  View2<double, LayoutRight> b(3, 3);
  a(1, 2) = 5.0;
  b(1, 2) = 5.0;
  EXPECT_EQ(max_abs_diff(a, b), 0.0);
}

TEST(MaxAbsDiff, FindsWorstElement) {
  View2<double, LayoutRight> a(2, 2);
  View2<double, LayoutRight> b(2, 2);
  a(0, 0) = 1.0;
  b(0, 0) = 1.5;
  a(1, 1) = -3.0;
  b(1, 1) = 1.0;
  EXPECT_DOUBLE_EQ(max_abs_diff(a, b), 4.0);
}

TEST(MaxAbsDiff, CrossLayoutComparesLogicalElements) {
  View2<double, LayoutRight> r(2, 3);
  View2<double, LayoutLeft> l(2, 3);
  for (std::size_t i = 0; i < 2; ++i) {
    for (std::size_t j = 0; j < 3; ++j) {
      r(i, j) = static_cast<double>(i * 3 + j);
      l(i, j) = static_cast<double>(i * 3 + j);
    }
  }
  EXPECT_EQ(max_abs_diff(r, l), 0.0);
}

TEST(MaxAbsDiff, FlatSpans) {
  std::vector<float> a{1.0f, 2.0f, 3.0f};
  std::vector<float> b{1.0f, 2.5f, 3.0f};
  EXPECT_FLOAT_EQ(static_cast<float>(max_abs_diff<float>(a, b)), 0.5f);
}

TEST(Tolerance, ScalesWithKAndPrecision) {
  EXPECT_LT(gemm_tolerance(Precision::kDouble, 100), gemm_tolerance(Precision::kSingle, 100));
  EXPECT_LT(gemm_tolerance(Precision::kSingle, 100), gemm_tolerance(Precision::kHalfIn, 100));
  EXPECT_LT(gemm_tolerance(Precision::kDouble, 10), gemm_tolerance(Precision::kDouble, 1000));
}

TEST(Tolerance, TightEnoughToCatchRealErrors) {
  // A single off-by-one-element corruption at k=64 must exceed the
  // double tolerance: 8 * 64 * eps ~ 1e-13 << 0.5.
  EXPECT_LT(gemm_tolerance(Precision::kDouble, 64), 0.5);
}

TEST(Checksum, SumsAllElements) {
  View2<double, LayoutRight> v(2, 2);
  v(0, 0) = 1.0;
  v(0, 1) = 2.0;
  v(1, 0) = 3.0;
  v(1, 1) = 4.0;
  EXPECT_DOUBLE_EQ(checksum(v), 10.0);
}

TEST(Checksum, LayoutIndependent) {
  View2<double, LayoutRight> r(3, 4);
  View2<double, LayoutLeft> l(3, 4);
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 4; ++j) {
      r(i, j) = static_cast<double>(i + 10 * j);
      l(i, j) = static_cast<double>(i + 10 * j);
    }
  }
  EXPECT_DOUBLE_EQ(checksum(r), checksum(l));
}

TEST(Checksum, FlatSpanMatchesView) {
  View2<double, LayoutRight> v(4, 4);
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t j = 0; j < 4; ++j) v(i, j) = static_cast<double>(i * 4 + j);
  }
  EXPECT_DOUBLE_EQ(checksum(std::span<const double>(v.data(), 16)), checksum(v));
}

}  // namespace
}  // namespace portabench::gemm
