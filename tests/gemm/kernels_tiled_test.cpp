// Correctness tests for the optimized tiled/packed GEMM ceiling
// (gemm/kernels_tiled.hpp) against the blocked reference: all three paper
// precisions, edge shapes that are not multiples of the MR/NR/KC/MC
// blocking, both host spaces, and the LayoutLeft path the packing is
// supposed to make free.
#include "gemm/kernels_tiled.hpp"

#include <gtest/gtest.h>

#include <tuple>

#include "common/half.hpp"
#include "common/rng.hpp"
#include "gemm/reference.hpp"
#include "gemm/validate.hpp"
#include "models/runner.hpp"

namespace portabench::gemm {
namespace {

using simrt::LayoutLeft;
using simrt::LayoutRight;
using simrt::SerialSpace;
using simrt::ThreadsSpace;
using simrt::View2;

template <class T, class Layout>
View2<T, Layout> random_matrix(std::size_t rows, std::size_t cols, std::uint64_t seed) {
  View2<T, Layout> v(rows, cols);
  Xoshiro256 rng(seed);
  fill_uniform(std::span<T>(v.data(), rows * cols), rng);
  return v;
}

// ---- shape sweep: blocking edges are where packed kernels break ----------
//
// Shapes straddle every blocking boundary: below one micro-tile, exactly
// one micro-tile, non-multiples of kMR=4 / kNR=8, across the kMC=64 row
// block, and across the kKC=256 k-panel (multiple packing passes).
class TiledGemmShapes
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t, std::size_t>> {};

TEST_P(TiledGemmShapes, MatchesReferenceDouble) {
  const auto [m, k, n] = GetParam();
  auto A = random_matrix<double, LayoutRight>(m, k, 1);
  auto B = random_matrix<double, LayoutRight>(k, n, 2);
  View2<double, LayoutRight> C(m, n);
  View2<double, LayoutRight> C_ref(m, n);
  ThreadsSpace space(4);
  gemm_tiled<double>(space, A, B, C);
  reference_gemm<double>(A, B, C_ref);
  EXPECT_LE(max_abs_diff(C, C_ref), gemm_tolerance(Precision::kDouble, k));
}

TEST_P(TiledGemmShapes, SerialSpaceMatchesReference) {
  const auto [m, k, n] = GetParam();
  auto A = random_matrix<double, LayoutRight>(m, k, 3);
  auto B = random_matrix<double, LayoutRight>(k, n, 4);
  View2<double, LayoutRight> C(m, n);
  View2<double, LayoutRight> C_ref(m, n);
  SerialSpace space;
  gemm_tiled<double>(space, A, B, C);
  reference_gemm<double>(A, B, C_ref);
  EXPECT_LE(max_abs_diff(C, C_ref), gemm_tolerance(Precision::kDouble, k));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, TiledGemmShapes,
    ::testing::Values(std::tuple{1u, 1u, 1u}, std::tuple{3u, 5u, 7u},
                      std::tuple{4u, 8u, 8u}, std::tuple{17u, 31u, 13u},
                      std::tuple{64u, 64u, 64u}, std::tuple{65u, 257u, 63u},
                      std::tuple{100u, 1u, 100u}, std::tuple{1u, 300u, 1u},
                      std::tuple{130u, 70u, 9u}));

// ---- precision behaviour -------------------------------------------------

TEST(TiledGemm, SinglePrecisionWithinTolerance) {
  constexpr std::size_t kN = 96;
  auto A = random_matrix<float, LayoutRight>(kN, kN, 11);
  auto B = random_matrix<float, LayoutRight>(kN, kN, 12);
  View2<float, LayoutRight> C(kN, kN);
  View2<float, LayoutRight> C_ref(kN, kN);
  ThreadsSpace space(3);
  gemm_tiled<float>(space, A, B, C);
  reference_gemm<float>(A, B, C_ref);
  EXPECT_LE(max_abs_diff(C, C_ref), gemm_tolerance(Precision::kSingle, kN));
}

TEST(TiledGemm, HalfInputsFloatAccumulate) {
  // Packing converts binary16 operands to FP32, so the micro-kernel
  // accumulates in FP32 — the Fig. 1c scheme.
  constexpr std::size_t kN = 48;
  auto A = random_matrix<half, LayoutRight>(kN, kN, 13);
  auto B = random_matrix<half, LayoutRight>(kN, kN, 14);
  View2<float, LayoutRight> C(kN, kN);
  View2<float, LayoutRight> C_ref(kN, kN);
  ThreadsSpace space(2);
  gemm_tiled<float>(space, A, B, C);
  reference_gemm<float>(A, B, C_ref);
  EXPECT_LE(static_cast<double>(max_abs_diff(C, C_ref)),
            gemm_tolerance(Precision::kHalfIn, kN));
}

TEST(TiledGemm, HalfOfOnesIsExactlyK) {
  constexpr std::size_t kN = 40;
  View2<half, LayoutRight> A(kN, kN);
  View2<half, LayoutRight> B(kN, kN);
  fill_constant(std::span<half>(A.data(), kN * kN), half(1.0f));
  fill_constant(std::span<half>(B.data(), kN * kN), half(1.0f));
  View2<float, LayoutRight> C(kN, kN);
  ThreadsSpace space(2);
  gemm_tiled<float>(space, A, B, C);
  for (std::size_t i = 0; i < kN; ++i) {
    for (std::size_t j = 0; j < kN; ++j) EXPECT_EQ(C(i, j), static_cast<float>(kN));
  }
}

// ---- layout genericity ---------------------------------------------------

TEST(TiledGemm, LayoutLeftMatchesReference) {
  // Packing reads the views through operator(), so column-major operands
  // take the same code path as row-major ones.
  constexpr std::size_t kM = 37, kK = 70, kN = 29;
  auto A = random_matrix<double, LayoutLeft>(kM, kK, 21);
  auto B = random_matrix<double, LayoutLeft>(kK, kN, 22);
  View2<double, LayoutLeft> C(kM, kN);
  View2<double, LayoutLeft> C_ref(kM, kN);
  ThreadsSpace space(4);
  gemm_tiled<double>(space, A, B, C);
  reference_gemm<double>(A, B, C_ref);
  EXPECT_LE(max_abs_diff(C, C_ref), gemm_tolerance(Precision::kDouble, kK));
}

// ---- semantics -----------------------------------------------------------

TEST(TiledGemm, AccumulatesIntoC) {
  // The bias is O(1): the tiled kernel folds the old C in with one final
  // add at writeback (vs the reference's running accumulation), which is
  // a different — equally valid — rounding order, and a large bias would
  // magnify that reordering past the k-based tolerance.
  constexpr std::size_t kN = 20;
  auto A = random_matrix<double, LayoutRight>(kN, kN, 15);
  auto B = random_matrix<double, LayoutRight>(kN, kN, 16);
  View2<double, LayoutRight> C(kN, kN);
  View2<double, LayoutRight> C_expected(kN, kN);
  for (std::size_t i = 0; i < kN; ++i) {
    for (std::size_t j = 0; j < kN; ++j) {
      C(i, j) = 1.5;
      C_expected(i, j) = 1.5;
    }
  }
  SerialSpace space;
  gemm_tiled<double>(space, A, B, C);
  reference_gemm<double>(A, B, C_expected);
  EXPECT_LE(max_abs_diff(C, C_expected), gemm_tolerance(Precision::kDouble, kN));
}

TEST(TiledGemm, SerialAndThreadedBitwiseIdentical) {
  // Parallelism is over disjoint MC row blocks; the k-accumulation order
  // within each output element never changes with the thread count.
  constexpr std::size_t kN = 97;
  auto A = random_matrix<double, LayoutRight>(kN, kN, 17);
  auto B = random_matrix<double, LayoutRight>(kN, kN, 18);
  View2<double, LayoutRight> C_serial(kN, kN);
  View2<double, LayoutRight> C_threads(kN, kN);
  SerialSpace serial;
  ThreadsSpace threads(4);
  gemm_tiled<double>(serial, A, B, C_serial);
  gemm_tiled<double>(threads, A, B, C_threads);
  EXPECT_EQ(max_abs_diff(C_serial, C_threads), 0.0);
}

TEST(TiledGemm, ShapeMismatchRejected) {
  View2<double, LayoutRight> A(4, 5);
  View2<double, LayoutRight> B(6, 4);  // inner dims disagree
  View2<double, LayoutRight> C(4, 4);
  SerialSpace space;
  EXPECT_THROW(gemm_tiled<double>(space, A, B, C), precondition_error);
  View2<double, LayoutRight> B_ok(5, 4);
  View2<double, LayoutRight> C_bad(4, 7);
  EXPECT_THROW(gemm_tiled<double>(space, A, B_ok, C_bad), precondition_error);
}

// ---- model frontend ------------------------------------------------------

TEST(OptimizedCppRunner, RunsAndVerifiesAllPrecisions) {
  auto runner = models::make_optimized_cpu_runner(perfmodel::Platform::kCrusherCpu);
  ASSERT_NE(runner, nullptr);
  EXPECT_EQ(runner->name(), "Optimized C++ (tiled)");
  for (Precision p : {Precision::kDouble, Precision::kSingle, Precision::kHalfIn}) {
    models::RunConfig cfg;
    cfg.n = 96;
    cfg.host_threads = 2;
    cfg.precision = p;
    cfg.verify = true;
    const auto result = runner->run(cfg);
    EXPECT_TRUE(result.verified) << "precision " << static_cast<int>(p);
    EXPECT_GT(result.host_seconds, 0.0);
  }
}

TEST(OptimizedCppRunner, GpuPlatformsHaveNoHostCeiling) {
  EXPECT_EQ(models::make_optimized_cpu_runner(perfmodel::Platform::kCrusherGpu), nullptr);
}

}  // namespace
}  // namespace portabench::gemm
