// Randomized cross-kernel property tests: for arbitrary shapes and seeds,
// every hand-rolled kernel agrees with the blocked reference, and the
// kernels agree with each other across layouts and execution substrates.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "gemm/kernels_cpu.hpp"
#include "gemm/kernels_gpu.hpp"
#include "gemm/reference.hpp"
#include "gemm/validate.hpp"

namespace portabench::gemm {
namespace {

using simrt::LayoutLeft;
using simrt::LayoutRight;
using simrt::ThreadsSpace;
using simrt::View2;

/// Deterministic pseudo-random shape from a case index.
struct Shape {
  std::size_t m;
  std::size_t k;
  std::size_t n;
};

Shape shape_for(std::uint64_t case_index) {
  Xoshiro256 rng(0xCAFE + case_index);
  auto dim = [&] { return 1 + static_cast<std::size_t>(rng() % 70); };
  return {dim(), dim(), dim()};
}

class RandomizedGemm : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomizedGemm, AllCpuKernelsAgreeWithReference) {
  const Shape s = shape_for(GetParam());
  Xoshiro256 rng(GetParam());
  ThreadsSpace space(3);

  View2<double, LayoutRight> A(s.m, s.k);
  View2<double, LayoutRight> B(s.k, s.n);
  fill_uniform(std::span<double>(A.data(), s.m * s.k), rng);
  fill_uniform(std::span<double>(B.data(), s.k * s.n), rng);
  View2<double, LayoutRight> C_ref(s.m, s.n);
  reference_gemm<double>(A, B, C_ref);
  const double tol = gemm_tolerance(Precision::kDouble, s.k);

  {
    View2<double, LayoutRight> C(s.m, s.n);
    gemm_openmp_style<double>(space, A, B, C);
    EXPECT_LE(max_abs_diff(C, C_ref), tol) << "openmp " << s.m << "x" << s.k << "x" << s.n;
  }
  {
    View2<double, LayoutRight> C(s.m, s.n);
    gemm_kokkos_style<double>(space, A, B, C);
    EXPECT_LE(max_abs_diff(C, C_ref), tol) << "kokkos";
  }
  {
    View2<double, LayoutRight> C(s.m, s.n);
    gemm_numba_style<double>(space, A, B, C);
    EXPECT_LE(max_abs_diff(C, C_ref), tol) << "numba";
  }
  {
    View2<double, LayoutRight> C(s.m, s.n);
    gemm_team_style<double>(space, A, B, C, 1 + GetParam() % 9);
    EXPECT_LE(max_abs_diff(C, C_ref), tol) << "team";
  }

  // Column-major Julia kernel on the same logical data.
  {
    View2<double, LayoutLeft> Al(s.m, s.k);
    View2<double, LayoutLeft> Bl(s.k, s.n);
    deep_copy(Al, A);
    deep_copy(Bl, B);
    View2<double, LayoutLeft> C(s.m, s.n);
    gemm_julia_style<double>(space, Al, Bl, C);
    EXPECT_LE(max_abs_diff(C, C_ref), tol) << "julia";
  }
}

TEST_P(RandomizedGemm, GpuKernelsAgreeWithCpuReference) {
  const Shape s = shape_for(GetParam() * 31);
  Xoshiro256 rng(GetParam() * 17);
  gpusim::DeviceContext ctx(gpusim::GpuSpec::a100());

  std::vector<double> hA(s.m * s.k);
  std::vector<double> hB(s.k * s.n);
  fill_uniform(std::span<double>(hA), rng);
  fill_uniform(std::span<double>(hB), rng);

  // Reference via row-major views over copies of the same data.
  View2<double, LayoutRight> A(s.m, s.k);
  View2<double, LayoutRight> B(s.k, s.n);
  for (std::size_t i = 0; i < s.m; ++i) {
    for (std::size_t l = 0; l < s.k; ++l) A(i, l) = hA[i * s.k + l];
  }
  for (std::size_t l = 0; l < s.k; ++l) {
    for (std::size_t j = 0; j < s.n; ++j) B(l, j) = hB[l * s.n + j];
  }
  View2<double, LayoutRight> C_ref(s.m, s.n);
  reference_gemm<double>(A, B, C_ref);
  const double tol = gemm_tolerance(Precision::kDouble, s.k);

  gpusim::DeviceBuffer<double> dA(ctx, s.m * s.k);
  gpusim::DeviceBuffer<double> dB(ctx, s.k * s.n);
  dA.copy_from_host(hA);
  dB.copy_from_host(hB);

  GpuLaunchConfig cfg;
  cfg.block = {1 + GetParam() % 16, 1 + (GetParam() / 3) % 16, 1};

  auto check = [&](auto&& kernel, const char* label) {
    gpusim::DeviceBuffer<double> dC(ctx, s.m * s.n);
    kernel(ctx, cfg, dA, dB, dC, s.m, s.n, s.k);
    std::vector<double> hC(s.m * s.n);
    dC.copy_to_host(std::span<double>(hC));
    double worst = 0.0;
    for (std::size_t i = 0; i < s.m; ++i) {
      for (std::size_t j = 0; j < s.n; ++j) {
        worst = std::max(worst, std::abs(hC[i * s.n + j] - C_ref(i, j)));
      }
    }
    EXPECT_LE(worst, tol) << label << " " << s.m << "x" << s.k << "x" << s.n << " block "
                          << cfg.block.x << "x" << cfg.block.y;
  };
  check([](auto&... args) { gemm_cuda_style<double>(args...); }, "cuda");
  check([](auto&... args) { gemm_kokkos_gpu_style<double>(args...); }, "kokkos-gpu");
  check([](auto&... args) { gemm_numba_cuda_style<double>(args...); }, "numba-cuda");
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomizedGemm, ::testing::Range<std::uint64_t>(0, 12));

}  // namespace
}  // namespace portabench::gemm
