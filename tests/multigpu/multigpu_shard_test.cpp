// Multi-device sharding: bitwise replay contract and edge cases.
//
// The load-bearing assertions are EXPECT_EQ on doubles: every sharded
// result must be *bit-identical* to the single-device serial oracle for
// every device count, overlap mode and per-device tile choice.  Plus the
// edge cases ISSUE 9 calls out: the one-device degenerate topology runs
// through LaunchEngine::shared() exactly as before, Events order work
// across devices, peer copies reject OOB ranges and dead buffers
// eagerly, and per-device counters tally / reset independently.
#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "common/rng.hpp"
#include "gpusim/copy.hpp"
#include "gpusim/pipeline.hpp"
#include "multigpu/gemm.hpp"
#include "multigpu/shard.hpp"
#include "multigpu/spmv.hpp"
#include "multigpu/stencil.hpp"
#include "spmv/sparse.hpp"

namespace portabench::multigpu {
namespace {

using gpusim::DeviceTopology;
using gpusim::TopologyConfig;

std::vector<double> random_vector(std::size_t n, std::uint64_t seed) {
  std::vector<double> v(n);
  Xoshiro256 rng(seed);
  fill_uniform(std::span<double>(v), rng);
  return v;
}

/// Small-worker Crusher-shaped topology: private engines, pinned
/// placement, but few workers so the suite stays fast under ctest -j.
TopologyConfig small_crusher(std::size_t devices) {
  TopologyConfig cfg = TopologyConfig::crusher_node(devices);
  cfg.workers_per_device = 2;
  return cfg;
}

// --- ShardPlan ---------------------------------------------------------------

TEST(ShardPlan, PanelsAreGlobalDisjointAndContiguous) {
  const ShardPlan plan = ShardPlan::rows(1000, 96, 3);
  ASSERT_EQ(plan.devices(), 3u);
  // ceil(1000/96) = 11 panels; global decomposition independent of devices.
  ASSERT_EQ(plan.panels.size(), 11u);
  std::size_t next = 0;
  for (const Panel& p : plan.panels) {
    EXPECT_EQ(p.begin, next);
    next = p.end;
  }
  EXPECT_EQ(next, 1000u);
  // Devices own contiguous runs covering every panel exactly once.
  EXPECT_EQ(plan.panels_of(0) + plan.panels_of(1) + plan.panels_of(2), 11u);
  EXPECT_EQ(plan.global_panel(1, 0), plan.first_panel[1]);
  // Leading devices take the remainder: 4 + 4 + 3.
  EXPECT_EQ(plan.panels_of(0), 4u);
  EXPECT_EQ(plan.panels_of(2), 3u);
}

TEST(ShardPlan, DeviceCountDoesNotChangePanelBoundaries) {
  const ShardPlan one = ShardPlan::rows(517, 64, 1);
  const ShardPlan four = ShardPlan::rows(517, 64, 4);
  ASSERT_EQ(one.panels.size(), four.panels.size());
  for (std::size_t p = 0; p < one.panels.size(); ++p) {
    EXPECT_EQ(one.panels[p].begin, four.panels[p].begin);
    EXPECT_EQ(one.panels[p].end, four.panels[p].end);
  }
}

TEST(ShardPlan, MoreDevicesThanPanelsLeavesTrailingDevicesEmpty) {
  const ShardPlan plan = ShardPlan::rows(10, 8, 4);  // 2 panels, 4 devices
  EXPECT_EQ(plan.panels_of(0), 1u);
  EXPECT_EQ(plan.panels_of(1), 1u);
  EXPECT_EQ(plan.panels_of(2), 0u);
  EXPECT_EQ(plan.panels_of(3), 0u);
}

// --- GEMM --------------------------------------------------------------------

class GemmSharded : public ::testing::Test {
 protected:
  void SetUp() override {
    a_ = random_vector(m_ * k_, 11);
    b_ = random_vector(k_ * n_, 12);
    oracle_.resize(m_ * n_);
    gemm_sharded_oracle<double>({a_.data(), m_, k_}, {b_.data(), k_, n_},
                                {oracle_.data(), m_, n_});
  }

  void expect_bitwise(std::span<const double> c) {
    for (std::size_t i = 0; i < oracle_.size(); ++i) {
      ASSERT_EQ(c[i], oracle_[i]) << "element " << i;
    }
  }

  // Ragged on purpose: m not divisible by panel, panels not by devices.
  const std::size_t m_ = 147, k_ = 53, n_ = 31;
  std::vector<double> a_, b_, oracle_;
};

TEST_F(GemmSharded, BitwiseIdenticalAcrossDeviceCounts) {
  for (std::size_t devices : {1u, 2u, 3u, 4u}) {
    DeviceTopology topo(small_crusher(devices));
    std::vector<double> c(m_ * n_, -1.0);
    GemmShardOptions opt;
    opt.panel_rows = 32;
    const auto stats = gemm_sharded<double>(topo, {a_.data(), m_, k_},
                                            {b_.data(), k_, n_}, {c.data(), m_, n_}, opt);
    EXPECT_EQ(stats.panels, (m_ + 31) / 32);
    expect_bitwise(c);
  }
}

TEST_F(GemmSharded, OverlapOffAndRemoteStagingStayBitwise) {
  DeviceTopology topo(small_crusher(2));
  for (const bool overlap : {false, true}) {
    std::vector<double> c(m_ * n_, -1.0);
    GemmShardOptions opt;
    opt.panel_rows = 48;
    opt.overlap = overlap;
    opt.numa_aware_staging = false;  // everything staged from domain 0
    gemm_sharded<double>(topo, {a_.data(), m_, k_}, {b_.data(), k_, n_},
                         {c.data(), m_, n_}, opt);
    expect_bitwise(c);
  }
}

TEST_F(GemmSharded, PerDeviceTilesCannotChangeBits) {
  // Different MC per device regroups rows into different MC blocks; the
  // KC-major accumulation order per element is unchanged, so the result
  // must stay bit-identical (KC itself is a frozen knob).
  DeviceTopology topo(small_crusher(2));
  GemmShardOptions opt;
  opt.panel_rows = 64;
  opt.tiles.resize(2);
  opt.tiles[0].mc = 16;
  opt.tiles[1].mc = 64;
  std::vector<double> c(m_ * n_, -1.0);
  gemm_sharded<double>(topo, {a_.data(), m_, k_}, {b_.data(), k_, n_},
                       {c.data(), m_, n_}, opt);
  expect_bitwise(c);
}

TEST_F(GemmSharded, DegenerateTopologyUsesSharedEngine) {
  // Default one-device config: no private engine, no pinning — the
  // exact single-device path that existed before this layer.
  TopologyConfig cfg;
  cfg.pin_workers = false;
  DeviceTopology topo(cfg);
  EXPECT_EQ(&topo.engine(0), &gpusim::LaunchEngine::shared());
  std::vector<double> c(m_ * n_, -1.0);
  gemm_sharded<double>(topo, {a_.data(), m_, k_}, {b_.data(), k_, n_},
                       {c.data(), m_, n_});
  expect_bitwise(c);
}

// --- SpMV --------------------------------------------------------------------

TEST(SpmvSharded, BitwiseIdenticalAcrossDeviceCounts) {
  const auto A = spmv::random_csr<double>(977, 611, 9, 7);
  const std::vector<double> x = random_vector(A.cols, 8);
  std::vector<double> reference(A.rows);
  spmv::spmv_reference<double>(A, x, std::span<double>(reference));

  for (std::size_t devices : {1u, 2u, 4u}) {
    DeviceTopology topo(small_crusher(devices));
    std::vector<double> y(A.rows, -1.0);
    SpmvShardOptions opt;
    opt.panel_rows = 128;
    opt.rows_per_block = 37;  // ragged blocks inside ragged panels
    spmv_sharded<double>(topo, A, x, std::span<double>(y), opt);
    for (std::size_t r = 0; r < A.rows; ++r) {
      ASSERT_EQ(y[r], reference[r]) << "row " << r << " devices " << devices;
    }
  }
}

TEST(SpmvSharded, BandedMatrixNonOverlapPath) {
  const auto A = spmv::banded_csr<double>(300, 5, 21);
  const std::vector<double> x = random_vector(A.cols, 22);
  std::vector<double> reference(A.rows);
  spmv::spmv_reference<double>(A, x, std::span<double>(reference));

  DeviceTopology topo(small_crusher(3));
  std::vector<double> y(A.rows, -1.0);
  SpmvShardOptions opt;
  opt.panel_rows = 64;
  opt.overlap = false;
  spmv_sharded<double>(topo, A, x, std::span<double>(y), opt);
  for (std::size_t r = 0; r < A.rows; ++r) {
    ASSERT_EQ(y[r], reference[r]) << "row " << r;
  }
}

// --- Stencil -----------------------------------------------------------------

TEST(StencilSharded, BitwiseIdenticalAcrossDeviceCountsAndIterations) {
  const std::size_t rows = 83, cols = 41;  // slabs of ~20 rows at 4 devices
  const std::vector<double> init = random_vector(rows * cols, 31);

  for (std::size_t devices : {1u, 2u, 3u, 4u}) {
    for (std::size_t iters : {1u, 2u, 5u}) {
      const std::vector<double> expect =
          stencil_iterated_oracle(init, rows, cols, iters);
      DeviceTopology topo(small_crusher(devices));
      std::vector<double> grid = init;
      StencilShardOptions opt;
      opt.iterations = iters;
      const auto stats = stencil_sharded(topo, std::span<double>(grid), rows, cols, opt);
      EXPECT_EQ(stats.panels, devices * iters);
      for (std::size_t i = 0; i < grid.size(); ++i) {
        ASSERT_EQ(grid[i], expect[i])
            << "cell " << i << " devices " << devices << " iters " << iters;
      }
    }
  }
}

TEST(StencilSharded, MoreDevicesThanInteriorRows) {
  // 4 rows -> 2 interior rows across 4 devices: some devices own no
  // computed rows and must neither deadlock nor corrupt the halos.
  const std::size_t rows = 4, cols = 9;
  const std::vector<double> init = random_vector(rows * cols, 41);
  const std::vector<double> expect = stencil_iterated_oracle(init, rows, cols, 3);
  DeviceTopology topo(small_crusher(4));
  std::vector<double> grid = init;
  StencilShardOptions opt;
  opt.iterations = 3;
  stencil_sharded(topo, std::span<double>(grid), rows, cols, opt);
  for (std::size_t i = 0; i < grid.size(); ++i) ASSERT_EQ(grid[i], expect[i]);
}

// --- Cross-device events -----------------------------------------------------

TEST(CrossDeviceEvents, WaitOrdersWorkAcrossDevices) {
  DeviceTopology topo(small_crusher(2));
  gpusim::Stream s0(topo.context(0), gpusim::StreamMode::kAsync);
  gpusim::Stream s1(topo.context(1), gpusim::StreamMode::kAsync);

  std::atomic<int> step{0};
  // Device 0 produces (slowly); device 1 must observe the produced value.
  s0.enqueue(0.0, [&] { step.store(1, std::memory_order_release); });
  gpusim::Event produced;
  s0.record(produced);
  s1.wait(produced);
  int observed = -1;
  s1.enqueue(0.0, [&] { observed = step.load(std::memory_order_acquire); });
  s1.synchronize();
  EXPECT_EQ(observed, 1);

  // Modeled clocks joined too: s1's clock jumped to at least s0's.
  s0.enqueue(2.0);
  gpusim::Event late;
  s0.record(late);
  s1.wait(late);
  EXPECT_GE(s1.now(), s0.now());
  s0.synchronize();
  s1.synchronize();
}

// --- Peer copy negative paths ------------------------------------------------

TEST(PeerCopyNegative, RejectsOutOfBoundsAndDeadBuffersEagerly) {
  DeviceTopology topo(small_crusher(2));
  gpusim::Stream s(topo.context(0), gpusim::StreamMode::kAsync);
  gpusim::DeviceBuffer<double> a(topo.context(0), 64);
  gpusim::DeviceBuffer<double> b(topo.context(1), 32);

  // OOB destination range, OOB source range, and offset past the end.
  EXPECT_THROW(gpusim::peer_copy_async(s, b, 0, a, 0, 33), precondition_error);
  EXPECT_THROW(gpusim::peer_copy_async(s, b, 0, a, 40, 32), precondition_error);
  EXPECT_THROW(gpusim::peer_copy_async(s, b, 33, a, 0, 0), precondition_error);

  // Overlapping self-copy rejected; disjoint self-copy fine.
  EXPECT_THROW(gpusim::peer_copy_async(s, a, 8, a, 0, 16), precondition_error);
  EXPECT_NO_THROW(gpusim::peer_copy_async(s, a, 32, a, 0, 16));

  // Freed (moved-from) buffers on either endpoint throw at the call
  // site, not at some later synchronize().
  gpusim::DeviceBuffer<double> stolen = std::move(a);
  EXPECT_THROW(gpusim::peer_copy_async(s, b, 0, a, 0, 8), precondition_error);
  EXPECT_THROW(gpusim::peer_copy_async(s, a, 0, b, 0, 8), precondition_error);
  std::vector<double> host(8);
  EXPECT_THROW(
      gpusim::copy_to_device_async(s, a, 0, std::span<const double>(host.data(), 8)),
      precondition_error);
  EXPECT_THROW(gpusim::copy_to_host_async(s, std::span<double>(host), a, 0),
               precondition_error);
  s.synchronize();
}

TEST(PeerCopyNegative, StreamMustBelongToH2DEndpointContext) {
  DeviceTopology topo(small_crusher(2));
  gpusim::Stream wrong(topo.context(1), gpusim::StreamMode::kAsync);
  gpusim::DeviceBuffer<double> a(topo.context(0), 8);
  std::vector<double> host(8);
  EXPECT_THROW(
      gpusim::copy_to_device_async(wrong, a, 0, std::span<const double>(host.data(), 8)),
      precondition_error);
  wrong.synchronize();
}

// --- Per-device counters -----------------------------------------------------

TEST(DeviceCounters, PerDeviceTransferTalliesAndReset) {
  DeviceTopology topo(small_crusher(2));
  gpusim::Stream s0(topo.context(0), gpusim::StreamMode::kAsync);
  gpusim::Stream s1(topo.context(1), gpusim::StreamMode::kAsync);
  gpusim::DeviceBuffer<double> a(topo.context(0), 16);
  gpusim::DeviceBuffer<double> b(topo.context(1), 16);
  std::vector<double> host(16, 1.0);

  gpusim::copy_to_device_async(s0, a, 0, std::span<const double>(host.data(), 16));
  gpusim::peer_copy_async(s0, b, 0, a, 0, 16);
  gpusim::copy_to_host_async(s1, std::span<double>(host), b, 0);
  s0.synchronize();
  s1.synchronize();

  const auto c0 = topo.context(0).counters();
  const auto c1 = topo.context(1).counters();
  EXPECT_EQ(c0.bytes_h2d, 16 * sizeof(double));
  EXPECT_EQ(c0.bytes_d2d_out, 16 * sizeof(double));
  EXPECT_EQ(c0.bytes_d2d_in, 0u);
  EXPECT_EQ(c0.bytes_d2h, 0u);
  EXPECT_EQ(c1.bytes_d2d_in, 16 * sizeof(double));
  EXPECT_EQ(c1.bytes_d2d_out, 0u);
  EXPECT_EQ(c1.bytes_d2h, 16 * sizeof(double));
  EXPECT_EQ(c1.bytes_h2d, 0u);

  // Reset is per device: device 1 keeps its tallies until its own reset.
  topo.context(0).reset_counters();
  EXPECT_EQ(topo.context(0).counters().bytes_h2d, 0u);
  EXPECT_EQ(topo.context(0).counters().bytes_d2d_out, 0u);
  EXPECT_EQ(topo.context(1).counters().bytes_d2d_in, 16 * sizeof(double));
  topo.context(1).reset_counters();
  EXPECT_EQ(topo.context(1).counters().bytes_d2d_in, 0u);
  EXPECT_EQ(topo.context(1).counters().bytes_d2h, 0u);
}

// --- Topology shape ----------------------------------------------------------

TEST(Topology, CrusherShapeDomainsPackagesAndLinks) {
  DeviceTopology topo(TopologyConfig::crusher_node(8));
  EXPECT_EQ(topo.devices(), 8u);
  // GCD g is fed from domain g/2 (Table II cabling).
  for (std::size_t g = 0; g < 8; ++g) EXPECT_EQ(topo.numa_domain_of(g), g / 2);
  // Same staging domain: local link; other domain: remote link.
  EXPECT_GT(topo.h2d_link(0, 0).bw_gbs, topo.h2d_link(0, 3).bw_gbs);
  // MCM pair (0,1) rides the wide fabric; (0,2) crosses packages.
  EXPECT_GT(topo.d2d_link(0, 1).bw_gbs, topo.d2d_link(0, 2).bw_gbs);
  EXPECT_LT(topo.d2d_seconds(0, 1, 1 << 20), topo.d2d_seconds(0, 2, 1 << 20));
}

TEST(Topology, PinnedPlacementLandsInDeviceDomain) {
  TopologyConfig cfg = TopologyConfig::crusher_node(4);
  cfg.workers_per_device = 4;
  DeviceTopology topo(cfg);
  for (std::size_t d = 0; d < 4; ++d) {
    const simrt::Placement& p = topo.engine(d).placement();
    ASSERT_TRUE(p.pinned());
    const std::size_t cpd = cfg.host.cores_per_domain();
    for (const std::size_t core : p.core_of_thread) {
      EXPECT_EQ(core / cpd, topo.numa_domain_of(d)) << "device " << d;
    }
  }
}

// --- Pipeline modeled clock --------------------------------------------------

TEST(Pipeline, OverlapShortensModeledMakespan) {
  // Pure modeled-clock test (no payload): 8 panels, transfer 1s + 1s,
  // compute 2s.  Serial: 8 * 4s = 32s.  Overlapped steady state is
  // compute-bound: ~2s/panel.
  gpusim::DeviceContext ctx{gpusim::GpuSpec::mi250x_gcd()};
  const auto stage = [](double cost) {
    return [cost](gpusim::Stream& s, std::size_t, std::size_t) { s.enqueue(cost); };
  };
  gpusim::PipelineOptions serial{.slots = 2, .overlap = false};
  gpusim::PipelineOptions overlapped{.slots = 2, .overlap = true};
  const auto ref = gpusim::run_pipeline(ctx, 8, serial, stage(1.0), stage(2.0), stage(1.0));
  const auto ovl =
      gpusim::run_pipeline(ctx, 8, overlapped, stage(1.0), stage(2.0), stage(1.0));
  EXPECT_DOUBLE_EQ(ref.modeled_s, 32.0);
  EXPECT_LT(ovl.modeled_s, ref.modeled_s);
  EXPECT_GE(ovl.modeled_s, 16.0);  // cannot beat the compute lower bound
}

}  // namespace
}  // namespace portabench::multigpu
