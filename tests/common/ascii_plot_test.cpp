// Tests for the ASCII chart renderer.
#include "common/ascii_plot.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "common/error.hpp"

namespace portabench {
namespace {

std::vector<std::string> lines_of(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream is(text);
  std::string line;
  while (std::getline(is, line)) lines.push_back(line);
  return lines;
}

TEST(AsciiPlot, ContainsLegendAndAxes) {
  PlotSeries s{"CUDA", {1.0, 2.0, 3.0, 4.0}};
  const std::string out = render_plot({s}, {1, 2, 3, 4});
  EXPECT_NE(out.find("legend: * CUDA"), std::string::npos);
  EXPECT_NE(out.find('|'), std::string::npos);
  EXPECT_NE(out.find('+'), std::string::npos);
}

TEST(AsciiPlot, RisingSeriesOccupiesRisingRows) {
  PlotOptions opt;
  opt.width = 40;
  opt.height = 10;
  opt.y_label = "y";  // ensures the canvas starts at line index 1
  PlotSeries s{"x", {0.0, 50.0, 100.0}};
  const auto lines = lines_of(render_plot({s}, {0, 1, 2}, opt));
  // First canvas line is index 1 (after the y-label line).  Max value
  // lands in the top canvas row, min in the bottom.
  const std::string& top = lines[1];
  const std::string& bottom = lines[10];
  EXPECT_NE(top.find('*'), std::string::npos);
  EXPECT_NE(bottom.find('*'), std::string::npos);
  // Top row glyph is to the right of bottom row glyph (rising line).
  EXPECT_GT(top.rfind('*'), bottom.find('*'));
}

TEST(AsciiPlot, MultipleSeriesDistinctGlyphs) {
  PlotSeries a{"first", {1.0, 1.0}};
  PlotSeries b{"second", {10.0, 10.0}};
  const std::string out = render_plot({a, b}, {0, 1});
  EXPECT_NE(out.find('*'), std::string::npos);
  EXPECT_NE(out.find('+'), std::string::npos);
  EXPECT_NE(out.find("+ second"), std::string::npos);
}

TEST(AsciiPlot, EngineeringUnitsOnAxis) {
  PlotSeries s{"perf", {4365.0, 4365.0}};
  const std::string out = render_plot({s}, {4096, 20480});
  EXPECT_NE(out.find("k"), std::string::npos);  // 4.365k axis label
}

TEST(AsciiPlot, LabelsRendered) {
  PlotOptions opt;
  opt.y_label = "GFLOP/s";
  opt.x_label = "matrix size n";
  PlotSeries s{"v", {1.0, 2.0}};
  const std::string out = render_plot({s}, {1, 2}, opt);
  EXPECT_NE(out.find("GFLOP/s"), std::string::npos);
  EXPECT_NE(out.find("matrix size n"), std::string::npos);
}

TEST(AsciiPlot, SinglePointSeries) {
  PlotSeries s{"dot", {5.0}};
  EXPECT_NO_THROW((void)render_plot({s}, {10}));
}

TEST(AsciiPlot, ConstantZeroSeriesHandled) {
  PlotSeries s{"zero", {0.0, 0.0, 0.0}};
  EXPECT_NO_THROW((void)render_plot({s}, {1, 2, 3}));
}

TEST(AsciiPlot, PreconditionsEnforced) {
  EXPECT_THROW((void)render_plot({}, {1}), precondition_error);
  PlotSeries s{"x", {1.0, 2.0}};
  EXPECT_THROW((void)render_plot({s}, {1}), precondition_error);  // tick mismatch
  PlotSeries empty{"e", {}};
  EXPECT_THROW((void)render_plot({empty}, {}), precondition_error);
  PlotOptions tiny;
  tiny.width = 2;
  EXPECT_THROW((void)render_plot({s}, {1, 2}, tiny), precondition_error);
}

TEST(AsciiPlot, MismatchedSeriesLengthsRejected) {
  PlotSeries a{"a", {1.0, 2.0}};
  PlotSeries b{"b", {1.0}};
  EXPECT_THROW((void)render_plot({a, b}, {1, 2}), precondition_error);
}

}  // namespace
}  // namespace portabench
