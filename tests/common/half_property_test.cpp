// Additional numeric property tests for the soft-float types: the
// algebraic identities generic numeric code relies on, and the
// accumulation-drift behaviour behind the Fig. 1c mixed-precision scheme.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>

#include "common/half.hpp"
#include "common/rng.hpp"
#include "gemm/kernels_cpu.hpp"
#include "gemm/validate.hpp"
#include "portacheck/hooks.hpp"
#include "simrt/mdarray.hpp"
#include "simrt/parallel.hpp"

namespace portabench {
namespace {

TEST(HalfAlgebra, AdditionCommutes) {
  Xoshiro256 rng(1);
  for (int i = 0; i < 2000; ++i) {
    const half a(static_cast<float>(rng.uniform(-100.0, 100.0)));
    const half b(static_cast<float>(rng.uniform(-100.0, 100.0)));
    EXPECT_EQ((a + b).bits(), (b + a).bits());
  }
}

TEST(HalfAlgebra, MultiplicationCommutes) {
  Xoshiro256 rng(2);
  for (int i = 0; i < 2000; ++i) {
    const half a(static_cast<float>(rng.uniform(-10.0, 10.0)));
    const half b(static_cast<float>(rng.uniform(-10.0, 10.0)));
    EXPECT_EQ((a * b).bits(), (b * a).bits());
  }
}

TEST(HalfAlgebra, IdentityElements) {
  Xoshiro256 rng(3);
  for (int i = 0; i < 500; ++i) {
    const half a(static_cast<float>(rng.uniform(-1000.0, 1000.0)));
    EXPECT_EQ((a + half(0.0f)).bits(), a.bits());
    EXPECT_EQ((a * half(1.0f)).bits(), a.bits());
  }
}

TEST(HalfAlgebra, NegationIsInvolution) {
  Xoshiro256 rng(4);
  for (int i = 0; i < 500; ++i) {
    const half a(static_cast<float>(rng.uniform(-1.0, 1.0)));
    EXPECT_EQ((-(-a)).bits(), a.bits());
    EXPECT_EQ((a + (-a)).bits() & 0x7FFFu, 0u);  // a - a == +/-0
  }
}

TEST(HalfAlgebra, SubnormalArithmeticSurvives) {
  const half tiny = half::from_bits(0x0001);  // smallest subnormal
  EXPECT_TRUE(tiny.is_subnormal());
  const half doubled = tiny + tiny;
  EXPECT_EQ(doubled.bits(), 0x0002u);
  EXPECT_TRUE((tiny / half(2.0f)).is_zero());  // underflows to zero (RTNE ties-to-even)
}

TEST(HalfAccumulation, Fp16SumDriftVsFp32Accumulator) {
  // The Fig. 1c rationale quantified: summing k values of ~0.5 in FP16
  // stalls once the running sum is large enough that +0.5 rounds away
  // (at 1024, the spacing is 0.5: ties-to-even keeps the sum put), while
  // an FP32 accumulator tracks the true sum.
  constexpr int kTerms = 4096;
  half fp16_acc(0.0f);
  float fp32_acc = 0.0f;
  for (int i = 0; i < kTerms; ++i) {
    fp16_acc += half(0.5f);
    fp32_acc += 0.5f;
  }
  EXPECT_EQ(fp32_acc, 2048.0f);
  EXPECT_LT(static_cast<float>(fp16_acc), 1100.0f);  // stalled near 1024
  EXPECT_GE(static_cast<float>(fp16_acc), 1024.0f);
}

TEST(HalfAccumulation, MixedPrecisionDotMatchesDoubleClosely) {
  // FP16 inputs with FP32 accumulation: error bounded by input rounding,
  // not accumulation length.
  Xoshiro256 rng(5);
  constexpr int kTerms = 10000;
  float mixed = 0.0f;
  double exact = 0.0;
  for (int i = 0; i < kTerms; ++i) {
    const half a(static_cast<float>(rng.uniform()));
    const half b(static_cast<float>(rng.uniform()));
    mixed += static_cast<float>(a) * static_cast<float>(b);
    exact += static_cast<double>(static_cast<float>(a)) *
             static_cast<double>(static_cast<float>(b));
  }
  // Relative error at the FP32-accumulation level (~1e-4 for 1e4 terms),
  // far below the ~5e-2 an FP16 accumulator would show.
  EXPECT_NEAR(mixed / static_cast<float>(exact), 1.0f, 1e-3f);
}

TEST(HalfProperty, RoundTripThroughFloatExactForAllBitPatterns) {
  // Exhaustive: every one of the 65536 FP16 encodings must survive the
  // half -> float -> half round trip bit-for-bit (float is a superset of
  // half, so the conversion pair must be the identity; NaNs must stay
  // NaN even if the payload is not preserved).
  for (std::uint32_t bits = 0; bits <= 0xFFFF; ++bits) {
    const half original = half::from_bits(static_cast<std::uint16_t>(bits));
    const half back(static_cast<float>(original));
    if (original.is_nan()) {
      EXPECT_TRUE(back.is_nan()) << bits;
    } else {
      EXPECT_EQ(back.bits(), original.bits()) << bits;
    }
  }
}

TEST(HalfProperty, RoundTripThroughDoubleExactForAllBitPatterns) {
  for (std::uint32_t bits = 0; bits <= 0xFFFF; ++bits) {
    const half original = half::from_bits(static_cast<std::uint16_t>(bits));
    const half back(static_cast<double>(original));
    if (original.is_nan()) {
      EXPECT_TRUE(back.is_nan()) << bits;
    } else {
      EXPECT_EQ(back.bits(), original.bits()) << bits;
    }
  }
}

TEST(BFloat16Property, RoundTripThroughFloatExact) {
  for (std::uint32_t bits = 0; bits <= 0xFFFF; bits += 3) {
    const bfloat16 original = bfloat16::from_bits(static_cast<std::uint16_t>(bits));
    const float f = static_cast<float>(original);
    const bfloat16 back(f);
    if (original.is_nan()) {
      EXPECT_TRUE(back.is_nan());
    } else {
      EXPECT_EQ(back.bits(), original.bits()) << bits;
    }
  }
}

// --- half-in / float-accumulate GEMM determinism ---------------------------
//
// The Fig. 1c mixed-precision scheme, as a property: with inputs chosen
// so every product and partial sum is exactly representable in float,
// every CPU kernel ordering (i-k-j, dot-product, j-l-i, team), every
// thread count, and every portacheck scheduler seed must produce the
// bitwise-identical result.

namespace {

/// FP16-exact test value: multiples of 1/8 in [-2, 2).  Products are
/// multiples of 1/64 bounded by 4, and a 24-term accumulation stays far
/// inside float's exact-integer range scaled by 1/64 — so float
/// accumulation is exact and therefore order-independent.
half exact_half(std::size_t i, std::size_t j) {
  const int step = static_cast<int>((i * 7 + j * 13) % 32) - 16;
  return half(static_cast<float>(step) / 8.0f);
}

template <class Layout>
simrt::View2<half, Layout> exact_matrix(std::size_t n, std::size_t salt) {
  simrt::View2<half, Layout> v(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) v(i, j) = exact_half(i + salt, j);
  }
  return v;
}

template <class Layout, class Kernel>
double half_gemm_checksum(std::size_t n, std::size_t threads, Kernel&& kernel) {
  auto A = exact_matrix<Layout>(n, 0);
  auto B = exact_matrix<Layout>(n, 5);
  simrt::View2<float, Layout> C(n, n);
  simrt::ThreadsSpace space(threads);
  kernel(space, A, B, C);
  return gemm::checksum(C);
}

}  // namespace

TEST(HalfGemmDeterminism, BitwiseIdenticalAcrossKernelOrderings) {
  const std::size_t n = 24;
  using LR = simrt::LayoutRight;
  using LL = simrt::LayoutLeft;
  const double openmp = half_gemm_checksum<LR>(n, 4, [](auto& s, auto& A, auto& B, auto& C) {
    gemm::gemm_openmp_style<float>(s, A, B, C);
  });
  const double kokkos = half_gemm_checksum<LR>(n, 4, [](auto& s, auto& A, auto& B, auto& C) {
    gemm::gemm_kokkos_style<float>(s, A, B, C);
  });
  const double numba = half_gemm_checksum<LR>(n, 4, [](auto& s, auto& A, auto& B, auto& C) {
    gemm::gemm_numba_style<float>(s, A, B, C);
  });
  const double team = half_gemm_checksum<LR>(n, 4, [](auto& s, auto& A, auto& B, auto& C) {
    gemm::gemm_team_style<float>(s, A, B, C, 3);
  });
  const double julia = half_gemm_checksum<LL>(n, 4, [](auto& s, auto& A, auto& B, auto& C) {
    gemm::gemm_julia_style<float>(s, A, B, C);
  });
  EXPECT_NE(openmp, 0.0);
  EXPECT_EQ(openmp, kokkos);
  EXPECT_EQ(openmp, numba);
  EXPECT_EQ(openmp, team);
  EXPECT_EQ(openmp, julia);
}

TEST(HalfGemmDeterminism, BitwiseIdenticalAcrossThreadCounts) {
  const std::size_t n = 24;
  double first = 0.0;
  for (std::size_t threads : {1u, 2u, 4u, 5u}) {
    const double sum = half_gemm_checksum<simrt::LayoutRight>(
        n, threads,
        [](auto& s, auto& A, auto& B, auto& C) { gemm::gemm_openmp_style<float>(s, A, B, C); });
    if (threads == 1u) {
      first = sum;
    } else {
      EXPECT_EQ(sum, first) << threads << " threads";
    }
  }
}

TEST(HalfGemmDeterminism, BitwiseIdenticalAcrossSanitizerSeeds) {
  const std::size_t n = 24;
  const double baseline = half_gemm_checksum<simrt::LayoutRight>(
      n, 4,
      [](auto& s, auto& A, auto& B, auto& C) { gemm::gemm_openmp_style<float>(s, A, B, C); });
  for (std::uint64_t seed : {1ull, 2ull, 3ull}) {
    portacheck::ScopedCheck check(seed);
    const double sum = half_gemm_checksum<simrt::LayoutRight>(
        n, 4,
        [](auto& s, auto& A, auto& B, auto& C) { gemm::gemm_openmp_style<float>(s, A, B, C); });
    EXPECT_EQ(sum, baseline) << "seed " << seed;
  }
}

}  // namespace
}  // namespace portabench
