// Additional numeric property tests for the soft-float types: the
// algebraic identities generic numeric code relies on, and the
// accumulation-drift behaviour behind the Fig. 1c mixed-precision scheme.
#include <gtest/gtest.h>

#include <cmath>

#include "common/half.hpp"
#include "common/rng.hpp"

namespace portabench {
namespace {

TEST(HalfAlgebra, AdditionCommutes) {
  Xoshiro256 rng(1);
  for (int i = 0; i < 2000; ++i) {
    const half a(static_cast<float>(rng.uniform(-100.0, 100.0)));
    const half b(static_cast<float>(rng.uniform(-100.0, 100.0)));
    EXPECT_EQ((a + b).bits(), (b + a).bits());
  }
}

TEST(HalfAlgebra, MultiplicationCommutes) {
  Xoshiro256 rng(2);
  for (int i = 0; i < 2000; ++i) {
    const half a(static_cast<float>(rng.uniform(-10.0, 10.0)));
    const half b(static_cast<float>(rng.uniform(-10.0, 10.0)));
    EXPECT_EQ((a * b).bits(), (b * a).bits());
  }
}

TEST(HalfAlgebra, IdentityElements) {
  Xoshiro256 rng(3);
  for (int i = 0; i < 500; ++i) {
    const half a(static_cast<float>(rng.uniform(-1000.0, 1000.0)));
    EXPECT_EQ((a + half(0.0f)).bits(), a.bits());
    EXPECT_EQ((a * half(1.0f)).bits(), a.bits());
  }
}

TEST(HalfAlgebra, NegationIsInvolution) {
  Xoshiro256 rng(4);
  for (int i = 0; i < 500; ++i) {
    const half a(static_cast<float>(rng.uniform(-1.0, 1.0)));
    EXPECT_EQ((-(-a)).bits(), a.bits());
    EXPECT_EQ((a + (-a)).bits() & 0x7FFFu, 0u);  // a - a == +/-0
  }
}

TEST(HalfAlgebra, SubnormalArithmeticSurvives) {
  const half tiny = half::from_bits(0x0001);  // smallest subnormal
  EXPECT_TRUE(tiny.is_subnormal());
  const half doubled = tiny + tiny;
  EXPECT_EQ(doubled.bits(), 0x0002u);
  EXPECT_TRUE((tiny / half(2.0f)).is_zero());  // underflows to zero (RTNE ties-to-even)
}

TEST(HalfAccumulation, Fp16SumDriftVsFp32Accumulator) {
  // The Fig. 1c rationale quantified: summing k values of ~0.5 in FP16
  // stalls once the running sum is large enough that +0.5 rounds away
  // (at 1024, the spacing is 0.5: ties-to-even keeps the sum put), while
  // an FP32 accumulator tracks the true sum.
  constexpr int kTerms = 4096;
  half fp16_acc(0.0f);
  float fp32_acc = 0.0f;
  for (int i = 0; i < kTerms; ++i) {
    fp16_acc += half(0.5f);
    fp32_acc += 0.5f;
  }
  EXPECT_EQ(fp32_acc, 2048.0f);
  EXPECT_LT(static_cast<float>(fp16_acc), 1100.0f);  // stalled near 1024
  EXPECT_GE(static_cast<float>(fp16_acc), 1024.0f);
}

TEST(HalfAccumulation, MixedPrecisionDotMatchesDoubleClosely) {
  // FP16 inputs with FP32 accumulation: error bounded by input rounding,
  // not accumulation length.
  Xoshiro256 rng(5);
  constexpr int kTerms = 10000;
  float mixed = 0.0f;
  double exact = 0.0;
  for (int i = 0; i < kTerms; ++i) {
    const half a(static_cast<float>(rng.uniform()));
    const half b(static_cast<float>(rng.uniform()));
    mixed += static_cast<float>(a) * static_cast<float>(b);
    exact += static_cast<double>(static_cast<float>(a)) *
             static_cast<double>(static_cast<float>(b));
  }
  // Relative error at the FP32-accumulation level (~1e-4 for 1e4 terms),
  // far below the ~5e-2 an FP16 accumulator would show.
  EXPECT_NEAR(mixed / static_cast<float>(exact), 1.0f, 1e-3f);
}

TEST(BFloat16Property, RoundTripThroughFloatExact) {
  for (std::uint32_t bits = 0; bits <= 0xFFFF; bits += 3) {
    const bfloat16 original = bfloat16::from_bits(static_cast<std::uint16_t>(bits));
    const float f = static_cast<float>(original);
    const bfloat16 back(f);
    if (original.is_nan()) {
      EXPECT_TRUE(back.is_nan());
    } else {
      EXPECT_EQ(back.bits(), original.bits()) << bits;
    }
  }
}

}  // namespace
}  // namespace portabench
