// Batched half/bfloat conversion tests: the branch-free shared core is
// pinned bitwise against the scalar entry points over the ENTIRE 16-bit
// input space (h->f, b->f) and against per-element conversion for large
// random float batches (f->h, f->b), at every dispatchable ISA tier and
// every tail length.  This is the contract that lets the GEMM packing
// path convert whole panels through convert_n without changing a bit.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <vector>

#include "common/half.hpp"
#include "common/half_convert.hpp"
#include "common/rng.hpp"

namespace portabench {
namespace {

using simrt::SimdTier;

std::vector<SimdTier> available_tiers() {
  std::vector<SimdTier> tiers;
  for (const SimdTier t : {SimdTier::kScalar, SimdTier::kVector, SimdTier::kAvx2,
                           SimdTier::kAvx512}) {
    if (simrt::simd_tier_available(t)) tiers.push_back(t);
  }
  return tiers;
}

// --- exhaustive 16-bit decode directions ------------------------------------

TEST(HalfConvert, HalfToFloatExhaustiveAllTiers) {
  std::vector<std::uint16_t> src(1u << 16);
  for (std::size_t i = 0; i < src.size(); ++i) src[i] = static_cast<std::uint16_t>(i);
  std::vector<float> ref(src.size());
  for (std::size_t i = 0; i < src.size(); ++i) ref[i] = detail::half_bits_to_float(src[i]);
  std::vector<float> dst(src.size());
  for (const SimdTier t : available_tiers()) {
    std::memset(dst.data(), 0xCD, dst.size() * sizeof(float));
    half_to_float_n_tier(src.data(), dst.data(), src.size(), t);
    EXPECT_EQ(std::memcmp(dst.data(), ref.data(), dst.size() * sizeof(float)), 0)
        << "tier " << simd_tier_name(t);
  }
}

TEST(HalfConvert, BfloatToFloatExhaustiveAllTiers) {
  std::vector<std::uint16_t> src(1u << 16);
  for (std::size_t i = 0; i < src.size(); ++i) src[i] = static_cast<std::uint16_t>(i);
  std::vector<float> ref(src.size());
  for (std::size_t i = 0; i < src.size(); ++i) {
    ref[i] = detail::bfloat_bits_to_float(src[i]);
  }
  std::vector<float> dst(src.size());
  for (const SimdTier t : available_tiers()) {
    std::memset(dst.data(), 0xCD, dst.size() * sizeof(float));
    bfloat_to_float_n_tier(src.data(), dst.data(), src.size(), t);
    EXPECT_EQ(std::memcmp(dst.data(), ref.data(), dst.size() * sizeof(float)), 0)
        << "tier " << simd_tier_name(t);
  }
}

// --- encode directions: random batches + the hard corner inputs -------------

std::vector<float> encode_corpus() {
  std::vector<float> src;
  // Corners first: zeros, subnormal targets, rounding ties, overflow,
  // infinities, NaN payloads.
  const float inf = std::numeric_limits<float>::infinity();
  for (float v : {0.0f, -0.0f, 1.0f, -1.0f, 65504.0f, -65504.0f, 65520.0f, 1e-8f,
                  -1e-8f, 5.96e-8f, 6.1e-5f, 0.1f, 2.5f, 3.14159f, 1e30f, -1e30f, inf,
                  -inf, std::numeric_limits<float>::quiet_NaN(),
                  std::numeric_limits<float>::denorm_min()}) {
    src.push_back(v);
  }
  std::uint32_t nan_bits = 0x7FC01234u;
  float nan_payload;
  std::memcpy(&nan_payload, &nan_bits, sizeof(nan_payload));
  src.push_back(nan_payload);
  Xoshiro256 rng(11);
  for (int i = 0; i < (1 << 16); ++i) {
    src.push_back(static_cast<float>(rng.uniform(-70000.0, 70000.0)));
    src.push_back(static_cast<float>(rng.uniform(-1e-4, 1e-4)));
  }
  return src;
}

TEST(HalfConvert, FloatToHalfBatchMatchesScalarAllTiers) {
  const std::vector<float> src = encode_corpus();
  std::vector<std::uint16_t> ref(src.size());
  for (std::size_t i = 0; i < src.size(); ++i) ref[i] = detail::float_to_half_bits(src[i]);
  std::vector<std::uint16_t> dst(src.size());
  for (const SimdTier t : available_tiers()) {
    std::memset(dst.data(), 0xCD, dst.size() * sizeof(std::uint16_t));
    float_to_half_n_tier(src.data(), dst.data(), src.size(), t);
    EXPECT_EQ(std::memcmp(dst.data(), ref.data(), dst.size() * sizeof(std::uint16_t)), 0)
        << "tier " << simd_tier_name(t);
  }
}

TEST(HalfConvert, FloatToBfloatBatchMatchesScalarAllTiers) {
  const std::vector<float> src = encode_corpus();
  std::vector<std::uint16_t> ref(src.size());
  for (std::size_t i = 0; i < src.size(); ++i) {
    ref[i] = detail::float_to_bfloat_bits(src[i]);
  }
  std::vector<std::uint16_t> dst(src.size());
  for (const SimdTier t : available_tiers()) {
    std::memset(dst.data(), 0xCD, dst.size() * sizeof(std::uint16_t));
    float_to_bfloat_n_tier(src.data(), dst.data(), src.size(), t);
    EXPECT_EQ(std::memcmp(dst.data(), ref.data(), dst.size() * sizeof(std::uint16_t)), 0)
        << "tier " << simd_tier_name(t);
  }
}

// --- tails: every n in [0, 2*W] must neither miss nor overrun ---------------

TEST(HalfConvert, TailLengthsExact) {
  constexpr std::size_t kMax = 40;  // > 2 * widest tier (16 lanes)
  std::vector<std::uint16_t> src16(kMax);
  std::vector<float> src32(kMax);
  Xoshiro256 rng(3);
  for (std::size_t i = 0; i < kMax; ++i) {
    src16[i] = static_cast<std::uint16_t>(rng());
    src32[i] = static_cast<float>(rng.uniform(-100.0, 100.0));
  }
  for (std::size_t n = 0; n <= kMax; ++n) {
    std::vector<float> dst32(kMax + 1, -7.0f);
    half_to_float_n(src16.data(), dst32.data(), n);
    for (std::size_t i = 0; i < n; ++i) {
      const float want = detail::half_bits_to_float(src16[i]);
      EXPECT_EQ(std::memcmp(&dst32[i], &want, sizeof(float)), 0) << "i=" << i;
    }
    for (std::size_t i = n; i < dst32.size(); ++i) EXPECT_EQ(dst32[i], -7.0f);

    std::vector<std::uint16_t> dst16(kMax + 1, 0xBEEF);
    float_to_half_n(src32.data(), dst16.data(), n);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(dst16[i], detail::float_to_half_bits(src32[i]));
    }
    for (std::size_t i = n; i < dst16.size(); ++i) EXPECT_EQ(dst16[i], 0xBEEF);
  }
}

// --- typed wrappers and round trips -----------------------------------------

TEST(HalfConvert, TypedConvertNMatchesValueTypes) {
  Xoshiro256 rng(5);
  const std::size_t n = 1000;
  std::vector<half> h(n);
  std::vector<bfloat16> b(n);
  std::vector<float> f(n);
  for (std::size_t i = 0; i < n; ++i) {
    f[i] = static_cast<float>(rng.uniform(-500.0, 500.0));
    h[i] = half::from_bits(static_cast<std::uint16_t>(rng()));
    b[i] = bfloat16::from_bits(static_cast<std::uint16_t>(rng()));
  }

  std::vector<float> hf(n);
  convert_n(h.data(), hf.data(), n);
  for (std::size_t i = 0; i < n; ++i) {
    const float want = static_cast<float>(h[i]);
    EXPECT_EQ(std::memcmp(&hf[i], &want, sizeof(float)), 0);
  }
  std::vector<float> bf(n);
  convert_n(b.data(), bf.data(), n);
  for (std::size_t i = 0; i < n; ++i) {
    const float want = static_cast<float>(b[i]);
    EXPECT_EQ(std::memcmp(&bf[i], &want, sizeof(float)), 0);
  }
  std::vector<half> fh(n);
  convert_n(f.data(), fh.data(), n);
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(fh[i].bits(), half(f[i]).bits());
  std::vector<bfloat16> fb(n);
  convert_n(f.data(), fb.data(), n);
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(fb[i].bits(), bfloat16(f[i]).bits());
}

TEST(HalfConvert, HalfRoundTripAllFinite) {
  // Every finite half survives h -> f -> h unchanged (float holds every
  // half exactly); NaNs stay NaN with their payload.
  std::vector<std::uint16_t> src(1u << 16);
  for (std::size_t i = 0; i < src.size(); ++i) src[i] = static_cast<std::uint16_t>(i);
  std::vector<float> mid(src.size());
  half_to_float_n(src.data(), mid.data(), src.size());
  std::vector<std::uint16_t> back(src.size());
  float_to_half_n(mid.data(), back.data(), src.size());
  for (std::size_t i = 0; i < src.size(); ++i) {
    EXPECT_EQ(back[i], src[i]) << "half bits 0x" << std::hex << src[i];
  }
}

TEST(HalfConvert, BfloatRoundTripAll) {
  std::vector<std::uint16_t> src(1u << 16);
  for (std::size_t i = 0; i < src.size(); ++i) src[i] = static_cast<std::uint16_t>(i);
  std::vector<float> mid(src.size());
  bfloat_to_float_n(src.data(), mid.data(), src.size());
  std::vector<std::uint16_t> back(src.size());
  float_to_bfloat_n(mid.data(), back.data(), src.size());
  for (std::size_t i = 0; i < src.size(); ++i) {
    // NaNs come back quieted (|0x0040, same as the scalar encoder);
    // everything else is exact — float holds every bfloat.
    const bool is_nan = (src[i] & 0x7F80u) == 0x7F80u && (src[i] & 0x007Fu) != 0;
    const std::uint16_t want = is_nan ? static_cast<std::uint16_t>(src[i] | 0x0040u)
                                      : src[i];
    EXPECT_EQ(back[i], want) << "bfloat bits 0x" << std::hex << src[i];
  }
}

}  // namespace
}  // namespace portabench
