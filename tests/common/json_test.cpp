// Tests for the JSON emitter.
#include "common/json.hpp"

#include <gtest/gtest.h>

#include <limits>

#include "common/error.hpp"

namespace portabench {
namespace {

TEST(Json, EmptyObject) {
  JsonWriter w;
  w.begin_object();
  w.end_object();
  EXPECT_EQ(w.str(), "{}");
}

TEST(Json, EmptyArray) {
  JsonWriter w;
  w.begin_array();
  w.end_array();
  EXPECT_EQ(w.str(), "[]");
}

TEST(Json, FlatObject) {
  JsonWriter w;
  w.begin_object();
  w.key("name");
  w.value("fig7");
  w.key("n");
  w.value(std::size_t{4096});
  w.key("ok");
  w.value(true);
  w.end_object();
  EXPECT_EQ(w.str(), R"({"name":"fig7","n":4096,"ok":true})");
}

TEST(Json, NestedStructure) {
  JsonWriter w;
  w.begin_object();
  w.key("series");
  w.begin_array();
  w.value(1.5);
  w.begin_object();
  w.key("x");
  w.value(2L);
  w.end_object();
  w.null();
  w.end_array();
  w.end_object();
  EXPECT_EQ(w.str(), R"({"series":[1.5,{"x":2},null]})");
}

TEST(Json, DoubleShortestRoundTrip) {
  JsonWriter w;
  w.begin_array();
  w.value(0.5);
  w.value(0.867);
  w.value(1.0 / 3.0);
  w.end_array();
  const std::string s = w.str();
  EXPECT_EQ(s.substr(0, 11), "[0.5,0.867,");
  // The 1/3 value must round-trip exactly.
  double parsed = 0.0;
  sscanf(s.c_str() + 11, "%lf", &parsed);
  EXPECT_EQ(parsed, 1.0 / 3.0);
}

TEST(Json, NonFiniteBecomesNull) {
  JsonWriter w;
  w.begin_array();
  w.value(std::numeric_limits<double>::quiet_NaN());
  w.value(std::numeric_limits<double>::infinity());
  w.end_array();
  EXPECT_EQ(w.str(), "[null,null]");
}

TEST(Json, StringEscaping) {
  EXPECT_EQ(JsonWriter::escape("plain"), "plain");
  EXPECT_EQ(JsonWriter::escape("say \"hi\""), "say \\\"hi\\\"");
  EXPECT_EQ(JsonWriter::escape("a\\b"), "a\\\\b");
  EXPECT_EQ(JsonWriter::escape("line\nbreak\ttab"), "line\\nbreak\\ttab");
  EXPECT_EQ(JsonWriter::escape(std::string("\x01", 1)), "\\u0001");
}

TEST(Json, ArrayOfArrays) {
  JsonWriter w;
  w.begin_array();
  for (int row = 0; row < 2; ++row) {
    w.begin_array();
    w.value(static_cast<long>(row));
    w.value(static_cast<long>(row + 1));
    w.end_array();
  }
  w.end_array();
  EXPECT_EQ(w.str(), "[[0,1],[1,2]]");
}

TEST(Json, DeepNesting) {
  JsonWriter w;
  constexpr int kDepth = 40;
  for (int i = 0; i < kDepth; ++i) {
    w.begin_object();
    w.key("child");
  }
  w.null();
  for (int i = 0; i < kDepth; ++i) w.end_object();
  const std::string doc = w.str();
  EXPECT_EQ(doc.size(), kDepth * std::string("{\"child\":}").size() + 4);
  EXPECT_EQ(doc.substr(0, 10), "{\"child\":{");
}

TEST(Json, ValueWithoutKeyRejected) {
  JsonWriter w;
  w.begin_object();
  EXPECT_THROW(w.value(1.0), precondition_error);
}

TEST(Json, MismatchedCloseRejected) {
  JsonWriter w;
  w.begin_object();
  EXPECT_THROW(w.end_array(), precondition_error);
}

TEST(Json, DanglingKeyRejected) {
  JsonWriter w;
  w.begin_object();
  w.key("orphan");
  EXPECT_THROW(w.end_object(), precondition_error);
}

TEST(Json, UnclosedDocumentRejected) {
  JsonWriter w;
  w.begin_object();
  EXPECT_THROW((void)w.str(), precondition_error);
}

TEST(Json, SecondRootRejected) {
  JsonWriter w;
  w.begin_object();
  w.end_object();
  EXPECT_THROW(w.begin_object(), precondition_error);
}

TEST(Json, KeyOutsideObjectRejected) {
  JsonWriter w;
  w.begin_array();
  EXPECT_THROW(w.key("nope"), precondition_error);
}

}  // namespace
}  // namespace portabench
