// Tests for run statistics and the warm-up exclusion protocol.
#include "common/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/error.hpp"

namespace portabench {
namespace {

TEST(Summary, EmptySample) {
  const Summary s = summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.mean, 0.0);
  EXPECT_EQ(s.median, 0.0);
}

TEST(Summary, SingleElement) {
  const std::vector<double> v{4.0};
  const Summary s = summarize(v);
  EXPECT_EQ(s.count, 1u);
  EXPECT_EQ(s.mean, 4.0);
  EXPECT_EQ(s.median, 4.0);
  EXPECT_EQ(s.stddev, 0.0);
  EXPECT_EQ(s.min, 4.0);
  EXPECT_EQ(s.max, 4.0);
}

TEST(Summary, KnownValues) {
  const std::vector<double> v{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  const Summary s = summarize(v);
  EXPECT_DOUBLE_EQ(s.mean, 5.0);
  EXPECT_DOUBLE_EQ(s.median, 4.5);
  EXPECT_NEAR(s.stddev, std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_EQ(s.min, 2.0);
  EXPECT_EQ(s.max, 9.0);
}

TEST(Summary, OddCountMedian) {
  const std::vector<double> v{9.0, 1.0, 5.0};
  EXPECT_DOUBLE_EQ(summarize(v).median, 5.0);
}

TEST(RunStats, WarmupExcluded) {
  // The paper's protocol: repetitions exclude an initial warm-up step.
  RunStats stats(/*warmup=*/2);
  stats.add(100.0);  // JIT-compile run
  stats.add(50.0);   // cache warm-up run
  stats.add(1.0);
  stats.add(2.0);
  stats.add(3.0);
  EXPECT_EQ(stats.discarded(), 2u);
  EXPECT_EQ(stats.recorded(), 3u);
  EXPECT_DOUBLE_EQ(stats.summary().mean, 2.0);
}

TEST(RunStats, ZeroWarmupKeepsEverything) {
  RunStats stats(0);
  stats.add(1.0);
  stats.add(3.0);
  EXPECT_EQ(stats.discarded(), 0u);
  EXPECT_DOUBLE_EQ(stats.summary().mean, 2.0);
}

TEST(RunStats, AllDiscardedWhenFewerThanWarmup) {
  RunStats stats(5);
  stats.add(1.0);
  stats.add(2.0);
  EXPECT_EQ(stats.recorded(), 0u);
  EXPECT_EQ(stats.summary().count, 0u);
}

TEST(GemmFlops, Formula) {
  EXPECT_DOUBLE_EQ(gemm_flops(2, 3, 4), 48.0);
  EXPECT_DOUBLE_EQ(gemm_flops(1024, 1024, 1024), 2.0 * 1024.0 * 1024.0 * 1024.0);
}

TEST(Gflops, Conversion) {
  EXPECT_DOUBLE_EQ(gflops(2.0e9, 1.0), 2.0);
  EXPECT_DOUBLE_EQ(gflops(1.0e9, 0.5), 2.0);
}

TEST(Gflops, RejectsNonPositiveTime) {
  EXPECT_THROW(gflops(1.0, 0.0), precondition_error);
  EXPECT_THROW(gflops(1.0, -1.0), precondition_error);
}

TEST(Means, Arithmetic) {
  const std::vector<double> v{1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(mean_of(v), 2.0);
  EXPECT_EQ(mean_of({}), 0.0);
}

TEST(Means, Harmonic) {
  const std::vector<double> v{1.0, 4.0};  // HM = 2/(1 + 0.25) = 1.6
  EXPECT_DOUBLE_EQ(harmonic_mean_of(v), 1.6);
  EXPECT_EQ(harmonic_mean_of({}), 0.0);
  const std::vector<double> with_zero{1.0, 0.0};
  EXPECT_EQ(harmonic_mean_of(with_zero), 0.0);
}

TEST(Means, HarmonicLeqArithmetic) {
  // AM-HM inequality on arbitrary positive samples.
  const std::vector<std::vector<double>> samples{
      {0.5, 0.5}, {0.1, 0.9, 0.4}, {1.0, 2.0, 3.0, 4.0}, {0.994, 0.854, 0.842, 0.26}};
  for (const auto& s : samples) {
    EXPECT_LE(harmonic_mean_of(s), mean_of(s) + 1e-12);
  }
}

TEST(Means, Geometric) {
  const std::vector<double> v{2.0, 8.0};
  EXPECT_NEAR(geometric_mean_of(v), 4.0, 1e-12);
  EXPECT_EQ(geometric_mean_of({}), 0.0);
}

TEST(Bootstrap, CiCoversTrueMeanOfTightSample) {
  const std::vector<double> sample{1.0, 1.1, 0.9, 1.05, 0.95, 1.02, 0.98};
  const auto ci = bootstrap_mean_ci(sample);
  const double m = mean_of(sample);
  EXPECT_LE(ci.lower, m);
  EXPECT_GE(ci.upper, m);
  EXPECT_LT(ci.upper - ci.lower, 0.2);
}

TEST(Bootstrap, DeterministicForSeed) {
  const std::vector<double> sample{3.0, 4.0, 5.0, 6.0};
  const auto a = bootstrap_mean_ci(sample, 0.95, 500, 7);
  const auto b = bootstrap_mean_ci(sample, 0.95, 500, 7);
  EXPECT_EQ(a.lower, b.lower);
  EXPECT_EQ(a.upper, b.upper);
}

TEST(Bootstrap, WiderLevelWiderInterval) {
  std::vector<double> sample;
  for (int i = 0; i < 30; ++i) sample.push_back(static_cast<double>(i % 7));
  const auto narrow = bootstrap_mean_ci(sample, 0.80);
  const auto wide = bootstrap_mean_ci(sample, 0.99);
  EXPECT_LE(wide.lower, narrow.lower);
  EXPECT_GE(wide.upper, narrow.upper);
}

TEST(Bootstrap, DegenerateSampleCollapses) {
  const std::vector<double> sample{2.0, 2.0, 2.0};
  const auto ci = bootstrap_mean_ci(sample);
  EXPECT_DOUBLE_EQ(ci.lower, 2.0);
  EXPECT_DOUBLE_EQ(ci.upper, 2.0);
}

TEST(Bootstrap, PreconditionsEnforced) {
  EXPECT_THROW(bootstrap_mean_ci({}), precondition_error);
  const std::vector<double> one{1.0};
  EXPECT_THROW(bootstrap_mean_ci(one, 0.0), precondition_error);
  EXPECT_THROW(bootstrap_mean_ci(one, 1.0), precondition_error);
  EXPECT_THROW(bootstrap_mean_ci(one, 0.9, 5), precondition_error);
}

TEST(Percentile, NearestRankDefinition) {
  const std::vector<double> v{5.0, 1.0, 4.0, 2.0, 3.0};  // unsorted on purpose
  EXPECT_DOUBLE_EQ(percentile_of(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile_of(v, 20.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile_of(v, 50.0), 3.0);
  EXPECT_DOUBLE_EQ(percentile_of(v, 99.0), 5.0);
  EXPECT_DOUBLE_EQ(percentile_of(v, 100.0), 5.0);
}

TEST(Percentile, TailOrderingOnLatencyShapedSample) {
  std::vector<double> v;
  for (int i = 1; i <= 1000; ++i) v.push_back(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(percentile_of(v, 50.0), 500.0);
  EXPECT_DOUBLE_EQ(percentile_of(v, 99.0), 990.0);
  EXPECT_DOUBLE_EQ(percentile_of(v, 99.9), 999.0);
  EXPECT_LE(percentile_of(v, 50.0), percentile_of(v, 99.0));
  EXPECT_LE(percentile_of(v, 99.0), percentile_of(v, 99.9));
}

TEST(Percentile, EdgeCases) {
  EXPECT_DOUBLE_EQ(percentile_of({}, 50.0), 0.0);
  const std::vector<double> one{7.5};
  EXPECT_DOUBLE_EQ(percentile_of(one, 0.0), 7.5);
  EXPECT_DOUBLE_EQ(percentile_of(one, 99.9), 7.5);
  EXPECT_THROW(percentile_of(one, -1.0), precondition_error);
  EXPECT_THROW(percentile_of(one, 100.5), precondition_error);
}

TEST(Means, GeometricBetweenHarmonicAndArithmetic) {
  const std::vector<double> v{0.26, 0.842, 0.854, 0.994};
  const double am = mean_of(v);
  const double gm = geometric_mean_of(v);
  const double hm = harmonic_mean_of(v);
  EXPECT_LE(hm, gm + 1e-12);
  EXPECT_LE(gm, am + 1e-12);
}

}  // namespace
}  // namespace portabench
