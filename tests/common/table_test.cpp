// Tests for the Markdown/CSV table writer.
#include "common/table.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"

namespace portabench {
namespace {

TEST(Table, HeaderOnlyMarkdown) {
  Table t({"a", "bb"});
  const std::string md = t.to_markdown();
  EXPECT_NE(md.find("| a "), std::string::npos);
  EXPECT_NE(md.find("| bb |"), std::string::npos);
  EXPECT_NE(md.find("|---"), std::string::npos);
}

TEST(Table, RejectsEmptyHeaders) {
  EXPECT_THROW(Table({}), precondition_error);
}

TEST(Table, RejectsMismatchedRow) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only one"}), precondition_error);
  EXPECT_THROW(t.add_row({"1", "2", "3"}), precondition_error);
}

TEST(Table, MarkdownAlignsColumns) {
  Table t({"model", "gflops"});
  t.add_row({"CUDA", "1234.5"});
  t.add_row({"Julia CUDA.jl", "987.1"});
  const std::string md = t.to_markdown();
  // Every line has the same length (padded columns).
  std::size_t first_len = md.find('\n');
  std::size_t pos = first_len + 1;
  while (pos < md.size()) {
    const std::size_t next = md.find('\n', pos);
    EXPECT_EQ(next - pos, first_len);
    pos = next + 1;
  }
}

TEST(Table, CsvBasic) {
  Table t({"x", "y"});
  t.add_row({"1", "2"});
  EXPECT_EQ(t.to_csv(), "x,y\n1,2\n");
}

TEST(Table, CsvEscapesCommasAndQuotes) {
  Table t({"name", "note"});
  t.add_row({"a,b", "say \"hi\""});
  EXPECT_EQ(t.to_csv(), "name,note\n\"a,b\",\"say \"\"hi\"\"\"\n");
}

TEST(Table, NumFormatting) {
  EXPECT_EQ(Table::num(0.9123, 3), "0.912");
  EXPECT_EQ(Table::num(1.0, 1), "1.0");
  EXPECT_EQ(Table::num(std::nan(""), 3), "-");  // unsupported cells print "-"
  EXPECT_EQ(Table::num(1234.5678, 0), "1235");
}

TEST(Table, Accessors) {
  Table t({"a"});
  t.add_row({"r0"});
  t.add_row({"r1"});
  EXPECT_EQ(t.rows(), 2u);
  EXPECT_EQ(t.columns(), 1u);
  EXPECT_EQ(t.row(1).at(0), "r1");
  EXPECT_THROW(t.row(5), std::out_of_range);
}

}  // namespace
}  // namespace portabench
