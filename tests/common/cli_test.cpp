// Tests for the command-line option parser.
#include "common/cli.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace portabench {
namespace {

CliParser make_parser() {
  CliParser p;
  p.option("size", "matrix size", "256")
      .option("precision", "fp64|fp32|fp16", "fp64")
      .option("sizes", "comma-separated sizes")
      .flag("csv", "emit CSV");
  return p;
}

std::vector<const char*> argv_of(std::initializer_list<const char*> args) {
  std::vector<const char*> v{"prog"};
  v.insert(v.end(), args.begin(), args.end());
  return v;
}

TEST(Cli, DefaultsApply) {
  CliParser p = make_parser();
  auto argv = argv_of({});
  p.parse(static_cast<int>(argv.size()), argv.data());
  EXPECT_EQ(p.get("size"), "256");
  EXPECT_FALSE(p.has("size"));
  EXPECT_FALSE(p.has("csv"));
}

TEST(Cli, EqualsSyntax) {
  CliParser p = make_parser();
  auto argv = argv_of({"--size=1024"});
  p.parse(static_cast<int>(argv.size()), argv.data());
  EXPECT_TRUE(p.has("size"));
  EXPECT_EQ(p.get_int("size"), 1024);
}

TEST(Cli, SpaceSyntax) {
  CliParser p = make_parser();
  auto argv = argv_of({"--size", "2048"});
  p.parse(static_cast<int>(argv.size()), argv.data());
  EXPECT_EQ(p.get_int("size"), 2048);
}

TEST(Cli, FlagPresence) {
  CliParser p = make_parser();
  auto argv = argv_of({"--csv"});
  p.parse(static_cast<int>(argv.size()), argv.data());
  EXPECT_TRUE(p.has("csv"));
}

TEST(Cli, FlagRejectsValue) {
  CliParser p = make_parser();
  auto argv = argv_of({"--csv=yes"});
  EXPECT_THROW(p.parse(static_cast<int>(argv.size()), argv.data()), config_error);
}

TEST(Cli, UnknownOptionFailsLoudly) {
  CliParser p = make_parser();
  auto argv = argv_of({"--sizee=10"});
  EXPECT_THROW(p.parse(static_cast<int>(argv.size()), argv.data()), config_error);
}

TEST(Cli, PositionalRejected) {
  CliParser p = make_parser();
  auto argv = argv_of({"1024"});
  EXPECT_THROW(p.parse(static_cast<int>(argv.size()), argv.data()), config_error);
}

TEST(Cli, MissingValueRejected) {
  CliParser p = make_parser();
  auto argv = argv_of({"--size"});
  EXPECT_THROW(p.parse(static_cast<int>(argv.size()), argv.data()), config_error);
}

TEST(Cli, IntParsingErrors) {
  CliParser p = make_parser();
  auto argv = argv_of({"--size=abc"});
  p.parse(static_cast<int>(argv.size()), argv.data());
  EXPECT_THROW(p.get_int("size"), config_error);
}

TEST(Cli, TrailingGarbageInNumberRejected) {
  CliParser p = make_parser();
  auto argv = argv_of({"--size=12x"});
  p.parse(static_cast<int>(argv.size()), argv.data());
  EXPECT_THROW(p.get_int("size"), config_error);
}

TEST(Cli, DoubleParsing) {
  CliParser p;
  p.option("ratio", "a ratio", "0.5");
  auto argv = argv_of({"--ratio=0.867"});
  p.parse(static_cast<int>(argv.size()), argv.data());
  EXPECT_DOUBLE_EQ(p.get_double("ratio"), 0.867);
}

TEST(Cli, SizeList) {
  CliParser p = make_parser();
  auto argv = argv_of({"--sizes=1024,2048,4096"});
  p.parse(static_cast<int>(argv.size()), argv.data());
  EXPECT_EQ(p.get_size_list("sizes"), (std::vector<std::size_t>{1024, 2048, 4096}));
}

TEST(Cli, SizeListRejectsNonPositive) {
  CliParser p = make_parser();
  auto argv = argv_of({"--sizes=1024,0"});
  p.parse(static_cast<int>(argv.size()), argv.data());
  EXPECT_THROW(p.get_size_list("sizes"), config_error);
}

TEST(Cli, RepeatedOptionLastWins) {
  CliParser p = make_parser();
  auto argv = argv_of({"--size=10", "--size=20"});
  p.parse(static_cast<int>(argv.size()), argv.data());
  EXPECT_EQ(p.get_int("size"), 20);
}

TEST(Cli, NegativeNumbersParse) {
  CliParser p;
  p.option("offset", "signed value", "0");
  auto argv = argv_of({"--offset=-42"});
  p.parse(static_cast<int>(argv.size()), argv.data());
  EXPECT_EQ(p.get_int("offset"), -42);
}

TEST(Cli, EmptyValueViaEquals) {
  CliParser p;
  p.option("tag", "freeform", "default");
  auto argv = argv_of({"--tag="});
  p.parse(static_cast<int>(argv.size()), argv.data());
  EXPECT_TRUE(p.has("tag"));
  EXPECT_EQ(p.get("tag"), "");
}

TEST(Cli, UsageMentionsAllOptions) {
  CliParser p = make_parser();
  const std::string u = p.usage("prog");
  EXPECT_NE(u.find("--size"), std::string::npos);
  EXPECT_NE(u.find("--csv"), std::string::npos);
  EXPECT_NE(u.find("default: 256"), std::string::npos);
}

TEST(Cli, UndeclaredLookupIsPreconditionError) {
  CliParser p = make_parser();
  EXPECT_THROW(p.get("nope"), precondition_error);
  EXPECT_THROW(p.has("nope"), precondition_error);
}

}  // namespace
}  // namespace portabench
