// Tests for the aligned buffer.
#include "common/buffer.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <utility>

namespace portabench {
namespace {

TEST(AlignedBuffer, EmptyByDefault) {
  AlignedBuffer<double> b;
  EXPECT_TRUE(b.empty());
  EXPECT_EQ(b.size(), 0u);
}

TEST(AlignedBuffer, CacheLineAligned) {
  for (std::size_t count : {1u, 7u, 64u, 1000u}) {
    AlignedBuffer<double> b(count);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(b.data()) % kCacheLineBytes, 0u)
        << "count=" << count;
  }
}

TEST(AlignedBuffer, ZeroInitialized) {
  AlignedBuffer<int> b(128);
  for (std::size_t i = 0; i < b.size(); ++i) EXPECT_EQ(b[i], 0);
}

TEST(AlignedBuffer, ReadWrite) {
  AlignedBuffer<float> b(16);
  for (std::size_t i = 0; i < 16; ++i) b[i] = static_cast<float>(i);
  for (std::size_t i = 0; i < 16; ++i) EXPECT_EQ(b[i], static_cast<float>(i));
}

TEST(AlignedBuffer, MoveTransfersOwnership) {
  AlignedBuffer<int> a(8);
  a[0] = 42;
  int* ptr = a.data();
  AlignedBuffer<int> b(std::move(a));
  EXPECT_EQ(b.data(), ptr);
  EXPECT_EQ(b[0], 42);
  EXPECT_EQ(b.size(), 8u);
}

TEST(AlignedBuffer, MoveAssign) {
  AlignedBuffer<int> a(4);
  a[3] = 7;
  AlignedBuffer<int> b(2);
  b = std::move(a);
  EXPECT_EQ(b.size(), 4u);
  EXPECT_EQ(b[3], 7);
}

TEST(AlignedBuffer, SpanCoversAll) {
  AlignedBuffer<double> b(10);
  auto s = b.span();
  EXPECT_EQ(s.size(), 10u);
  EXPECT_EQ(s.data(), b.data());
}

}  // namespace
}  // namespace portabench
