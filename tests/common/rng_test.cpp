// Tests for the xoshiro256** generator and the fill helpers.
#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

namespace portabench {
namespace {

TEST(SplitMix64, KnownSequence) {
  // Reference values for seed 0 from the splitmix64 reference
  // implementation (Vigna).
  SplitMix64 sm(0);
  EXPECT_EQ(sm.next(), 0xE220A8397B1DCDAFull);
  EXPECT_EQ(sm.next(), 0x6E789E6AA1B965F4ull);
  EXPECT_EQ(sm.next(), 0x06C45D188009454Full);
}

TEST(Xoshiro, DeterministicForSameSeed) {
  Xoshiro256 a(42);
  Xoshiro256 b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Xoshiro, DifferentSeedsDiverge) {
  Xoshiro256 a(1);
  Xoshiro256 b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Xoshiro, UniformInUnitInterval) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 100000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Xoshiro, UniformMeanIsHalf) {
  Xoshiro256 rng(11);
  double sum = 0.0;
  constexpr int kN = 200000;
  for (int i = 0; i < kN; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / kN, 0.5, 0.01);
}

TEST(Xoshiro, UniformRange) {
  Xoshiro256 rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform(-2.0, 5.0);
    EXPECT_GE(u, -2.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Xoshiro, JumpProducesIndependentStream) {
  Xoshiro256 base(99);
  Xoshiro256 jumped(99);
  jumped.jump();
  // The jumped stream must not collide with the base stream's prefix.
  std::set<std::uint64_t> base_values;
  Xoshiro256 base_copy = base;
  for (int i = 0; i < 1000; ++i) base_values.insert(base_copy());
  int collisions = 0;
  for (int i = 0; i < 1000; ++i) {
    if (base_values.count(jumped())) ++collisions;
  }
  EXPECT_EQ(collisions, 0);
}

TEST(Fill, UniformDoubleCoversRange) {
  std::vector<double> v(4096);
  Xoshiro256 rng(5);
  fill_uniform(std::span<double>(v), rng);
  EXPECT_TRUE(std::all_of(v.begin(), v.end(), [](double x) { return x >= 0.0 && x < 1.0; }));
  // Not all equal.
  EXPECT_NE(*std::min_element(v.begin(), v.end()), *std::max_element(v.begin(), v.end()));
}

TEST(Fill, UniformFloatAndHalf) {
  std::vector<float> f(1024);
  std::vector<half> h(1024);
  Xoshiro256 rng(6);
  fill_uniform(std::span<float>(f), rng);
  fill_uniform(std::span<half>(h), rng);
  for (float x : f) {
    EXPECT_GE(x, 0.0f);
    EXPECT_LT(x, 1.0f);
  }
  for (half x : h) {
    EXPECT_GE(static_cast<float>(x), 0.0f);
    // Half rounding can reach exactly 1.0 from values just below it.
    EXPECT_LE(static_cast<float>(x), 1.0f);
  }
}

TEST(Fill, ConstantFill) {
  std::vector<double> d(100);
  std::vector<half> h(100);
  fill_constant(std::span<double>(d), 3.5);
  fill_constant(std::span<half>(h), half(1.0f));
  EXPECT_TRUE(std::all_of(d.begin(), d.end(), [](double x) { return x == 3.5; }));
  EXPECT_TRUE(std::all_of(h.begin(), h.end(), [](half x) { return x == half(1.0f); }));
}

TEST(Fill, SeedReproducibility) {
  std::vector<double> a(256);
  std::vector<double> b(256);
  Xoshiro256 r1(123);
  Xoshiro256 r2(123);
  fill_uniform(std::span<double>(a), r1);
  fill_uniform(std::span<double>(b), r2);
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace portabench
