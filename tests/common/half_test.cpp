// Unit and property tests for the software binary16/bfloat16 types.
#include "common/half.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>

namespace portabench {
namespace {

TEST(Half, DefaultIsPositiveZero) {
  half h;
  EXPECT_EQ(h.bits(), 0u);
  EXPECT_TRUE(h.is_zero());
  EXPECT_FALSE(h.signbit());
  EXPECT_EQ(static_cast<float>(h), 0.0f);
}

TEST(Half, ExactSmallIntegers) {
  // All integers up to 2048 are exactly representable in binary16.
  for (int i = -2048; i <= 2048; ++i) {
    half h(static_cast<float>(i));
    EXPECT_EQ(static_cast<float>(h), static_cast<float>(i)) << "i=" << i;
  }
}

TEST(Half, KnownBitPatterns) {
  EXPECT_EQ(half(1.0f).bits(), 0x3C00u);
  EXPECT_EQ(half(-1.0f).bits(), 0xBC00u);
  EXPECT_EQ(half(2.0f).bits(), 0x4000u);
  EXPECT_EQ(half(0.5f).bits(), 0x3800u);
  EXPECT_EQ(half(65504.0f).bits(), 0x7BFFu);  // max finite
  EXPECT_EQ(half(-0.0f).bits(), 0x8000u);
  EXPECT_EQ(half(5.96046448e-8f).bits(), 0x0001u);  // min subnormal
  EXPECT_EQ(half(6.103515625e-5f).bits(), 0x0400u);  // min normal
}

TEST(Half, OverflowToInfinity) {
  EXPECT_TRUE(half(65520.0f).is_inf());   // rounds up to 2^16 -> inf
  EXPECT_TRUE(half(1.0e10f).is_inf());
  EXPECT_TRUE(half(-1.0e10f).is_inf());
  EXPECT_TRUE(half(-1.0e10f).signbit());
  // 65519.996 rounds down to max finite.
  EXPECT_EQ(half(65519.0f).bits(), 0x7BFFu);
}

TEST(Half, RoundToNearestEven) {
  // 1 + 2^-11 is exactly halfway between 1.0 and 1+2^-10: ties to even (1.0).
  EXPECT_EQ(half(1.0f + 0x1.0p-11f).bits(), 0x3C00u);
  // 1 + 3*2^-11 is halfway between 1+2^-10 and 1+2^-9: ties to even (1+2^-9).
  EXPECT_EQ(half(1.0f + 3.0f * 0x1.0p-11f).bits(), 0x3C02u);
  // Just above the halfway point rounds up.
  EXPECT_EQ(half(1.0f + 0x1.1p-11f).bits(), 0x3C01u);
}

TEST(Half, SubnormalRounding) {
  // Halfway between 0 and the smallest subnormal: ties to even (zero).
  EXPECT_EQ(half(2.98023224e-8f).bits(), 0x0000u);
  // Just above rounds to the smallest subnormal.
  EXPECT_EQ(half(3.1e-8f).bits(), 0x0001u);
}

TEST(Half, UnderflowToSignedZero) {
  EXPECT_EQ(half(1.0e-12f).bits(), 0x0000u);
  EXPECT_EQ(half(-1.0e-12f).bits(), 0x8000u);
}

TEST(Half, NanPropagation) {
  half nan(std::numeric_limits<float>::quiet_NaN());
  EXPECT_TRUE(nan.is_nan());
  EXPECT_FALSE(nan.is_inf());
  EXPECT_TRUE(std::isnan(static_cast<float>(nan)));
  EXPECT_FALSE(nan == nan);  // IEEE: NaN != NaN
  EXPECT_TRUE(nan != nan);
  EXPECT_TRUE((nan + half(1.0f)).is_nan());
}

TEST(Half, InfinityArithmetic) {
  half inf = std::numeric_limits<half>::infinity();
  EXPECT_TRUE(inf.is_inf());
  EXPECT_TRUE((inf + half(1.0f)).is_inf());
  EXPECT_TRUE((inf - inf).is_nan());
  EXPECT_TRUE((half(1.0f) / half(0.0f)).is_inf());
}

TEST(Half, SignedZeroComparesEqual) {
  EXPECT_TRUE(half(0.0f) == half(-0.0f));
  EXPECT_NE(half(0.0f).bits(), half(-0.0f).bits());
}

TEST(Half, Arithmetic) {
  EXPECT_EQ(static_cast<float>(half(2.0f) + half(3.0f)), 5.0f);
  EXPECT_EQ(static_cast<float>(half(2.0f) * half(3.0f)), 6.0f);
  EXPECT_EQ(static_cast<float>(half(7.0f) - half(3.0f)), 4.0f);
  EXPECT_EQ(static_cast<float>(half(8.0f) / half(2.0f)), 4.0f);
  EXPECT_EQ(static_cast<float>(-half(2.5f)), -2.5f);
  half h(1.0f);
  h += half(1.0f);
  h *= half(3.0f);
  h -= half(2.0f);
  h /= half(4.0f);
  EXPECT_EQ(static_cast<float>(h), 1.0f);
}

TEST(Half, Comparisons) {
  EXPECT_LT(half(1.0f), half(2.0f));
  EXPECT_GT(half(2.0f), half(1.0f));
  EXPECT_LE(half(1.0f), half(1.0f));
  EXPECT_GE(half(-1.0f), half(-2.0f));
  EXPECT_LT(half(-2.0f), half(-1.0f));
}

TEST(Half, NumericLimits) {
  using lim = std::numeric_limits<half>;
  EXPECT_TRUE(lim::is_specialized);
  EXPECT_EQ(static_cast<float>(lim::max()), 65504.0f);
  EXPECT_EQ(static_cast<float>(lim::lowest()), -65504.0f);
  EXPECT_EQ(static_cast<float>(lim::min()), 6.103515625e-5f);
  EXPECT_EQ(static_cast<float>(lim::epsilon()), 0x1.0p-10f);
  EXPECT_TRUE(lim::infinity().is_inf());
  EXPECT_TRUE(lim::quiet_NaN().is_nan());
  EXPECT_EQ(static_cast<float>(lim::denorm_min()), 5.96046448e-8f);
}

// Property: every one of the 65536 bit patterns survives a
// half -> float -> half round trip bit-exactly (modulo NaN payload
// quieting, which preserves NaN-ness).
TEST(HalfProperty, AllBitPatternsRoundTrip) {
  for (std::uint32_t bits = 0; bits <= 0xFFFF; ++bits) {
    const half original = half::from_bits(static_cast<std::uint16_t>(bits));
    const float f = static_cast<float>(original);
    const half round_tripped(f);
    if (original.is_nan()) {
      EXPECT_TRUE(round_tripped.is_nan()) << "bits=" << bits;
    } else {
      EXPECT_EQ(round_tripped.bits(), original.bits()) << "bits=" << bits;
    }
  }
}

// Property: conversion from float is monotone over finite halfs.
TEST(HalfProperty, ConversionIsMonotone) {
  float prev = -std::numeric_limits<float>::infinity();
  for (std::uint32_t bits = 0xFBFF; bits >= 0x8001; --bits) {  // negative finite ascending
    const float f = static_cast<float>(half::from_bits(static_cast<std::uint16_t>(bits)));
    EXPECT_GT(f, prev) << "bits=" << bits;
    prev = f;
  }
  for (std::uint32_t bits = 0x0000; bits <= 0x7BFF; ++bits) {  // non-negative ascending
    const float f = static_cast<float>(half::from_bits(static_cast<std::uint16_t>(bits)));
    if (bits == 0) {
      EXPECT_GE(f, prev);
    } else {
      EXPECT_GT(f, prev) << "bits=" << bits;
    }
    prev = f;
  }
}

// Property: float -> half conversion picks one of the two neighbouring
// representable halfs (never skips past the true value).
TEST(HalfProperty, ConversionErrorIsBounded) {
  for (int i = 0; i < 4000; ++i) {
    const float f = -200.0f + 0.1f * static_cast<float>(i);
    const float back = static_cast<float>(half(f));
    const float scale = std::max(1.0f, std::abs(f));
    EXPECT_NEAR(back, f, scale * 0x1.0p-10f) << "f=" << f;
  }
}

TEST(BFloat16, KnownPatterns) {
  EXPECT_EQ(bfloat16(1.0f).bits(), 0x3F80u);
  EXPECT_EQ(bfloat16(-2.0f).bits(), 0xC000u);
  EXPECT_EQ(static_cast<float>(bfloat16(1.0f)), 1.0f);
}

TEST(BFloat16, WideExponentRangeSurvives) {
  // 1e30 overflows half but fits bfloat16 (same exponent range as float).
  EXPECT_TRUE(half(1.0e30f).is_inf());
  EXPECT_FALSE(bfloat16(1.0e30f).is_inf());
  EXPECT_NEAR(static_cast<float>(bfloat16(1.0e30f)), 1.0e30f, 1.0e28f);
}

TEST(BFloat16, NanPreserved) {
  bfloat16 nan(std::numeric_limits<float>::quiet_NaN());
  EXPECT_TRUE(nan.is_nan());
  EXPECT_FALSE(nan == nan);
}

TEST(BFloat16, RoundToNearestEven) {
  // 1 + 2^-8 is halfway between 1.0 and the next bfloat16: ties to even.
  EXPECT_EQ(bfloat16(1.0f + 0x1.0p-8f).bits(), 0x3F80u);
  EXPECT_EQ(bfloat16(1.0f + 3.0f * 0x1.0p-8f).bits(), 0x3F82u);
}

TEST(BFloat16, Arithmetic) {
  EXPECT_EQ(static_cast<float>(bfloat16(2.0f) + bfloat16(3.0f)), 5.0f);
  EXPECT_EQ(static_cast<float>(bfloat16(2.0f) * bfloat16(3.0f)), 6.0f);
}

}  // namespace
}  // namespace portabench
