// Incremental-cache tests: a warm run must be an observational no-op —
// identical findings (token and flow alike, since the whole-tree passes
// re-run over cached IRs), with per-file work skipped.  Staleness is
// keyed purely on content hash, and any corruption degrades to a cold
// run instead of wrong results.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "cache.hpp"
#include "engine.hpp"

namespace fs = std::filesystem;

namespace {

class CacheTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::path(::testing::TempDir()) / "portalint_cache_test";
    fs::remove_all(dir_);
    fs::create_directories(dir_);
    cache_ = dir_ / "analysis.cache";
  }

  fs::path write(const std::string& name, const std::string& text) {
    const fs::path p = dir_ / name;
    std::ofstream out(p);
    out << text;
    return p;
  }

  portalint::Result scan() {
    portalint::Options opts;
    opts.inputs = {dir_};
    opts.root = dir_;
    opts.use_baseline = false;
    opts.cache_path = cache_;
    return portalint::run_portalint(opts);
  }

  static std::vector<std::string> render(const portalint::Result& r) {
    std::vector<std::string> out;
    for (const auto& f : r.active) {
      out.push_back(f.unit->rel + ":" + std::to_string(f.line) + ":" + f.rule + ":" +
                    f.message + ":" + f.excerpt);
    }
    for (const auto& f : r.suppressed) {
      out.push_back("sup:" + f.unit->rel + ":" + std::to_string(f.line) + ":" + f.rule);
    }
    return out;
  }

  fs::path dir_;
  fs::path cache_;
};

TEST_F(CacheTest, WarmRunReproducesColdFindingsExactly) {
  write("spin.cpp", "volatile int spin = 0;\n");
  write("quiet.cpp", "int answer() { return 0; }\n");
  // Cross-TU flow finding: helper writes the kernel's by-ref capture.
  write("helper.cpp", "inline void bump(double& out) { out += 1.0; }\n");
  write("kernel.cpp",
        "void sum_all(Space& space, int n) {\n"
        "  double sum = 0.0;\n"
        "  parallel_for(space, RangePolicy(0, n), [&](int i) { bump(sum); });\n"
        "}\n");
  write("sup.cpp", "volatile int gate = 0;  // portalint: raw-thread-ok(test sink)\n");

  const auto cold = scan();
  EXPECT_EQ(cold.cache_hits, 0u);
  EXPECT_EQ(cold.files_scanned, 5u);
  ASSERT_TRUE(fs::exists(cache_));

  const auto warm = scan();
  EXPECT_EQ(warm.cache_hits, 5u);
  EXPECT_EQ(render(warm), render(cold));

  // The corpus genuinely exercised token, flow, and suppression paths.
  bool saw_flow = false;
  for (const auto& f : cold.active) saw_flow |= f.rule == "fl-shared-write-escape";
  EXPECT_TRUE(saw_flow);
  EXPECT_FALSE(cold.suppressed.empty());
}

TEST_F(CacheTest, SerializedLaunchBitSurvivesTheRoundTrip) {
  // A stream-op handoff that only stays quiet because the launch is in
  // the serialized class: if the reloaded IR dropped the bit, the warm
  // run would fire fl-shared-write-escape where the cold run did not.
  write("helper.cpp", "inline void fill(double& out, double v) { out = v; }\n");
  write("pipeline.cpp",
        "void stage(Stream& s, double& slot) {\n"
        "  s.enqueue(1.0e-6, [&] { fill(slot, 2.0); });\n"
        "}\n");

  const auto cold = scan();
  EXPECT_EQ(cold.cache_hits, 0u);
  EXPECT_TRUE(cold.active.empty()) << render(cold).front();

  const auto warm = scan();
  EXPECT_EQ(warm.cache_hits, 2u);
  EXPECT_TRUE(warm.active.empty()) << render(warm).front();
  EXPECT_EQ(render(warm), render(cold));
}

TEST_F(CacheTest, EditedFileMissesWhileOthersStayWarm) {
  write("a.cpp", "int a = 0;\n");
  write("b.cpp", "int b = 0;\n");
  scan();

  write("a.cpp", "volatile int a = 0;\n");
  const auto r = scan();
  EXPECT_EQ(r.cache_hits, 1u);  // only b.cpp is warm
  ASSERT_EQ(r.active.size(), 1u);
  EXPECT_EQ(r.active[0].rule, "raw-thread");

  // The rewritten entry is picked up on the next run.
  EXPECT_EQ(scan().cache_hits, 2u);
}

TEST_F(CacheTest, CorruptCacheDegradesToColdRun) {
  write("spin.cpp", "volatile int spin = 0;\n");
  scan();
  {
    std::ofstream out(cache_, std::ios::trunc);
    out << "portalint-cache v1\nfile not-enough-fields\n";
  }
  const auto r = scan();
  EXPECT_EQ(r.cache_hits, 0u);
  ASSERT_EQ(r.active.size(), 1u);
  EXPECT_EQ(r.active[0].rule, "raw-thread");
  EXPECT_EQ(scan().cache_hits, 1u);  // cache was rewritten correctly
}

TEST_F(CacheTest, VersionMismatchDiscardsEverything) {
  write("spin.cpp", "volatile int spin = 0;\n");
  scan();
  std::stringstream rest;
  {
    std::ifstream in(cache_);
    std::string first;
    std::getline(in, first);
    rest << in.rdbuf();
  }
  {
    std::ofstream out(cache_, std::ios::trunc);
    out << "portalint-cache v0\n" << rest.str();
  }
  EXPECT_EQ(scan().cache_hits, 0u);
}

TEST_F(CacheTest, FullyWarmRunDoesNotRewriteTheCache) {
  write("a.cpp", "int a = 0;\n");
  scan();
  const auto stamp = fs::last_write_time(cache_);
  scan();
  EXPECT_EQ(fs::last_write_time(cache_), stamp);
}

TEST(Fnv1a, MatchesReferenceVectors) {
  EXPECT_EQ(portalint::fnv1a(""), 14695981039346656037ull);
  EXPECT_EQ(portalint::fnv1a("a"), 0xaf63dc4c8601ec8cull);
  EXPECT_NE(portalint::fnv1a("int a;\n"), portalint::fnv1a("int b;\n"));
}

}  // namespace
