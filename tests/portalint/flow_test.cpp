// portaflow fixture tests: the fl-* rules are interprocedural, so their
// known-bad corpora span two translation units under fixtures/flow/ and
// are scanned directory-at-a-time (single-file corpora live in the
// regular fixtures_test parameterization).  Each bad corpus must fire
// exactly its inline "portalint-expect:" markers; each good corpus must
// scan clean.  The Escape tests additionally pin the acceptance claim
// that the token-level rules provably pass what portaflow catches.
#include <gtest/gtest.h>

#include <filesystem>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "engine.hpp"
#include "rules.hpp"

namespace fs = std::filesystem;

namespace {

const fs::path kFixtures = fs::path(PORTALINT_FIXTURE_DIR);
const fs::path kFlow = kFixtures / "flow";

using RuleAt = std::pair<std::string, int>;

std::multiset<RuleAt> expected_markers(const fs::path& file) {
  auto unit = portalint::load_file(file, kFixtures);
  EXPECT_TRUE(unit.has_value()) << "unreadable fixture: " << file;
  std::multiset<RuleAt> out;
  if (!unit) return out;
  constexpr std::string_view kTag = "portalint-expect:";
  for (const auto& c : unit->lex.comments) {
    const auto pos = c.text.find(kTag);
    if (pos == std::string::npos) continue;
    std::istringstream iss(c.text.substr(pos + kTag.size()));
    std::string rule;
    iss >> rule;
    if (!rule.empty()) out.insert({rule, c.line});
  }
  return out;
}

std::multiset<RuleAt> markers_under(const fs::path& dir) {
  std::multiset<RuleAt> out;
  for (const auto& entry : fs::recursive_directory_iterator(dir)) {
    if (!entry.is_regular_file()) continue;
    const auto more = expected_markers(entry.path());
    out.insert(more.begin(), more.end());
  }
  return out;
}

portalint::Result scan(const std::vector<fs::path>& inputs, bool run_flow = true) {
  portalint::Options opts;
  opts.inputs = inputs;
  opts.root = kFixtures;
  opts.use_baseline = false;
  opts.include_fixtures = true;
  opts.run_flow = run_flow;
  portalint::Result r = portalint::run_portalint(opts);
  EXPECT_TRUE(r.errors.empty()) << (r.errors.empty() ? std::string() : r.errors.front());
  return r;
}

std::multiset<RuleAt> findings_of(const portalint::Result& r) {
  std::multiset<RuleAt> out;
  for (const auto& f : r.active) out.insert({f.rule, f.line});
  return out;
}

std::string to_string(const std::multiset<RuleAt>& s) {
  std::ostringstream os;
  for (const auto& [rule, line] : s) os << "  " << rule << " @ line " << line << "\n";
  return os.str();
}

class BadFlowCorpus : public ::testing::TestWithParam<std::string> {};
class GoodFlowCorpus : public ::testing::TestWithParam<std::string> {};

TEST_P(BadFlowCorpus, FiresExactlyItsMarkedRulesAcrossTranslationUnits) {
  const fs::path dir = kFlow / GetParam();
  const auto expected = markers_under(dir);
  ASSERT_FALSE(expected.empty()) << dir << " has no portalint-expect markers";
  const auto actual = findings_of(scan({dir}));
  EXPECT_EQ(actual, expected) << "expected:\n"
                              << to_string(expected) << "actual:\n"
                              << to_string(actual);
}

TEST_P(GoodFlowCorpus, ScansClean) {
  const fs::path dir = kFlow / GetParam();
  EXPECT_TRUE(markers_under(dir).empty()) << dir << " is a good corpus with markers";
  const auto actual = findings_of(scan({dir}));
  EXPECT_TRUE(actual.empty()) << "unexpected findings:\n" << to_string(actual);
}

INSTANTIATE_TEST_SUITE_P(Portaflow, BadFlowCorpus,
                         ::testing::Values("swe_bad", "ord_bad", "det_bad", "queue_bad",
                                           "scanorder_bad"));
INSTANTIATE_TEST_SUITE_P(Portaflow, GoodFlowCorpus,
                         ::testing::Values("swe_good", "ord_good", "det_good",
                                           "queue_good", "scanorder_good"));

// The acceptance demonstration: the same corpus the interprocedural
// pass flags is provably clean under every token-level rule (--no-flow
// reconstructs exactly the pre-portaflow rule set, including legacy
// mo-balance).
TEST(TokenLevelProvablyPasses, SharedWriteEscape) {
  const auto token_only = findings_of(scan({kFlow / "swe_bad"}, /*run_flow=*/false));
  EXPECT_TRUE(token_only.empty()) << "token rules unexpectedly fired:\n"
                                  << to_string(token_only);
  const auto with_flow = findings_of(scan({kFlow / "swe_bad"}));
  ASSERT_EQ(with_flow.size(), 1u);
  EXPECT_EQ(with_flow.begin()->first, "fl-shared-write-escape");
}

TEST(TokenLevelProvablyPasses, DetTaint) {
  EXPECT_TRUE(findings_of(scan({kFlow / "det_bad"}, /*run_flow=*/false)).empty());
}

// The serialized launch class: an identical by-reference handoff to an
// identical helper is quiet when the lambda is a stream op (serialized
// in stream order — no lanes to race) and fires when it is a parallel
// dispatch.  The exemption is keyed on the launch class, not the shape.
TEST(SerializedQueueOps, StreamHandoffQuietLaneHandoffFires) {
  const auto good = findings_of(scan({kFlow / "queue_good"}));
  EXPECT_TRUE(good.empty()) << "double-buffer handoff misflagged:\n" << to_string(good);
  const auto bad = findings_of(scan({kFlow / "queue_bad"}));
  ASSERT_EQ(bad.size(), 1u) << to_string(bad);
  EXPECT_EQ(bad.begin()->first, "fl-shared-write-escape");
}

// Cross-function findings carry the helper-side site so reports and the
// SARIF relatedLocations point at both translation units.
TEST(FlowFindings, SharedWriteEscapeNamesTheHelperSite) {
  const auto r = scan({kFlow / "swe_bad"});
  ASSERT_EQ(r.active.size(), 1u);
  const portalint::Finding& f = r.active[0];
  EXPECT_EQ(f.unit->rel, "flow/swe_bad/swe_bad_kernel.cpp");
  ASSERT_FALSE(f.related.empty());
  EXPECT_EQ(f.related[0].unit->rel, "flow/swe_bad/swe_bad_helper.cpp");
  EXPECT_NE(f.related[0].note.find("accumulate_into"), std::string::npos);
  EXPECT_EQ(portalint::finding_path_key(f),
            "flow/swe_bad/swe_bad_kernel.cpp+flow/swe_bad/swe_bad_helper.cpp");
}

// Satellite: mo-balance is a whole-tree rule.  The release store and
// acquire load live in different translation units; the pair balances
// only because aggregation links sites across files.
TEST(MoBalanceCrossFile, PairBalancesAcrossTranslationUnits) {
  const auto together = findings_of(scan({kFlow / "mo_cross"}));
  EXPECT_TRUE(together.empty()) << "pair should balance:\n" << to_string(together);
}

TEST(MoBalanceCrossFile, EachHalfAloneIsUnpaired) {
  const auto store_only = findings_of(scan({kFlow / "mo_cross" / "mo_cross_store.cpp"}));
  ASSERT_EQ(store_only.size(), 1u);
  EXPECT_EQ(store_only.begin()->first, "mo-balance");

  const auto load_only = findings_of(scan({kFlow / "mo_cross" / "mo_cross_load.cpp"}));
  ASSERT_EQ(load_only.size(), 1u);
  EXPECT_EQ(load_only.begin()->first, "mo-balance");
}

// The legacy reconstruction really is byte-identical: with flow off, the
// cross-file pair must behave exactly as the token-level rule did.
TEST(MoBalanceCrossFile, LegacyModeMatches) {
  EXPECT_TRUE(findings_of(scan({kFlow / "mo_cross"}, /*run_flow=*/false)).empty());
  const auto alone =
      findings_of(scan({kFlow / "mo_cross" / "mo_cross_store.cpp"}, /*run_flow=*/false));
  ASSERT_EQ(alone.size(), 1u);
  EXPECT_EQ(alone.begin()->first, "mo-balance");
}

}  // namespace
