// portalint fixture: known-bad (with cycle_b.hpp).  The cycle report
// anchors on the lexicographically first member's include line.
#pragma once
#include "cycle_b.hpp"  // portalint-expect: hy-include-cycle

namespace fixture {

struct A {
  int b_tag;
};

}  // namespace fixture
