// portalint fixture: the other half of the cycle_a.hpp include cycle.
#pragma once
#include "cycle_a.hpp"

namespace fixture {

struct B {
  int a_tag;
};

}  // namespace fixture
