// portalint fixture: known-bad.  Hand-rolled threading outside the
// runtime layers: raw std::thread / std::mutex and a volatile "flag".
#include <mutex>
#include <thread>

namespace fixture {

inline void roll_your_own(int iterations) {
  volatile bool stop = false;  // portalint-expect: raw-thread
  std::mutex guard;  // portalint-expect: raw-thread
  std::thread worker([&guard, iterations] {  // portalint-expect: raw-thread
    for (int i = 0; i < iterations; ++i) guard.lock(), guard.unlock();
  });
  stop = true;
  worker.join();
}

}  // namespace fixture
