// portalint fixture: known-good.  The kernel goes through a device
// buffer view instead of a raw pointer, so accesses stay checkable and
// the capture is portable.
#include <cstddef>

namespace fixture {

inline void scale_right(Ctx& ctx, std::size_t n, DeviceBuffer& buf) {
  auto view = buf.view();
  launch(ctx, {1, 1, 1}, {n, 1, 1}, [&](const ThreadCtx& tc) {
    view[tc.global_x()] *= 2.0;
  });
}

}  // namespace fixture
