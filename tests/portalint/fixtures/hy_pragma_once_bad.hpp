// portalint-expect: hy-pragma-once — this header deliberately omits the guard.
// (The rule anchors on line 1, so the marker lives here.)

namespace fixture {

inline int answer() { return 42; }

}  // namespace fixture
