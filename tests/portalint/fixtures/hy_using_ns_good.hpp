// portalint fixture: known-good.  A using-directive confined to a
// function body is visible to that body only; headers may do this.
#pragma once
#include <chrono>

namespace fixture {

inline double seconds_since(std::chrono::steady_clock::time_point t0) {
  using namespace std::chrono;
  return duration_cast<duration<double>>(steady_clock::now() - t0).count();
}

}  // namespace fixture
