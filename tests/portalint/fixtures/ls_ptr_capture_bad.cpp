// portalint fixture: known-bad.  A device kernel captures a raw pointer
// by value — the access bypasses the buffer layer, so it is neither
// bounds-checkable nor portable to a discrete-memory device.
#include <cstddef>

namespace fixture {

inline void scale_wrong(Ctx& ctx, std::size_t n, double* data) {
  double* p = data;
  launch(ctx, {1, 1, 1}, {n, 1, 1}, [=](const ThreadCtx& tc) {
    p[tc.global_x()] *= 2.0;  // portalint-expect: ls-ptr-capture
  });
}

}  // namespace fixture
