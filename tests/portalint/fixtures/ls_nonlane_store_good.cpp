// portalint fixture: known-good.  Stores are indexed by the lane
// variable (directly and through a derived local), so lanes never
// collide.
#include <cstddef>
#include <vector>

namespace fixture {

inline void scatter_right(Space& space, std::size_t n, std::vector<double>& out) {
  parallel_for(space, n, [&](std::size_t i) {
    out[i] = static_cast<double>(i);
  });
}

inline void strided_right(Space& space, std::size_t n, std::vector<double>& out) {
  parallel_for(space, n, [&](std::size_t i) {
    const std::size_t slot = 2 * i + 1;
    out[slot] = static_cast<double>(i);
  });
}

}  // namespace fixture
