// Known-good fixture: schedule knobs resolved at runtime, computed, the
// zero "resolve later" sentinel, or an explicitly justified constant.
#include <cstddef>

namespace fixture {

std::size_t tuned_fork_cutoff();

inline void configure() {
  const std::size_t fork_cutoff = tuned_fork_cutoff();  // resolved, not pinned
  std::size_t batch_jobs = 0;                           // 0 = resolve at use
  const std::size_t grain = fork_cutoff / 2 + 1;        // computed
  const double tile_ratio = 0.5;                        // float: not a knob
  // portalint: tn-magic-tile-ok(calibrated default; the tuning registry pins it)
  const std::size_t tile_rows = 32;
  (void)batch_jobs;
  (void)grain;
  (void)tile_ratio;
  (void)tile_rows;
}

}  // namespace fixture
