// Known-bad fixture: schedule knobs frozen into source as integer
// literals — each should route through the src/tune registry.
#include <cstddef>

namespace fixture {

constexpr std::size_t kMC = 128;  // portalint-expect: tn-magic-tile

struct Launch {
  std::size_t fork_cutoff = 4096;       // portalint-expect: tn-magic-tile
  std::size_t chunks_per_worker = 8;    // portalint-expect: tn-magic-tile
};

inline void configure() {
  std::size_t tile_rows{64};  // portalint-expect: tn-magic-tile
  Launch l;
  l.fork_cutoff = 1024;  // portalint-expect: tn-magic-tile
  int unroll = 4;        // portalint-expect: tn-magic-tile
  (void)tile_rows;
  (void)l;
  (void)unroll;
}

}  // namespace fixture
