// portalint fixture: known-good.  Guarded header in this repository's
// include-guard style.
#pragma once

namespace fixture {

inline int answer() { return 42; }

}  // namespace fixture
