// portalint fixture: known-bad.  Every lane stores through the same
// index — a classic transposed-loop bug where the store does not depend
// on the lane variable at all.
#include <cstddef>
#include <vector>

namespace fixture {

inline void broadcast_wrong(Space& space, std::size_t n, std::vector<double>& out) {
  const std::size_t last = n - 1;
  parallel_for(space, n, [&, last](std::size_t i) {
    out[last] = static_cast<double>(i);  // portalint-expect: ls-nonlane-store
  });
}

}  // namespace fixture
