// portalint fixture: known-bad.  The launch is sized with the ceil-div
// idiom — blocks * bx lanes cover at least n elements, usually more —
// and the kernel body indexes without the tail guard.  Symbolically:
// max lane = blocks*bx - 1, extent = n, and n - blocks*bx is not
// provably non-negative, so the overshooting lanes write out of bounds.
#include <cstddef>

namespace fixture {

inline void scale_wrong(Ctx& ctx, std::size_t n, std::size_t bx) {
  DeviceBuffer<float> data(n);
  const std::size_t blocks = (n + bx - 1) / bx;
  launch(ctx, {blocks}, {bx}, [=](const ThreadCtx& tc) {
    const auto i = tc.global_x();
    data(i) = 0.0f;  // portalint-expect: fl-unproved-bounds
  });
}

}  // namespace fixture
