// portalint fixture: known-bad, cross-TU half (caller side).  The only
// release-side store on ready_flag lives inside signal_ready() in the
// other translation unit, and nothing anywhere acquires the flag: the
// release publishes to nobody.  Resolving the helper's std::atomic&
// parameter back to this call site is what fl-unpaired-ordering adds
// over the name-matching mo-balance rule.
#include <atomic>

namespace fixture {

inline std::atomic<int> ready_flag{0};

inline void publish_ready() {
  signal_ready(ready_flag);  // portalint-expect: fl-unpaired-ordering
}

}  // namespace fixture
