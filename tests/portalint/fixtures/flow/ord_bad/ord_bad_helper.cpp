// portalint fixture: known-bad, cross-TU half (helper side).  The
// release store targets a std::atomic<>& parameter — the token-level
// mo-balance rule cannot name the real variable here, so this site only
// counts once the call graph resolves it to the caller's atomic.
#include <atomic>

namespace fixture {

inline void signal_ready(std::atomic<int>& flag) {
  flag.store(1, std::memory_order_release);
}

}  // namespace fixture
