// portalint fixture: known-good, cross-TU half (caller side).  The
// release side reaches done_flag only through signal_done()'s
// std::atomic& parameter in the other translation unit; the acquire
// side is a plain load here.  Once the call graph resolves the helper
// site, the per-variable summary balances and the pass stays quiet.
#include <atomic>

namespace fixture {

inline std::atomic<int> done_flag{0};

inline void publish_done() { signal_done(done_flag); }

inline bool poll_done() {
  return done_flag.load(std::memory_order_acquire) != 0;
}

}  // namespace fixture
