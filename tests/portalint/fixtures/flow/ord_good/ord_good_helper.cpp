// portalint fixture: known-good, cross-TU half (helper side).  Release
// store through a std::atomic<>& parameter; the acquire-side partner
// lives in ord_good_caller.cpp.
#include <atomic>

namespace fixture {

inline void signal_done(std::atomic<int>& flag) {
  flag.store(1, std::memory_order_release);
}

}  // namespace fixture
