// portalint fixture: known-good, cross-TU half (helper side).  Pure
// arithmetic: no taint to propagate.
#include <cstddef>

namespace fixture {

inline double smooth_scale(std::size_t i) {
  return static_cast<double>(i) * 0.5;
}

}  // namespace fixture
