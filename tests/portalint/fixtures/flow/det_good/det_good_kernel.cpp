// portalint fixture: known-good, cross-TU half (launch side).  Same
// shape as det_bad_kernel.cpp, but the helper is deterministic — the
// taint pass must stay quiet.
#include <cstddef>
#include <vector>

namespace fixture {

inline void smooth_fill(Space& space, std::size_t n, std::vector<double>& out) {
  parallel_for(space, RangePolicy(0, n), [&](std::size_t i) {
    out[i] = smooth_scale(i);
  });
}

}  // namespace fixture
