// portalint fixture: known-bad, cross-TU half (helper side).  On its
// own this file is quiet — a non-atomic write through a reference
// parameter is perfectly ordinary sequential code.  The race only
// exists at the launch site in swe_bad_kernel.cpp, which portaflow
// links to this definition across translation units.
#include <cstddef>

namespace fixture {

inline void accumulate_into(double& out, double v) { out += v; }

}  // namespace fixture
