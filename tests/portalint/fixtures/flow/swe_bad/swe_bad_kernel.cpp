// portalint fixture: known-bad, cross-TU half (launch side).  The
// lambda never writes `sum` itself — it hands the by-reference capture
// to accumulate_into() (defined in swe_bad_helper.cpp), which performs
// the non-atomic read-modify-write.  The token-level ls-capture-write
// rule provably passes this file: there is no store to `sum` in the
// lambda body.  Only the interprocedural write-effect summary sees the
// race.
#include <cstddef>

namespace fixture {

inline double sum_hidden(Space& space, std::size_t n) {
  double sum = 0.0;
  parallel_for(space, RangePolicy(0, n), [&](std::size_t i) {
    accumulate_into(sum, static_cast<double>(i));  // portalint-expect: fl-shared-write-escape
  });
  return sum;
}

}  // namespace fixture
