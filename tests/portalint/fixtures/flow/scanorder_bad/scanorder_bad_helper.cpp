// portalint fixture: known-bad, cross-TU half (helper side).  Folding a
// value into a by-reference accumulator is ordinary sequential code, so
// this file is quiet on its own.  The fixed-combination-order violation
// only exists at the launch site in scanorder_bad_kernel.cpp: once the
// write-effect summary of this helper flows back there, the pass sees
// every lane read-modify-write the same accumulator.
#include <cstddef>

namespace fixture {

inline void fold_into(double& acc, double v) { acc = acc + v; }

}  // namespace fixture
