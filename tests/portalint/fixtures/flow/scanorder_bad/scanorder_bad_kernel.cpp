// portalint fixture: known-bad, cross-TU half (launch side).  A scan
// whose combine runs INSIDE the parallel region: each lane folds its
// element into the single `running` accumulator through fold_into()
// (defined in scanorder_bad_helper.cpp), so the combination order is
// whatever order the lanes happen to run in — the opposite of the
// fixed-combination-order contract (docs/PRIMITIVES.md), and a
// non-atomic race besides.  The lambda body itself never stores to
// `running`, so the token-level ls-capture-write rule provably passes
// this file; only the interprocedural write-effect summary sees it.
#include <cstddef>
#include <vector>

namespace fixture {

inline void prefix_unordered(Space& space, std::size_t n, std::vector<double>& out) {
  double running = 0.0;
  parallel_for(space, RangePolicy(0, n), [&](std::size_t i) {
    fold_into(running, static_cast<double>(i));  // portalint-expect: fl-shared-write-escape
    out[i] = running;
  });
}

}  // namespace fixture
