// portalint fixture: known-good.  Same ceil-div launch as
// bounds_bad.cpp, but the canonical tail guard dominates the store:
// under `i < n` the maximum index is n - 1, and extent - 1 - max = 0 is
// provably non-negative for every lane.
#include <cstddef>

namespace fixture {

inline void scale_right(Ctx& ctx, std::size_t n, std::size_t bx) {
  DeviceBuffer<float> data(n);
  const std::size_t blocks = (n + bx - 1) / bx;
  launch(ctx, {blocks}, {bx}, [=](const ThreadCtx& tc) {
    const auto i = tc.global_x();
    if (i < n) data(i) = 0.0f;
  });
}

}  // namespace fixture
