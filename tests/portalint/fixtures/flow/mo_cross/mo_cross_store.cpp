// portalint fixture: release half of a cross-file handshake.  Scanned
// together with mo_cross_load.cpp the pairing balances and the tree is
// clean; scanned alone this file fires mo-balance (release publishes to
// nobody).  Pins that mo-balance aggregation links sites across
// translation units rather than judging each file in isolation.
#include <atomic>

namespace fixture {

inline std::atomic<int> shared_gate{0};

inline void open_gate() { shared_gate.store(1, std::memory_order_release); }

}  // namespace fixture
