// portalint fixture: acquire half of a cross-file handshake.  See
// mo_cross_store.cpp — the pair is clean together, and each half alone
// fires mo-balance.
#include <atomic>

namespace fixture {

inline std::atomic<int> shared_gate{0};

inline bool gate_open() {
  return shared_gate.load(std::memory_order_acquire) != 0;
}

}  // namespace fixture
