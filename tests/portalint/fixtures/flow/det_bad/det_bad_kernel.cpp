// portalint fixture: known-bad, cross-TU half (launch side).  Every
// lane's result depends on a clock read buried in time_scale() (defined
// in det_bad_helper.cpp): the launch is not bitwise reproducible, which
// only the interprocedural taint pass can see from here.
#include <cstddef>
#include <vector>

namespace fixture {

inline void jitter_fill(Space& space, std::size_t n, std::vector<double>& out) {
  parallel_for(space, RangePolicy(0, n), [&](std::size_t i) {
    out[i] = time_scale();  // portalint-expect: fl-det-taint
  });
}

}  // namespace fixture
