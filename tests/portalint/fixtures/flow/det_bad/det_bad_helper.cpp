// portalint fixture: known-bad, cross-TU half (helper side).  A clock
// read is a nondeterministic source the token-level det-* rules do not
// cover; on its own this file is quiet.  The taint only becomes a
// finding when a kernel in another translation unit calls this helper.
#include <chrono>

namespace fixture {

inline double time_scale() {
  const auto t0 = std::chrono::steady_clock::now();
  return static_cast<double>(t0.time_since_epoch().count()) * 1.0e-9;
}

}  // namespace fixture
