// portalint fixture: known-bad control, cross-TU half (helper side).
// Identical helper to the queue_good corpus: a non-atomic write through
// a reference parameter, ordinary on its own.  Whether the call site
// races depends entirely on the launch class that hands the buffer in.
#include <cstddef>
#include <vector>

namespace fixture {

inline void fill_slot(std::vector<double>& slot, double v) { slot[0] = v; }

}  // namespace fixture
