// portalint fixture: known-bad control for the serialized launch class.
// The same fill_slot() handoff that is quiet on a stream op (see the
// queue_good corpus) races when issued from parallel lanes: every lane
// writes slot[0].  Pins that the serialized exemption does not leak to
// real dispatch calls.
#include <cstddef>
#include <vector>

namespace fixture {

inline void stage_from_lanes(Space& space, std::size_t n, std::vector<double>& slot) {
  parallel_for(space, RangePolicy(0, n), [&](std::size_t i) {
    fill_slot(slot, static_cast<double>(i));  // portalint-expect: fl-shared-write-escape
  });
}

}  // namespace fixture
