// portalint fixture: known-good, cross-TU half (helper side).  Writing
// through the reference parameter is the double-buffer handoff: the
// pipeline hands each enqueued op the staging slot it owns for that
// panel.  The write-effect summary sees a non-atomic indexed write —
// the same effect fl-shared-write-escape flags on a parallel dispatch.
#include <cstddef>
#include <vector>

namespace fixture {

inline void fill_slot(std::vector<double>& slot, double v) { slot[0] = v; }

}  // namespace fixture
