// portalint fixture: known-good, cross-TU half (pipeline side).  The
// enqueued op hands a by-reference staging buffer to fill_slot()
// (defined in queue_good_helper.cpp), which writes it at a constant
// index — exactly the shape fl-shared-write-escape fires on for a
// parallel dispatch.  Stream ops execute serialized, one at a time in
// stream order, so there are no lanes to race: the serialized launch
// class must stay quiet on the double-buffer handoff.
#include <cstddef>
#include <vector>

namespace fixture {

inline void stage_panels(Stream& stream, std::size_t panels, std::vector<double>& front,
                         std::vector<double>& back) {
  for (std::size_t p = 0; p < panels; ++p) {
    stream.enqueue(1.0e-6, [&] {
      fill_slot(p % 2 == 0 ? front : back, static_cast<double>(p));
    });
  }
}

}  // namespace fixture
