// portalint fixture: known-good, cross-TU half (launch side).  The
// fixed-combination-order idiom from src/primitives/: the parallel
// region only writes per-lane partials (each lane's slot, through the
// cross-TU helper), and the combine is a SERIAL ascending fold outside
// the region — the combination order is a pure function of the input
// size, never of the lane schedule, so the pass stays quiet.
#include <cstddef>
#include <vector>

namespace fixture {

inline void prefix_ordered(Space& space, std::size_t n, std::vector<double>& out) {
  std::vector<double> partials(n);
  parallel_for(space, RangePolicy(0, n), [&](std::size_t i) {
    store_partial(partials, i, static_cast<double>(i));
  });
  double running = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    running += partials[i];
    out[i] = running;
  }
}

}  // namespace fixture
