// portalint fixture: known-good, cross-TU half (helper side).  The
// helper writes one partial into the slot it is handed — the
// write-effect summary records "indexed by parameter 1", and the launch
// side passes the lane variable there, so every lane owns its slot.
#include <cstddef>
#include <vector>

namespace fixture {

inline void store_partial(std::vector<double>& partials, std::size_t slot, double v) {
  partials[slot] = v;
}

}  // namespace fixture
