// portalint fixture: known-good, cross-TU half (launch side).  The
// shared vector escapes into write_slot(), but the index argument is
// the lane variable: every lane writes its own element, so the
// interprocedural pass stays quiet.
#include <cstddef>
#include <vector>

namespace fixture {

inline void fill_lanes(Space& space, std::size_t n, std::vector<double>& out) {
  parallel_for(space, RangePolicy(0, n), [&](std::size_t i) {
    write_slot(out, i, static_cast<double>(i));
  });
}

}  // namespace fixture
