// portalint fixture: known-good, cross-TU half (helper side).  The
// helper writes only through an index it is handed by the caller — the
// write-effect summary records "indexed by parameter 1", and the launch
// side passes the lane variable there.
#include <cstddef>
#include <vector>

namespace fixture {

inline void write_slot(std::vector<double>& out, std::size_t slot, double v) {
  out[slot] = v;
}

}  // namespace fixture
