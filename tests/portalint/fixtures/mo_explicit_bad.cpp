// portalint fixture: known-bad.  Atomic operations with no explicit
// memory_order default to seq_cst silently; the rule demands the
// algorithm state the ordering it actually needs.
#include <atomic>

namespace fixture {

inline std::atomic<int> ready_flag_bad{0};

inline void publish_wrong(int* payload) {
  *payload = 42;
  ready_flag_bad.store(1);  // portalint-expect: mo-explicit
}

inline bool consume_wrong() {
  return ready_flag_bad.load() != 0;  // portalint-expect: mo-explicit
}

}  // namespace fixture
