// portalint fixture: known-good.  A two-file include chain with no back
// edge: top -> leaf, leaf -> nothing.
#pragma once
#include "leaf.hpp"

namespace fixture {

inline int top_value() { return leaf_value() + 1; }

}  // namespace fixture
