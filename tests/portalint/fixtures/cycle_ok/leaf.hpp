// portalint fixture: leaf of the acyclic include chain.
#pragma once

namespace fixture {

inline int leaf_value() { return 1; }

}  // namespace fixture
