// portalint fixture: known-good.  A seeded stream from common/rng: the
// same seed reproduces the same sequence on every run and platform.
#include <cstdint>

namespace fixture {

inline double noise_right(RngStream& stream) { return stream.uniform(); }

inline RngStream make_stream(std::uint64_t seed) { return RngStream(seed); }

}  // namespace fixture
