// portalint fixture: known-good.  Acquire-side load and release-side
// store on the same variable: the pairing balances.
#include <atomic>

namespace fixture {

inline std::atomic<int> full_handshake{0};

inline void signal_right() { full_handshake.store(1, std::memory_order_release); }

inline bool wait_right() {
  return full_handshake.load(std::memory_order_acquire) != 0;
}

}  // namespace fixture
