// portalint fixture: known-good.  The race-free counterparts of
// ls_capture_write_bad.cpp — an atomic accumulator with explicit
// ordering, and per-lane slots combined after the join.
#include <atomic>
#include <cstddef>

namespace fixture {

inline double sum_right_atomic(Space& space, std::size_t n) {
  std::atomic<double> total{0.0};
  parallel_for(space, n, [&](std::size_t i) {
    total.fetch_add(static_cast<double>(i), std::memory_order_relaxed);
  });
  return total.load(std::memory_order_relaxed);
}

inline double sum_right_slots(Space& space, std::size_t n, double* partials) {
  parallel_for(space, n, [&](std::size_t i) {
    double term = static_cast<double>(i);
    partials[i] = term;
  });
  double sum = 0.0;
  for (std::size_t i = 0; i < n; ++i) sum += partials[i];
  return sum;
}

}  // namespace fixture
