// portalint fixture: known-bad.  using-directives at file and namespace
// scope leak into every translation unit that includes this header.
#pragma once
#include <string>

using namespace std;  // portalint-expect: hy-using-ns

namespace fixture {

using namespace std::chrono;  // portalint-expect: hy-using-ns

inline string greet() { return "hello"; }

}  // namespace fixture
