// portalint fixture: known-bad.  Hand-rolled explicit SIMD outside the
// sanctioned backend directory: a raw GCC generic vector, its shuffle
// builtin, and x86 intrinsic types/calls — all of which fork the lane
// order and fp-contract contract simrt::simd pins.
#include <immintrin.h>

namespace fixture {

typedef float Vec8 __attribute__((vector_size(32)));  // portalint-expect: simd-raw-vector-ext

inline Vec8 reverse_by_hand(Vec8 v) {
  typedef int IVec8 __attribute__((vector_size(32)));  // portalint-expect: simd-raw-vector-ext
  const IVec8 idx = {7, 6, 5, 4, 3, 2, 1, 0};
  return __builtin_shuffle(v, idx);  // portalint-expect: simd-raw-vector-ext
}

inline void axpy_intrinsics(float a, const float* x, float* y) {
  __m256 va;  // portalint-expect: simd-raw-vector-ext
  va = _mm256_set1_ps(a);  // portalint-expect: simd-raw-vector-ext
  __m256 vx;  // portalint-expect: simd-raw-vector-ext
  vx = _mm256_loadu_ps(x);  // portalint-expect: simd-raw-vector-ext
  vx = _mm256_mul_ps(va, vx);  // portalint-expect: simd-raw-vector-ext
  _mm256_storeu_ps(y, vx);  // portalint-expect: simd-raw-vector-ext
}

}  // namespace fixture
