// portalint fixture: known-bad.  Lines expected to fire carry an inline
// expect marker naming the rule; the fixture test fails if the file
// produces any finding not matching a marker (or vice versa).
//
// Fixtures are lexed, never compiled — the dispatch calls and types only
// need to look like the real APIs.
#include <cstddef>

namespace fixture {

inline double sum_wrong(Space& space, std::size_t n) {
  double sum = 0.0;
  parallel_for(space, n, [&](std::size_t i) {
    sum += static_cast<double>(i);  // portalint-expect: ls-capture-write
  });
  return sum;
}

inline std::size_t count_wrong(Space& space, std::size_t n) {
  std::size_t hits = 0;
  parallel_for(space, n, [&](std::size_t i) {
    if (i % 2 == 0) ++hits;  // portalint-expect: ls-capture-write
  });
  return hits;
}

}  // namespace fixture
