// portalint fixture: known-good.  The same axpy written against the
// portable simrt::simd value type: lane width is a template parameter,
// loads/stores and fma go through the abstraction, and the masked tail
// uses the partial forms — no raw vectors, no intrinsics.
#include <cstddef>

namespace fixture {

template <std::size_t W>
inline void axpy_portable(float a, const float* x, float* y, std::size_t n) {
  using V = portabench::simrt::simd<float, W>;
  const V va(a);
  std::size_t i = 0;
  for (; i + W <= n; i += W) {
    fma(va, V::load(x + i), V::load(y + i)).store(y + i);
  }
  const V tail = fma(va, V::load_partial(x + i, n - i), V::load_partial(y + i, n - i));
  tail.store_partial(y + i, n - i);
}

}  // namespace fixture
