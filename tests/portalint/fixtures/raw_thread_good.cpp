// portalint fixture: known-good.  Concurrency routed through the simrt
// runtime; std::thread::hardware_concurrency() is a metafunction query,
// not a primitive, and stays allowed.
#include <cstddef>
#include <thread>

namespace fixture {

inline void use_the_runtime(ThreadPool& pool, double* out) {
  const std::size_t width = std::thread::hardware_concurrency();
  pool.run([out, width](std::size_t tid) {
    out[tid] = static_cast<double>(width);
  });
}

}  // namespace fixture
