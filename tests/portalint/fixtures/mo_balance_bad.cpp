// portalint fixture: known-bad.  The flag is loaded with acquire but no
// store anywhere releases it — the acquire synchronizes with nothing, so
// the "handshake" publishes no data.
#include <atomic>

namespace fixture {

inline std::atomic<int> half_handshake{0};

inline bool wait_wrong() {
  return half_handshake.load(std::memory_order_acquire) != 0;  // portalint-expect: mo-balance
}

inline void nudge_wrong() { half_handshake.store(1, std::memory_order_relaxed); }

}  // namespace fixture
