// portalint fixture: known-bad.  Global libc rand() and hardware
// entropy both make runs unreproducible; all randomness must flow
// through the seeded common/rng streams.
#include <cstdlib>
#include <random>

namespace fixture {

inline double noise_wrong() {
  std::random_device entropy;  // portalint-expect: det-rand
  const double a = static_cast<double>(entropy());
  const double b = static_cast<double>(rand());  // portalint-expect: det-rand
  return a + b;
}

}  // namespace fixture
