// portalint fixture: known-good.  Same publish/consume handshake with
// the orderings named: release pairs with acquire on one variable.
#include <atomic>

namespace fixture {

inline std::atomic<int> ready_flag_good{0};

inline void publish_right(int* payload) {
  *payload = 42;
  ready_flag_good.store(1, std::memory_order_release);
}

inline bool consume_right() {
  return ready_flag_good.load(std::memory_order_acquire) != 0;
}

}  // namespace fixture
