// portalint fixture: known-good.  The unordered container is used only
// for lookup; anything reduced is first copied out and sorted, so the
// summation order is pinned.
#include <algorithm>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

namespace fixture {

inline double total_right(const std::vector<std::pair<std::string, double>>& items) {
  std::unordered_map<std::string, double> weights(items.begin(), items.end());
  std::vector<std::pair<std::string, double>> ordered(weights.begin(), weights.end());
  std::sort(ordered.begin(), ordered.end());
  double sum = 0.0;
  for (const auto& [name, w] : ordered) {
    sum += w;
  }
  return sum;
}

}  // namespace fixture
