// portalint fixture: known-bad.  Iterating an unordered container feeds
// its unspecified order into a floating-point reduction — the result
// differs between standard libraries (and hash seeds).
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

namespace fixture {

inline double total_wrong(const std::vector<std::pair<std::string, double>>& items) {
  std::unordered_map<std::string, double> weights(items.begin(), items.end());
  double sum = 0.0;
  for (const auto& [name, w] : weights) {  // portalint-expect: det-unordered
    sum += w;
  }
  return sum;
}

}  // namespace fixture
