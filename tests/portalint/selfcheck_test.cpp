// Self-check: the repository's own src/, bench/ and tests/ trees must
// scan clean under portalint with the checked-in baseline — no active
// findings, no stale baseline entries.  This is the same invocation the
// CI lint job and the `portalint_repo` ctest run.
#include <gtest/gtest.h>

#include <filesystem>

#include "engine.hpp"

namespace fs = std::filesystem;

namespace {

const fs::path kRoot = fs::path(PORTALINT_REPO_ROOT);

TEST(SelfCheck, RepositoryScansClean) {
  portalint::Options opts;
  opts.inputs = {kRoot / "src", kRoot / "bench", kRoot / "tests"};
  opts.root = kRoot;
  opts.baseline_path = kRoot / "portalint.baseline";
  const portalint::Result r = portalint::run_portalint(opts);

  EXPECT_TRUE(r.errors.empty());
  for (const auto& f : r.active) {
    ADD_FAILURE() << f.unit->rel << ":" << f.line << " [" << f.rule << "] " << f.message;
  }
  for (const auto& e : r.stale) {
    ADD_FAILURE() << "stale baseline entry (line " << e.source_line << "): " << e.rule
                  << " :: " << e.rel;
  }
  EXPECT_EQ(portalint::exit_code(r), 0);

  // The scan actually covered the tree and exercised both silencing
  // mechanisms (fixture dirs are skipped by default, so their deliberate
  // findings never appear here).
  EXPECT_GT(r.files_scanned, 100u);
  EXPECT_FALSE(r.suppressed.empty()) << "expected inline -ok() suppressions in the tree";
  // The checked-in baseline is deliberately empty (the LegacyThreadPool
  // debt moved to reviewed inline suppressions): nothing may hide
  // behind it, so any regrowth shows up as an active finding instead.
  EXPECT_TRUE(r.baselined.empty()) << "portalint.baseline must stay empty";

}

TEST(SelfCheck, FixturesAreSkippedByDefault) {
  portalint::Options opts;
  opts.inputs = {kRoot / "tests"};
  opts.root = kRoot;
  opts.use_baseline = false;
  const portalint::Result r = portalint::run_portalint(opts);
  for (const auto& f : r.active) {
    EXPECT_EQ(f.unit->rel.find("fixtures"), std::string::npos) << f.unit->rel;
  }
}

}  // namespace
