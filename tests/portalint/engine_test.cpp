// Unit tests for the portalint plumbing: lexer edge cases, inline
// suppressions, baseline matching/staleness, JSON rendering and exit
// codes.  Analyzed sources are written to the gtest temp dir, whose
// path has no "tests"/"fixtures" component, so every rule applies.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "engine.hpp"
#include "lexer.hpp"

namespace fs = std::filesystem;

namespace {

fs::path write_temp(const std::string& name, const std::string& text) {
  const fs::path p = fs::path(::testing::TempDir()) / name;
  std::ofstream out(p);
  out << text;
  return p;
}

portalint::Result scan(const fs::path& file, const fs::path& baseline = {}) {
  portalint::Options opts;
  opts.inputs = {file};
  opts.root = file.parent_path();
  if (baseline.empty()) {
    opts.use_baseline = false;
  } else {
    opts.baseline_path = baseline;
  }
  return portalint::run_portalint(opts);
}

// --- lexer ------------------------------------------------------------------

TEST(Lexer, FoldsContinuedDirectivesAndKeepsLineNumbers) {
  const auto lx = portalint::lex("#define WIDE \\\n  42\nint x = WIDE;\n");
  ASSERT_EQ(lx.directives.size(), 1u);
  EXPECT_EQ(lx.directives[0].line, 1);
  EXPECT_EQ(lx.directives[0].text, "define WIDE 42");
  ASSERT_FALSE(lx.tokens.empty());
  EXPECT_EQ(lx.tokens[0].text, "int");
  EXPECT_EQ(lx.tokens[0].line, 3);
}

TEST(Lexer, RawStringsAreOpaque) {
  const auto lx = portalint::lex("auto s = R\"(volatile std::mutex)\";\n");
  for (const auto& t : lx.tokens) {
    EXPECT_NE(t.text, "volatile");
    EXPECT_NE(t.text, "mutex");
  }
}

TEST(Lexer, BlockCommentSpansLines) {
  const auto lx = portalint::lex("/* a\n   b */ int y;\n");
  ASSERT_EQ(lx.comments.size(), 1u);
  EXPECT_EQ(lx.comments[0].line, 1);
  EXPECT_EQ(lx.comments[0].end_line, 2);
}

// --- suppressions -----------------------------------------------------------

TEST(Suppression, SameLineCommentSilencesFinding) {
  const auto f = write_temp("sup_same.cpp",
                            "volatile int spin = 0;  // portalint: raw-thread-ok(benchmark sink)\n");
  const auto r = scan(f);
  EXPECT_TRUE(r.active.empty());
  ASSERT_EQ(r.suppressed.size(), 1u);
  EXPECT_EQ(r.suppressed[0].rule, "raw-thread");
}

TEST(Suppression, PreviousLineCommentSilencesFinding) {
  const auto f = write_temp("sup_prev.cpp",
                            "// portalint: raw-thread-ok(benchmark sink)\n"
                            "volatile int spin = 0;\n");
  const auto r = scan(f);
  EXPECT_TRUE(r.active.empty());
  EXPECT_EQ(r.suppressed.size(), 1u);
}

TEST(Suppression, FamilyPrefixCoversConcreteRule) {
  // "mo-ok" suppresses mo-explicit (and mo-balance) at that site.
  const auto f = write_temp("sup_prefix.cpp",
                            "#include <atomic>\n"
                            "std::atomic<int> g{0};\n"
                            "// portalint: mo-ok(assertion does not order anything)\n"
                            "int peek() { return g.load(); }\n");
  const auto r = scan(f);
  EXPECT_TRUE(r.active.empty());
  EXPECT_FALSE(r.suppressed.empty());
}

TEST(Suppression, WrongRuleDoesNotSilence) {
  const auto f = write_temp("sup_wrong.cpp",
                            "volatile int spin = 0;  // portalint: det-rand-ok(unrelated)\n");
  const auto r = scan(f);
  ASSERT_EQ(r.active.size(), 1u);
  EXPECT_EQ(r.active[0].rule, "raw-thread");
  EXPECT_EQ(portalint::exit_code(r), 1);
}

// --- baseline ---------------------------------------------------------------

TEST(Baseline, EntryAbsorbsMatchingFinding) {
  const auto f = write_temp("base_hit.cpp", "volatile int spin = 0;\n");
  const auto b = write_temp("base_hit.baseline",
                            "# comment\n"
                            "raw-thread :: base_hit.cpp :: volatile int spin = 0; :: legacy sink\n");
  const auto r = scan(f, b);
  EXPECT_TRUE(r.active.empty());
  EXPECT_TRUE(r.stale.empty());
  ASSERT_EQ(r.baselined.size(), 1u);
  EXPECT_EQ(portalint::exit_code(r), 0);
}

TEST(Baseline, StaleEntryFailsTheRun) {
  const auto f = write_temp("base_stale.cpp", "int clean = 0;\n");
  const auto b = write_temp("base_stale.baseline",
                            "raw-thread :: base_stale.cpp :: volatile int gone = 0; :: was removed\n");
  const auto r = scan(f, b);
  EXPECT_TRUE(r.active.empty());
  ASSERT_EQ(r.stale.size(), 1u);
  EXPECT_EQ(r.stale[0].rule, "raw-thread");
  EXPECT_EQ(portalint::exit_code(r), 1);
}

TEST(Baseline, MalformedLineIsAnError) {
  std::vector<std::string> errors;
  const auto entries = portalint::parse_baseline("only :: two-fields\n", errors);
  EXPECT_TRUE(entries.empty());
  EXPECT_FALSE(errors.empty());
}

TEST(Baseline, ExcerptMatchIsWhitespaceInsensitive) {
  const auto f = write_temp("base_ws.cpp", "    volatile   int spin = 0;\n");
  const auto b = write_temp("base_ws.baseline",
                            "raw-thread :: base_ws.cpp :: volatile int spin = 0; :: sink\n");
  const auto r = scan(f, b);
  EXPECT_TRUE(r.active.empty());
  EXPECT_TRUE(r.stale.empty());
}

// --- rendering & exit codes -------------------------------------------------

TEST(Report, JsonCarriesFindingsAndSummary) {
  const auto f = write_temp("json_out.cpp", "volatile int spin = 0;\n");
  const auto r = scan(f);
  std::ostringstream os;
  portalint::print_json(r, os);
  const std::string j = os.str();
  EXPECT_NE(j.find("\"findings\""), std::string::npos);
  EXPECT_NE(j.find("\"raw-thread\""), std::string::npos);
  EXPECT_NE(j.find("\"summary\":{\"files\":1"), std::string::npos);
}

TEST(Report, CleanFileExitsZero) {
  const auto f = write_temp("clean.cpp", "int answer() { return 42; }\n");
  const auto r = scan(f);
  EXPECT_TRUE(r.clean());
  EXPECT_EQ(portalint::exit_code(r), 0);
}

// Regression: structured bindings declare lane-local names, so a store
// indexed through them must not fire ls-nonlane-store (the gemm
// numba-style kernels use exactly this shape).
TEST(Rules, StructuredBindingNamesAreLaneLocals) {
  const auto f = write_temp("sb.cpp",
                            "void k(Ctx& ctx, double* C, int n) {\n"
                            "  launch(ctx, {1, 1, 1}, {4, 4, 1}, [&](const ThreadCtx& tc) {\n"
                            "    const auto [i, j] = tc.numba_grid2();\n"
                            "    C[i * n + j] = 0.0;\n"
                            "  });\n"
                            "}\n");
  const auto r = scan(f);
  for (const auto& fi : r.active) EXPECT_NE(fi.rule, "ls-nonlane-store") << fi.message;
}

}  // namespace
