// Unit tests for the portalint plumbing: lexer edge cases, inline
// suppressions, baseline matching/staleness, JSON rendering and exit
// codes.  Analyzed sources are written to the gtest temp dir, whose
// path has no "tests"/"fixtures" component, so every rule applies.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "engine.hpp"
#include "lexer.hpp"

namespace fs = std::filesystem;

namespace {

fs::path write_temp(const std::string& name, const std::string& text) {
  const fs::path p = fs::path(::testing::TempDir()) / name;
  std::ofstream out(p);
  out << text;
  return p;
}

portalint::Result scan(const fs::path& file, const fs::path& baseline = {}) {
  portalint::Options opts;
  opts.inputs = {file};
  opts.root = file.parent_path();
  if (baseline.empty()) {
    opts.use_baseline = false;
  } else {
    opts.baseline_path = baseline;
  }
  return portalint::run_portalint(opts);
}

// --- lexer ------------------------------------------------------------------

TEST(Lexer, FoldsContinuedDirectivesAndKeepsLineNumbers) {
  const auto lx = portalint::lex("#define WIDE \\\n  42\nint x = WIDE;\n");
  ASSERT_EQ(lx.directives.size(), 1u);
  EXPECT_EQ(lx.directives[0].line, 1);
  EXPECT_EQ(lx.directives[0].text, "define WIDE 42");
  ASSERT_FALSE(lx.tokens.empty());
  EXPECT_EQ(lx.tokens[0].text, "int");
  EXPECT_EQ(lx.tokens[0].line, 3);
}

TEST(Lexer, RawStringsAreOpaque) {
  const auto lx = portalint::lex("auto s = R\"(volatile std::mutex)\";\n");
  for (const auto& t : lx.tokens) {
    EXPECT_NE(t.text, "volatile");
    EXPECT_NE(t.text, "mutex");
  }
}

TEST(Lexer, BlockCommentSpansLines) {
  const auto lx = portalint::lex("/* a\n   b */ int y;\n");
  ASSERT_EQ(lx.comments.size(), 1u);
  EXPECT_EQ(lx.comments[0].line, 1);
  EXPECT_EQ(lx.comments[0].end_line, 2);
}

// --- suppressions -----------------------------------------------------------

TEST(Suppression, SameLineCommentSilencesFinding) {
  const auto f = write_temp("sup_same.cpp",
                            "volatile int spin = 0;  // portalint: raw-thread-ok(benchmark sink)\n");
  const auto r = scan(f);
  EXPECT_TRUE(r.active.empty());
  ASSERT_EQ(r.suppressed.size(), 1u);
  EXPECT_EQ(r.suppressed[0].rule, "raw-thread");
}

TEST(Suppression, PreviousLineCommentSilencesFinding) {
  const auto f = write_temp("sup_prev.cpp",
                            "// portalint: raw-thread-ok(benchmark sink)\n"
                            "volatile int spin = 0;\n");
  const auto r = scan(f);
  EXPECT_TRUE(r.active.empty());
  EXPECT_EQ(r.suppressed.size(), 1u);
}

TEST(Suppression, FamilyPrefixCoversConcreteRule) {
  // "mo-ok" suppresses mo-explicit (and mo-balance) at that site.
  const auto f = write_temp("sup_prefix.cpp",
                            "#include <atomic>\n"
                            "std::atomic<int> g{0};\n"
                            "// portalint: mo-ok(assertion does not order anything)\n"
                            "int peek() { return g.load(); }\n");
  const auto r = scan(f);
  EXPECT_TRUE(r.active.empty());
  EXPECT_FALSE(r.suppressed.empty());
}

TEST(Suppression, WrongRuleDoesNotSilence) {
  const auto f = write_temp("sup_wrong.cpp",
                            "volatile int spin = 0;  // portalint: det-rand-ok(unrelated)\n");
  const auto r = scan(f);
  ASSERT_EQ(r.active.size(), 1u);
  EXPECT_EQ(r.active[0].rule, "raw-thread");
  EXPECT_EQ(portalint::exit_code(r), 1);
}

// --- baseline ---------------------------------------------------------------

TEST(Baseline, EntryAbsorbsMatchingFinding) {
  const auto f = write_temp("base_hit.cpp", "volatile int spin = 0;\n");
  const auto b = write_temp("base_hit.baseline",
                            "# comment\n"
                            "raw-thread :: base_hit.cpp :: volatile int spin = 0; :: legacy sink\n");
  const auto r = scan(f, b);
  EXPECT_TRUE(r.active.empty());
  EXPECT_TRUE(r.stale.empty());
  ASSERT_EQ(r.baselined.size(), 1u);
  EXPECT_EQ(portalint::exit_code(r), 0);
}

TEST(Baseline, StaleEntryFailsTheRun) {
  const auto f = write_temp("base_stale.cpp", "int clean = 0;\n");
  const auto b = write_temp("base_stale.baseline",
                            "raw-thread :: base_stale.cpp :: volatile int gone = 0; :: was removed\n");
  const auto r = scan(f, b);
  EXPECT_TRUE(r.active.empty());
  ASSERT_EQ(r.stale.size(), 1u);
  EXPECT_EQ(r.stale[0].rule, "raw-thread");
  EXPECT_EQ(portalint::exit_code(r), 1);
}

TEST(Baseline, MalformedLineIsAnError) {
  std::vector<std::string> errors;
  const auto entries = portalint::parse_baseline("only :: two-fields\n", errors);
  EXPECT_TRUE(entries.empty());
  EXPECT_FALSE(errors.empty());
}

TEST(Baseline, ExcerptMatchIsWhitespaceInsensitive) {
  const auto f = write_temp("base_ws.cpp", "    volatile   int spin = 0;\n");
  const auto b = write_temp("base_ws.baseline",
                            "raw-thread :: base_ws.cpp :: volatile int spin = 0; :: sink\n");
  const auto r = scan(f, b);
  EXPECT_TRUE(r.active.empty());
  EXPECT_TRUE(r.stale.empty());
}

// A v2 baseline entry keys a cross-file finding as "primary+related";
// the entry must absorb the finding, and staleness detection must keep
// working for v2 keys that no longer match.
TEST(Baseline, PathKeyEntryAbsorbsCrossFileFinding) {
  const fs::path dir = fs::path(::testing::TempDir()) / "v2base";
  fs::create_directories(dir);
  { std::ofstream(dir / "helper.cpp") << "inline void bump(double& out) { out += 1.0; }\n"; }
  {
    std::ofstream(dir / "kernel.cpp")
        << "void sum_all(Space& space, int n) {\n"
           "  double sum = 0.0;\n"
           "  parallel_for(space, RangePolicy(0, n), [&](int i) { bump(sum); });\n"
           "}\n";
  }
  const auto b = write_temp(
      "v2.baseline",
      "# portalint-baseline-version: 2\n"
      "fl-shared-write-escape :: kernel.cpp+helper.cpp :: "
      "parallel_for(space, RangePolicy(0, n), [&](int i) { bump(sum); }); :: audited\n");

  portalint::Options opts;
  opts.inputs = {dir};
  opts.root = dir;
  opts.baseline_path = b;
  const auto r = portalint::run_portalint(opts);
  EXPECT_TRUE(r.active.empty());
  EXPECT_TRUE(r.stale.empty());
  ASSERT_EQ(r.baselined.size(), 1u);
  EXPECT_EQ(portalint::finding_path_key(r.baselined[0]), "kernel.cpp+helper.cpp");

  // The plain single-file key must NOT match a cross-file finding, and
  // the unmatched entry is reported stale.
  const auto stale_b = write_temp(
      "v2_stale.baseline",
      "fl-shared-write-escape :: kernel.cpp :: "
      "parallel_for(space, RangePolicy(0, n), [&](int i) { bump(sum); }); :: wrong key\n");
  opts.baseline_path = stale_b;
  const auto r2 = portalint::run_portalint(opts);
  EXPECT_EQ(r2.active.size(), 1u);
  EXPECT_EQ(r2.stale.size(), 1u);
  EXPECT_EQ(portalint::exit_code(r2), 1);
}

// --- rendering & exit codes -------------------------------------------------

TEST(Report, JsonCarriesFindingsAndSummary) {
  const auto f = write_temp("json_out.cpp", "volatile int spin = 0;\n");
  const auto r = scan(f);
  std::ostringstream os;
  portalint::print_json(r, os);
  const std::string j = os.str();
  EXPECT_NE(j.find("\"findings\""), std::string::npos);
  EXPECT_NE(j.find("\"raw-thread\""), std::string::npos);
  EXPECT_NE(j.find("\"summary\":{\"files\":1"), std::string::npos);
}

// Regression: both the finding's path and its excerpt can contain JSON
// metacharacters.  The rendered document must escape them (`"` -> \" and
// `\` -> \\) in every string field, not just the snippet.
TEST(Report, JsonEscapesQuotesAndBackslashesInPathAndSnippet) {
  const fs::path dir = fs::path(::testing::TempDir()) / "esc\"dir\\";
  fs::create_directories(dir);
  const fs::path f = dir / "sp\"in\\.cpp";
  { std::ofstream(f) << "volatile int spin = 0;  // \"quoted\\path\n"; }

  portalint::Options opts;
  opts.inputs = {f};
  opts.root = dir.parent_path();
  opts.use_baseline = false;
  const auto r = portalint::run_portalint(opts);
  ASSERT_EQ(r.active.size(), 1u);

  std::ostringstream os;
  portalint::print_json(r, os);
  const std::string j = os.str();
  // Raw metacharacters must never survive into the document: every `"`
  // inside a string body is preceded by a backslash.
  EXPECT_NE(j.find("esc\\\"dir\\\\"), std::string::npos) << j;       // path
  EXPECT_NE(j.find("sp\\\"in\\\\.cpp"), std::string::npos) << j;     // file name
  EXPECT_NE(j.find("\\\"quoted\\\\path"), std::string::npos) << j;   // snippet
  EXPECT_EQ(j.find("esc\"dir"), std::string::npos) << j;
}

TEST(Report, JsonEscapeCoversControlCharacters) {
  using portalint::json_escape;
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json_escape("a\tb\nc"), "a\\tb\\nc");
  EXPECT_EQ(json_escape(std::string_view("a\x01z", 3)), "a\\u0001z");
}

// Regression: a symlink that lives outside any fixtures directory but
// resolves into one is fixture content and must be skipped by default
// (the deliberate findings inside fixtures would otherwise leak into
// tree scans through the link).
TEST(Discovery, SymlinkIntoFixturesIsSkippedByDefault) {
  const fs::path root = fs::path(::testing::TempDir()) / "symroot";
  fs::remove_all(root);
  fs::create_directories(root / "sub" / "fixtures");
  { std::ofstream(root / "sub" / "fixtures" / "bad.cpp") << "volatile int spin = 0;\n"; }
  { std::ofstream(root / "clean.cpp") << "int ok = 0;\n"; }
  std::error_code ec;
  fs::create_symlink(root / "sub" / "fixtures" / "bad.cpp", root / "link.cpp", ec);
  ASSERT_FALSE(ec) << ec.message();

  portalint::Options opts;
  opts.inputs = {root};
  opts.root = root;
  opts.use_baseline = false;
  const auto skipped = portalint::run_portalint(opts);
  EXPECT_TRUE(skipped.active.empty());
  EXPECT_EQ(skipped.files_scanned, 1u);  // clean.cpp only

  opts.include_fixtures = true;
  const auto full = portalint::run_portalint(opts);
  EXPECT_EQ(full.files_scanned, 3u);  // clean.cpp, link.cpp, fixtures/bad.cpp
  EXPECT_FALSE(full.active.empty());
}

TEST(Report, CleanFileExitsZero) {
  const auto f = write_temp("clean.cpp", "int answer() { return 42; }\n");
  const auto r = scan(f);
  EXPECT_TRUE(r.clean());
  EXPECT_EQ(portalint::exit_code(r), 0);
}

// Regression: structured bindings declare lane-local names, so a store
// indexed through them must not fire ls-nonlane-store (the gemm
// numba-style kernels use exactly this shape).
TEST(Rules, StructuredBindingNamesAreLaneLocals) {
  const auto f = write_temp("sb.cpp",
                            "void k(Ctx& ctx, double* C, int n) {\n"
                            "  launch(ctx, {1, 1, 1}, {4, 4, 1}, [&](const ThreadCtx& tc) {\n"
                            "    const auto [i, j] = tc.numba_grid2();\n"
                            "    C[i * n + j] = 0.0;\n"
                            "  });\n"
                            "}\n");
  const auto r = scan(f);
  for (const auto& fi : r.active) EXPECT_NE(fi.rule, "ls-nonlane-store") << fi.message;
}

}  // namespace
