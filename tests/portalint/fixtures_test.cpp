// Fixture-driven rule tests: every file under fixtures/ is either
// known-bad (each expected finding marked inline with
// "portalint-expect: <rule>") or known-good (must scan clean).  A bad
// fixture firing anything beyond its markers — or a marker not firing —
// is a test failure, so the rule heuristics cannot drift silently.
#include <gtest/gtest.h>

#include <filesystem>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "engine.hpp"
#include "rules.hpp"

namespace fs = std::filesystem;

namespace {

const fs::path kFixtures = fs::path(PORTALINT_FIXTURE_DIR);

using RuleAt = std::pair<std::string, int>;  // (rule id, line)

/// The "portalint-expect: <rule>" markers in a fixture file.
std::multiset<RuleAt> expected_markers(const fs::path& file) {
  auto unit = portalint::load_file(file, kFixtures);
  EXPECT_TRUE(unit.has_value()) << "unreadable fixture: " << file;
  std::multiset<RuleAt> out;
  if (!unit) return out;
  constexpr std::string_view kTag = "portalint-expect:";
  for (const auto& c : unit->lex.comments) {
    const auto pos = c.text.find(kTag);
    if (pos == std::string::npos) continue;
    std::istringstream iss(c.text.substr(pos + kTag.size()));
    std::string rule;
    iss >> rule;
    EXPECT_FALSE(rule.empty()) << file << ": empty portalint-expect marker";
    if (!rule.empty()) out.insert({rule, c.line});
  }
  return out;
}

/// Active findings from scanning `inputs` with fixtures opted in and no
/// baseline (fixtures are meant to fire; nothing may be absorbed).
std::multiset<RuleAt> findings_for(const std::vector<fs::path>& inputs) {
  portalint::Options opts;
  opts.inputs = inputs;
  opts.root = kFixtures;
  opts.use_baseline = false;
  opts.include_fixtures = true;
  const portalint::Result r = portalint::run_portalint(opts);
  EXPECT_TRUE(r.errors.empty()) << (r.errors.empty() ? std::string() : r.errors.front());
  std::multiset<RuleAt> out;
  for (const auto& f : r.active) out.insert({f.rule, f.line});
  return out;
}

std::string to_string(const std::multiset<RuleAt>& s) {
  std::ostringstream os;
  for (const auto& [rule, line] : s) os << "  " << rule << " @ line " << line << "\n";
  return os.str();
}

class BadFixture : public ::testing::TestWithParam<std::string> {};
class GoodFixture : public ::testing::TestWithParam<std::string> {};

TEST_P(BadFixture, FiresExactlyItsMarkedRules) {
  const fs::path file = kFixtures / GetParam();
  const auto expected = expected_markers(file);
  ASSERT_FALSE(expected.empty()) << file << " has no portalint-expect markers";
  const auto actual = findings_for({file});
  EXPECT_EQ(actual, expected) << "expected:\n"
                              << to_string(expected) << "actual:\n"
                              << to_string(actual);
}

TEST_P(GoodFixture, ScansClean) {
  const fs::path file = kFixtures / GetParam();
  EXPECT_TRUE(expected_markers(file).empty()) << file << " is a good fixture with markers";
  const auto actual = findings_for({file});
  EXPECT_TRUE(actual.empty()) << "unexpected findings:\n" << to_string(actual);
}

INSTANTIATE_TEST_SUITE_P(Portalint, BadFixture,
                         ::testing::Values("ls_capture_write_bad.cpp",
                                           "ls_nonlane_store_bad.cpp",
                                           "ls_ptr_capture_bad.cpp",
                                           "mo_explicit_bad.cpp",
                                           "mo_balance_bad.cpp",
                                           "raw_thread_bad.cpp",
                                           "det_rand_bad.cpp",
                                           "det_unordered_bad.cpp",
                                           "tn_magic_tile_bad.cpp",
                                           "simd_raw_vector_ext_bad.cpp",
                                           "hy_pragma_once_bad.hpp",
                                           "hy_using_ns_bad.hpp",
                                           "flow/bounds_bad.cpp"));

INSTANTIATE_TEST_SUITE_P(Portalint, GoodFixture,
                         ::testing::Values("ls_capture_write_good.cpp",
                                           "ls_nonlane_store_good.cpp",
                                           "ls_ptr_capture_good.cpp",
                                           "mo_explicit_good.cpp",
                                           "mo_balance_good.cpp",
                                           "raw_thread_good.cpp",
                                           "det_rand_good.cpp",
                                           "det_unordered_good.cpp",
                                           "tn_magic_tile_good.cpp",
                                           "simd_raw_vector_ext_good.cpp",
                                           "hy_pragma_once_good.hpp",
                                           "hy_using_ns_good.hpp",
                                           "flow/bounds_good.cpp"));

// The include-cycle rule is inherently multi-file: scan the cycle
// directory as a unit and anchor on cycle_a's include line.
TEST(IncludeCycleFixture, CycleDirectoryFiresOnce) {
  auto expected = expected_markers(kFixtures / "cycle" / "cycle_a.hpp");
  const auto more = expected_markers(kFixtures / "cycle" / "cycle_b.hpp");
  expected.insert(more.begin(), more.end());
  ASSERT_EQ(expected.size(), 1u);
  const auto actual = findings_for({kFixtures / "cycle"});
  EXPECT_EQ(actual, expected) << "expected:\n"
                              << to_string(expected) << "actual:\n"
                              << to_string(actual);
}

TEST(IncludeCycleFixture, AcyclicChainScansClean) {
  const auto actual = findings_for({kFixtures / "cycle_ok"});
  EXPECT_TRUE(actual.empty()) << "unexpected findings:\n" << to_string(actual);
}

// Completeness: every rule in the catalogue is pinned by at least one
// bad fixture, so a new rule cannot land without a known-bad exemplar.
TEST(FixtureCorpus, CoversEveryRule) {
  std::set<std::string> covered;
  for (const auto& entry : fs::recursive_directory_iterator(kFixtures)) {
    if (!entry.is_regular_file()) continue;
    for (const auto& [rule, line] : expected_markers(entry.path())) covered.insert(rule);
  }
  for (const auto& rule : portalint::all_rules()) {
    EXPECT_TRUE(covered.count(rule.id)) << "no bad fixture covers rule " << rule.id;
  }
}

}  // namespace
