// Tuning-cache robustness + the dispatch-facing resolver contracts:
// defensive loads (corrupt/truncated/mismatched caches degrade to empty
// with a typed status, never abort), fingerprint keying (another
// machine's winner is ignored), clean concurrent first-use resolution,
// and the warm-path no-new-allocation guarantee (slot_fills stops
// moving once every bucket is resolved).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "tune/cache.hpp"
#include "tune/fingerprint.hpp"
#include "tune/tuned.hpp"

namespace {

using namespace portabench;
using namespace portabench::tune;

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "portabench_" + name;
}

void write_file(const std::string& path, const std::string& text) {
  std::ofstream out(path);
  out << text;
  ASSERT_TRUE(out.good());
}

CacheEntry entry_for(std::uint64_t fp, std::string space = "gemm-tile",
                     std::string precision = "FP64", std::uint32_t sc = 5) {
  CacheEntry e;
  e.space = std::move(space);
  e.precision = std::move(precision);
  e.size_class = sc;
  e.fingerprint = fp;
  e.machine = "test-machine";
  // mc=128 differs from the built-in default (tiled::kMC == 64) so a
  // resolved entry is distinguishable from a defaults fallback.
  e.config = {{"mc", 128}, {"kc", 256}, {"tier", 1}};
  e.tuned_ms = 1.0;
  e.default_ms = 2.0;
  return e;
}

TEST(TuningCache, MissingFileLoadsEmptyWithMissingStatus) {
  TuningCache cache;
  const CacheLoadResult r = cache.load(temp_path("definitely_not_there.json"));
  EXPECT_EQ(r.status, CacheLoadStatus::kMissing);
  EXPECT_EQ(cache.size(), 0u);
}

TEST(TuningCache, SaveLoadRoundTrip) {
  const std::string path = temp_path("roundtrip.json");
  TuningCache cache;
  cache.put(entry_for(0xabcdef0123456789ull));
  cache.put(entry_for(0xabcdef0123456789ull, "dispatch", "-", 0));
  ASSERT_TRUE(cache.save(path));

  TuningCache loaded;
  const CacheLoadResult r = loaded.load(path);
  EXPECT_EQ(r.status, CacheLoadStatus::kOk) << r.warning;
  ASSERT_EQ(loaded.size(), 2u);
  const CacheEntry* e = loaded.find("gemm-tile", "FP64", 5, 0xabcdef0123456789ull);
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->config.at("mc"), 128);
  EXPECT_EQ(e->config.at("tier"), 1);
  EXPECT_EQ(e->machine, "test-machine");
  EXPECT_DOUBLE_EQ(e->tuned_ms, 1.0);
  std::remove(path.c_str());
}

TEST(TuningCache, PutReplacesSameKey) {
  TuningCache cache;
  cache.put(entry_for(7));
  CacheEntry e2 = entry_for(7);
  e2.config["mc"] = 256;
  cache.put(e2);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.find("gemm-tile", "FP64", 5, 7)->config.at("mc"), 256);
}

TEST(TuningCache, CorruptJsonLoadsEmptyWithParseError) {
  const std::string path = temp_path("corrupt.json");
  write_file(path, "{\"schema_version\": 1, \"entries\": [ THIS IS NOT JSON");
  TuningCache cache;
  cache.put(entry_for(1));  // pre-existing state must be cleared too
  const CacheLoadResult r = cache.load(path);
  EXPECT_EQ(r.status, CacheLoadStatus::kParseError);
  EXPECT_NE(r.warning.find("starting empty"), std::string::npos) << r.warning;
  EXPECT_EQ(cache.size(), 0u);
  std::remove(path.c_str());
}

TEST(TuningCache, TruncatedFileLoadsEmpty) {
  TuningCache full;
  full.put(entry_for(42));
  const std::string text = full.serialize();
  TuningCache cache;
  const CacheLoadResult r =
      cache.load_text(text.substr(0, text.size() / 2), "truncated.json");
  EXPECT_EQ(r.status, CacheLoadStatus::kParseError);
  EXPECT_EQ(cache.size(), 0u);
}

TEST(TuningCache, VersionMismatchLoadsEmptyWithTypedStatus) {
  TuningCache cache;
  const CacheLoadResult r = cache.load_text(
      "{\"schema_version\": 999, \"entries\": []}", "future.json");
  EXPECT_EQ(r.status, CacheLoadStatus::kVersionMismatch);
  EXPECT_NE(r.warning.find("version"), std::string::npos) << r.warning;
  EXPECT_EQ(cache.size(), 0u);
}

TEST(TuningCache, SchemaViolationPoisonsWholeFile) {
  // One malformed entry (config value is a string) drops the whole file:
  // partial trust in a tuning cache is worse than none.
  const std::string text =
      "{\"schema_version\": 1, \"entries\": ["
      "{\"space\":\"dispatch\",\"precision\":\"-\",\"size_class\":0,"
      "\"fingerprint\":\"0x1\",\"machine\":\"m\",\"config\":{\"fork_cutoff\":1024},"
      "\"tuned_ms\":1,\"default_ms\":2},"
      "{\"space\":\"dispatch\",\"precision\":\"-\",\"size_class\":0,"
      "\"fingerprint\":\"0x2\",\"machine\":\"m\",\"config\":{\"fork_cutoff\":\"fast\"},"
      "\"tuned_ms\":1,\"default_ms\":2}"
      "]}";
  TuningCache cache;
  const CacheLoadResult r = cache.load_text(text, "bad_entry.json");
  EXPECT_EQ(r.status, CacheLoadStatus::kSchemaError);
  EXPECT_EQ(cache.size(), 0u);
}

TEST(TuningCache, FindIsFingerprintKeyed) {
  TuningCache cache;
  cache.put(entry_for(0x1111));
  EXPECT_NE(cache.find("gemm-tile", "FP64", 5, 0x1111), nullptr);
  EXPECT_EQ(cache.find("gemm-tile", "FP64", 5, 0x2222), nullptr);  // machine B
  EXPECT_EQ(cache.find("gemm-tile", "FP32", 5, 0x1111), nullptr);  // precision
  EXPECT_EQ(cache.find("gemm-tile", "FP64", 6, 0x1111), nullptr);  // size class
}

TEST(Fingerprint, CpuModelParsingAndHashStability) {
  EXPECT_EQ(cpu_model_from_cpuinfo("processor\t: 0\nmodel name\t: Test CPU X1\nflags: a"),
            "Test CPU X1");
  EXPECT_EQ(cpu_model_from_cpuinfo("no model line here"), "unknown-cpu");

  const MachineFingerprint fp = local_fingerprint();
  EXPECT_GT(fp.cores, 0u);
  EXPECT_FALSE(fp.simd_tier.empty());
  EXPECT_EQ(fingerprint_hash(fp), fingerprint_hash(local_fingerprint()));

  MachineFingerprint other = fp;
  other.cores = fp.cores + 1;
  EXPECT_NE(fingerprint_hash(fp), fingerprint_hash(other));
}

// --- the dispatch-facing resolver ------------------------------------------

class TunedResolver : public ::testing::Test {
 protected:
  void TearDown() override {
    // Leave the process-global resolver pointing at "no cache" for
    // whatever test binary state follows.
    Tuned::instance().reset_for_testing("/nonexistent/portabench_tuned_off");
  }
};

TEST_F(TunedResolver, CachedWinnerResolvedForLocalFingerprint) {
  const std::string path = temp_path("tuned_local.json");
  TuningCache cache;
  CacheEntry e = entry_for(fingerprint_hash(local_fingerprint()));
  e.size_class = 4;
  cache.put(e);
  ASSERT_TRUE(cache.save(path));

  Tuned& tuned = Tuned::instance();
  tuned.reset_for_testing(path);
  const gemm::TileConfig& cfg = tuned.gemm_tile(Precision::kDouble, 4);
  EXPECT_EQ(cfg.mc, 128u);
  EXPECT_EQ(cfg.tier, 1);
  EXPECT_EQ(tuned.load_status(), CacheLoadStatus::kOk);
  std::remove(path.c_str());
}

TEST_F(TunedResolver, OtherMachinesWinnerIsIgnored) {
  const std::string path = temp_path("tuned_foreign.json");
  TuningCache cache;
  CacheEntry e = entry_for(fingerprint_hash(local_fingerprint()) ^ 0xdeadbeefull);
  e.size_class = 4;
  e.config["mc"] = 16;
  cache.put(e);
  ASSERT_TRUE(cache.save(path));

  Tuned& tuned = Tuned::instance();
  tuned.reset_for_testing(path);
  const gemm::TileConfig& cfg = tuned.gemm_tile(Precision::kDouble, 4);
  EXPECT_EQ(cfg.mc, gemm::TileConfig{}.mc);  // fingerprint B's entry ignored
  EXPECT_EQ(cfg.tier, -1);
  std::remove(path.c_str());
}

TEST_F(TunedResolver, CorruptCacheDegradesToDefaultsWithWarning) {
  const std::string path = temp_path("tuned_corrupt.json");
  write_file(path, "not json at all");
  Tuned& tuned = Tuned::instance();
  tuned.reset_for_testing(path);
  const gemm::TileConfig& cfg = tuned.gemm_tile(Precision::kSingle, 3);
  EXPECT_EQ(cfg.mc, gemm::TileConfig{}.mc);
  EXPECT_EQ(tuned.load_status(), CacheLoadStatus::kParseError);
  EXPECT_FALSE(tuned.load_warning().empty());
  std::remove(path.c_str());
}

TEST_F(TunedResolver, ConcurrentFirstUseRacesResolveToOneSlot) {
  const std::string path = temp_path("tuned_race.json");
  TuningCache cache;
  CacheEntry e = entry_for(fingerprint_hash(local_fingerprint()));
  e.size_class = 6;
  cache.put(e);
  ASSERT_TRUE(cache.save(path));

  Tuned& tuned = Tuned::instance();
  tuned.reset_for_testing(path);

  constexpr int kThreads = 8;
  std::atomic<int> ready{0};
  std::atomic<const gemm::TileConfig*> seen[kThreads] = {};
  {
    std::vector<std::thread> threads;  // raw threads stress the resolver itself
    threads.reserve(kThreads);
    for (int i = 0; i < kThreads; ++i) {
      threads.emplace_back([&, i] {
        ready.fetch_add(1, std::memory_order_acq_rel);
        while (ready.load(std::memory_order_acquire) < kThreads) {
        }
        seen[i].store(&tuned.gemm_tile(Precision::kDouble, 6),
                      std::memory_order_release);
      });
    }
    for (auto& t : threads) t.join();
  }
  // Every racer adopted the same installed slot, exactly one install won.
  for (int i = 1; i < kThreads; ++i) {
    EXPECT_EQ(seen[i].load(std::memory_order_acquire),
              seen[0].load(std::memory_order_acquire));
  }
  EXPECT_EQ(tuned.slot_fills(), 1u);
  EXPECT_EQ(seen[0].load(std::memory_order_acquire)->mc, 128u);
  std::remove(path.c_str());
}

TEST_F(TunedResolver, WarmPathInstallsNothingNew) {
  Tuned& tuned = Tuned::instance();
  tuned.reset_for_testing("/nonexistent/portabench_warm_path");
  for (const Precision p : {Precision::kDouble, Precision::kSingle, Precision::kHalfIn}) {
    for (std::uint32_t sc = 0; sc < 8; ++sc) (void)tuned.gemm_tile(p, sc);
  }
  const std::uint64_t warm = tuned.slot_fills();
  EXPECT_EQ(warm, 3u * 8u);
  // Steady state: thousands of lookups later, still zero new installs —
  // the warm path is one atomic load, no allocation (soak-style check).
  for (int iter = 0; iter < 10000; ++iter) {
    for (const Precision p : {Precision::kDouble, Precision::kSingle, Precision::kHalfIn}) {
      (void)tuned.gemm_tile(p, static_cast<std::uint32_t>(iter % 8));
    }
  }
  EXPECT_EQ(tuned.slot_fills(), warm);
}

TEST_F(TunedResolver, DisableEnvRunsPureDefaults) {
  const std::string path = temp_path("tuned_disabled.json");
  TuningCache cache;
  CacheEntry e = entry_for(fingerprint_hash(local_fingerprint()));
  e.size_class = 2;
  cache.put(e);
  ASSERT_TRUE(cache.save(path));

  ::setenv("PORTABENCH_TUNE_DISABLE", "1", 1);
  Tuned& tuned = Tuned::instance();
  tuned.reset_for_testing(path);
  const gemm::TileConfig& cfg = tuned.gemm_tile(Precision::kDouble, 2);
  ::unsetenv("PORTABENCH_TUNE_DISABLE");
  EXPECT_EQ(cfg.mc, gemm::TileConfig{}.mc);
  EXPECT_EQ(cfg.tier, -1);
  std::remove(path.c_str());
}

TEST_F(TunedResolver, ServeBatchJobsFallsBackWhenUntuned) {
  Tuned& tuned = Tuned::instance();
  tuned.reset_for_testing("/nonexistent/portabench_untuned");
  EXPECT_EQ(tuned.serve_batch_jobs(32), 32u);

  const std::string path = temp_path("tuned_batch.json");
  TuningCache cache;
  CacheEntry e;
  e.space = "serve-batch";
  e.precision = "-";
  e.size_class = 0;
  e.fingerprint = fingerprint_hash(local_fingerprint());
  e.machine = "here";
  e.config = {{"batch_jobs", 64}};
  cache.put(e);
  ASSERT_TRUE(cache.save(path));
  tuned.reset_for_testing(path);
  EXPECT_EQ(tuned.serve_batch_jobs(32), 64u);
  std::remove(path.c_str());
}

TEST_F(TunedResolver, PerGcdSpaceOverlaysSingleDeviceWinner) {
  const std::string path = temp_path("tuned_gcd_overlay.json");
  TuningCache cache;
  CacheEntry single = entry_for(fingerprint_hash(local_fingerprint()));
  single.size_class = 5;
  cache.put(single);  // gemm-tile: mc=128
  CacheEntry gcd = entry_for(fingerprint_hash(local_fingerprint()), "gemm-tile-gcd");
  gcd.size_class = 5;
  gcd.config["mc"] = 32;
  gcd.config["tier"] = 0;
  cache.put(gcd);
  ASSERT_TRUE(cache.save(path));

  Tuned& tuned = Tuned::instance();
  tuned.reset_for_testing(path);
  // The plain resolver sees the single-device winner, the per-device one
  // its own space's entry — sharded dispatch can diverge per GCD.
  EXPECT_EQ(tuned.gemm_tile(Precision::kDouble, 5).mc, 128u);
  const gemm::TileConfig& dev = tuned.gemm_tile_device(0, Precision::kDouble, 5);
  EXPECT_EQ(dev.mc, 32u);
  EXPECT_EQ(dev.tier, 0);
  std::remove(path.c_str());
}

TEST_F(TunedResolver, PerGcdSpaceFallsBackToSingleDeviceWinner) {
  const std::string path = temp_path("tuned_gcd_fallback.json");
  TuningCache cache;
  CacheEntry single = entry_for(fingerprint_hash(local_fingerprint()));
  single.size_class = 7;
  cache.put(single);  // only gemm-tile tuned, no gemm-tile-gcd entry
  ASSERT_TRUE(cache.save(path));

  Tuned& tuned = Tuned::instance();
  tuned.reset_for_testing(path);
  const gemm::TileConfig& dev = tuned.gemm_tile_device(3, Precision::kDouble, 7);
  EXPECT_EQ(dev.mc, 128u);  // inherits the single-device winner
  EXPECT_EQ(dev.tier, 1);
  std::remove(path.c_str());
}

}  // namespace
