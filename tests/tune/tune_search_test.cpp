// Search-harness contracts on synthetic objectives: exhaustive
// enumeration finds the optimum, hill-climb finds it on spaces too big
// to enumerate, a flat/noisy objective keeps the default (the harness
// can never hand back something worse), frozen parameters never move,
// and the wall-clock budget is honored.  Plus registry sanity: the
// spaces dispatch and the benches key on actually exist with valid
// defaults and the GEMM KC stays frozen.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <thread>

#include "tune/params.hpp"
#include "tune/search.hpp"

namespace {

using namespace portabench::tune;

SpaceDesc synthetic_space() {
  SpaceDesc s;
  s.name = "synthetic";
  s.what = "test space";
  s.params = {
      ParamSpec{"a", {1, 2, 4, 8}, 4, false, ""},
      ParamSpec{"b", {16, 32, 64}, 32, false, ""},
  };
  return s;
}

SearchOptions modeled() {
  SearchOptions o;
  o.deterministic = true;  // modeled cost: 1 rep, zero noise floor
  return o;
}

TEST(Search, ExhaustiveFindsGlobalOptimum) {
  const SpaceDesc space = synthetic_space();  // 12 combos < exhaustive_limit
  const Objective obj = [](const Config& c) {
    // unique minimum at a=2, b=64
    return std::abs(static_cast<double>(c.at("a")) - 2.0) +
           std::abs(static_cast<double>(c.at("b")) - 64.0) / 16.0;
  };
  const TuneResult r = tune_space(space, obj, modeled());
  EXPECT_EQ(r.best.at("a"), 2);
  EXPECT_EQ(r.best.at("b"), 64);
  EXPECT_TRUE(r.improved);
  EXPECT_EQ(r.evaluated, combinations(space));
  EXPECT_FALSE(r.budget_exhausted);
  EXPECT_TRUE(config_valid(space, r.best));
}

TEST(Search, HillClimbFindsOptimumOnLargeSpace) {
  // 6^4 = 1296 combos >> exhaustive_limit forces the hill-climb path.
  SpaceDesc space;
  space.name = "big";
  for (const char* n : {"p", "q", "r", "s"}) {
    space.params.push_back(ParamSpec{n, {1, 2, 3, 4, 5, 6}, 1, false, ""});
  }
  ASSERT_GT(combinations(space), SearchOptions{}.exhaustive_limit);
  // Separable convex bowl with minimum at (3, 4, 2, 5): coordinate
  // descent from any start converges.
  const Objective obj = [](const Config& c) {
    const double d1 = static_cast<double>(c.at("p")) - 3.0;
    const double d2 = static_cast<double>(c.at("q")) - 4.0;
    const double d3 = static_cast<double>(c.at("r")) - 2.0;
    const double d4 = static_cast<double>(c.at("s")) - 5.0;
    return d1 * d1 + d2 * d2 + d3 * d3 + d4 * d4;
  };
  const TuneResult r = tune_space(space, obj, modeled());
  EXPECT_EQ(r.best.at("p"), 3);
  EXPECT_EQ(r.best.at("q"), 4);
  EXPECT_EQ(r.best.at("r"), 2);
  EXPECT_EQ(r.best.at("s"), 5);
  EXPECT_TRUE(r.improved);
  EXPECT_LT(r.evaluated, combinations(space));  // did not enumerate
}

TEST(Search, FlatObjectiveRetainsDefault) {
  const SpaceDesc space = synthetic_space();
  const Objective obj = [](const Config&) { return 1.0; };
  const TuneResult r = tune_space(space, obj, modeled());
  EXPECT_FALSE(r.improved);
  EXPECT_EQ(r.best, default_config(space));  // ties go to the default
  EXPECT_DOUBLE_EQ(r.best_ms, r.default_ms);
}

TEST(Search, NoisyObjectiveBelowFloorRetainsDefault) {
  // Timed mode (deterministic=false): +-1% jitter around a flat cost must
  // not clear the IQR/2% noise floor, so no challenger is adopted.
  const SpaceDesc space = synthetic_space();
  unsigned state = 12345;
  const Objective obj = [&state](const Config&) {
    state = state * 1664525u + 1013904223u;
    return 1.0 + 0.01 * (static_cast<double>(state % 1000) / 1000.0 - 0.5);
  };
  SearchOptions o;
  o.reps = 5;
  o.warmup = 1;
  const TuneResult r = tune_space(space, obj, o);
  EXPECT_FALSE(r.improved);
  EXPECT_EQ(r.best, default_config(space));
  EXPECT_GT(r.noise_ms, 0.0);
}

TEST(Search, FrozenParamIsPinnedToDefault) {
  SpaceDesc space = synthetic_space();
  // Freeze "a" at its default 4; the objective begs for a=1.
  space.params[0].frozen = true;
  const Objective obj = [](const Config& c) {
    return static_cast<double>(c.at("a")) + std::abs(static_cast<double>(c.at("b")) - 64.0);
  };
  const TuneResult r = tune_space(space, obj, modeled());
  EXPECT_EQ(r.best.at("a"), 4);   // frozen: never moved off the default
  EXPECT_EQ(r.best.at("b"), 64);  // free param still tuned
  EXPECT_EQ(r.evaluated, combinations(space));
  EXPECT_EQ(combinations(space), 3u);  // frozen param counts as 1
}

TEST(Search, BudgetExhaustionStopsEarlyAndStaysValid) {
  SpaceDesc space;
  space.name = "slow";
  space.params = {ParamSpec{"x", {0, 1, 2, 3, 4, 5, 6, 7, 8, 9}, 0, false, ""}};
  const Objective obj = [](const Config& c) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    return 10.0 - static_cast<double>(c.at("x"));
  };
  SearchOptions o;
  o.reps = 1;
  o.warmup = 0;
  o.budget_ms = 12.0;  // enough for the default + a couple of candidates
  const TuneResult r = tune_space(space, obj, o);
  EXPECT_TRUE(r.budget_exhausted);
  EXPECT_LT(r.evaluated, 10u);
  EXPECT_GE(r.evaluated, 1u);  // the default is always measured
  EXPECT_TRUE(config_valid(space, r.best));
}

TEST(Search, MeasureReportsMedianAndSpread) {
  int call = 0;
  const Measurement m = measure(
      [&call]() {
        // warmup sample is a 100ms outlier; steady samples 1..5 ms
        ++call;
        return call == 1 ? 100.0 : static_cast<double>(call - 1);
      },
      5, 1);
  EXPECT_DOUBLE_EQ(m.median_ms, 3.0);  // median of {1,2,3,4,5}; outlier dropped
  EXPECT_GT(m.noise_ms, 0.0);
}

// --- registry sanity -------------------------------------------------------

TEST(Registry, DispatchFacingSpacesExistWithValidDefaults) {
  for (const char* name :
       {"gemm-tile", "dispatch", "launch", "serve-batch", "gpu-unroll", "gpu-block"}) {
    const SpaceDesc* s = find_space(name);
    ASSERT_NE(s, nullptr) << name;
    EXPECT_FALSE(s->params.empty()) << name;
    EXPECT_TRUE(config_valid(*s, default_config(*s))) << name;
    EXPECT_GE(combinations(*s), 1u) << name;
    for (const ParamSpec& p : s->params) {
      EXPECT_FALSE(p.choices.empty()) << name << "." << p.name;
      EXPECT_NE(std::find(p.choices.begin(), p.choices.end(), p.def), p.choices.end())
          << name << "." << p.name << ": default not among choices";
    }
  }
  EXPECT_EQ(find_space("no-such-space"), nullptr);
}

TEST(Registry, GemmKcIsFrozenOrderAffecting) {
  const SpaceDesc* s = find_space("gemm-tile");
  ASSERT_NE(s, nullptr);
  bool saw_kc = false, saw_free = false;
  for (const ParamSpec& p : s->params) {
    if (p.name == "kc") {
      saw_kc = true;
      EXPECT_TRUE(p.frozen) << "kc changes fp accumulation order; must stay frozen";
    } else {
      saw_free |= !p.frozen;
    }
  }
  EXPECT_TRUE(saw_kc);
  EXPECT_TRUE(saw_free) << "gemm-tile must keep at least one searchable knob";
}

TEST(Registry, ConfigValueFallsBackToSpaceDefault) {
  const SpaceDesc* s = find_space("dispatch");
  ASSERT_NE(s, nullptr);
  const Config empty;
  for (const ParamSpec& p : s->params) {
    EXPECT_EQ(config_value(*s, empty, p.name), p.def) << p.name;
  }
  Config partial = {{s->params.front().name, s->params.front().choices.back()}};
  EXPECT_EQ(config_value(*s, partial, s->params.front().name),
            s->params.front().choices.back());
}

}  // namespace
