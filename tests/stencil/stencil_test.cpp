// Tests for the stencil workload: grids, sweeps across substrates,
// convergence, and the roofline model.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/error.hpp"
#include "stencil/grid.hpp"
#include "stencil/kernels.hpp"
#include "stencil/model.hpp"

namespace portabench::stencil {
namespace {

TEST(Grid, GeometryAndBoundary) {
  Grid2D g(8, 10);
  EXPECT_EQ(g.rows(), 8u);
  EXPECT_EQ(g.cols(), 10u);
  g.set_hot_top(2.0);
  EXPECT_EQ(g.front()(0, 5), 2.0);
  EXPECT_EQ(g.back()(0, 5), 2.0);
  EXPECT_EQ(g.front()(1, 5), 0.0);
  EXPECT_THROW(Grid2D(2, 10), precondition_error);
}

TEST(Grid, SwapExchangesBuffers) {
  Grid2D g(4, 4);
  g.front()(1, 1) = 7.0;
  g.swap();
  EXPECT_EQ(g.back()(1, 1), 7.0);
  EXPECT_EQ(g.front()(1, 1), 0.0);
}

TEST(Residual, MaxNormOverInterior) {
  simrt::SerialSpace space;
  simrt::View2<double, simrt::LayoutRight> u(5, 5);
  simrt::View2<double, simrt::LayoutRight> v(5, 5);
  u(2, 3) = 1.0;
  v(2, 3) = -0.5;
  u(0, 0) = 100.0;  // boundary: ignored
  EXPECT_DOUBLE_EQ(residual_max(space, u, v), 1.5);
}

TEST(Residual, SimdPathMatchesScalarLoop) {
  // residual_max runs through simrt::simd_max_abs_diff; max has no
  // rounding, so the result must equal the plain sequential loop exactly
  // on every shape, including interiors narrower than a vector.
  simrt::ThreadsSpace space(3);
  for (auto [rows, cols] : {std::pair<std::size_t, std::size_t>{3, 3},
                            {5, 4}, {17, 9}, {33, 70}}) {
    simrt::View2<double, simrt::LayoutRight> u(rows, cols);
    simrt::View2<double, simrt::LayoutRight> v(rows, cols);
    for (std::size_t i = 0; i < rows; ++i) {
      for (std::size_t j = 0; j < cols; ++j) {
        u(i, j) = static_cast<double>((i * 31 + j * 7) % 100) / 99.0;
        v(i, j) = static_cast<double>((i * 13 + j * 17) % 100) / 99.0;
      }
    }
    double ref = 0.0;
    for (std::size_t i = 1; i + 1 < rows; ++i) {
      for (std::size_t j = 1; j + 1 < cols; ++j) {
        const double d = std::abs(u(i, j) - v(i, j));
        ref = ref < d ? d : ref;
      }
    }
    EXPECT_EQ(residual_max(space, u, v), ref) << rows << "x" << cols;
  }
}

class SweepEquivalence : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {
};

TEST_P(SweepEquivalence, MdrangeMatchesSerial) {
  const auto [rows, cols] = GetParam();
  Grid2D serial(rows, cols);
  Grid2D parallel(rows, cols);
  serial.set_hot_top(1.0);
  parallel.set_hot_top(1.0);
  simrt::ThreadsSpace threads(4);
  for (int sweep = 0; sweep < 7; ++sweep) {
    sweep_serial(serial.front(), serial.back());
    serial.swap();
    sweep_mdrange(threads, parallel.front(), parallel.back());
    parallel.swap();
  }
  EXPECT_DOUBLE_EQ(parallel.interior_sum(), serial.interior_sum());
}

TEST_P(SweepEquivalence, SimdMatchesSerialBitwise) {
  const auto [rows, cols] = GetParam();
  Grid2D serial(rows, cols);
  Grid2D simd(rows, cols);
  serial.set_hot_top(1.0);
  simd.set_hot_top(1.0);
  simrt::ThreadsSpace threads(4);
  for (int sweep = 0; sweep < 7; ++sweep) {
    sweep_serial(serial.front(), serial.back());
    serial.swap();
    sweep_simd(threads, simd.front(), simd.back());
    simd.swap();
  }
  // The explicit-SIMD sweep is bit-identical to the serial loop, not
  // merely close: same per-point expression, blocked only over j.
  for (std::size_t i = 0; i < rows; ++i) {
    for (std::size_t j = 0; j < cols; ++j) {
      EXPECT_EQ(simd.front()(i, j), serial.front()(i, j)) << i << "," << j;
    }
  }
}

TEST_P(SweepEquivalence, GpuNaiveMatchesSerial) {
  const auto [rows, cols] = GetParam();
  Grid2D host(rows, cols);
  host.set_hot_top(1.0);
  gpusim::DeviceContext ctx(gpusim::GpuSpec::a100());

  std::vector<double> in(rows * cols, 0.0);
  std::vector<double> out(rows * cols, 0.0);
  for (std::size_t j = 0; j < cols; ++j) in[j] = out[j] = 1.0;

  for (int sweep = 0; sweep < 5; ++sweep) {
    sweep_serial(host.front(), host.back());
    host.swap();
    sweep_gpu_naive(ctx, in.data(), out.data(), rows, cols);
    std::swap(in, out);
  }
  double device_sum = 0.0;
  for (std::size_t i = 1; i + 1 < rows; ++i) {
    for (std::size_t j = 1; j + 1 < cols; ++j) device_sum += in[i * cols + j];
  }
  EXPECT_DOUBLE_EQ(device_sum, host.interior_sum());
}

TEST_P(SweepEquivalence, GpuTiledMatchesNaive) {
  const auto [rows, cols] = GetParam();
  gpusim::DeviceContext ctx(gpusim::GpuSpec::mi250x_gcd());
  std::vector<double> field(rows * cols);
  for (std::size_t i = 0; i < field.size(); ++i) {
    field[i] = static_cast<double>((i * 2654435761u) % 1000) / 1000.0;
  }
  std::vector<double> out_naive(rows * cols, -1.0);
  std::vector<double> out_tiled(rows * cols, -1.0);
  // Boundaries are not written by the kernels: preset identically.
  out_naive = field;
  out_tiled = field;
  sweep_gpu_naive(ctx, field.data(), out_naive.data(), rows, cols);
  sweep_gpu_tiled(ctx, field.data(), out_tiled.data(), rows, cols, 8);
  for (std::size_t i = 0; i < field.size(); ++i) {
    EXPECT_DOUBLE_EQ(out_tiled[i], out_naive[i]) << "i=" << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, SweepEquivalence,
                         ::testing::Values(std::tuple{8u, 8u}, std::tuple{17u, 33u},
                                           std::tuple{32u, 32u}, std::tuple{50u, 19u}));

TEST(Jacobi, ConvergesOnHotPlate) {
  simrt::ThreadsSpace space(4);
  Grid2D grid(24, 24);
  grid.set_hot_top(1.0);
  const std::size_t sweeps = solve_jacobi(space, grid, 1e-6, 5000);
  EXPECT_LT(sweeps, 5000u);  // converged before the cap
  EXPECT_GT(sweeps, 10u);    // but not instantly
  // Physical sanity: interior values between the boundary extremes.
  for (std::size_t i = 1; i + 1 < grid.rows(); ++i) {
    for (std::size_t j = 1; j + 1 < grid.cols(); ++j) {
      EXPECT_GT(grid.front()(i, j), 0.0);
      EXPECT_LT(grid.front()(i, j), 1.0);
    }
  }
  // Monotone in rows: closer to the hot edge is hotter.
  EXPECT_GT(grid.front()(1, 12), grid.front()(12, 12));
}

TEST(Jacobi, ToleranceControlsSweepCount) {
  simrt::ThreadsSpace space(2);
  Grid2D loose(16, 16);
  Grid2D tight(16, 16);
  loose.set_hot_top(1.0);
  tight.set_hot_top(1.0);
  const std::size_t loose_sweeps = solve_jacobi(space, loose, 1e-3, 10000);
  const std::size_t tight_sweeps = solve_jacobi(space, tight, 1e-8, 10000);
  EXPECT_LT(loose_sweeps, tight_sweeps);
}

TEST(StencilModel, AiBetweenSpmvAndGemm) {
  const auto p = predict_stencil_cpu(perfmodel::CpuSpec::epyc_7a53(), 4096, 4096);
  EXPECT_GT(p.arithmetic_intensity, 0.12);  // above SpMV
  EXPECT_LT(p.arithmetic_intensity, 1.0);   // below cached GEMM
  EXPECT_GT(p.sweeps_per_second, 0.0);
}

TEST(StencilModel, TilingPaysOnGpu) {
  const auto naive =
      predict_stencil_gpu(perfmodel::GpuPerfSpec::a100(), 8192, 8192, /*tiled=*/false);
  const auto tiled =
      predict_stencil_gpu(perfmodel::GpuPerfSpec::a100(), 8192, 8192, /*tiled=*/true);
  EXPECT_GT(tiled.gflops, naive.gflops);
  EXPECT_NEAR(tiled.gflops / naive.gflops, 1.6, 0.1);  // 3.2 -> 2.0 bytes/pt
}

TEST(StencilModel, MemoryBoundEverywhere) {
  for (std::size_t n : {1024u, 8192u}) {
    const auto cpu = predict_stencil_cpu(perfmodel::CpuSpec::ampere_altra(), n, n);
    EXPECT_LT(cpu.gflops,
              0.1 * perfmodel::CpuSpec::ampere_altra().peak_gflops(Precision::kDouble));
  }
}

TEST(StencilModel, PreconditionsEnforced) {
  EXPECT_THROW(predict_stencil_cpu(perfmodel::CpuSpec::epyc_7a53(), 2, 100),
               precondition_error);
}

}  // namespace
}  // namespace portabench::stencil
