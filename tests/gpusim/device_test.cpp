// Tests for the simulated GPU device and its counters.
#include "gpusim/device.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace portabench::gpusim {
namespace {

TEST(GpuSpec, A100Parameters) {
  const GpuSpec s = GpuSpec::a100();
  EXPECT_EQ(s.vendor, Vendor::kNvidia);
  EXPECT_EQ(s.warp_size, 32u);
  EXPECT_EQ(s.sm_count, 108u);
  EXPECT_EQ(s.max_threads_per_block, 1024u);
}

TEST(GpuSpec, Mi250xParameters) {
  const GpuSpec s = GpuSpec::mi250x_gcd();
  EXPECT_EQ(s.vendor, Vendor::kAmd);
  EXPECT_EQ(s.warp_size, 64u);  // AMD wavefront
  EXPECT_EQ(s.sm_count, 110u);
}

TEST(DeviceContext, ValidatesLaunchConfig) {
  DeviceContext ctx(GpuSpec::a100());
  EXPECT_NO_THROW(ctx.validate_launch({10, 10, 1}, {32, 32, 1}));
  // 32*32*2 = 2048 > 1024 threads per block.
  EXPECT_THROW(ctx.validate_launch({1, 1, 1}, {32, 32, 2}), precondition_error);
  EXPECT_THROW(ctx.validate_launch({0, 1, 1}, {32, 32, 1}), precondition_error);
}

TEST(DeviceContext, LaunchCountersAccumulate) {
  DeviceContext ctx(GpuSpec::a100());
  ctx.note_launch({4, 2, 1}, {16, 16, 1});
  ctx.note_launch({1, 1, 1}, {64, 1, 1});
  const auto& c = ctx.counters();
  EXPECT_EQ(c.kernel_launches, 2u);
  EXPECT_EQ(c.blocks_executed, 9u);
  EXPECT_EQ(c.threads_executed, 8u * 256u + 64u);
}

TEST(DeviceContext, AllocationAccounting) {
  DeviceContext ctx(GpuSpec::a100());
  ctx.note_alloc(1000);
  ctx.note_alloc(500);
  EXPECT_EQ(ctx.bytes_in_use(), 1500u);
  EXPECT_EQ(ctx.counters().live_allocations, 2u);
  EXPECT_EQ(ctx.counters().peak_bytes_allocated, 1500u);
  ctx.note_free(1000);
  EXPECT_EQ(ctx.bytes_in_use(), 500u);
  EXPECT_EQ(ctx.counters().live_allocations, 1u);
  EXPECT_EQ(ctx.counters().peak_bytes_allocated, 1500u);  // peak sticks
}

TEST(DeviceContext, OutOfMemoryRejected) {
  GpuSpec tiny = GpuSpec::a100();
  tiny.global_mem_bytes = 1024;
  DeviceContext ctx(tiny);
  ctx.note_alloc(1000);
  EXPECT_THROW(ctx.note_alloc(100), precondition_error);
}

TEST(DeviceContext, OverFreeRejected) {
  DeviceContext ctx(GpuSpec::a100());
  ctx.note_alloc(100);
  EXPECT_THROW(ctx.note_free(200), precondition_error);
}

TEST(DeviceContext, ResetClearsCountersNotUsage) {
  DeviceContext ctx(GpuSpec::a100());
  ctx.note_alloc(100);
  ctx.note_launch({1, 1, 1}, {1, 1, 1});
  ctx.reset_counters();
  EXPECT_EQ(ctx.counters().kernel_launches, 0u);
  EXPECT_EQ(ctx.bytes_in_use(), 100u);  // live memory is not forgotten
}

TEST(Dim3, VolumeAndDefaults) {
  EXPECT_EQ(Dim3{}.volume(), 1u);
  EXPECT_EQ((Dim3{4, 5, 2}).volume(), 40u);
}

TEST(Dim3, BlocksForCeilDiv) {
  EXPECT_EQ(blocks_for(100, 32), 4u);
  EXPECT_EQ(blocks_for(96, 32), 3u);
  EXPECT_EQ(blocks_for(1, 32), 1u);
  EXPECT_THROW(blocks_for(10, 0), precondition_error);
}

TEST(ThreadCtx, GlobalIndices) {
  ThreadCtx tc;
  tc.grid_dim = {4, 4, 1};
  tc.block_dim = {32, 8, 1};
  tc.block_idx = {2, 3, 0};
  tc.thread_idx = {5, 7, 0};
  EXPECT_EQ(tc.global_x(), 2u * 32u + 5u);
  EXPECT_EQ(tc.global_y(), 3u * 8u + 7u);
  EXPECT_EQ(tc.lane_in_block(), 7u * 32u + 5u);
}

TEST(ThreadCtx, NumbaGrid2MapsXY) {
  ThreadCtx tc;
  tc.block_dim = {16, 16, 1};
  tc.block_idx = {1, 2, 0};
  tc.thread_idx = {3, 4, 0};
  const auto [i, j] = tc.numba_grid2();
  EXPECT_EQ(i, tc.global_x());
  EXPECT_EQ(j, tc.global_y());
}

}  // namespace
}  // namespace portabench::gpusim
