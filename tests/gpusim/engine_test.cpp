// Tests for the block-parallel launch engine: parallel-vs-serial result
// equality, pooled shared-memory arenas, nested-launch degradation, and
// the memoized launch-configuration cache.
#include "gpusim/engine.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <numeric>
#include <vector>

#include "common/error.hpp"
#include "gpusim/device.hpp"
#include "gpusim/launch.hpp"
#include "portacheck/hooks.hpp"

namespace portabench::gpusim {
namespace {

class LaunchEngineTest : public ::testing::Test {
 protected:
  LaunchEngineTest() { ctx_.set_engine(engine_); }

  DeviceContext ctx_{GpuSpec::a100()};
  // A private multi-worker engine so the fork path is exercised no matter
  // what the host machine or PORTABENCH_GPUSIM_THREADS says.
  std::shared_ptr<LaunchEngine> engine_ = std::make_shared<LaunchEngine>(4);
};

TEST_F(LaunchEngineTest, WorkerCountResolvesExplicitRequest) {
  EXPECT_EQ(engine_->workers(), 4u);
  EXPECT_EQ(LaunchEngine(3).workers(), 3u);
}

TEST_F(LaunchEngineTest, NotInRegionOutsideLaunches) {
  EXPECT_FALSE(LaunchEngine::in_region());
}

TEST_F(LaunchEngineTest, ParallelLaunchMatchesSerialBitwise) {
  // 64 blocks x 256 lanes = 16384 simulated threads: above the fork
  // cutoff, so launch() really runs blocks on the pool.
  const Dim3 grid{8, 8, 1};
  const Dim3 block{16, 16, 1};
  const std::size_t n = 128;
  std::vector<double> serial(n * n, -1.0);
  std::vector<double> parallel(n * n, -2.0);

  auto body = [n](std::vector<double>& out) {
    return [&out, n](const ThreadCtx& tc) {
      const std::size_t row = tc.global_y();
      const std::size_t col = tc.global_x();
      // Value depends on every index component, so any ordering or
      // indexing bug in the flattened lane walk changes some element.
      out[row * n + col] = 1.0 / static_cast<double>(1 + row * n + col) +
                           static_cast<double>(tc.lane_in_block());
    };
  };
  launch_serial(ctx_, grid, block, body(serial));
  launch(ctx_, grid, block, body(parallel));
  EXPECT_EQ(serial, parallel);  // bitwise: identical per-element math
}

TEST_F(LaunchEngineTest, LaunchBlocksParallelMatchesSerial) {
  const Dim3 grid{16, 4, 1};
  const Dim3 block{8, 8, 1};
  const std::size_t shared_bytes = block.volume() * sizeof(double);
  std::vector<double> serial(grid.volume(), -1.0);
  std::vector<double> parallel(grid.volume(), -2.0);

  // Cooperative block sum through shared scratch: lanes stage values,
  // lane 0 reduces after the implicit barrier.
  auto body = [&](std::vector<double>& out) {
    return [&out](BlockCtx& bc) {
      auto scratch = bc.shared<double>(bc.block_dim().volume());
      bc.for_lanes([&](const ThreadCtx& tc) {
        scratch[tc.lane_in_block()] = static_cast<double>(tc.global_x() + tc.global_y());
      });
      bc.for_lanes([&](const ThreadCtx& tc) {
        if (tc.lane_in_block() == 0) {
          double sum = 0.0;
          for (double v : scratch) sum += v;
          out[detail::linear_block(tc.grid_dim, tc.block_idx)] = sum;
        }
      });
    };
  };
  launch_blocks_serial(ctx_, grid, block, shared_bytes, body(serial));
  launch_blocks(ctx_, grid, block, shared_bytes, body(parallel));
  EXPECT_EQ(serial, parallel);
}

TEST_F(LaunchEngineTest, SubCutoffLaunchRunsInline) {
  // 4 threads total: far below the cutoff — must execute on the caller
  // (observable: plain non-atomic accumulation is race-free).
  const Dim3 grid{2, 1, 1};
  const Dim3 block{2, 1, 1};
  std::size_t count = 0;
  launch(ctx_, grid, block, [&](const ThreadCtx&) {
    // portalint: ls-capture-write-ok(sub-cutoff launches run serially inline; that is the assertion)
    ++count;
  });
  EXPECT_EQ(count, 4u);
}

TEST_F(LaunchEngineTest, NestedLaunchDegradesToSerial) {
  // A kernel that launches a kernel: the inner launch is above the fork
  // cutoff but must degrade to the serial inline walk (the pool is not
  // reentrant) instead of deadlocking.  Every block runs the inner
  // launch, so completion itself is the assertion.
  const Dim3 grid{4, 4, 1};
  const Dim3 block{32, 32, 1};  // 16 x 1024 = above cutoff: outer forks
  std::vector<int> inner_counts(grid.volume(), 0);
  launch_blocks(ctx_, grid, block, 0, [&](BlockCtx& bc) {
    const std::size_t slot = detail::linear_block(bc.grid_dim(), bc.block_idx());
    DeviceContext inner_ctx(GpuSpec::a100());
    inner_ctx.set_engine(engine_);
    int count = 0;  // non-atomic: the inner launch must be serial
    launch(inner_ctx, Dim3{8, 1, 1}, Dim3{32, 32, 1}, [&count](const ThreadCtx&) {
      // portalint: ls-capture-write-ok(nested launches degrade to the serial walk; that is the assertion)
      ++count;
    });
    inner_counts[slot] = count;
  });
  for (const int c : inner_counts) EXPECT_EQ(c, 8 * 32 * 32);
}

TEST_F(LaunchEngineTest, ArenaGrowsToHighWaterAndPools) {
  if (portacheck::active()) {
    GTEST_SKIP() << "sanitized runs use the serial thread-local arena";
  }
  const Dim3 grid{8, 8, 1};
  const Dim3 block{16, 16, 1};  // above cutoff: worker arenas in play
  auto noop = [](BlockCtx&) {};
  launch_blocks(ctx_, grid, block, 1024, noop);
  const std::size_t after_small = engine_->arena_high_water();
  EXPECT_GE(after_small, 1024u);
  // A bigger request grows the arenas; repeating it must not grow further
  // (pooled reuse: the steady-state path allocates nothing).
  launch_blocks(ctx_, grid, block, 4096, noop);
  const std::size_t after_large = engine_->arena_high_water();
  EXPECT_GE(after_large, 4096u);
  launch_blocks(ctx_, grid, block, 4096, noop);
  launch_blocks(ctx_, grid, block, 2048, noop);
  EXPECT_EQ(engine_->arena_high_water(), after_large);
}

TEST_F(LaunchEngineTest, ArenaZeroFilledEveryAcquire) {
  const Dim3 grid{8, 8, 1};
  const Dim3 block{16, 16, 1};
  const std::size_t shared_bytes = 256 * sizeof(double);
  // First launch dirties the scratch; the second must still observe the
  // __shared__ zero-fill contract on every block.
  std::atomic<int> dirty{0};
  auto dirtying = [&](BlockCtx& bc) {
    auto s = bc.shared<double>(256);
    for (auto& v : s) v = 1e9;
    dirty.fetch_add(1, std::memory_order_relaxed);
  };
  launch_blocks(ctx_, grid, block, shared_bytes, dirtying);
  EXPECT_EQ(dirty.load(std::memory_order_relaxed), static_cast<int>(grid.volume()));

  std::atomic<int> nonzero{0};
  launch_blocks(ctx_, grid, block, shared_bytes, [&](BlockCtx& bc) {
    auto s = bc.shared<double>(256);
    for (const double v : s) {
      if (v != 0.0) nonzero.fetch_add(1, std::memory_order_relaxed);
    }
  });
  EXPECT_EQ(nonzero.load(std::memory_order_relaxed), 0);
}

TEST_F(LaunchEngineTest, LocalArenaZeroFilledAndReused) {
  const auto a = LaunchEngine::local_arena(512);
  EXPECT_GE(a.size(), 512u);
  for (const std::byte b : a.first(512)) EXPECT_EQ(b, std::byte{0});
  for (auto& b : a) b = std::byte{0xFF};
  const auto c = LaunchEngine::local_arena(256);
  EXPECT_EQ(c.data(), a.data());  // pooled: same thread-local storage
  for (const std::byte b : c) EXPECT_EQ(b, std::byte{0});
}

TEST_F(LaunchEngineTest, LaunchConfigCacheCountsHitsAndMisses) {
  const Dim3 grid{4, 4, 1};
  const Dim3 block{8, 8, 1};
  EXPECT_EQ(ctx_.launch_cache_stats().hits, 0u);
  ctx_.validate_launch_cached(grid, block, 0);
  EXPECT_EQ(ctx_.launch_cache_stats().misses, 1u);
  ctx_.validate_launch_cached(grid, block, 0);
  ctx_.validate_launch_cached(grid, block, 0);
  EXPECT_EQ(ctx_.launch_cache_stats().hits, 2u);
  EXPECT_EQ(ctx_.launch_cache_stats().misses, 1u);
  // Different shared_bytes is a different key.
  ctx_.validate_launch_cached(grid, block, 1024);
  EXPECT_EQ(ctx_.launch_cache_stats().misses, 2u);
}

TEST_F(LaunchEngineTest, CachedOccupancyMatchesDirectComputation) {
  const Dim3 grid{4, 4, 1};
  const Dim3 block{16, 16, 1};
  const Occupancy& cached = ctx_.launch_occupancy(grid, block, 0);
  KernelResources res;
  res.threads_per_block = block.volume();
  const Occupancy direct = compute_occupancy(ctx_.spec(), res);
  EXPECT_EQ(cached.active_blocks_per_sm, direct.active_blocks_per_sm);
  EXPECT_EQ(cached.active_threads_per_sm, direct.active_threads_per_sm);
  EXPECT_DOUBLE_EQ(cached.fraction, direct.fraction);
}

TEST_F(LaunchEngineTest, InvalidConfigurationsThrowAndAreNeverCached) {
  const Dim3 grid{1, 1, 1};
  const Dim3 oversized{64, 64, 1};  // 4096 > max_threads_per_block
  EXPECT_THROW(ctx_.validate_launch_cached(grid, oversized, 0), precondition_error);
  const auto stats = ctx_.launch_cache_stats();
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.misses, 0u);  // throw happened before install
  // Oversized dynamic shared memory is rejected the same way.
  EXPECT_THROW(
      ctx_.validate_launch_cached(grid, Dim3{8, 8, 1}, ctx_.spec().shared_mem_per_block + 1),
      precondition_error);
}

TEST_F(LaunchEngineTest, SharedEngineIsDefaultWithoutInstall) {
  DeviceContext plain(GpuSpec::a100());
  EXPECT_EQ(&plain.engine(), &LaunchEngine::shared());
  EXPECT_EQ(&ctx_.engine(), engine_.get());
}

}  // namespace
}  // namespace portabench::gpusim
