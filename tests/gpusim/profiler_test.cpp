// Tests for the nvprof-style profiler.
#include "gpusim/profiler.hpp"

#include <gtest/gtest.h>

namespace portabench::gpusim {
namespace {

TEST(Profiler, RecordsLaunchesThroughHelper) {
  DeviceContext ctx(GpuSpec::a100());
  Profiler prof;
  int executed = 0;
  profiled_launch(prof, ctx, "gemm", {2, 2, 1}, {8, 8, 1},
                  [&](const ThreadCtx&) { ++executed; });
  EXPECT_EQ(executed, 256);
  ASSERT_EQ(prof.launches().size(), 1u);
  EXPECT_EQ(prof.launches()[0].name, "gemm");
  EXPECT_EQ(prof.launches()[0].grid.volume(), 4u);
  // The context's own counters advanced too (the launch really ran).
  EXPECT_EQ(ctx.counters().kernel_launches, 1u);
}

TEST(Profiler, SummariesAggregateByName) {
  Profiler prof;
  prof.record_launch("gemm", {4, 4, 1}, {32, 32, 1}, 0.010);
  prof.record_launch("gemm", {4, 4, 1}, {32, 32, 1}, 0.012);
  prof.record_launch("init", {1, 1, 1}, {64, 1, 1}, 0.001);
  const auto summaries = prof.kernel_summaries();
  ASSERT_EQ(summaries.size(), 2u);
  EXPECT_EQ(summaries[0].name, "gemm");  // most calls first
  EXPECT_EQ(summaries[0].calls, 2u);
  EXPECT_EQ(summaries[0].total_threads, 2u * 16u * 1024u);
  EXPECT_DOUBLE_EQ(summaries[0].total_seconds, 0.022);
  EXPECT_EQ(summaries[1].calls, 1u);
}

TEST(Profiler, TransferAccounting) {
  Profiler prof;
  prof.record_transfer(TransferRecord::Direction::kH2D, 1000);
  prof.record_transfer(TransferRecord::Direction::kH2D, 500);
  prof.record_transfer(TransferRecord::Direction::kD2H, 250);
  EXPECT_EQ(prof.bytes(TransferRecord::Direction::kH2D), 1500u);
  EXPECT_EQ(prof.bytes(TransferRecord::Direction::kD2H), 250u);
}

TEST(Profiler, ReportShapedLikeNvprof) {
  Profiler prof;
  prof.record_launch("gemm", {1, 1, 1}, {32, 1, 1}, 0.002);
  prof.record_transfer(TransferRecord::Direction::kH2D, 4096);
  const std::string report = prof.report();
  EXPECT_NE(report.find("==PROF== GPU activities:"), std::string::npos);
  EXPECT_NE(report.find("gemm"), std::string::npos);
  EXPECT_NE(report.find("H2D 4096 bytes in 1 transfer(s)"), std::string::npos);
}

TEST(Profiler, CorroboratesGpuActivityLikeThePaper) {
  // The Section IV check: did the kernel actually run on the device?
  DeviceContext ctx(GpuSpec::a100());
  Profiler prof;
  profiled_launch(prof, ctx, "suspect_kernel", {8, 8, 1}, {16, 16, 1},
                  [](const ThreadCtx&) {});
  const auto summaries = prof.kernel_summaries();
  ASSERT_FALSE(summaries.empty());
  EXPECT_GT(summaries[0].total_threads, 0u);  // activity corroborated
}

TEST(Profiler, ClearResets) {
  Profiler prof;
  prof.record_launch("k", {1, 1, 1}, {1, 1, 1});
  prof.record_transfer(TransferRecord::Direction::kD2H, 1);
  prof.clear();
  EXPECT_TRUE(prof.launches().empty());
  EXPECT_TRUE(prof.transfers().empty());
}

}  // namespace
}  // namespace portabench::gpusim
