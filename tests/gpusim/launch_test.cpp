// Tests for the SIMT kernel launcher: coverage, guard semantics, host
// parallel equivalence, and cooperative (barrier) kernels.
#include "gpusim/launch.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "common/error.hpp"
#include "gpusim/memory.hpp"

namespace portabench::gpusim {
namespace {

class LaunchTest : public ::testing::Test {
 protected:
  DeviceContext ctx_{GpuSpec::a100()};
};

TEST_F(LaunchTest, EveryThreadRunsOnce) {
  const Dim3 grid{3, 2, 2};
  const Dim3 block{4, 3, 1};
  std::vector<std::atomic<int>> hits(grid.volume() * block.volume());
  launch(ctx_, grid, block, [&](const ThreadCtx& tc) {
    const std::size_t block_linear =
        (tc.block_idx.z * tc.grid_dim.y + tc.block_idx.y) * tc.grid_dim.x + tc.block_idx.x;
    hits[block_linear * tc.block_dim.volume() + tc.lane_in_block()].fetch_add(1);
  });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST_F(LaunchTest, CountersRecordLaunch) {
  launch(ctx_, {4, 4, 1}, {8, 8, 1}, [](const ThreadCtx&) {});
  EXPECT_EQ(ctx_.counters().kernel_launches, 1u);
  EXPECT_EQ(ctx_.counters().blocks_executed, 16u);
  EXPECT_EQ(ctx_.counters().threads_executed, 1024u);
}

TEST_F(LaunchTest, InvalidBlockRejected) {
  EXPECT_THROW(launch(ctx_, {1, 1, 1}, {64, 32, 1}, [](const ThreadCtx&) {}),
               precondition_error);
}

TEST_F(LaunchTest, GuardedKernelCoversExactProblem) {
  // The Fig. 3 idiom: grid overshoots, an if-guard trims to m x n.
  constexpr std::size_t kM = 45;
  constexpr std::size_t kN = 70;
  const Dim3 block{32, 32, 1};
  const Dim3 grid{blocks_for(kN, 32), blocks_for(kM, 32), 1};
  std::vector<int> touched(kM * kN, 0);
  launch(ctx_, grid, block, [&](const ThreadCtx& tc) {
    const std::size_t row = tc.global_y();
    const std::size_t col = tc.global_x();
    if (row < kM && col < kN) touched[row * kN + col] += 1;
  });
  for (std::size_t i = 0; i < touched.size(); ++i) EXPECT_EQ(touched[i], 1) << i;
  // Launched threads exceed the problem (the overshoot the guard hides).
  EXPECT_GT(ctx_.counters().threads_executed, kM * kN);
}

TEST_F(LaunchTest, HostParallelLaunchMatchesSerial) {
  constexpr std::size_t kN = 64;
  std::vector<double> serial_out(kN * kN, 0.0);
  std::vector<double> parallel_out(kN * kN, 0.0);
  auto kernel_into = [&](std::vector<double>& out) {
    return [&out](const ThreadCtx& tc) {
      const std::size_t i = tc.global_y();
      const std::size_t j = tc.global_x();
      if (i < kN && j < kN) {
        out[i * kN + j] = static_cast<double>(i) * 1000.0 + static_cast<double>(j);
      }
    };
  };
  launch(ctx_, {blocks_for(kN, 16), blocks_for(kN, 16), 1}, {16, 16, 1},
         kernel_into(serial_out));
  simrt::ThreadsSpace host(4);
  launch(ctx_, host, {blocks_for(kN, 16), blocks_for(kN, 16), 1}, {16, 16, 1},
         kernel_into(parallel_out));
  EXPECT_EQ(serial_out, parallel_out);
}

TEST_F(LaunchTest, KernelSeesDeviceBuffers) {
  constexpr std::size_t kCount = 1024;
  std::vector<double> host(kCount);
  std::iota(host.begin(), host.end(), 0.0);
  DeviceBuffer<double> in(ctx_, kCount);
  DeviceBuffer<double> out(ctx_, kCount);
  in.copy_from_host(host);

  const double* src = in.data();
  double* dst = out.data();
  launch(ctx_, {blocks_for(kCount, 256), 1, 1}, {256, 1, 1}, [=](const ThreadCtx& tc) {
    const std::size_t i = tc.global_x();
    // portalint: ls-ptr-capture-ok(device-buffer pointer visibility is exactly what this test exercises)
    if (i < kCount) dst[i] = 2.0 * src[i];
  });

  std::vector<double> result(kCount);
  out.copy_to_host(result);
  for (std::size_t i = 0; i < kCount; ++i) EXPECT_EQ(result[i], 2.0 * host[i]);
}

// --- Cooperative kernels -------------------------------------------------

TEST_F(LaunchTest, CooperativeBarrierSemantics) {
  // Phase 1 writes shared memory; phase 2 reads what *other* lanes wrote.
  // Without barrier semantics between for_lanes calls this test fails.
  constexpr std::size_t kBlockSize = 64;
  const Dim3 grid{4, 1, 1};
  const Dim3 block{kBlockSize, 1, 1};
  std::vector<int> result(grid.volume() * kBlockSize, -1);
  int* out = result.data();

  launch_blocks(ctx_, grid, block, kBlockSize * sizeof(int), [&](BlockCtx& bc) {
    auto shared = bc.shared<int>(kBlockSize);
    bc.for_lanes([&](const ThreadCtx& tc) {
      shared[tc.thread_idx.x] = static_cast<int>(tc.thread_idx.x);
    });
    bc.for_lanes([&](const ThreadCtx& tc) {
      // Read the value written by the "opposite" lane.
      const std::size_t opposite = kBlockSize - 1 - tc.thread_idx.x;
      out[bc.block_idx().x * kBlockSize + tc.thread_idx.x] =
          shared[opposite];
    });
  });

  for (std::size_t b = 0; b < grid.volume(); ++b) {
    for (std::size_t t = 0; t < kBlockSize; ++t) {
      EXPECT_EQ(result[b * kBlockSize + t], static_cast<int>(kBlockSize - 1 - t));
    }
  }
}

TEST_F(LaunchTest, SharedMemoryIsPerBlock) {
  // Blocks must not see each other's shared memory.
  const Dim3 grid{8, 1, 1};
  const Dim3 block{4, 1, 1};
  std::vector<int> observed(grid.volume(), -1);
  int* out = observed.data();
  launch_blocks(ctx_, grid, block, sizeof(int), [&](BlockCtx& bc) {
    auto flag = bc.shared<int>(1);
    bc.for_lanes([&](const ThreadCtx& tc) {
      if (tc.thread_idx.x == 0) flag[0] = static_cast<int>(bc.block_idx().x);
    });
    bc.for_lanes([&](const ThreadCtx& tc) {
      if (tc.thread_idx.x == 1) out[bc.block_idx().x] = flag[0];
    });
  });
  for (std::size_t b = 0; b < grid.volume(); ++b) {
    EXPECT_EQ(observed[b], static_cast<int>(b));
  }
}

TEST_F(LaunchTest, SharedMemoryZeroInitialized) {
  bool all_zero = true;
  launch_blocks(ctx_, {1, 1, 1}, {1, 1, 1}, 64, [&](BlockCtx& bc) {
    auto bytes = bc.shared<std::uint8_t>(64);
    bc.for_lanes([&](const ThreadCtx&) {
      // portalint: ls-capture-write-ok(1x1x1 block: a single lane runs this body)
      for (auto v : bytes) all_zero = all_zero && v == 0;
    });
  });
  EXPECT_TRUE(all_zero);
}

TEST_F(LaunchTest, OversizedSharedMemoryRejected) {
  const std::size_t too_much = ctx_.spec().shared_mem_per_block + 1;
  EXPECT_THROW(launch_blocks(ctx_, {1, 1, 1}, {32, 1, 1}, too_much, [](BlockCtx&) {}),
               precondition_error);
}

TEST_F(LaunchTest, ThreeDimensionalBlocksCovered) {
  const Dim3 grid{2, 2, 2};
  const Dim3 block{4, 4, 4};  // 64 threads
  std::vector<std::atomic<int>> hits(grid.volume() * block.volume());
  launch(ctx_, grid, block, [&](const ThreadCtx& tc) {
    const std::size_t block_linear =
        (tc.block_idx.z * tc.grid_dim.y + tc.block_idx.y) * tc.grid_dim.x + tc.block_idx.x;
    const std::size_t lane =
        (tc.thread_idx.z * tc.block_dim.y + tc.thread_idx.y) * tc.block_dim.x +
        tc.thread_idx.x;
    hits[block_linear * block.volume() + lane].fetch_add(1);
  });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST_F(LaunchTest, GlobalZIndexComputed) {
  std::size_t max_z = 0;
  launch(ctx_, {1, 1, 3}, {1, 1, 2}, [&](const ThreadCtx& tc) {
    // portalint: ls-capture-write-ok(gpusim lanes run in-order on the host thread; racy on real devices)
    max_z = std::max(max_z, tc.global_z());
  });
  EXPECT_EQ(max_z, 2u * 2u + 1u);  // blockIdx.z=2, threadIdx.z=1
}

TEST_F(LaunchTest, SharedCarveOutBoundsChecked) {
  launch_blocks(ctx_, {1, 1, 1}, {1, 1, 1}, 16, [&](BlockCtx& bc) {
    EXPECT_NO_THROW(bc.shared<int>(4));
    EXPECT_THROW(bc.shared<int>(5), precondition_error);
    EXPECT_THROW(bc.shared<int>(2, 13), precondition_error);  // misaligned offset
  });
}

}  // namespace
}  // namespace portabench::gpusim
