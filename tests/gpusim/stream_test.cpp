// Tests for streams and events.
#include "gpusim/stream.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace portabench::gpusim {
namespace {

class StreamTest : public ::testing::Test {
 protected:
  DeviceContext ctx_{GpuSpec::a100()};
};

TEST_F(StreamTest, ClockAdvancesByModeledTime) {
  Stream s(ctx_);
  EXPECT_EQ(s.now(), 0.0);
  s.enqueue(0.5, [] {});
  s.enqueue(0.25, [] {});
  EXPECT_DOUBLE_EQ(s.now(), 0.75);
  EXPECT_EQ(s.operations(), 2u);
}

TEST_F(StreamTest, OperationsRunEagerlyInOrder) {
  Stream s(ctx_);
  std::vector<int> order;
  s.enqueue(0.1, [&] { order.push_back(1); });
  s.enqueue(0.1, [&] { order.push_back(2); });
  s.enqueue(0.1, [&] { order.push_back(3); });
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST_F(StreamTest, NegativeDurationRejected) {
  Stream s(ctx_);
  EXPECT_THROW(s.enqueue(-1.0, [] {}), precondition_error);
}

TEST_F(StreamTest, EventRecordsCompletionTime) {
  Stream s(ctx_);
  s.enqueue(1.0, [] {});
  Event e;
  EXPECT_FALSE(e.recorded());
  s.record(e);
  EXPECT_TRUE(e.recorded());
  EXPECT_DOUBLE_EQ(e.timestamp(), 1.0);
}

TEST_F(StreamTest, EventElapsed) {
  Stream s(ctx_);
  Event start;
  Event stop;
  s.record(start);
  s.enqueue(2.5, [] {});
  s.record(stop);
  EXPECT_DOUBLE_EQ(Event::elapsed(start, stop), 2.5);
}

TEST_F(StreamTest, ElapsedRequiresRecordedEvents) {
  Event a;
  Event b;
  EXPECT_THROW(Event::elapsed(a, b), precondition_error);
  EXPECT_THROW(a.timestamp(), precondition_error);
}

TEST_F(StreamTest, CrossStreamWaitJumpsClock) {
  Stream compute(ctx_);
  Stream copy(ctx_);
  copy.enqueue(3.0, [] {});  // long transfer
  Event transfer_done;
  copy.record(transfer_done);
  compute.enqueue(1.0, [] {});
  compute.wait(transfer_done);
  EXPECT_DOUBLE_EQ(compute.now(), 3.0);  // stalled until the copy lands
  compute.enqueue(1.0, [] {});
  EXPECT_DOUBLE_EQ(compute.now(), 4.0);
}

TEST_F(StreamTest, OverlapBeatsSerialization) {
  // The Section II transfer-overlap discussion, in miniature: two streams
  // overlap a 3s copy with 3s of compute; one stream serializes to 6s.
  Stream serial(ctx_);
  serial.enqueue(3.0, [] {});
  serial.enqueue(3.0, [] {});
  Stream copy(ctx_);
  Stream compute(ctx_);
  copy.enqueue(3.0, [] {});
  compute.enqueue(3.0, [] {});
  const double overlapped = std::max(copy.now(), compute.now());
  EXPECT_DOUBLE_EQ(serial.now(), 6.0);
  EXPECT_DOUBLE_EQ(overlapped, 3.0);
}

TEST_F(StreamTest, SynchronizeReturnsCompletionTime) {
  Stream s(ctx_);
  s.enqueue(0.7, [] {});
  EXPECT_DOUBLE_EQ(s.synchronize(), 0.7);
}

}  // namespace
}  // namespace portabench::gpusim
