// Tests for streams and events, in both execution modes: eager (inline)
// and async (worker-backed in-order queue).
#include "gpusim/stream.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <vector>

#include "common/error.hpp"
#include "portacheck/hooks.hpp"

namespace portabench::gpusim {
namespace {

class StreamTest : public ::testing::Test {
 protected:
  DeviceContext ctx_{GpuSpec::a100()};
};

TEST_F(StreamTest, ClockAdvancesByModeledTime) {
  Stream s(ctx_);
  EXPECT_EQ(s.now(), 0.0);
  s.enqueue(0.5, [] {});
  s.enqueue(0.25, [] {});
  EXPECT_DOUBLE_EQ(s.now(), 0.75);
  EXPECT_EQ(s.operations(), 2u);
}

TEST_F(StreamTest, OperationsRunEagerlyInOrder) {
  Stream s(ctx_);
  std::vector<int> order;
  s.enqueue(0.1, [&] { order.push_back(1); });
  s.enqueue(0.1, [&] { order.push_back(2); });
  s.enqueue(0.1, [&] { order.push_back(3); });
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST_F(StreamTest, NegativeDurationRejected) {
  Stream s(ctx_);
  EXPECT_THROW(s.enqueue(-1.0, [] {}), precondition_error);
}

TEST_F(StreamTest, EventRecordsCompletionTime) {
  Stream s(ctx_);
  s.enqueue(1.0, [] {});
  Event e;
  EXPECT_FALSE(e.recorded());
  s.record(e);
  EXPECT_TRUE(e.recorded());
  EXPECT_DOUBLE_EQ(e.timestamp(), 1.0);
}

TEST_F(StreamTest, EventElapsed) {
  Stream s(ctx_);
  Event start;
  Event stop;
  s.record(start);
  s.enqueue(2.5, [] {});
  s.record(stop);
  EXPECT_DOUBLE_EQ(Event::elapsed(start, stop), 2.5);
}

TEST_F(StreamTest, ElapsedRequiresRecordedEvents) {
  Event a;
  Event b;
  EXPECT_THROW(Event::elapsed(a, b), precondition_error);
  EXPECT_THROW(a.timestamp(), precondition_error);
}

TEST_F(StreamTest, CrossStreamWaitJumpsClock) {
  Stream compute(ctx_);
  Stream copy(ctx_);
  copy.enqueue(3.0, [] {});  // long transfer
  Event transfer_done;
  copy.record(transfer_done);
  compute.enqueue(1.0, [] {});
  compute.wait(transfer_done);
  EXPECT_DOUBLE_EQ(compute.now(), 3.0);  // stalled until the copy lands
  compute.enqueue(1.0, [] {});
  EXPECT_DOUBLE_EQ(compute.now(), 4.0);
}

TEST_F(StreamTest, OverlapBeatsSerialization) {
  // The Section II transfer-overlap discussion, in miniature: two streams
  // overlap a 3s copy with 3s of compute; one stream serializes to 6s.
  Stream serial(ctx_);
  serial.enqueue(3.0, [] {});
  serial.enqueue(3.0, [] {});
  Stream copy(ctx_);
  Stream compute(ctx_);
  copy.enqueue(3.0, [] {});
  compute.enqueue(3.0, [] {});
  const double overlapped = std::max(copy.now(), compute.now());
  EXPECT_DOUBLE_EQ(serial.now(), 6.0);
  EXPECT_DOUBLE_EQ(overlapped, 3.0);
}

TEST_F(StreamTest, SynchronizeReturnsCompletionTime) {
  Stream s(ctx_);
  s.enqueue(0.7, [] {});
  EXPECT_DOUBLE_EQ(s.synchronize(), 0.7);
}

TEST_F(StreamTest, ElapsedReversedArgumentsRejected) {
  Stream s(ctx_);
  Event early;
  s.record(early);
  s.enqueue(1.0);
  Event late;
  s.record(late);
  EXPECT_DOUBLE_EQ(Event::elapsed(early, late), 1.0);
  EXPECT_THROW(Event::elapsed(late, early), precondition_error);  // stop before start
}

TEST_F(StreamTest, WaitOnUnrecordedEventRejected) {
  Stream s(ctx_);
  Event never;
  EXPECT_THROW(s.wait(never), precondition_error);
  EXPECT_THROW(never.synchronize(), precondition_error);
  EXPECT_FALSE(never.query());
}

TEST_F(StreamTest, TimeOnlyEnqueueAdvancesClock) {
  Stream s(ctx_);
  s.enqueue(0.25);
  s.enqueue(0.5);
  EXPECT_DOUBLE_EQ(s.now(), 0.75);
  EXPECT_EQ(s.operations(), 2u);
}

TEST_F(StreamTest, SanitizedRunsForceEagerMode) {
  Stream s(ctx_, StreamMode::kAsync);
  if (portacheck::active()) {
    // The sanitized tier needs the permuted serial schedule to stay
    // serial: async construction degrades to eager.
    EXPECT_EQ(s.mode(), StreamMode::kEager);
  } else {
    EXPECT_EQ(s.mode(), StreamMode::kAsync);
  }
  s.synchronize();
}

TEST_F(StreamTest, AsyncOperationsRunInOrder) {
  std::vector<int> order;
  Stream s(ctx_, StreamMode::kAsync);
  s.enqueue(0.1, [&] { order.push_back(1); });
  s.enqueue(0.1, [&] { order.push_back(2); });
  s.enqueue(0.1, [&] { order.push_back(3); });
  s.synchronize();  // drains the worker: order is safe to read after
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST_F(StreamTest, AsyncClockIsMonotoneAndMatchesEager) {
  // The modeled timeline is advanced at enqueue time in program order, so
  // both modes produce identical, monotone timestamps.
  Stream eager(ctx_, StreamMode::kEager);
  Stream async(ctx_, StreamMode::kAsync);
  double prev = 0.0;
  for (const double dt : {0.5, 0.0, 1.25, 0.125}) {
    const double te = eager.enqueue(dt);
    const double ta = async.enqueue(dt);
    EXPECT_DOUBLE_EQ(ta, te);
    EXPECT_GE(ta, prev);  // monotone even while the worker still runs
    prev = ta;
  }
  EXPECT_DOUBLE_EQ(async.synchronize(), eager.now());
}

TEST_F(StreamTest, AsyncEventCompletesByRealExecution) {
  Stream s(ctx_, StreamMode::kAsync);
  std::atomic<bool> op_ran{false};
  s.enqueue(1.0, [&] { op_ran.store(true, std::memory_order_release); });
  Event e;
  s.record(e);
  e.synchronize();  // blocks until the worker reaches the record marker
  EXPECT_TRUE(e.query());
  EXPECT_TRUE(op_ran.load(std::memory_order_acquire));  // in-order: op before marker
  EXPECT_DOUBLE_EQ(e.timestamp(), 1.0);
  s.synchronize();
}

TEST_F(StreamTest, MultiStreamWaitChainOrdersRealExecution) {
  // producer -> relay -> consumer, chained through events: the consumer's
  // op must observe both upstream writes even though all three streams
  // execute on independent worker threads.
  Stream producer(ctx_, StreamMode::kAsync);
  Stream relay(ctx_, StreamMode::kAsync);
  Stream consumer(ctx_, StreamMode::kAsync);

  std::atomic<int> stage{0};
  producer.enqueue(2.0, [&] {
    int expected = 0;
    stage.compare_exchange_strong(expected, 1, std::memory_order_acq_rel);
  });
  Event produced;
  producer.record(produced);

  relay.wait(produced);
  relay.enqueue(0.5, [&] {
    int expected = 1;
    stage.compare_exchange_strong(expected, 2, std::memory_order_acq_rel);
  });
  Event relayed;
  relay.record(relayed);

  consumer.wait(relayed);
  int observed = -1;
  consumer.enqueue(0.25, [&] { observed = stage.load(std::memory_order_acquire); });
  consumer.synchronize();

  EXPECT_EQ(observed, 2);  // both upstream ops really ran first
  // Modeled timeline: the chain serializes to 2.0 + 0.5 + 0.25.
  EXPECT_DOUBLE_EQ(consumer.now(), 2.75);
}

TEST_F(StreamTest, RecordedEventOutlivesReRecordAndStream) {
  Event e;
  {
    Stream s(ctx_, StreamMode::kAsync);
    s.enqueue(1.5);
    s.record(e);
    Event again;
    s.enqueue(1.0);
    s.record(again);  // re-record does not disturb the first event
    s.synchronize();
  }  // stream destroyed: the event's shared state survives
  EXPECT_TRUE(e.recorded());
  EXPECT_TRUE(e.query());
  EXPECT_DOUBLE_EQ(e.timestamp(), 1.5);
  e.synchronize();
}

TEST_F(StreamTest, AsyncErrorSurfacesAtSynchronize) {
  Stream s(ctx_, StreamMode::kAsync);
  if (s.mode() != StreamMode::kAsync) GTEST_SKIP() << "sanitized run: eager only";
  s.enqueue(0.1, [] { throw std::runtime_error("bad op"); });
  s.enqueue(0.1, [] {});  // later ops still run; the first error is kept
  EXPECT_THROW(s.synchronize(), std::runtime_error);
  EXPECT_NO_THROW(s.synchronize());  // error reported once
}

TEST_F(StreamTest, EagerWaitCompletesImmediately) {
  Stream a(ctx_);
  Stream b(ctx_);
  a.enqueue(2.0);
  Event e;
  a.record(e);
  b.wait(e);  // eager stream waits inline; event already done
  EXPECT_DOUBLE_EQ(b.now(), 2.0);
}

}  // namespace
}  // namespace portabench::gpusim
