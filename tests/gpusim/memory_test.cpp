// Tests for DeviceBuffer and transfer accounting.
#include "gpusim/memory.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "common/error.hpp"

namespace portabench::gpusim {
namespace {

class DeviceBufferTest : public ::testing::Test {
 protected:
  DeviceContext ctx_{GpuSpec::a100()};
};

TEST_F(DeviceBufferTest, AllocationTracked) {
  {
    DeviceBuffer<double> buf(ctx_, 1000);
    EXPECT_EQ(buf.size(), 1000u);
    EXPECT_EQ(ctx_.bytes_in_use(), 8000u);
  }
  EXPECT_EQ(ctx_.bytes_in_use(), 0u);  // RAII free
}

TEST_F(DeviceBufferTest, RoundTripPreservesData) {
  std::vector<float> host(256);
  std::iota(host.begin(), host.end(), 0.0f);
  DeviceBuffer<float> buf(ctx_, 256);
  buf.copy_from_host(host);
  std::vector<float> back(256, -1.0f);
  buf.copy_to_host(back);
  EXPECT_EQ(host, back);
}

TEST_F(DeviceBufferTest, TransferBytesCounted) {
  std::vector<int> host(100, 7);
  DeviceBuffer<int> buf(ctx_, 100);
  buf.copy_from_host(host);
  buf.copy_from_host(host);
  buf.copy_to_host(host);
  EXPECT_EQ(ctx_.counters().bytes_h2d, 800u);
  EXPECT_EQ(ctx_.counters().bytes_d2h, 400u);
}

TEST_F(DeviceBufferTest, SizeMismatchRejected) {
  std::vector<int> small(50);
  DeviceBuffer<int> buf(ctx_, 100);
  EXPECT_THROW(buf.copy_from_host(small), precondition_error);
  EXPECT_THROW(buf.copy_to_host(small), precondition_error);
}

TEST_F(DeviceBufferTest, MoveTransfersOwnership) {
  DeviceBuffer<int> a(ctx_, 64);
  int* p = a.data();
  DeviceBuffer<int> b(std::move(a));
  EXPECT_EQ(b.data(), p);
  EXPECT_EQ(ctx_.bytes_in_use(), 64u * sizeof(int));  // freed exactly once at scope exit
}

TEST_F(DeviceBufferTest, MoveAssignFreesTarget) {
  DeviceBuffer<int> a(ctx_, 64);
  DeviceBuffer<int> b(ctx_, 128);
  EXPECT_EQ(ctx_.bytes_in_use(), (64u + 128u) * sizeof(int));
  b = std::move(a);
  EXPECT_EQ(ctx_.bytes_in_use(), 64u * sizeof(int));
}

TEST_F(DeviceBufferTest, ZeroClears) {
  std::vector<int> host(32, 9);
  DeviceBuffer<int> buf(ctx_, 32);
  buf.copy_from_host(host);
  buf.zero();
  std::vector<int> back(32, -1);
  buf.copy_to_host(back);
  for (int v : back) EXPECT_EQ(v, 0);
}

TEST_F(DeviceBufferTest, FreedBufferReadsEmpty) {
  // Regression: free() used to return the bytes to the device's
  // accounting but leave the storage alive, so a freed buffer still
  // presented a non-empty span over memory the device had reclaimed.
  DeviceBuffer<int> buf(ctx_, 64);
  buf.free();
  EXPECT_EQ(buf.size(), 0u);
  EXPECT_EQ(buf.data(), nullptr);
  EXPECT_TRUE(buf.span().empty());
  EXPECT_EQ(ctx_.bytes_in_use(), 0u);
}

TEST_F(DeviceBufferTest, DoubleFreeRejected) {
  DeviceBuffer<int> buf(ctx_, 64);
  buf.free();
  EXPECT_THROW(buf.free(), precondition_error);
}

TEST_F(DeviceBufferTest, MovedFromBufferReadsEmpty) {
  // Same contract for the moved-from state: size and data must agree.
  DeviceBuffer<int> a(ctx_, 64);
  DeviceBuffer<int> b(std::move(a));
  EXPECT_EQ(a.size(), 0u);
  EXPECT_EQ(a.data(), nullptr);
  EXPECT_THROW(a.free(), precondition_error);  // nothing left to free
  DeviceBuffer<int> c(ctx_, 32);
  c = std::move(b);
  EXPECT_EQ(b.size(), 0u);
  EXPECT_EQ(b.data(), nullptr);
  EXPECT_EQ(ctx_.bytes_in_use(), 64u * sizeof(int));  // only c's allocation lives
}

TEST_F(DeviceBufferTest, DeviceOomSurfacesAtAllocation) {
  GpuSpec tiny = GpuSpec::a100();
  tiny.global_mem_bytes = 1000;
  DeviceContext small_ctx(tiny);
  EXPECT_THROW(DeviceBuffer<double>(small_ctx, 200), precondition_error);
}

}  // namespace
}  // namespace portabench::gpusim
