// Regression tests for stream error recovery and device-buffer/arena
// reuse after a failed batch: an error stashed at synchronize() must not
// poison the next batch enqueued on the same stream, and the serving
// layer's arenas must be reusable across an errored flush.
#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "gpusim/device.hpp"
#include "gpusim/memory.hpp"
#include "gpusim/stream.hpp"
#include "serve/engine.hpp"
#include "serve/serial.hpp"

namespace portabench::gpusim {
namespace {

class StreamRecoveryTest : public ::testing::Test {
 protected:
  DeviceContext ctx_{GpuSpec::a100()};
};

TEST_F(StreamRecoveryTest, StashedErrorSurfacesOnceThenStreamIsClean) {
  Stream s(ctx_, StreamMode::kAsync);
  s.enqueue(0.0, [] { throw std::runtime_error("batch fault"); });
  EXPECT_THROW(s.synchronize(), std::runtime_error);
  // The stash is consumed: the stream is clean again.
  EXPECT_NO_THROW(s.synchronize());
}

TEST_F(StreamRecoveryTest, WorkEnqueuedAfterErrorStillRuns) {
  Stream s(ctx_, StreamMode::kAsync);
  std::vector<int> ran;
  s.enqueue(0.0, [] { throw std::runtime_error("batch fault"); });
  s.enqueue(0.0, [&] { ran.push_back(1); });
  EXPECT_THROW(s.synchronize(), std::runtime_error);

  // Re-enqueue on the same stream whose prior batch errored: the new
  // batch must run and synchronize cleanly.
  s.enqueue(0.0, [&] { ran.push_back(2); });
  EXPECT_NO_THROW(s.synchronize());
  EXPECT_EQ(ran, (std::vector<int>{1, 2}));
}

TEST_F(StreamRecoveryTest, BackToBackErrorsEachSurfaceExactlyOnce) {
  Stream s(ctx_, StreamMode::kAsync);
  s.enqueue(0.0, [] { throw std::runtime_error("first"); });
  EXPECT_THROW(s.synchronize(), std::runtime_error);
  s.enqueue(0.0, [] { throw std::runtime_error("second"); });
  EXPECT_THROW(s.synchronize(), std::runtime_error);
  EXPECT_NO_THROW(s.synchronize());
}

TEST_F(StreamRecoveryTest, EagerStreamRecoversIdentically) {
  Stream s(ctx_, StreamMode::kEager);
  EXPECT_THROW(s.enqueue(0.0, [] { throw std::runtime_error("fault"); }),
               std::runtime_error);
  int ran = 0;
  s.enqueue(0.0, [&] { ran = 1; });
  EXPECT_NO_THROW(s.synchronize());
  EXPECT_EQ(ran, 1);
}

// The serving-layer shape of the same bug: a shard's batch errors (fail
// injection), and the *next* batch re-enqueued on that shard's stream —
// reusing the same arena slab — must complete with bitwise-correct
// results and no carried-over failure.
TEST_F(StreamRecoveryTest, ServeShardSurvivesErroredBatchAndReusesArena) {
  using namespace portabench::serve;

  std::vector<JobResult> results;
  ServeConfig cfg;
  cfg.shards = 1;  // one stream: the second batch reuses the errored one
  cfg.batch_jobs = 8;
  cfg.on_complete = [&](const JobResult& r) { results.push_back(r); };
  // The entire first batch fails; later batches are healthy.
  cfg.fail_injection = [](const JobDesc& d) { return d.id < 8; };
  ServeEngine engine(cfg);

  const auto job = [](std::uint64_t id) {
    JobDesc d;
    d.id = id;
    d.kind = JobKind::kGemm;
    d.frontend = Frontend::kTiled;
    d.precision = Precision::kDouble;
    d.n = 10;
    d.seed = 0xCAFEull + id;
    return d;
  };

  std::vector<JobDesc> batch2;
  for (std::uint64_t id = 0; id < 8; ++id) {
    ASSERT_EQ(engine.try_submit(job(id)), AdmitError::kNone);
  }
  engine.drain();  // absorbs the stashed batch_error

  ServeStats st = engine.stats();
  EXPECT_EQ(st.failed, 8u);
  EXPECT_EQ(st.batch_errors, 1u);

  for (std::uint64_t id = 8; id < 16; ++id) {
    batch2.push_back(job(id));
    ASSERT_EQ(engine.try_submit(batch2.back()), AdmitError::kNone);
  }
  engine.drain();

  st = engine.stats();
  EXPECT_EQ(st.completed, 8u);
  EXPECT_EQ(st.failed, 8u);
  EXPECT_EQ(st.batch_errors, 1u) << "healthy batch must not inherit the error";
  ASSERT_EQ(results.size(), 16u);
  for (const auto& d : batch2) {
    const auto it = std::find_if(results.begin(), results.end(),
                                 [&](const JobResult& r) { return r.id == d.id; });
    ASSERT_NE(it, results.end());
    EXPECT_EQ(it->status, JobStatus::kOk);
    EXPECT_EQ(it->checksum, run_serial(d).checksum) << "job " << d.id;
  }
}

TEST_F(StreamRecoveryTest, CountersResetPreservesLiveMemory) {
  DeviceBuffer<double> buf(ctx_, 128);
  const DeviceCounters before = ctx_.counters();
  EXPECT_EQ(before.live_allocations, 1u);
  EXPECT_EQ(ctx_.bytes_in_use(), 128 * sizeof(double));
  ctx_.reset_counters();
  const DeviceCounters after = ctx_.counters();
  EXPECT_EQ(after.bytes_allocated, 0u);
  EXPECT_EQ(after.live_allocations, 1u) << "reset must not forget live buffers";
  EXPECT_EQ(after.peak_bytes_allocated, 128 * sizeof(double))
      << "peak restarts from resident memory, not zero";
  EXPECT_EQ(ctx_.bytes_in_use(), 128 * sizeof(double));
}

TEST_F(StreamRecoveryTest, FreeAfterCountersResetBalances) {
  {
    DeviceBuffer<double> buf(ctx_, 64);
    ctx_.reset_counters();
    // Destruction after the reset must balance, not trip the
    // live-allocation precondition.
  }
  const DeviceCounters after = ctx_.counters();
  EXPECT_EQ(after.live_allocations, 0u);
  EXPECT_EQ(ctx_.bytes_in_use(), 0u);
}

}  // namespace
}  // namespace portabench::gpusim
