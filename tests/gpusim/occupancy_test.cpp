// Tests for the occupancy calculator.
#include "gpusim/occupancy.hpp"

#include "gpusim/device.hpp"

#include <gtest/gtest.h>

#include <string>

#include "common/error.hpp"

namespace portabench::gpusim {
namespace {

TEST(Occupancy, FullOccupancyWith1024Blocks) {
  // 1024-thread blocks, light resources: 2 blocks fill 2048 threads/SM.
  const GpuSpec spec = GpuSpec::a100();
  KernelResources k{1024, 16, 0};
  const Occupancy occ = compute_occupancy(spec, k);
  EXPECT_EQ(occ.active_blocks_per_sm, 2u);
  EXPECT_DOUBLE_EQ(occ.fraction, 1.0);
  EXPECT_STREQ(occ.limiter, "threads");
}

TEST(Occupancy, PaperBlockConfig32x32) {
  // The paper's 32x32 = 1024-thread blocks with the naive GEMM's ~32
  // registers/thread: register-limited on the A100.
  const GpuSpec spec = GpuSpec::a100();
  KernelResources k{1024, 32, 0};
  const Occupancy occ = compute_occupancy(spec, k);
  // 65536 regs / (32 * 1024) = 2 blocks -> still full occupancy.
  EXPECT_EQ(occ.active_blocks_per_sm, 2u);
  EXPECT_DOUBLE_EQ(occ.fraction, 1.0);
}

TEST(Occupancy, RegisterLimited) {
  const GpuSpec spec = GpuSpec::a100();
  KernelResources k{256, 128, 0};  // heavy register usage
  const Occupancy occ = compute_occupancy(spec, k);
  // by_threads = 8, by_regs = 65536/(128*256) = 2.
  EXPECT_EQ(occ.active_blocks_per_sm, 2u);
  EXPECT_STREQ(occ.limiter, "registers");
  EXPECT_DOUBLE_EQ(occ.fraction, 0.25);
}

TEST(Occupancy, SharedMemoryLimited) {
  const GpuSpec spec = GpuSpec::a100();
  KernelResources k{128, 16, 48 * 1024};
  const Occupancy occ = compute_occupancy(spec, k);
  // 164 KiB / 48 KiB = 3 blocks; by_threads would allow 16.
  EXPECT_EQ(occ.active_blocks_per_sm, 3u);
  EXPECT_STREQ(occ.limiter, "shared");
}

TEST(Occupancy, BlockCountLimited) {
  const GpuSpec spec = GpuSpec::a100();
  KernelResources k{32, 8, 0};  // tiny blocks
  const Occupancy occ = compute_occupancy(spec, k);
  // by_threads = 2048/32 = 64, capped at max_blocks_per_sm = 32.
  EXPECT_EQ(occ.active_blocks_per_sm, 32u);
  EXPECT_STREQ(occ.limiter, "blocks");
  EXPECT_DOUBLE_EQ(occ.fraction, 0.5);
}

TEST(Occupancy, WarpGranularityRoundsUp) {
  const GpuSpec spec = GpuSpec::a100();
  KernelResources k33{33, 8, 0};  // 33 threads occupy 2 warps
  KernelResources k64{64, 8, 0};
  const Occupancy o33 = compute_occupancy(spec, k33);
  const Occupancy o64 = compute_occupancy(spec, k64);
  EXPECT_EQ(o33.active_blocks_per_sm, o64.active_blocks_per_sm);
}

TEST(Occupancy, AmdWavefrontGranularity) {
  const GpuSpec spec = GpuSpec::mi250x_gcd();
  KernelResources k{65, 8, 0};  // 65 threads -> 2 wavefronts of 64 = 128 slots
  const Occupancy occ = compute_occupancy(spec, k);
  EXPECT_EQ(occ.active_blocks_per_sm,
            std::min<std::size_t>(spec.max_threads_per_sm / 128, spec.max_blocks_per_sm));
}

TEST(Occupancy, InvalidBlockYieldsZero) {
  const GpuSpec spec = GpuSpec::a100();
  EXPECT_EQ(compute_occupancy(spec, {0, 32, 0}).active_blocks_per_sm, 0u);
  EXPECT_EQ(compute_occupancy(spec, {2048, 32, 0}).active_blocks_per_sm, 0u);
  EXPECT_STREQ(compute_occupancy(spec, {0, 32, 0}).limiter, "none");
}

TEST(Occupancy, FractionAlwaysInUnitInterval) {
  const GpuSpec spec = GpuSpec::a100();
  for (std::size_t tpb : {32u, 64u, 100u, 256u, 512u, 1024u}) {
    for (std::size_t regs : {8u, 32u, 64u, 255u}) {
      const Occupancy occ = compute_occupancy(spec, {tpb, regs, 0});
      EXPECT_GE(occ.fraction, 0.0);
      EXPECT_LE(occ.fraction, 1.0);
    }
  }
}

TEST(Waves, CountsFullDeviceRounds) {
  const GpuSpec spec = GpuSpec::a100();
  Occupancy occ = compute_occupancy(spec, {1024, 16, 0});  // 2 blocks/SM
  // 2 * 108 = 216 concurrent blocks.
  EXPECT_DOUBLE_EQ(waves_for(spec, occ, 216), 1.0);
  EXPECT_DOUBLE_EQ(waves_for(spec, occ, 217), 2.0);
  EXPECT_DOUBLE_EQ(waves_for(spec, occ, 432), 2.0);
}

TEST(Waves, ZeroOccupancyRejected) {
  const GpuSpec spec = GpuSpec::a100();
  Occupancy zero;
  EXPECT_THROW(waves_for(spec, zero, 100), precondition_error);
}

}  // namespace
}  // namespace portabench::gpusim
