// Tests for cooperative block-level reduce and scan.
#include "gpusim/block_primitives.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "primitives/op.hpp"

namespace portabench::gpusim {
namespace {

class BlockPrimitives : public ::testing::TestWithParam<std::size_t> {
 protected:
  DeviceContext ctx_{GpuSpec::a100()};
};

TEST_P(BlockPrimitives, ReduceSumsLaneIds) {
  const std::size_t lanes = GetParam();
  double total = -1.0;
  launch_blocks(ctx_, {1, 1, 1}, {lanes, 1, 1}, lanes * sizeof(double), [&](BlockCtx& bc) {
    auto scratch = bc.shared<double>(lanes);
    // portalint: ls-capture-write-ok(block_reduce_sum broadcasts; every lane stores the identical reduced value)
    total = block_reduce_sum<double>(bc, scratch, [](const ThreadCtx& tc) {
      return static_cast<double>(tc.lane_in_block());
    });
  });
  const double expected = static_cast<double>(lanes * (lanes - 1)) / 2.0;
  EXPECT_DOUBLE_EQ(total, expected);
}

TEST_P(BlockPrimitives, ExclusiveScanMatchesReference) {
  const std::size_t lanes = GetParam();
  std::vector<long> result(lanes, -1);
  launch_blocks(ctx_, {1, 1, 1}, {lanes, 1, 1}, 2 * lanes * sizeof(long), [&](BlockCtx& bc) {
    auto scratch = bc.shared<long>(2 * lanes);
    block_exclusive_scan<long>(bc, scratch, [](const ThreadCtx& tc) {
      return static_cast<long>(tc.lane_in_block() + 1);  // values 1..lanes
    });
    bc.for_lanes([&](const ThreadCtx& tc) {
      result[tc.lane_in_block()] = scratch[tc.lane_in_block()];
    });
  });
  long running = 0;
  for (std::size_t i = 0; i < lanes; ++i) {
    EXPECT_EQ(result[i], running) << "lane " << i;
    running += static_cast<long>(i + 1);
  }
}

TEST_P(BlockPrimitives, ReduceMaxEqualsLeftFold) {
  const std::size_t lanes = GetParam();
  const auto value = [](std::size_t lane) {
    return static_cast<long>((lane * 2654435761u) % 1000);
  };
  long got = -1;
  launch_blocks(ctx_, {1, 1, 1}, {lanes, 1, 1}, lanes * sizeof(long), [&](BlockCtx& bc) {
    auto scratch = bc.shared<long>(lanes);
    // portalint: ls-capture-write-ok(block_reduce broadcasts; every lane stores the identical reduced value)
    got = block_reduce(bc, scratch, primitives::MaxOp<long>{},
                       [&](const ThreadCtx& tc) { return value(tc.lane_in_block()); });
  });
  long want = value(0);
  for (std::size_t i = 1; i < lanes; ++i) want = std::max(want, value(i));
  EXPECT_EQ(got, want);
}

TEST_P(BlockPrimitives, ScanNonCommutativeOpKeepsLaneOrder) {
  // Affine composition is associative but NOT commutative: the scan is
  // correct only if every combine keeps the earlier lane on the left.
  const std::size_t lanes = GetParam();
  using Aff = primitives::Affine<long>;
  const auto value = [](std::size_t lane) {
    return Aff{static_cast<long>(lane % 3 + 1), static_cast<long>(lane % 5) - 2};
  };
  std::vector<Aff> got(lanes);
  launch_blocks(ctx_, {1, 1, 1}, {lanes, 1, 1}, 2 * lanes * sizeof(Aff),
                [&](BlockCtx& bc) {
                  auto scratch = bc.shared<Aff>(2 * lanes);
                  block_exclusive_scan(bc, scratch, primitives::AffineComposeOp<long>{},
                                       [&](const ThreadCtx& tc) {
                                         return value(tc.lane_in_block());
                                       });
                  bc.for_lanes([&](const ThreadCtx& tc) {
                    got[tc.lane_in_block()] = scratch[tc.lane_in_block()];
                  });
                });
  const primitives::AffineComposeOp<long> op;
  Aff run = op.identity();
  for (std::size_t i = 0; i < lanes; ++i) {
    EXPECT_TRUE(got[i] == run) << "lane " << i << ": {" << got[i].mul << ","
                               << got[i].add << "} vs {" << run.mul << "," << run.add
                               << "}";
    run = op(run, value(i));
  }
}

TEST_P(BlockPrimitives, InclusiveScanMatchesReference) {
  const std::size_t lanes = GetParam();
  std::vector<long> got(lanes, -1);
  launch_blocks(ctx_, {1, 1, 1}, {lanes, 1, 1}, 2 * lanes * sizeof(long),
                [&](BlockCtx& bc) {
                  auto scratch = bc.shared<long>(2 * lanes);
                  block_inclusive_scan(bc, scratch, primitives::SumOp<long>{},
                                       [](const ThreadCtx& tc) {
                                         return static_cast<long>(tc.lane_in_block() + 1);
                                       });
                  bc.for_lanes([&](const ThreadCtx& tc) {
                    got[tc.lane_in_block()] = scratch[tc.lane_in_block()];
                  });
                });
  long run = 0;
  for (std::size_t i = 0; i < lanes; ++i) {
    run += static_cast<long>(i + 1);
    EXPECT_EQ(got[i], run) << "lane " << i;
  }
}

TEST_P(BlockPrimitives, HillisBaselineMatchesBlellochOnExactOps) {
  const std::size_t lanes = GetParam();
  const auto value = [](std::size_t lane) {
    return static_cast<long>((lane * 48271u) % 97) - 48;
  };
  std::vector<long> blelloch(lanes), hillis(lanes);
  launch_blocks(ctx_, {1, 1, 1}, {lanes, 1, 1}, 2 * lanes * sizeof(long),
                [&](BlockCtx& bc) {
                  auto scratch = bc.shared<long>(2 * lanes);
                  block_exclusive_scan(bc, scratch, primitives::SumOp<long>{},
                                       [&](const ThreadCtx& tc) {
                                         return value(tc.lane_in_block());
                                       });
                  bc.for_lanes([&](const ThreadCtx& tc) {
                    blelloch[tc.lane_in_block()] = scratch[tc.lane_in_block()];
                  });
                });
  launch_blocks(ctx_, {1, 1, 1}, {lanes, 1, 1}, 2 * lanes * sizeof(long),
                [&](BlockCtx& bc) {
                  auto scratch = bc.shared<long>(2 * lanes);
                  block_exclusive_scan_hillis(bc, scratch, primitives::SumOp<long>{},
                                              [&](const ThreadCtx& tc) {
                                                return value(tc.lane_in_block());
                                              });
                  bc.for_lanes([&](const ThreadCtx& tc) {
                    hillis[tc.lane_in_block()] = scratch[tc.lane_in_block()];
                  });
                });
  EXPECT_EQ(blelloch, hillis);
}

INSTANTIATE_TEST_SUITE_P(LaneCounts, BlockPrimitives,
                         ::testing::Values(1, 2, 3, 7, 8, 31, 32, 33, 64, 100, 256));

TEST(BlockPrimitivesMulti, ReducePerBlockIndependent) {
  DeviceContext ctx(GpuSpec::a100());
  constexpr std::size_t kLanes = 64;
  std::vector<double> totals(4, 0.0);
  launch_blocks(ctx, {4, 1, 1}, {kLanes, 1, 1}, kLanes * sizeof(double), [&](BlockCtx& bc) {
    auto scratch = bc.shared<double>(kLanes);
    totals[bc.block_idx().x] = block_reduce_sum<double>(bc, scratch, [&](const ThreadCtx&) {
      return static_cast<double>(bc.block_idx().x + 1);
    });
  });
  for (std::size_t b = 0; b < 4; ++b) {
    EXPECT_DOUBLE_EQ(totals[b], static_cast<double>((b + 1) * kLanes));
  }
}

TEST(BlockPrimitivesMulti, Reduce2DBlockLinearizesLanes) {
  DeviceContext ctx(GpuSpec::a100());
  double total = -1.0;
  launch_blocks(ctx, {1, 1, 1}, {8, 4, 1}, 32 * sizeof(double), [&](BlockCtx& bc) {
    auto scratch = bc.shared<double>(32);
    // portalint: ls-capture-write-ok(block_reduce_sum broadcasts; every lane stores the identical reduced value)
    total = block_reduce_sum<double>(bc, scratch,
                                     [](const ThreadCtx&) { return 1.0; });
  });
  EXPECT_DOUBLE_EQ(total, 32.0);
}

TEST(BlockPrimitivesMulti, DotProductKernel) {
  // A full dot-product kernel built from the primitive: per-block partial
  // sums, finalized on the host — the canonical reduction pattern.
  DeviceContext ctx(GpuSpec::a100());
  constexpr std::size_t kN = 1000;
  constexpr std::size_t kLanes = 128;
  std::vector<double> x(kN);
  std::vector<double> y(kN);
  for (std::size_t i = 0; i < kN; ++i) {
    x[i] = 1.0 + static_cast<double>(i % 7);
    y[i] = 2.0 - static_cast<double>(i % 3);
  }
  const std::size_t blocks = blocks_for(kN, kLanes);
  std::vector<double> partial(blocks, 0.0);

  launch_blocks(ctx, {blocks, 1, 1}, {kLanes, 1, 1}, kLanes * sizeof(double),
                [&](BlockCtx& bc) {
                  auto scratch = bc.shared<double>(kLanes);
                  partial[bc.block_idx().x] =
                      block_reduce_sum<double>(bc, scratch, [&](const ThreadCtx& tc) {
                        const std::size_t i = tc.global_x();
                        return i < kN ? x[i] * y[i] : 0.0;
                      });
                });
  const double device_dot = std::accumulate(partial.begin(), partial.end(), 0.0);
  const double host_dot = std::inner_product(x.begin(), x.end(), y.begin(), 0.0);
  EXPECT_NEAR(device_dot, host_dot, 1e-9 * std::abs(host_dot));
}

TEST(BlockPrimitivesMulti, ScratchTooSmallRejected) {
  DeviceContext ctx(GpuSpec::a100());
  launch_blocks(ctx, {1, 1, 1}, {32, 1, 1}, 64 * sizeof(double), [&](BlockCtx& bc) {
    auto small = bc.shared<double>(16);
    EXPECT_THROW(block_reduce_sum<double>(bc, small, [](const ThreadCtx&) { return 1.0; }),
                 precondition_error);
    auto scan_small = bc.shared<double>(33);
    EXPECT_THROW(
        block_exclusive_scan<double>(bc, scan_small, [](const ThreadCtx&) { return 1.0; }),
        precondition_error);
  });
}

}  // namespace
}  // namespace portabench::gpusim
