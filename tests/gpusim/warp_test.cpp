// Tests for warp-level shuffle / ballot / vote collectives.
//
// Each collective is checked against a direct host model of the CUDA
// semantics (__shfl_down_sync / __shfl_xor_sync / __ballot_sync), over
// ragged block sizes and sub-warp widths; the sanitized tier re-runs
// these under permuted lane schedules, pinning the two-region lowering.
#include "gpusim/warp.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

namespace portabench::gpusim {
namespace {

class WarpShuffle : public ::testing::TestWithParam<std::size_t> {
 protected:
  DeviceContext ctx_{GpuSpec::a100()};
};

TEST_P(WarpShuffle, ShflDownMatchesModel) {
  const std::size_t lanes = GetParam();
  for (const std::size_t delta : {std::size_t{1}, std::size_t{2}, std::size_t{16}}) {
    std::vector<int> got(lanes, -1);
    std::vector<char> got_valid(lanes, 0);
    launch_blocks(ctx_, {1, 1, 1}, {lanes, 1, 1}, lanes * sizeof(int),
                  [&](BlockCtx& bc) {
                    auto scratch = bc.shared<int>(lanes);
                    warp_shfl_down(
                        bc, scratch, delta,
                        [](const ThreadCtx& tc) {
                          return static_cast<int>(tc.lane_in_block() * 10);
                        },
                        [&](const ThreadCtx& tc, int v, bool valid) {
                          got[tc.lane_in_block()] = v;
                          got_valid[tc.lane_in_block()] = valid ? 1 : 0;
                        });
                  });
    for (std::size_t lane = 0; lane < lanes; ++lane) {
      const std::size_t in_warp = lane % kWarpSize;
      const bool valid = in_warp + delta < kWarpSize && lane + delta < lanes;
      const std::size_t src = valid ? lane + delta : lane;
      EXPECT_EQ(got[lane], static_cast<int>(src * 10)) << "lane " << lane;
      EXPECT_EQ(got_valid[lane], valid ? 1 : 0) << "lane " << lane;
    }
  }
}

TEST_P(WarpShuffle, ShflXorMatchesModel) {
  const std::size_t lanes = GetParam();
  for (const std::size_t mask : {std::size_t{1}, std::size_t{4}, std::size_t{31}}) {
    std::vector<int> got(lanes, -1);
    launch_blocks(ctx_, {1, 1, 1}, {lanes, 1, 1}, lanes * sizeof(int),
                  [&](BlockCtx& bc) {
                    auto scratch = bc.shared<int>(lanes);
                    warp_shfl_xor(
                        bc, scratch, mask,
                        [](const ThreadCtx& tc) {
                          return static_cast<int>(tc.lane_in_block() + 1);
                        },
                        [&](const ThreadCtx& tc, int v, bool) {
                          got[tc.lane_in_block()] = v;
                        });
                  });
    for (std::size_t lane = 0; lane < lanes; ++lane) {
      const std::size_t in_warp = lane % kWarpSize;
      const std::size_t peer = lane - in_warp + (in_warp ^ mask);
      const std::size_t src = peer < lanes ? peer : lane;
      EXPECT_EQ(got[lane], static_cast<int>(src + 1)) << "lane " << lane;
    }
  }
}

TEST_P(WarpShuffle, BallotCollectsPredicateBits) {
  const std::size_t lanes = GetParam();
  std::vector<std::uint32_t> got(lanes, 0);
  launch_blocks(ctx_, {1, 1, 1}, {lanes, 1, 1}, lanes * sizeof(std::uint32_t),
                [&](BlockCtx& bc) {
                  auto scratch = bc.shared<std::uint32_t>(lanes);
                  warp_ballot(
                      bc, scratch,
                      [](const ThreadCtx& tc) { return tc.lane_in_block() % 3 == 0; },
                      [&](const ThreadCtx& tc, std::uint32_t mask) {
                        got[tc.lane_in_block()] = mask;
                      });
                });
  for (std::size_t lane = 0; lane < lanes; ++lane) {
    const std::size_t base = lane - lane % kWarpSize;
    std::uint32_t want = 0;
    for (std::size_t i = 0; base + i < lanes && i < kWarpSize; ++i) {
      if ((base + i) % 3 == 0) want |= std::uint32_t{1} << i;
    }
    EXPECT_EQ(got[lane], want) << "lane " << lane;
  }
}

TEST_P(WarpShuffle, AnyAndAllVotes) {
  const std::size_t lanes = GetParam();
  // Predicate true everywhere: any == all == true in every warp.
  std::vector<char> any_got(lanes, 0), all_got(lanes, 0);
  launch_blocks(ctx_, {1, 1, 1}, {lanes, 1, 1}, lanes * sizeof(std::uint32_t),
                [&](BlockCtx& bc) {
                  auto scratch = bc.shared<std::uint32_t>(lanes);
                  warp_all(
                      bc, scratch, [](const ThreadCtx&) { return true; },
                      [&](const ThreadCtx& tc, bool all) {
                        all_got[tc.lane_in_block()] = all ? 1 : 0;
                      });
                  warp_any(
                      bc, scratch, [](const ThreadCtx&) { return false; },
                      [&](const ThreadCtx& tc, bool any) {
                        any_got[tc.lane_in_block()] = any ? 1 : 0;
                      });
                });
  for (std::size_t lane = 0; lane < lanes; ++lane) {
    EXPECT_EQ(all_got[lane], 1) << "all-true vote failed at lane " << lane;
    EXPECT_EQ(any_got[lane], 0) << "any-false vote failed at lane " << lane;
  }
}

TEST_P(WarpShuffle, AnyDetectsSingleLane) {
  const std::size_t lanes = GetParam();
  // Exactly one hot lane: its warp votes any=true, every other warp
  // votes false.
  const std::size_t hot = lanes / 2;
  std::vector<char> got(lanes, 0);
  launch_blocks(ctx_, {1, 1, 1}, {lanes, 1, 1}, lanes * sizeof(std::uint32_t),
                [&](BlockCtx& bc) {
                  auto scratch = bc.shared<std::uint32_t>(lanes);
                  warp_any(
                      bc, scratch,
                      [hot](const ThreadCtx& tc) { return tc.lane_in_block() == hot; },
                      [&](const ThreadCtx& tc, bool any) {
                        got[tc.lane_in_block()] = any ? 1 : 0;
                      });
                });
  for (std::size_t lane = 0; lane < lanes; ++lane) {
    const bool same_warp = lane / kWarpSize == hot / kWarpSize;
    EXPECT_EQ(got[lane], same_warp ? 1 : 0) << "lane " << lane;
  }
}

INSTANTIATE_TEST_SUITE_P(LaneCounts, WarpShuffle,
                         ::testing::Values(1, 2, 7, 31, 32, 33, 47, 64, 100, 128));

TEST(WarpSubWidth, ShflDownAtWidthEight) {
  DeviceContext ctx(GpuSpec::a100());
  constexpr std::size_t kLanes = 24;
  constexpr std::size_t kWidth = 8;
  std::vector<int> got(kLanes, -1);
  launch_blocks(ctx, {1, 1, 1}, {kLanes, 1, 1}, kLanes * sizeof(int), [&](BlockCtx& bc) {
    auto scratch = bc.shared<int>(kLanes);
    warp_shfl_down(
        bc, scratch, 1,
        [](const ThreadCtx& tc) { return static_cast<int>(tc.lane_in_block()); },
        [&](const ThreadCtx& tc, int v, bool) { got[tc.lane_in_block()] = v; }, kWidth);
  });
  for (std::size_t lane = 0; lane < kLanes; ++lane) {
    const std::size_t in_warp = lane % kWidth;
    const std::size_t src = in_warp + 1 < kWidth ? lane + 1 : lane;
    EXPECT_EQ(got[lane], static_cast<int>(src)) << "lane " << lane;
  }
}

TEST(WarpSubWidth, BadWidthRejected) {
  DeviceContext ctx(GpuSpec::a100());
  launch_blocks(ctx, {1, 1, 1}, {4, 1, 1}, 4 * sizeof(int), [&](BlockCtx& bc) {
    auto scratch = bc.shared<int>(4);
    const auto value = [](const ThreadCtx&) { return 0; };
    const auto sink = [](const ThreadCtx&, int, bool) {};
    EXPECT_THROW(warp_shfl_down(bc, scratch, 1, value, sink, 3), precondition_error);
    EXPECT_THROW(warp_shfl_down(bc, scratch, 1, value, sink, 64), precondition_error);
    EXPECT_THROW(warp_shfl_down(bc, scratch, 1, value, sink, 0), precondition_error);
  });
}

TEST(WarpReduceLeaders, LeavesPerWarpTotals) {
  DeviceContext ctx(GpuSpec::a100());
  constexpr std::size_t kLanes = 100;  // ragged final warp of 4
  std::vector<long> scratch_out(kLanes, -1);
  launch_blocks(ctx, {1, 1, 1}, {kLanes, 1, 1}, kLanes * sizeof(long), [&](BlockCtx& bc) {
    auto scratch = bc.shared<long>(kLanes);
    struct Plus {
      long operator()(long a, long b) const { return a + b; }
      long identity() const { return 0; }
    };
    warp_reduce_leaders(bc, scratch, Plus{}, [](const ThreadCtx& tc) {
      return static_cast<long>(tc.lane_in_block() + 1);  // 1..lanes
    });
    bc.for_lanes([&](const ThreadCtx& tc) {
      scratch_out[tc.lane_in_block()] = scratch[tc.lane_in_block()];
    });
  });
  for (std::size_t w = 0; w < warps_in(kLanes); ++w) {
    const std::size_t lo = w * kWarpSize + 1;
    const std::size_t hi = std::min(kLanes, (w + 1) * kWarpSize);
    long want = 0;
    for (std::size_t v = lo; v <= hi; ++v) want += static_cast<long>(v);
    EXPECT_EQ(scratch_out[w * kWarpSize], want) << "warp " << w;
  }
}

}  // namespace
}  // namespace portabench::gpusim
