// Negative-path tests for gpusim: invalid launches, misaligned or
// oversized byte transfers, and double-free must surface as structured
// errors (precondition_error), never as UB — the simulator's analogue of
// CUDA error codes.
#include <gtest/gtest.h>

#include <vector>

#include "common/error.hpp"
#include "gpusim/launch.hpp"
#include "gpusim/memory.hpp"

namespace portabench::gpusim {
namespace {

class GpusimNegativeTest : public ::testing::Test {
 protected:
  DeviceContext ctx_{GpuSpec::a100()};
};

TEST_F(GpusimNegativeTest, ZeroVolumeGridRejected) {
  auto kernel = [](const ThreadCtx&) {};
  EXPECT_THROW(launch(ctx_, {0, 1, 1}, {32, 1, 1}, kernel), precondition_error);
  EXPECT_THROW(launch(ctx_, {4, 0, 1}, {32, 1, 1}, kernel), precondition_error);
}

TEST_F(GpusimNegativeTest, ZeroVolumeBlockRejected) {
  auto kernel = [](const ThreadCtx&) {};
  EXPECT_THROW(launch(ctx_, {1, 1, 1}, {0, 1, 1}, kernel), precondition_error);
}

TEST_F(GpusimNegativeTest, OversizedBlockRejected) {
  // 33 * 32 = 1056 > the A100's 1024 threads per block.
  auto kernel = [](const ThreadCtx&) {};
  EXPECT_THROW(launch(ctx_, {1, 1, 1}, {33, 32, 1}, kernel), precondition_error);
  // Launch counters must not record the failed launch.
  EXPECT_EQ(ctx_.counters().kernel_launches, 0u);
}

TEST_F(GpusimNegativeTest, CooperativeLaunchValidatesSharedMemory) {
  auto kernel = [](BlockCtx&) {};
  const std::size_t too_much = ctx_.spec().shared_mem_per_block + 1;
  EXPECT_THROW(launch_blocks(ctx_, {1, 1, 1}, {32, 1, 1}, too_much, kernel),
               precondition_error);
  EXPECT_THROW(launch_blocks(ctx_, {0, 1, 1}, {32, 1, 1}, 0, kernel), precondition_error);
}

TEST_F(GpusimNegativeTest, MisalignedByteCopyRejected) {
  DeviceBuffer<double> buf(ctx_, 16);
  std::vector<double> host(16, 1.0);
  // 12 bytes is not a whole number of doubles.
  EXPECT_THROW(buf.copy_from_host_bytes(host.data(), 12), precondition_error);
  EXPECT_THROW(buf.copy_to_host_bytes(host.data(), 12), precondition_error);
}

TEST_F(GpusimNegativeTest, OversizedByteCopyRejected) {
  DeviceBuffer<double> buf(ctx_, 16);
  std::vector<double> host(17, 1.0);
  EXPECT_THROW(buf.copy_from_host_bytes(host.data(), 17 * sizeof(double)),
               precondition_error);
  EXPECT_THROW(buf.copy_to_host_bytes(host.data(), 17 * sizeof(double)),
               precondition_error);
}

TEST_F(GpusimNegativeTest, PartialByteCopyWorksAndIsAccounted) {
  DeviceBuffer<double> buf(ctx_, 16);
  std::vector<double> host(4, 2.5);
  buf.copy_from_host_bytes(host.data(), 4 * sizeof(double));
  EXPECT_EQ(buf[3], 2.5);
  std::vector<double> back(4, 0.0);
  buf.copy_to_host_bytes(back.data(), 4 * sizeof(double));
  EXPECT_EQ(back, host);
  EXPECT_EQ(ctx_.counters().bytes_h2d, 32u);
  EXPECT_EQ(ctx_.counters().bytes_d2h, 32u);
}

TEST_F(GpusimNegativeTest, DoubleFreeRejected) {
  DeviceBuffer<float> buf(ctx_, 64);
  EXPECT_EQ(ctx_.bytes_in_use(), 256u);
  buf.free();
  EXPECT_EQ(ctx_.bytes_in_use(), 0u);
  EXPECT_THROW(buf.free(), precondition_error);  // cudaFree of a freed pointer
}

TEST_F(GpusimNegativeTest, UseAfterFreeTransfersRejected) {
  DeviceBuffer<int> buf(ctx_, 8);
  std::vector<int> host(8, 3);
  buf.free();
  EXPECT_THROW(buf.copy_from_host(host), precondition_error);
  EXPECT_THROW(buf.copy_to_host(host), precondition_error);
  EXPECT_THROW(buf.copy_from_host_bytes(host.data(), sizeof(int)), precondition_error);
}

TEST_F(GpusimNegativeTest, FreeOfDefaultOrMovedFromBufferRejected) {
  DeviceBuffer<int> empty;
  EXPECT_THROW(empty.free(), precondition_error);

  DeviceBuffer<int> a(ctx_, 8);
  DeviceBuffer<int> b(std::move(a));
  EXPECT_THROW(a.free(), precondition_error);  // NOLINT(bugprone-use-after-move)
  b.free();                                    // the moved-to owner frees once
  EXPECT_EQ(ctx_.bytes_in_use(), 0u);
}

}  // namespace
}  // namespace portabench::gpusim
