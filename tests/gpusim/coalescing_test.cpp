// Tests for the memory-coalescing analyzer.
#include "gpusim/coalescing.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace portabench::gpusim {
namespace {

TEST(Coalescing, UnitStrideIsIdeal) {
  // 32 lanes reading consecutive doubles: 256 bytes = 8 sectors, ideal.
  const auto r = analyze_warp_access(32, 8, [](std::size_t lane) { return lane * 8; });
  EXPECT_EQ(r.sectors, 8u);
  EXPECT_EQ(r.ideal_sectors, 8u);
  EXPECT_DOUBLE_EQ(r.expansion(), 1.0);
}

TEST(Coalescing, BroadcastBeatsIdeal) {
  // All lanes reading the same address touch one sector: expansion < 1.
  const auto r = analyze_warp_access(32, 8, [](std::size_t) { return 0; });
  EXPECT_EQ(r.sectors, 1u);
  EXPECT_LT(r.expansion(), 1.0);
}

TEST(Coalescing, LargeStrideFullyScattered) {
  // Stride of 8192 bytes: one sector per lane.
  const auto r =
      analyze_warp_access(32, 8, [](std::size_t lane) { return lane * 8192; });
  EXPECT_EQ(r.sectors, 32u);
  EXPECT_DOUBLE_EQ(r.expansion(), 4.0);  // 32 sectors vs 8 ideal
}

TEST(Coalescing, MisalignedAccessSpillsOneSector) {
  // Consecutive doubles starting 4 bytes into a sector: one extra sector.
  const auto r =
      analyze_warp_access(32, 8, [](std::size_t lane) { return 4 + lane * 8; });
  EXPECT_EQ(r.sectors, 9u);
}

TEST(Coalescing, InvalidArgsRejected) {
  EXPECT_THROW(analyze_warp_access(0, 8, [](std::size_t) { return 0; }), precondition_error);
  EXPECT_THROW(analyze_warp_access(4, 0, [](std::size_t) { return 0; }), precondition_error);
}

TEST(GemmCoalescing, PaperBlockIsCoalesced) {
  // Fig. 3a mapping with 32x32 blocks: B and C unit-stride, A broadcast.
  const auto spec = GpuSpec::a100();
  const auto r = analyze_gemm_coalescing(spec, {32, 32, 1}, 8192, 8, /*row_on_x=*/false);
  EXPECT_DOUBLE_EQ(r.b_read.expansion(), 1.0);
  EXPECT_DOUBLE_EQ(r.c_write.expansion(), 1.0);
  EXPECT_LT(r.a_read.expansion(), 1.0);  // warp shares one row: broadcast
  EXPECT_LT(r.weighted_expansion(8192), 1.0);
}

TEST(GemmCoalescing, KokkosTransposedMappingScatters) {
  // Row on threadIdx.x: consecutive lanes hit rows n elements apart in
  // B-row-major C, and A reads lose the broadcast.
  const auto spec = GpuSpec::a100();
  const auto r = analyze_gemm_coalescing(spec, {256, 1, 1}, 8192, 8, /*row_on_x=*/true);
  EXPECT_DOUBLE_EQ(r.c_write.expansion(), 4.0);   // one sector per lane
  EXPECT_DOUBLE_EQ(r.a_read.expansion(), 4.0);    // A[row*k] scattered too
  EXPECT_LT(r.b_read.expansion(), 1.0);           // B[col] broadcast (col fixed)
  EXPECT_GT(r.weighted_expansion(8192), 1.5);     // net: far worse than Fig. 3a
}

TEST(GemmCoalescing, AmdWavefrontWidth) {
  // 64-lane wavefronts double the bytes per request; unit stride still
  // coalesces perfectly.
  const auto spec = GpuSpec::mi250x_gcd();
  const auto r = analyze_gemm_coalescing(spec, {64, 4, 1}, 4096, 8, false);
  EXPECT_EQ(r.b_read.lanes, 64u);
  EXPECT_DOUBLE_EQ(r.b_read.expansion(), 1.0);
}

TEST(GemmCoalescing, Fp32PacksTwicePerSector) {
  const auto spec = GpuSpec::a100();
  const auto fp64 = analyze_gemm_coalescing(spec, {32, 32, 1}, 4096, 8, false);
  const auto fp32 = analyze_gemm_coalescing(spec, {32, 32, 1}, 4096, 4, false);
  EXPECT_EQ(fp32.b_read.sectors * 2, fp64.b_read.sectors);
}

TEST(GemmCoalescing, ExpansionExplainsKokkosGap) {
  // The modeled Kokkos A100 efficiency (0.26) is of the order of the
  // inverse weighted expansion of its transposed mapping — the mechanism
  // check, not a calibration (the traits carry the exact value).
  const auto spec = GpuSpec::a100();
  const auto kokkos = analyze_gemm_coalescing(spec, {256, 1, 1}, 8192, 8, true);
  const auto paper = analyze_gemm_coalescing(spec, {32, 32, 1}, 8192, 8, false);
  const double relative = paper.weighted_expansion(8192) / kokkos.weighted_expansion(8192);
  EXPECT_GT(relative, 0.1);
  EXPECT_LT(relative, 0.5);  // brackets the observed 0.26
}

}  // namespace
}  // namespace portabench::gpusim
