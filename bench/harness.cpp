#include "harness.hpp"

#include <cstdlib>
#include <iostream>

#include "common/ascii_plot.hpp"
#include "common/cli.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "models/runner.hpp"
#include "perfmodel/predict.hpp"
#include "perfmodel/variability.hpp"

namespace portabench::bench {

namespace {

using models::make_runner;
using models::RunConfig;
using perfmodel::Family;
using perfmodel::Platform;

/// Step 1: functional verification of every plotted combination.
int verify_panel(Platform platform, Precision prec, const HarnessOptions& options) {
  int failures = 0;
  std::cout << "  functional verification (n=" << options.verify_n << ", "
            << options.verify_reps << " reps, first excluded as warm-up):\n";
  for (Family family : perfmodel::figure_families(platform, prec)) {
    auto runner = make_runner(platform, family);
    if (!runner) continue;
    RunConfig config;
    config.n = options.verify_n;
    config.precision = prec;

    RunStats stats(/*warmup=*/1);
    bool all_verified = true;
    double jit = 0.0;
    for (std::size_t rep = 0; rep < options.verify_reps; ++rep) {
      const auto result = runner->run(config);
      stats.add(result.host_seconds);
      all_verified = all_verified && result.verified;
      jit += result.jit_seconds;
    }
    // Variability band of the modeled target-machine timing (Section IV
    // reports most-likely values; the model's CV quantifies the band the
    // paper chose not to analyse exhaustively).
    const auto var_spec = perfmodel::VariabilitySpec::for_platform(platform);
    std::cout << "    " << runner->name() << ": "
              << (all_verified ? "OK" : "FAILED") << " (host "
              << Table::num(stats.summary().mean * 1e3, 2) << " ms/rep";
    if (jit > 0.0) std::cout << ", modeled JIT " << Table::num(jit, 2) << " s excluded";
    std::cout << ", modeled CV " << Table::num(var_spec.cv * 100.0, 1) << "%)\n";
    if (!all_verified) ++failures;
  }
  return failures;
}

/// Step 2 + 3: modeled series table and efficiency summary for one panel.
void print_panel_series(Platform platform, Precision prec, const HarnessOptions& options) {
  const auto families = perfmodel::figure_families(platform, prec);
  std::vector<std::string> headers{"n"};
  for (Family f : families) {
    headers.push_back(std::string(perfmodel::implementation_name(platform, f)) + " GFLOP/s");
  }
  Table table(std::move(headers));

  const auto sizes = perfmodel::standard_sizes(platform);
  for (std::size_t n : sizes) {
    std::vector<std::string> row{std::to_string(n)};
    for (Family f : families) {
      const auto pt = perfmodel::predict(platform, f, prec, n);
      row.push_back(pt ? Table::num(pt->gflops, 1) : "-");
    }
    table.add_row(std::move(row));
  }
  std::cout << (options.emit_csv ? table.to_csv() : table.to_markdown());

  // ASCII rendering of the panel (the figure itself).
  if (!options.emit_csv) {
    std::vector<PlotSeries> plot;
    for (Family f : families) {
      PlotSeries s;
      s.label = std::string(perfmodel::implementation_name(platform, f));
      for (std::size_t n : sizes) {
        const auto pt = perfmodel::predict(platform, f, prec, n);
        s.values.push_back(pt ? pt->gflops : 0.0);
      }
      plot.push_back(std::move(s));
    }
    std::vector<double> x_ticks(sizes.begin(), sizes.end());
    PlotOptions popt;
    popt.y_label = "GFLOP/s";
    popt.x_label = "matrix size n";
    std::cout << render_plot(plot, x_ticks, popt);
  }

  // Efficiency summary (only meaningful when a vendor reference exists
  // at this precision; FP16 panels are absolute-only, as in the paper).
  if (prec != Precision::kHalfIn) {
    std::cout << "  mean efficiency vs "
              << perfmodel::implementation_name(platform, Family::kVendor) << ": ";
    bool first = true;
    for (Family f : families) {
      if (f == Family::kVendor) continue;
      const auto sweep = perfmodel::predict_sweep(platform, f, prec);
      if (sweep.empty()) continue;
      std::vector<double> eff;
      for (const auto& pt : sweep) eff.push_back(pt.efficiency);
      if (!first) std::cout << ", ";
      std::cout << perfmodel::implementation_name(platform, f) << " "
                << Table::num(mean_of(eff), 3);
      first = false;
    }
    std::cout << "\n";
  }
}

}  // namespace

int run_figure(Platform platform, const std::string& figure_name,
               const std::vector<PanelSpec>& panels, const HarnessOptions& options) {
  std::cout << "=== " << figure_name << ": simple GEMM on " << perfmodel::name(platform)
            << " ===\n";
  std::cout << "(modeled curves; functional kernels verified on this host — see DESIGN.md)\n";
  int failures = 0;
  for (const auto& panel : panels) {
    std::cout << "\n--- " << panel.title << " ---\n";
    failures += verify_panel(platform, panel.precision, options);
    print_panel_series(platform, panel.precision, options);
  }
  std::cout << "\n" << figure_name << ": " << (failures == 0 ? "PASS" : "FAIL") << "\n";
  return failures;
}

HarnessOptions parse_options(int argc, const char* const* argv) {
  CliParser cli;
  cli.option("verify-n", "matrix size for functional verification", "48")
      .option("reps", "verification repetitions (first is warm-up)", "3")
      .flag("csv", "emit CSV instead of Markdown tables")
      .flag("help", "print this help and exit");
  try {
    cli.parse(argc, argv);
  } catch (const config_error& e) {
    std::cerr << e.what() << "\n" << cli.usage(argv[0]);
    std::exit(2);
  }
  if (cli.has("help")) {
    std::cout << cli.usage(argv[0]);
    std::exit(0);
  }
  HarnessOptions options;
  options.verify_n = static_cast<std::size_t>(cli.get_int("verify-n"));
  options.verify_reps = static_cast<std::size_t>(cli.get_int("reps"));
  options.emit_csv = cli.has("csv");
  return options;
}

}  // namespace portabench::bench
