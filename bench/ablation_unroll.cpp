// Ablation: inner-loop unroll factor (the paper's PTX finding).
//
// "The generated low-level PTX ... indicated a difference in unrolled
// loop instructions, 2 for CUDA.jl and 4 in the native CUDA" (Section
// IV-B).  The codegen model turns that observation into numbers: modeled
// sustained-issue efficiency vs unroll factor, the CUDA.jl/CUDA ratio it
// implies, and the CPU-side codegen factors for each frontend.
#include <iostream>

#include "common/table.hpp"
#include "perfmodel/codegen.hpp"
#include "perfmodel/predict.hpp"

int main() {
  using namespace portabench;
  using perfmodel::CodegenProfile;

  std::cout << "=== Ablation: inner-loop codegen (unroll / vectorization / checks) ===\n\n";

  std::cout << "GPU dependent-FMA pipeline vs unroll factor:\n";
  Table gpu({"unroll", "modeled issue efficiency", "vs unroll-4"});
  const double u4 = perfmodel::gpu_inner_loop_efficiency(CodegenProfile::vendor_gpu());
  for (int u : {1, 2, 4, 8}) {
    CodegenProfile p = CodegenProfile::vendor_gpu();
    p.unroll = u;
    const double eff = perfmodel::gpu_inner_loop_efficiency(p);
    gpu.add_row({std::to_string(u), Table::num(eff, 3), Table::num(eff / u4, 3)});
  }
  std::cout << gpu.to_markdown();
  std::cout << "\nCUDA.jl (unroll 2) vs native CUDA (unroll 4) modeled ratio: "
            << Table::num(perfmodel::julia_a100_unroll_ratio(), 3)
            << "  — paper Table III e_{A100} for Julia FP64: 0.867\n\n";

  std::cout << "CPU inner-loop codegen factors (EPYC 7A53):\n";
  const auto epyc = perfmodel::CpuSpec::epyc_7a53();
  Table cpu({"frontend", "unroll", "vector bits", "bounds checks", "efficiency"});
  struct Row {
    const char* label;
    CodegenProfile profile;
  };
  const Row rows[] = {
      {"C/OpenMP (-O3 -march=native)", CodegenProfile::vendor_cpu(epyc)},
      {"Julia @threads + @inbounds", CodegenProfile::julia_cpu(epyc)},
      {"Numba @njit(parallel, fastmath)", CodegenProfile::numba_cpu(epyc)},
  };
  for (const auto& row : rows) {
    cpu.add_row({row.label, std::to_string(row.profile.unroll),
                 std::to_string(row.profile.vector_bits),
                 row.profile.bounds_checked ? "yes" : "no",
                 Table::num(perfmodel::cpu_inner_loop_efficiency(row.profile, epyc), 3)});
  }
  std::cout << cpu.to_markdown();
  std::cout << "\nTakeaway: the Numba CPU gap decomposes into halved vector width plus\n"
               "checked indexing; Julia matches vendor codegen on this loop — the\n"
               "mechanistic story behind the calibrated Table III efficiencies.\n";
  return 0;
}
