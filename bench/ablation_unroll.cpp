// Ablation: inner-loop unroll factor (the paper's PTX finding).
//
// "The generated low-level PTX ... indicated a difference in unrolled
// loop instructions, 2 for CUDA.jl and 4 in the native CUDA" (Section
// IV-B).  The codegen model turns that observation into numbers: modeled
// sustained-issue efficiency vs unroll factor, the CUDA.jl/CUDA ratio it
// implies, and the CPU-side codegen factors for each frontend.
// The per-unroll efficiency numbers come from tune::modeled_unroll_*,
// the SAME functions the autotuner's gpu-unroll space minimizes — this
// artifact and the tuner objective cannot drift apart.
#include <cstring>
#include <iostream>

#include "bench_json.hpp"
#include "common/table.hpp"
#include "perfmodel/codegen.hpp"
#include "perfmodel/predict.hpp"
#include "tune/model_objectives.hpp"

int main(int argc, char** argv) {
  using namespace portabench;
  using perfmodel::CodegenProfile;

  std::string out_path = "BENCH_ablation_unroll.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::cerr << "usage: ablation_unroll [--out PATH]\n";
      return 2;
    }
  }

  std::cout << "=== Ablation: inner-loop codegen (unroll / vectorization / checks) ===\n\n";

  BenchArtifact artifact("ablation_unroll");
  JsonWriter& w = artifact.writer();

  std::cout << "GPU dependent-FMA pipeline vs unroll factor:\n";
  Table gpu({"unroll", "modeled issue efficiency", "vs unroll-4"});
  const double u4 = tune::modeled_unroll_efficiency(4);
  w.key("gpu_unroll");
  w.begin_array();
  for (int u : {1, 2, 4, 8}) {
    const double eff = tune::modeled_unroll_efficiency(u);
    gpu.add_row({std::to_string(u), Table::num(eff, 3), Table::num(eff / u4, 3)});
    w.begin_object();
    w.key("unroll");
    w.value(static_cast<long>(u));
    w.key("efficiency");
    w.value(eff);
    w.key("vs_unroll4");
    w.value(eff / u4);
    w.key("tuner_cost");
    w.value(tune::modeled_unroll_cost(u));
    w.end_object();
  }
  w.end_array();
  std::cout << gpu.to_markdown();
  std::cout << "\nCUDA.jl (unroll 2) vs native CUDA (unroll 4) modeled ratio: "
            << Table::num(perfmodel::julia_a100_unroll_ratio(), 3)
            << "  — paper Table III e_{A100} for Julia FP64: 0.867\n\n";

  std::cout << "CPU inner-loop codegen factors (EPYC 7A53):\n";
  const auto epyc = perfmodel::CpuSpec::epyc_7a53();
  Table cpu({"frontend", "unroll", "vector bits", "bounds checks", "efficiency"});
  struct Row {
    const char* label;
    CodegenProfile profile;
  };
  const Row rows[] = {
      {"C/OpenMP (-O3 -march=native)", CodegenProfile::vendor_cpu(epyc)},
      {"Julia @threads + @inbounds", CodegenProfile::julia_cpu(epyc)},
      {"Numba @njit(parallel, fastmath)", CodegenProfile::numba_cpu(epyc)},
  };
  for (const auto& row : rows) {
    cpu.add_row({row.label, std::to_string(row.profile.unroll),
                 std::to_string(row.profile.vector_bits),
                 row.profile.bounds_checked ? "yes" : "no",
                 Table::num(perfmodel::cpu_inner_loop_efficiency(row.profile, epyc), 3)});
  }
  std::cout << cpu.to_markdown();
  std::cout << "\nTakeaway: the Numba CPU gap decomposes into halved vector width plus\n"
               "checked indexing; Julia matches vendor codegen on this loop — the\n"
               "mechanistic story behind the calibrated Table III efficiencies.\n";

  w.key("julia_a100_unroll_ratio");
  w.value(perfmodel::julia_a100_unroll_ratio());
  w.key("cpu_factors");
  w.begin_array();
  for (const auto& row : rows) {
    w.begin_object();
    w.key("frontend");
    w.value(row.label);
    w.key("unroll");
    w.value(static_cast<long>(row.profile.unroll));
    w.key("vector_bits");
    w.value(static_cast<long>(row.profile.vector_bits));
    w.key("bounds_checked");
    w.value(row.profile.bounds_checked);
    w.key("efficiency");
    w.value(perfmodel::cpu_inner_loop_efficiency(row.profile, epyc));
    w.end_object();
  }
  w.end_array();
  return artifact.write(out_path);
}
