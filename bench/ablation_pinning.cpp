// Ablation: thread binding policy x NUMA topology.
//
// Section IV-A attributes part of Numba's CPU gap to the missing thread
// binding API ("this option is not available in the Python/Numba APIs").
// This bench isolates that design choice in the machine model: the same
// kernel under close / spread / none binding on the 4-NUMA EPYC vs the
// 1-NUMA Altra.
#include <iostream>

#include "common/table.hpp"
#include "perfmodel/machine_model.hpp"

int main() {
  using namespace portabench;
  using perfmodel::CpuMachineModel;
  using perfmodel::CpuSpec;
  using simrt::BindPolicy;

  std::cout << "=== Ablation: thread pinning policy (OMP_PROC_BIND / "
               "JULIA_EXCLUSIVE vs Numba's no-API) ===\n\n";

  const CpuMachineModel epyc(CpuSpec::epyc_7a53());
  const CpuMachineModel altra(CpuSpec::ampere_altra());

  for (std::size_t n : {4096u, 8192u, 16384u}) {
    Table t({"bind policy", "EPYC 7A53 (4 NUMA) GFLOP/s", "slowdown",
             "Altra (1 NUMA) GFLOP/s", "slowdown"});
    const double epyc_close =
        epyc.reference_time(Precision::kDouble, n, 64, BindPolicy::kClose).gflops;
    const double altra_close =
        altra.reference_time(Precision::kDouble, n, 80, BindPolicy::kClose).gflops;
    for (BindPolicy bind : {BindPolicy::kClose, BindPolicy::kSpread, BindPolicy::kNone}) {
      const double e = epyc.reference_time(Precision::kDouble, n, 64, bind).gflops;
      const double a = altra.reference_time(Precision::kDouble, n, 80, bind).gflops;
      t.add_row({std::string(simrt::name(bind)), Table::num(e, 1),
                 Table::num(epyc_close / e, 3), Table::num(a, 1),
                 Table::num(altra_close / a, 3)});
    }
    std::cout << "n = " << n << ":\n" << t.to_markdown() << "\n";
  }

  std::cout << "Takeaway: on the 1-NUMA Altra binding is performance-neutral; on the\n"
               "4-NUMA EPYC the unbound (Numba) case pays for remote DRAM traffic —\n"
               "consistent with Numba's larger CPU gap on Crusher (Table III: 0.550)\n"
               "than the pure-codegen gap would predict.\n";
  return 0;
}
