// Figure 5: Wombat multithreaded CPU performance (Ampere Altra, 80
// threads) — double (5a), single (5b), and the Julia half-precision panel
// (5c) that Section IV-A highlights as working seamlessly on Arm.
#include "harness.hpp"

int main(int argc, char** argv) {
  using namespace portabench;
  const auto options = bench::parse_options(argc, argv);
  return bench::run_figure(
      perfmodel::Platform::kWombatCpu, "Figure 5",
      {{"(a) double precision, 80 threads", Precision::kDouble},
       {"(b) single precision, 80 threads", Precision::kSingle},
       {"(c) half precision (FP16 inputs, FP32 accumulate)", Precision::kHalfIn}},
      options);
}
