// Dispatch microbenchmark: the cost of the simrt execution hot path.
//
// Measures what the paper's CPU figures implicitly contain — how cheaply
// the runtime forks, schedules, and joins a parallel region — and emits
// the numbers as machine-readable BENCH_dispatch.json so every PR has a
// perf trajectory to compare against (the CI bench-smoke step runs this
// binary with --quick and archives the JSON).
//
// Three sections:
//   small_region  launch+join latency for tiny extents on the Threads
//                 space, against an embedded copy of the pre-epoch-pool
//                 implementation (mutex + notify_all + condvar rendezvous
//                 per region) — the ratio is the dispatch speedup.
//   grain         dynamic-schedule chunk throughput at varying grain
//                 through the work-stealing queues.
//   reduce        parallel_reduce overhead, Serial vs Threads.
//
// Usage: micro_dispatch [--quick] [--threads N] [--out PATH]
#include <algorithm>
#include <condition_variable>
#include <cstring>
#include <functional>
#include <iostream>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench_json.hpp"
#include "common/table.hpp"
#include "common/timer.hpp"
#include "simrt/parallel.hpp"

namespace {

using namespace portabench;

// --- the pre-change pool, verbatim semantics --------------------------------
//
// A faithful copy of the condvar-per-region ThreadPool this PR replaced:
// every run() takes the mutex, bumps an epoch, notify_all()s the workers,
// and joins through a condvar rendezvous; workers sleep between regions.
// Kept here (not in src/) purely as the measurement baseline.
class LegacyThreadPool {
 public:
  explicit LegacyThreadPool(std::size_t num_threads) : num_threads_(num_threads) {
    workers_.reserve(num_threads - 1);
    for (std::size_t t = 1; t < num_threads; ++t) {
      workers_.emplace_back([this, t] { worker_loop(t); });
    }
  }

  LegacyThreadPool(const LegacyThreadPool&) = delete;
  LegacyThreadPool& operator=(const LegacyThreadPool&) = delete;

  ~LegacyThreadPool() {
    {
      std::unique_lock lock(mutex_);
      done_cv_.wait(lock, [this] { return task_ == nullptr && remaining_ == 0; });
      shutdown_ = true;
    }
    start_cv_.notify_all();
    for (auto& w : workers_) w.join();
  }

  [[nodiscard]] std::size_t size() const noexcept { return num_threads_; }

  void run(const std::function<void(std::size_t)>& task) {
    {
      std::lock_guard lock(mutex_);
      task_ = &task;
      remaining_ = num_threads_ - 1;
      ++epoch_;
    }
    start_cv_.notify_all();
    task(0);
    std::unique_lock lock(mutex_);
    done_cv_.wait(lock, [this] { return remaining_ == 0; });
    task_ = nullptr;
    done_cv_.notify_all();
  }

 private:
  void worker_loop(std::size_t thread_id) {
    std::uint64_t seen_epoch = 0;
    for (;;) {
      const std::function<void(std::size_t)>* task = nullptr;
      {
        std::unique_lock lock(mutex_);
        start_cv_.wait(lock, [&] { return shutdown_ || epoch_ != seen_epoch; });
        if (shutdown_) return;
        seen_epoch = epoch_;
        task = task_;
      }
      (*task)(thread_id);
      {
        std::lock_guard lock(mutex_);
        if (--remaining_ == 0) done_cv_.notify_all();
      }
    }
  }

  std::size_t num_threads_;
  // portalint: raw-thread-ok(LegacyThreadPool is the mutex/condvar comparison baseline the dispatch benchmarks measure simrt against)
  std::vector<std::thread> workers_;
  // portalint: raw-thread-ok(LegacyThreadPool is the mutex/condvar comparison baseline the dispatch benchmarks measure simrt against)
  std::mutex mutex_;
  std::condition_variable start_cv_;
  std::condition_variable done_cv_;
  const std::function<void(std::size_t)>* task_ = nullptr;
  std::uint64_t epoch_ = 0;
  std::size_t remaining_ = 0;
  bool shutdown_ = false;
};

// --- measurement ------------------------------------------------------------

struct Options {
  bool quick = false;
  std::size_t threads = 4;
  std::string out = "BENCH_dispatch.json";
};

/// Best-of-samples per-region latency in microseconds: `batch` regions
/// per sample, minimum over `samples` samples (min is the robust
/// statistic for latency on a noisy shared host).
template <class Region>
double region_latency_us(std::size_t samples, std::size_t batch, Region&& region) {
  double best = 1e30;
  for (std::size_t s = 0; s < samples; ++s) {
    Timer timer;
    for (std::size_t r = 0; r < batch; ++r) region();
    best = std::min(best, timer.seconds() / static_cast<double>(batch));
  }
  return best * 1e6;
}

struct SmallRegionRow {
  std::size_t extent;
  double new_us;
  double legacy_us;
  double speedup;
};

struct GrainRow {
  std::size_t chunk;  // 0 == heuristic default
  double region_us;
  double mitems_per_s;
};

struct ReduceRow {
  std::size_t extent;
  double serial_us;
  double threads_us;
  double overhead_x;
};

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      opt.quick = true;
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      opt.threads = static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      opt.out = argv[++i];
    } else {
      std::cerr << "usage: micro_dispatch [--quick] [--threads N] [--out PATH]\n";
      return 2;
    }
  }

  const std::size_t samples = opt.quick ? 5 : 9;
  const std::size_t batch = opt.quick ? 200 : 600;
  const std::size_t nt = std::max<std::size_t>(2, opt.threads);

  std::cout << "=== micro_dispatch: simrt region launch/join cost (host threads = "
            << nt << ") ===\n\n";

  simrt::ThreadsSpace space(nt);
  LegacyThreadPool legacy(nt);
  // portalint: raw-thread-ok(volatile sink keeps the timed region from being optimized away; not used for inter-thread signalling)
  volatile std::size_t sink = 0;  // defeats whole-region elision

  // --- small_region: launch+join latency, new pool vs legacy pool ----------
  std::vector<SmallRegionRow> small_rows;
  for (std::size_t extent : {std::size_t{1}, std::size_t{64}, std::size_t{256},
                             std::size_t{1024}}) {
    auto body = [&](std::size_t i) { sink = sink + i; };
    const double new_us = region_latency_us(samples, batch, [&] {
      simrt::parallel_for(space, simrt::RangePolicy(0, extent), body);
    });
    const double legacy_us = region_latency_us(samples, batch, [&] {
      legacy.run([&](std::size_t t) {
        const auto block = simrt::detail::static_block(extent, nt, t);
        for (std::size_t i = block.begin; i < block.end; ++i) body(i);
      });
    });
    small_rows.push_back({extent, new_us, legacy_us, legacy_us / new_us});
  }

  Table small_table({"extent", "new pool (us)", "legacy pool (us)", "speedup"});
  for (const auto& r : small_rows) {
    small_table.add_row({std::to_string(r.extent), Table::num(r.new_us, 3),
                         Table::num(r.legacy_us, 3), Table::num(r.speedup, 2)});
  }
  std::cout << "-- small-region launch+join latency (static schedule) --\n"
            << small_table.to_markdown() << "\n";

  // --- grain: dynamic chunk throughput through the steal queues -------------
  // portalint: tn-magic-tile-ok(bench workload extent, not a schedule knob)
  const std::size_t grain_extent = 1 << 16;
  std::vector<double> data(grain_extent, 1.0);
  std::vector<GrainRow> grain_rows;
  for (std::size_t chunk : {std::size_t{1}, std::size_t{8}, std::size_t{64},
                            std::size_t{512}, std::size_t{0}}) {
    const double us = region_latency_us(opt.quick ? 3 : 5, opt.quick ? 5 : 20, [&] {
      simrt::parallel_for(
          space, simrt::RangePolicy(0, grain_extent, simrt::Schedule::kDynamic, chunk),
          [&](std::size_t i) { data[i] = data[i] * 1.0000001 + 0.5; });
    });
    grain_rows.push_back({chunk, us, static_cast<double>(grain_extent) / us});
  }

  Table grain_table({"chunk", "region (us)", "Mitems/s"});
  for (const auto& r : grain_rows) {
    grain_table.add_row({r.chunk == 0 ? std::string("auto") : std::to_string(r.chunk),
                         Table::num(r.region_us, 1), Table::num(r.mitems_per_s, 1)});
  }
  std::cout << "-- dynamic-schedule throughput vs grain (extent = " << grain_extent
            << ", work-stealing queues) --\n"
            << grain_table.to_markdown() << "\n";

  // --- reduce: overhead of the threaded join vs serial ----------------------
  simrt::SerialSpace serial;
  std::vector<ReduceRow> reduce_rows;
  for (std::size_t extent : {std::size_t{1024}, std::size_t{65536}}) {
    double serial_sum = 0.0;
    double threads_sum = 0.0;
    auto body = [](std::size_t i, double& acc) { acc += static_cast<double>(i); };
    const double serial_us = region_latency_us(samples, opt.quick ? 50 : 200, [&] {
      simrt::parallel_reduce(serial, simrt::RangePolicy(0, extent), body, serial_sum);
    });
    const double threads_us = region_latency_us(samples, opt.quick ? 50 : 200, [&] {
      simrt::parallel_reduce(space, simrt::RangePolicy(0, extent), body, threads_sum);
    });
    if (serial_sum != threads_sum) {
      std::cerr << "FAILED: reduce mismatch at extent " << extent << "\n";
      return 1;
    }
    reduce_rows.push_back({extent, serial_us, threads_us, threads_us / serial_us});
  }

  Table reduce_table({"extent", "Serial (us)", "Threads (us)", "Threads/Serial"});
  for (const auto& r : reduce_rows) {
    reduce_table.add_row({std::to_string(r.extent), Table::num(r.serial_us, 2),
                          Table::num(r.threads_us, 2), Table::num(r.overhead_x, 2)});
  }
  std::cout << "-- parallel_reduce overhead --\n" << reduce_table.to_markdown() << "\n";

  // --- machine-readable artifact --------------------------------------------
  BenchArtifact artifact("micro_dispatch");
  JsonWriter& w = artifact.writer();
  w.key("host_threads");
  w.value(nt);
  w.key("quick");
  w.value(opt.quick);
  w.key("small_region");
  w.begin_array();
  for (const auto& r : small_rows) {
    w.begin_object();
    w.key("extent");
    w.value(r.extent);
    w.key("new_us");
    w.value(r.new_us);
    w.key("legacy_us");
    w.value(r.legacy_us);
    w.key("speedup");
    w.value(r.speedup);
    w.end_object();
  }
  w.end_array();
  w.key("grain");
  w.begin_array();
  for (const auto& r : grain_rows) {
    w.begin_object();
    w.key("chunk");
    w.value(r.chunk);
    w.key("region_us");
    w.value(r.region_us);
    w.key("mitems_per_s");
    w.value(r.mitems_per_s);
    w.end_object();
  }
  w.end_array();
  w.key("reduce");
  w.begin_array();
  for (const auto& r : reduce_rows) {
    w.begin_object();
    w.key("extent");
    w.value(r.extent);
    w.key("serial_us");
    w.value(r.serial_us);
    w.key("threads_us");
    w.value(r.threads_us);
    w.key("overhead_x");
    w.value(r.overhead_x);
    w.end_object();
  }
  w.end_array();
  return artifact.write(opt.out);
}
