// Export every figure's modeled series and Table III as one JSON document
// (stdout) for plotting / regression tracking.
//
// Schema:
// {
//   "figures": [ { "id": "fig4", "platform": "...", "panels": [
//       { "precision": "FP64", "sizes": [...],
//         "series": [ { "model": "...", "gflops": [...] } ] } ] } ],
//   "table3": [ { "family": "...", "precision": "...", "phi": x,
//                 "efficiencies": { "Epyc 7A53": x | null, ... } } ]
// }
#include <iostream>

#include "common/json.hpp"
#include "perfmodel/predict.hpp"
#include "portability/metric.hpp"

int main() {
  using namespace portabench;
  using perfmodel::Family;
  using perfmodel::Platform;

  JsonWriter w;
  w.begin_object();

  w.key("figures");
  w.begin_array();
  struct Fig {
    const char* id;
    Platform platform;
  };
  const Fig figs[] = {{"fig4", Platform::kCrusherCpu},
                      {"fig5", Platform::kWombatCpu},
                      {"fig6", Platform::kCrusherGpu},
                      {"fig7", Platform::kWombatGpu}};
  for (const auto& fig : figs) {
    w.begin_object();
    w.key("id");
    w.value(fig.id);
    w.key("platform");
    w.value(std::string(perfmodel::name(fig.platform)));
    w.key("panels");
    w.begin_array();
    for (Precision prec : kAllPrecisions) {
      const auto families = perfmodel::figure_families(fig.platform, prec);
      if (families.empty()) continue;
      w.begin_object();
      w.key("precision");
      w.value(std::string(name(prec)));
      w.key("sizes");
      w.begin_array();
      for (std::size_t n : perfmodel::standard_sizes(fig.platform)) w.value(n);
      w.end_array();
      w.key("series");
      w.begin_array();
      for (Family f : families) {
        const auto sweep = perfmodel::predict_sweep(fig.platform, f, prec);
        if (sweep.empty()) continue;
        w.begin_object();
        w.key("model");
        w.value(std::string(perfmodel::implementation_name(fig.platform, f)));
        w.key("gflops");
        w.begin_array();
        for (const auto& pt : sweep) w.value(pt.gflops);
        w.end_array();
        if (f != Family::kVendor && prec != Precision::kHalfIn) {
          w.key("efficiency");
          w.begin_array();
          for (const auto& pt : sweep) w.value(pt.efficiency);
          w.end_array();
        }
        w.end_object();
      }
      w.end_array();
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }
  w.end_array();

  w.key("table3");
  w.begin_array();
  for (const auto& fp : portability::build_table3()) {
    w.begin_object();
    w.key("family");
    w.value(std::string(perfmodel::name(fp.family)));
    w.key("precision");
    w.value(std::string(name(fp.precision)));
    w.key("phi");
    w.value(fp.phi);
    w.key("efficiencies");
    w.begin_object();
    for (const auto& e : fp.entries) {
      w.key(std::string(perfmodel::arch_label(e.platform)));
      if (e.supported) {
        w.value(e.efficiency);
      } else {
        w.null();
      }
    }
    w.end_object();
    w.end_object();
  }
  w.end_array();

  w.end_object();
  std::cout << w.str() << "\n";
  return 0;
}
