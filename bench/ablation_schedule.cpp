// Ablation: loop scheduling policy (measured on the host).
//
// The paper's CPU kernels inherit OpenMP's default static schedule; Kokkos
// and OpenMP both offer dynamic scheduling, which trades dispatch overhead
// for load balance.  GEMM rows are uniform, so static should win or tie —
// this bench *measures* that on the host runtime (like the bounds-check
// ablation, it is real timing, not modeling), on both a uniform and a
// deliberately imbalanced workload where dynamic earns its keep.
#include <benchmark/benchmark.h>

#include <vector>

#include "common/rng.hpp"
#include "simrt/parallel.hpp"

namespace {

using namespace portabench;
using simrt::RangePolicy;
using simrt::Schedule;

/// Uniform work: every iteration costs the same (the GEMM-row shape).
void BM_UniformWork(benchmark::State& state) {
  const auto schedule = static_cast<Schedule>(state.range(0));
  simrt::ThreadsSpace space(4);
  constexpr std::size_t kN = 2048;
  std::vector<double> data(kN, 1.0);
  for (auto _ : state) {
    simrt::parallel_for(space, RangePolicy(0, kN, schedule, 8), [&](std::size_t i) {
      double acc = data[i];
      for (int k = 0; k < 400; ++k) acc = acc * 1.0000001 + 1e-9;
      data[i] = acc;
    });
    benchmark::DoNotOptimize(data[0]);
  }
}
BENCHMARK(BM_UniformWork)
    ->Arg(static_cast<int>(Schedule::kStatic))
    ->Arg(static_cast<int>(Schedule::kDynamic))
    ->Unit(benchmark::kMicrosecond);

/// Triangular work: iteration i costs ~i (the imbalanced shape where a
/// static partition leaves the first thread idle half the time).
void BM_TriangularWork(benchmark::State& state) {
  const auto schedule = static_cast<Schedule>(state.range(0));
  simrt::ThreadsSpace space(4);
  constexpr std::size_t kN = 512;
  std::vector<double> data(kN, 1.0);
  for (auto _ : state) {
    simrt::parallel_for(space, RangePolicy(0, kN, schedule, 4), [&](std::size_t i) {
      double acc = data[i];
      for (std::size_t k = 0; k < 4 * i; ++k) acc = acc * 1.0000001 + 1e-9;
      data[i] = acc;
    });
    benchmark::DoNotOptimize(data[0]);
  }
}
BENCHMARK(BM_TriangularWork)
    ->Arg(static_cast<int>(Schedule::kStatic))
    ->Arg(static_cast<int>(Schedule::kDynamic))
    ->Unit(benchmark::kMicrosecond);

/// Dispatch overhead: an empty body isolates the scheduling machinery
/// (static block arithmetic vs the shared atomic chunk counter).
void BM_EmptyBodyDispatch(benchmark::State& state) {
  const auto schedule = static_cast<Schedule>(state.range(0));
  simrt::ThreadsSpace space(4);
  for (auto _ : state) {
    simrt::parallel_for(space, RangePolicy(0, 1 << 14, schedule, 16),
                        [&](std::size_t i) { benchmark::DoNotOptimize(i); });
  }
}
BENCHMARK(BM_EmptyBodyDispatch)
    ->Arg(static_cast<int>(Schedule::kStatic))
    ->Arg(static_cast<int>(Schedule::kDynamic))
    ->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
