// Device-wide primitives microbenchmark: reduce, scan, sort, histogram
// (src/primitives/) against their serial oracles and the std:: baselines
// they displace, with every comparison verified bitwise in-bench (the
// primitives' determinism contract says the schedule NEVER changes a
// result — a mismatch exits 1 regardless of gates).
//
// Sections:
//   reduce     device_reduce (fp sum + exact max) vs the serial oracle
//              and the plain std::accumulate loop, sweep over sizes
//   scan       device_exclusive_scan vs oracle and std::exclusive_scan,
//              plus the block-scan tree ablation: Blelloch (shipped) vs
//              the Hillis-Steele baseline it replaced, compared by exact
//              COMBINE COUNT (deterministic, host-independent)
//   sort       device_radix_sort_pairs vs the stable oracle, and the
//              host radix path (the serve ordering substrate) vs the
//              std::stable_sort permutation idiom it replaced
//   histogram  device_histogram vs the serial counting oracle
//   phi        Phi_M-style portability rows (Eq. 1): each primitive's
//              simulated throughput on the two GPU models (A100,
//              MI250X GCD), efficiency relative to the better one
//
// Gates (CI: release-bench):
//   --require-scan-combines X   Hillis/Blelloch combine ratio >= X
//                               (deterministic — gated on every host)
//   --require-sort X            host radix vs std::stable_sort speedup
//                               >= X (gated on big runners only)
//
// Usage: micro_primitives [--n N] [--samples K] [--quick]
//                         [--require-scan-combines X] [--require-sort X]
//                         [--out PATH]
#include <algorithm>
#include <cstring>
#include <iostream>
#include <numeric>
#include <string>
#include <vector>

#include "bench_json.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "common/timer.hpp"
#include "gpusim/block_primitives.hpp"
#include "portability/metric.hpp"
#include "primitives/histogram.hpp"
#include "primitives/reduce.hpp"
#include "primitives/scan.hpp"
#include "primitives/serial.hpp"
#include "primitives/sort.hpp"

namespace {

using namespace portabench;

struct Options {
  std::size_t n = 1u << 20;
  std::size_t samples = 3;
  bool quick = false;
  double require_scan_combines = 0.0;
  double require_sort = 0.0;
  std::string out = "BENCH_primitives.json";
};

template <class F>
double best_ms(std::size_t samples, F&& f) {
  double best = 1e300;
  for (std::size_t s = 0; s < samples; ++s) {
    Timer timer;
    f();
    best = std::min(best, timer.seconds() * 1e3);
  }
  return best;
}

std::vector<double> random_doubles(std::size_t n, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<double> v(n);
  for (auto& x : v) x = rng.uniform() - 0.5;
  return v;
}

/// Sum op that counts its own invocations — the tree-shape ablation
/// metric (combine count is exact and host-independent, unlike wall
/// time under the simulator).
struct CountingSum {
  long* combines;
  [[nodiscard]] long operator()(long a, long b) const {
    ++*combines;
    return a + b;
  }
  [[nodiscard]] long identity() const { return 0; }
};

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--n") == 0 && i + 1 < argc) {
      opt.n = static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--samples") == 0 && i + 1 < argc) {
      opt.samples = static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--quick") == 0) {
      opt.quick = true;
    } else if (std::strcmp(argv[i], "--require-scan-combines") == 0 && i + 1 < argc) {
      opt.require_scan_combines = std::strtod(argv[++i], nullptr);
    } else if (std::strcmp(argv[i], "--require-sort") == 0 && i + 1 < argc) {
      opt.require_sort = std::strtod(argv[++i], nullptr);
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      opt.out = argv[++i];
    } else {
      std::cerr << "usage: micro_primitives [--n N] [--samples K] [--quick]"
                   " [--require-scan-combines X] [--require-sort X] [--out PATH]\n";
      return 2;
    }
  }
  if (opt.quick) opt.n = std::min<std::size_t>(opt.n, 1u << 17);

  std::cout << "=== micro_primitives: device-wide primitives vs serial baselines ===\n\n";

  int failures = 0;
  gpusim::DeviceContext ctx(gpusim::GpuSpec::a100());

  BenchArtifact artifact("micro_primitives");
  JsonWriter& w = artifact.writer();
  w.key("n");
  w.value(opt.n);
  w.key("samples");
  w.value(opt.samples);

  // --- reduce ---------------------------------------------------------------
  struct ReduceRow {
    std::size_t n;
    double device_ms;
    double oracle_ms;
    double accumulate_ms;
    bool bitwise;
  };
  std::vector<ReduceRow> reduce_rows;
  for (const std::size_t n : {opt.n / 16, opt.n / 4, opt.n}) {
    const std::vector<double> in = random_doubles(n, 11 + n);
    const std::span<const double> s(in);
    const primitives::SumOp<double> sum;
    double got = 0, want = 0, plain = 0;
    const double device_ms =
        best_ms(opt.samples, [&] { got = primitives::device_reduce(ctx, s, sum); });
    const double oracle_ms =
        best_ms(opt.samples, [&] { want = primitives::reduce_oracle(s, sum); });
    const double acc_ms = best_ms(
        opt.samples, [&] { plain = std::accumulate(in.begin(), in.end(), 0.0); });
    (void)plain;  // different association by design; timed, not compared
    const bool bitwise = std::memcmp(&got, &want, sizeof(double)) == 0;
    if (!bitwise) {
      std::cerr << "FAILED: device_reduce(sum, n=" << n << ") differs from oracle\n";
      ++failures;
    }
    // Exact max must also equal the plain scalar fold, not just the oracle.
    const double dmax =
        primitives::device_reduce(ctx, s, primitives::MaxOp<double>{});
    const double smax = *std::max_element(in.begin(), in.end());
    if (std::memcmp(&dmax, &smax, sizeof(double)) != 0) {
      std::cerr << "FAILED: device_reduce(max, n=" << n << ") differs from std::max_element\n";
      ++failures;
    }
    reduce_rows.push_back({n, device_ms, oracle_ms, acc_ms, bitwise});
  }
  Table reduce_table({"n", "device (ms)", "oracle (ms)", "accumulate (ms)", "bitwise"});
  for (const auto& r : reduce_rows) {
    reduce_table.add_row({std::to_string(r.n), Table::num(r.device_ms, 3),
                          Table::num(r.oracle_ms, 3), Table::num(r.accumulate_ms, 3),
                          r.bitwise ? "yes" : "NO"});
  }
  std::cout << "-- device_reduce, double sum (device == oracle bit-for-bit; the\n"
               "   accumulate column uses a different association and is timing-only) --\n"
            << reduce_table.to_markdown() << "\n";

  // --- scan -----------------------------------------------------------------
  struct ScanRow {
    std::size_t n;
    double device_ms;
    double oracle_ms;
    double std_scan_ms;
    bool bitwise;
  };
  std::vector<ScanRow> scan_rows;
  for (const std::size_t n : {opt.n / 16, opt.n / 4, opt.n}) {
    const std::vector<double> in = random_doubles(n, 23 + n);
    std::vector<double> dev(n), ora(n), std_out(n);
    const primitives::SumOp<double> sum;
    const double device_ms = best_ms(opt.samples, [&] {
      primitives::device_exclusive_scan(ctx, std::span<const double>(in),
                                        std::span<double>(dev), sum);
    });
    const double oracle_ms = best_ms(opt.samples, [&] {
      primitives::exclusive_scan_oracle(std::span<const double>(in),
                                        std::span<double>(ora), sum);
    });
    const double std_ms = best_ms(opt.samples, [&] {
      std::exclusive_scan(in.begin(), in.end(), std_out.begin(), 0.0);
    });
    const bool bitwise =
        std::memcmp(dev.data(), ora.data(), n * sizeof(double)) == 0;
    if (!bitwise) {
      std::cerr << "FAILED: device_exclusive_scan(n=" << n << ") differs from oracle\n";
      ++failures;
    }
    scan_rows.push_back({n, device_ms, oracle_ms, std_ms, bitwise});
  }
  Table scan_table({"n", "device (ms)", "oracle (ms)", "std::exclusive_scan (ms)",
                    "bitwise"});
  for (const auto& r : scan_rows) {
    scan_table.add_row({std::to_string(r.n), Table::num(r.device_ms, 3),
                        Table::num(r.oracle_ms, 3), Table::num(r.std_scan_ms, 3),
                        r.bitwise ? "yes" : "NO"});
  }
  std::cout << "-- device_exclusive_scan, double sum (device == oracle bit-for-bit) --\n"
            << scan_table.to_markdown() << "\n";

  // Tree ablation: the Blelloch block scan we ship vs the Hillis-Steele
  // baseline it replaced, by exact combine count at one 256-lane block.
  long blelloch_combines = 0;
  long hillis_combines = 0;
  {
    constexpr std::size_t kLanes = 256;
    gpusim::launch_blocks(ctx, {1, 1, 1}, {kLanes, 1, 1}, 2 * kLanes * sizeof(long),
                          [&](gpusim::BlockCtx& bc) {
                            auto scratch = bc.shared<long>(2 * kLanes);
                            gpusim::block_exclusive_scan(
                                bc, scratch, CountingSum{&blelloch_combines},
                                [](const gpusim::ThreadCtx& tc) {
                                  return static_cast<long>(tc.lane_in_block());
                                });
                          });
    gpusim::launch_blocks(ctx, {1, 1, 1}, {kLanes, 1, 1}, 2 * kLanes * sizeof(long),
                          [&](gpusim::BlockCtx& bc) {
                            auto scratch = bc.shared<long>(2 * kLanes);
                            gpusim::block_exclusive_scan_hillis(
                                bc, scratch, CountingSum{&hillis_combines},
                                [](const gpusim::ThreadCtx& tc) {
                                  return static_cast<long>(tc.lane_in_block());
                                });
                          });
  }
  const double scan_combine_ratio =
      static_cast<double>(hillis_combines) / static_cast<double>(blelloch_combines);
  std::cout << "-- block-scan tree, 256 lanes: Blelloch " << blelloch_combines
            << " combines vs Hillis-Steele " << hillis_combines << " ("
            << Table::num(scan_combine_ratio, 2) << "x fewer) --\n\n";

  // --- sort -----------------------------------------------------------------
  const std::size_t ns = opt.n;
  Xoshiro256 sort_rng(31);
  std::vector<std::uint64_t> keys0(ns);
  for (auto& k : keys0) k = sort_rng() & 0xffffffffull;
  std::vector<std::uint32_t> vals0(ns);
  std::iota(vals0.begin(), vals0.end(), std::uint32_t{0});

  // Device radix vs the stable oracle (bitwise, keys and values).
  {
    std::vector<std::uint64_t> k = keys0;
    std::vector<std::uint32_t> v = vals0;
    std::vector<std::uint64_t> wk = keys0;
    std::vector<std::uint32_t> wv = vals0;
    primitives::device_radix_sort_pairs(ctx, std::span<std::uint64_t>(k),
                                        std::span<std::uint32_t>(v));
    primitives::sort_pairs_oracle(std::span<std::uint64_t>(wk),
                                  std::span<std::uint32_t>(wv));
    if (std::memcmp(k.data(), wk.data(), ns * sizeof(std::uint64_t)) != 0 ||
        std::memcmp(v.data(), wv.data(), ns * sizeof(std::uint32_t)) != 0) {
      std::cerr << "FAILED: device_radix_sort_pairs differs from the stable oracle\n";
      ++failures;
    }
  }

  // Host radix (the serve ordering substrate) vs the std::stable_sort
  // permutation idiom it replaced.
  primitives::HostRadixScratch<std::uint64_t, std::uint32_t> scratch;
  std::vector<std::uint64_t> hk;
  std::vector<std::uint32_t> hv;
  const double radix_ms = best_ms(opt.samples, [&] {
    hk = keys0;
    hv = vals0;
    primitives::host_radix_sort_pairs(std::span<std::uint64_t>(hk),
                                      std::span<std::uint32_t>(hv), scratch);
  });
  std::vector<std::uint64_t> sk;
  std::vector<std::uint32_t> sv;
  const double stable_ms = best_ms(opt.samples, [&] {
    sk = keys0;
    sv = vals0;
    std::vector<std::uint32_t> perm(ns);
    std::iota(perm.begin(), perm.end(), std::uint32_t{0});
    std::stable_sort(perm.begin(), perm.end(), [&](std::uint32_t a, std::uint32_t b) {
      return keys0[a] < keys0[b];
    });
    for (std::size_t i = 0; i < ns; ++i) {
      sk[i] = keys0[perm[i]];
      sv[i] = vals0[perm[i]];
    }
  });
  const double sort_speedup = stable_ms / radix_ms;
  const bool sort_bitwise =
      std::memcmp(hk.data(), sk.data(), ns * sizeof(std::uint64_t)) == 0 &&
      std::memcmp(hv.data(), sv.data(), ns * sizeof(std::uint32_t)) == 0;
  if (!sort_bitwise) {
    std::cerr << "FAILED: host_radix_sort_pairs differs from std::stable_sort\n";
    ++failures;
  }
  Table sort_table({"n", "host radix (ms)", "std::stable_sort (ms)", "speedup",
                    "bitwise"});
  sort_table.add_row({std::to_string(ns), Table::num(radix_ms, 3),
                      Table::num(stable_ms, 3), Table::num(sort_speedup, 2),
                      sort_bitwise ? "yes" : "NO"});
  std::cout << "-- (key, value) sort, 32-bit-dense uint64 keys (host radix is the\n"
               "   serve batch-ordering substrate; both sides are stable) --\n"
            << sort_table.to_markdown() << "\n";

  // --- histogram ------------------------------------------------------------
  const std::size_t bins = 256;
  std::vector<std::uint32_t> hist_in(opt.n);
  {
    Xoshiro256 rng(47);
    for (auto& x : hist_in) x = static_cast<std::uint32_t>(rng());
  }
  const auto bin_of = [bins](std::uint32_t x) { return x % bins; };
  std::vector<std::uint64_t> dev_hist(bins), ora_hist(bins);
  const double hist_device_ms = best_ms(opt.samples, [&] {
    primitives::device_histogram(ctx, std::span<const std::uint32_t>(hist_in),
                                 std::span<std::uint64_t>(dev_hist), bin_of);
  });
  const double hist_oracle_ms = best_ms(opt.samples, [&] {
    primitives::histogram_oracle(std::span<const std::uint32_t>(hist_in),
                                 std::span<std::uint64_t>(ora_hist), bin_of);
  });
  const bool hist_bitwise =
      std::memcmp(dev_hist.data(), ora_hist.data(), bins * sizeof(std::uint64_t)) == 0;
  if (!hist_bitwise) {
    std::cerr << "FAILED: device_histogram differs from the counting oracle\n";
    ++failures;
  }
  Table hist_table({"n", "bins", "device (ms)", "oracle (ms)", "bitwise"});
  hist_table.add_row({std::to_string(opt.n), std::to_string(bins),
                      Table::num(hist_device_ms, 3), Table::num(hist_oracle_ms, 3),
                      hist_bitwise ? "yes" : "NO"});
  std::cout << "-- device_histogram, 256 bins (privatized rows, block-ordered\n"
               "   combine; counting is exact) --\n"
            << hist_table.to_markdown() << "\n";

  // --- Phi_M rows -----------------------------------------------------------
  // Eq.-1 style portability of each primitive across the two simulated
  // GPU models: throughput per platform, efficiency relative to the
  // better platform, Phi the arithmetic mean (both supported, so the
  // metric-definition variants coincide up to the mean used).
  struct PhiRow {
    const char* primitive;
    double rate_mi250x;  ///< Melem/s, simulated MI250X GCD
    double rate_a100;    ///< Melem/s, simulated A100
    double phi;
  };
  std::vector<PhiRow> phi_rows;
  {
    const std::size_t np = opt.quick ? (1u << 15) : (1u << 18);
    const std::vector<double> in = random_doubles(np, 3);
    std::vector<std::uint32_t> hkeys(np);
    {
      Xoshiro256 rng(5);
      for (auto& k : hkeys) k = static_cast<std::uint32_t>(rng());
    }
    auto rate = [&](gpusim::DeviceContext& c, const char* which) {
      double ms = 0;
      if (std::strcmp(which, "reduce") == 0) {
        ms = best_ms(opt.samples, [&] {
          (void)primitives::device_reduce(c, std::span<const double>(in),
                                          primitives::SumOp<double>{});
        });
      } else if (std::strcmp(which, "scan") == 0) {
        std::vector<double> out(np);
        ms = best_ms(opt.samples, [&] {
          primitives::device_exclusive_scan(c, std::span<const double>(in),
                                            std::span<double>(out),
                                            primitives::SumOp<double>{});
        });
      } else if (std::strcmp(which, "sort") == 0) {
        std::vector<std::uint32_t> k = hkeys;
        ms = best_ms(opt.samples, [&] {
          k = hkeys;
          primitives::device_radix_sort_keys(c, std::span<std::uint32_t>(k));
        });
      } else {
        std::vector<std::uint32_t> hist(256);
        ms = best_ms(opt.samples, [&] {
          primitives::device_histogram(c, std::span<const std::uint32_t>(hkeys),
                                       std::span<std::uint32_t>(hist),
                                       [](std::uint32_t x) { return x % 256; });
        });
      }
      return static_cast<double>(np) / (ms * 1e3);  // Melem/s
    };
    gpusim::DeviceContext mi250x(gpusim::GpuSpec::mi250x_gcd());
    for (const char* which : {"reduce", "scan", "sort", "histogram"}) {
      const double r_mi = rate(mi250x, which);
      const double r_a100 = rate(ctx, which);
      const double best = std::max(r_mi, r_a100);
      const portability::EfficiencyEntry entries[] = {
          {perfmodel::Platform::kCrusherGpu, r_mi / best, true},
          {perfmodel::Platform::kWombatGpu, r_a100 / best, true},
      };
      phi_rows.push_back({which, r_mi, r_a100,
                          portability::phi_arithmetic(entries)});
    }
  }
  Table phi_table({"primitive", "MI250X GCD (Melem/s)", "A100 (Melem/s)", "Phi_M"});
  for (const auto& r : phi_rows) {
    phi_table.add_row({r.primitive, Table::num(r.rate_mi250x, 2),
                       Table::num(r.rate_a100, 2), Table::num(r.phi, 3)});
  }
  std::cout << "-- Phi_M (Eq. 1) across the simulated GPU models (efficiency is\n"
               "   relative to the better platform; results are identical bits on\n"
               "   both, so portability here is purely a throughput statement) --\n"
            << phi_table.to_markdown() << "\n";

  // --- machine-readable artifact --------------------------------------------
  w.key("reduce");
  w.begin_array();
  for (const auto& r : reduce_rows) {
    w.begin_object();
    w.key("n");
    w.value(r.n);
    w.key("device_ms");
    w.value(r.device_ms);
    w.key("oracle_ms");
    w.value(r.oracle_ms);
    w.key("accumulate_ms");
    w.value(r.accumulate_ms);
    w.key("bitwise_identical");
    w.value(r.bitwise);
    w.end_object();
  }
  w.end_array();
  w.key("scan");
  w.begin_array();
  for (const auto& r : scan_rows) {
    w.begin_object();
    w.key("n");
    w.value(r.n);
    w.key("device_ms");
    w.value(r.device_ms);
    w.key("oracle_ms");
    w.value(r.oracle_ms);
    w.key("std_scan_ms");
    w.value(r.std_scan_ms);
    w.key("bitwise_identical");
    w.value(r.bitwise);
    w.end_object();
  }
  w.end_array();
  w.key("scan_tree");
  w.begin_object();
  w.key("lanes");
  w.value(std::size_t{256});
  w.key("blelloch_combines");
  w.value(blelloch_combines);
  w.key("hillis_combines");
  w.value(hillis_combines);
  w.key("combine_ratio");
  w.value(scan_combine_ratio);
  w.end_object();
  w.key("sort");
  w.begin_object();
  w.key("n");
  w.value(ns);
  w.key("radix_ms");
  w.value(radix_ms);
  w.key("stable_sort_ms");
  w.value(stable_ms);
  w.key("speedup");
  w.value(sort_speedup);
  w.key("bitwise_identical");
  w.value(sort_bitwise);
  w.end_object();
  w.key("histogram");
  w.begin_object();
  w.key("n");
  w.value(opt.n);
  w.key("bins");
  w.value(bins);
  w.key("device_ms");
  w.value(hist_device_ms);
  w.key("oracle_ms");
  w.value(hist_oracle_ms);
  w.key("bitwise_identical");
  w.value(hist_bitwise);
  w.end_object();
  w.key("phi");
  w.begin_array();
  for (const auto& r : phi_rows) {
    w.begin_object();
    w.key("primitive");
    w.value(r.primitive);
    w.key("rate_mi250x_melems");
    w.value(r.rate_mi250x);
    w.key("rate_a100_melems");
    w.value(r.rate_a100);
    w.key("phi");
    w.value(r.phi);
    w.end_object();
  }
  w.end_array();
  w.key("scan_combine_ratio");
  w.value(scan_combine_ratio);
  w.key("sort_speedup");
  w.value(sort_speedup);
  if (const int rc = artifact.write(opt.out); rc != 0) return rc;

  if (opt.require_scan_combines > 0.0 && scan_combine_ratio < opt.require_scan_combines) {
    std::cerr << "FAILED: Hillis/Blelloch combine ratio " << scan_combine_ratio
              << "x is below the " << opt.require_scan_combines << "x requirement\n";
    ++failures;
  }
  if (opt.require_sort > 0.0 && sort_speedup < opt.require_sort) {
    std::cerr << "FAILED: host radix speedup " << sort_speedup << "x is below the "
              << opt.require_sort << "x requirement\n";
    ++failures;
  }
  if (failures != 0) {
    std::cerr << failures << " FAILURES\n";
    return 1;
  }
  return 0;
}
