// Shared BENCH_*.json artifact emission.
//
// Every hand-rolled microbench (micro_dispatch, micro_launch, micro_simd,
// host_ceiling_gemm) writes a machine-readable JSON artifact that CI
// archives and validates.  The shared envelope lives here so the schema
// is stamped in exactly one place: the root object always carries
//
//   "bench":          the binary's name (CI keys artifacts off this)
//   "schema_version": kBenchSchemaVersion, bumped on envelope changes
//
// followed by whatever bench-specific keys the caller adds through
// writer().  write() closes the envelope, writes the file, and returns
// the process exit code for the emission step (0 ok / 1 I/O failure),
// printing the same "wrote <path>" line CI greps for.
#pragma once

#include <fstream>
#include <iostream>
#include <string>
#include <utility>

#include "common/json.hpp"

namespace portabench {

inline constexpr std::size_t kBenchSchemaVersion = 1;

class BenchArtifact {
 public:
  explicit BenchArtifact(std::string bench_name) : name_(std::move(bench_name)) {
    w_.begin_object();
    w_.key("bench");
    w_.value(name_);
    w_.key("schema_version");
    w_.value(kBenchSchemaVersion);
  }

  /// Add bench-specific keys/sections here (the root object is open).
  [[nodiscard]] JsonWriter& writer() noexcept { return w_; }

  /// Close the envelope and write the artifact.  Returns 0 on success,
  /// 1 on I/O failure (callers return this from main on failure).
  [[nodiscard]] int write(const std::string& path) {
    w_.end_object();
    std::ofstream out(path);
    out << w_.str() << "\n";
    if (!out) {
      std::cerr << "FAILED: could not write " << path << "\n";
      return 1;
    }
    std::cout << "wrote " << path << "\n";
    return 0;
  }

 private:
  std::string name_;
  JsonWriter w_;
};

}  // namespace portabench
