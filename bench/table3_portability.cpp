// Table III: performance efficiency of Kokkos, Julia, and Python/Numba on
// each architecture, and the per-model Phi_M of Eq. (1) — printed side by
// side with the paper's published values (perfmodel/paper_data), followed
// by a worst-first deviation report and the metric-definition ablation.
#include <cmath>
#include <iostream>

#include "common/table.hpp"
#include "perfmodel/paper_data.hpp"
#include "portability/metric.hpp"

int main() {
  using namespace portabench;
  using perfmodel::Family;
  using perfmodel::paper_table3_efficiency;
  using perfmodel::paper_table3_phi;
  using perfmodel::Platform;
  using portability::build_table3;

  std::cout << "=== Table III: performance efficiency and Phi_M (Eq. 1) ===\n";
  std::cout << "(modeled vs paper; '-' marks unsupported combinations)\n";

  const auto table = build_table3();
  for (Precision prec : {Precision::kDouble, Precision::kSingle}) {
    std::cout << "\n--- " << (prec == Precision::kDouble ? "Double" : "Single")
              << " precision ---\n";
    Table out({"Architecture", "Kokkos", "Kokkos(paper)", "Julia", "Julia(paper)",
               "Python/Numba", "Numba(paper)"});
    for (Platform p : perfmodel::kAllPlatforms) {
      std::string label = "e_{";
      label += perfmodel::arch_label(p);
      label += "}";
      std::vector<std::string> row{std::move(label)};
      for (Family f : perfmodel::kPortableFamilies) {
        double modeled = std::nan("");
        for (const auto& fp : table) {
          if (fp.family != f || fp.precision != prec) continue;
          for (const auto& e : fp.entries) {
            if (e.platform == p && e.supported) modeled = e.efficiency;
          }
        }
        row.push_back(Table::num(modeled, 3));
        const auto paper = paper_table3_efficiency(f, prec, p);
        row.push_back(paper ? Table::num(*paper, 3) : "-");
      }
      out.add_row(std::move(row));
    }
    std::vector<std::string> phi_row{"Phi_M"};
    for (Family f : perfmodel::kPortableFamilies) {
      double phi = std::nan("");
      for (const auto& fp : table) {
        if (fp.family == f && fp.precision == prec) phi = fp.phi;
      }
      phi_row.push_back(Table::num(phi, 3));
      phi_row.push_back(Table::num(paper_table3_phi(f, prec), 3));
    }
    out.add_row(std::move(phi_row));
    std::cout << out.to_markdown();
  }

  // Deviation report: worst cells first (quoted by EXPERIMENTS.md).
  std::cout << "\n--- Model-vs-paper deviations (worst first) ---\n";
  Table dev({"family", "precision", "architecture", "paper", "modeled", "abs error"});
  const auto deviations = perfmodel::table3_deviation_report();
  for (std::size_t i = 0; i < std::min<std::size_t>(5, deviations.size()); ++i) {
    const auto& d = deviations[i];
    dev.add_row({std::string(perfmodel::name(d.family)), std::string(name(d.precision)),
                 std::string(perfmodel::arch_label(d.platform)), Table::num(d.paper, 3),
                 Table::num(d.modeled, 3), Table::num(d.abs_error(), 3)});
  }
  std::cout << dev.to_markdown();

  // Metric ablation: how the portability ranking shifts under the
  // alternative definitions debated in [57]/[58].
  std::cout << "\n--- Metric ablation: Phi definitions ---\n";
  Table ab({"Family", "Precision", "Eq.(1) arith, 0-for-missing",
            "Pennycook harmonic (0 if any missing)", "harmonic over supported"});
  for (const auto& fp : table) {
    ab.add_row({std::string(perfmodel::name(fp.family)),
                std::string(name(fp.precision)),
                Table::num(portability::phi_arithmetic(fp.entries), 3),
                Table::num(portability::phi_pennycook(fp.entries), 3),
                Table::num(portability::phi_harmonic_supported(fp.entries), 3)});
  }
  std::cout << ab.to_markdown();
  std::cout << "\nNote: under Pennycook's strict definition Numba scores 0 on the\n"
               "full platform set (no AMD GPU backend) — the paper's Eq. (1)\n"
               "instead charges the gap as a zero term inside |T| = 4.\n";
  return 0;
}
