// Table I: CPU experiment specifications — the software stack, compiler
// flags, and environment settings of the paper's CPU runs, plus the
// modeled hardware parameters this reproduction uses for each CPU.
#include <iostream>

#include "common/table.hpp"
#include "perfmodel/device_specs.hpp"

int main() {
  using namespace portabench;
  using perfmodel::CpuSpec;

  std::cout << "=== Table I: CPU experiment specs ===\n\n";
  Table stack({"Programming/System", "Wombat (Arm)", "Crusher (AMD)"});
  for (const auto& row : perfmodel::table1_rows()) {
    stack.add_row({row.item, row.wombat, row.crusher});
  }
  std::cout << stack.to_markdown();

  std::cout << "\nModeled hardware parameters (this reproduction):\n";
  Table hw({"Parameter", "Wombat (Ampere Altra)", "Crusher (EPYC 7A53)"});
  const CpuSpec altra = CpuSpec::ampere_altra();
  const CpuSpec epyc = CpuSpec::epyc_7a53();
  auto num = [](double v, int p = 1) { return Table::num(v, p); };
  hw.add_row({"cores", std::to_string(altra.cores), std::to_string(epyc.cores)});
  hw.add_row({"NUMA domains", std::to_string(altra.numa_domains),
              std::to_string(epyc.numa_domains)});
  hw.add_row({"clock (GHz)", num(altra.freq_ghz), num(epyc.freq_ghz)});
  hw.add_row({"SIMD width (bits)", std::to_string(altra.simd_bits),
              std::to_string(epyc.simd_bits)});
  hw.add_row({"peak FP64 (GFLOP/s)", num(altra.peak_gflops(Precision::kDouble)),
              num(epyc.peak_gflops(Precision::kDouble))});
  hw.add_row({"peak FP32 (GFLOP/s)", num(altra.peak_gflops(Precision::kSingle)),
              num(epyc.peak_gflops(Precision::kSingle))});
  hw.add_row({"DRAM bandwidth (GB/s)", num(altra.mem_bw_gbs), num(epyc.mem_bw_gbs)});
  hw.add_row({"LLC (MB)", num(altra.l3_bytes / 1e6, 0), num(epyc.l3_bytes / 1e6, 0)});
  hw.add_row({"native FP16", altra.native_fp16 ? "yes (Armv8.2)" : "no",
              epyc.native_fp16 ? "yes" : "no"});
  std::cout << hw.to_markdown();
  return 0;
}
