// Table II: GPU experiment specifications — software stack of the paper's
// GPU runs plus the functional-simulator and performance-model parameters
// this reproduction substitutes for the physical A100 / MI250X.
#include <iostream>

#include "common/table.hpp"
#include "gpusim/device.hpp"
#include "perfmodel/device_specs.hpp"

int main() {
  using namespace portabench;

  std::cout << "=== Table II: GPU experiment specs ===\n\n";
  Table stack({"Programming/System", "Wombat (NVIDIA)", "Crusher (AMD)"});
  for (const auto& row : perfmodel::table2_rows()) {
    stack.add_row({row.item, row.wombat, row.crusher});
  }
  std::cout << stack.to_markdown();

  std::cout << "\nSimulated device parameters (this reproduction):\n";
  Table hw({"Parameter", "A100", "MI250X (1 GCD)"});
  const auto a100 = gpusim::GpuSpec::a100();
  const auto mi = gpusim::GpuSpec::mi250x_gcd();
  const auto a100p = perfmodel::GpuPerfSpec::a100();
  const auto mip = perfmodel::GpuPerfSpec::mi250x_gcd();
  auto num = [](double v, int p = 0) { return Table::num(v, p); };
  hw.add_row({"warp/wavefront", std::to_string(a100.warp_size), std::to_string(mi.warp_size)});
  hw.add_row({"SMs / CUs", std::to_string(a100.sm_count), std::to_string(mi.sm_count)});
  hw.add_row({"max threads/block", std::to_string(a100.max_threads_per_block),
              std::to_string(mi.max_threads_per_block)});
  hw.add_row({"peak FP64 (GFLOP/s)", num(a100p.peak_fp64_gflops), num(mip.peak_fp64_gflops)});
  hw.add_row({"peak FP32 (GFLOP/s)", num(a100p.peak_fp32_gflops), num(mip.peak_fp32_gflops)});
  hw.add_row({"peak FP16 vector (GFLOP/s)", num(a100p.peak_fp16_gflops),
              num(mip.peak_fp16_gflops)});
  hw.add_row({"memory bandwidth (GB/s)", num(a100p.mem_bw_gbs), num(mip.mem_bw_gbs)});
  hw.add_row({"launch latency (us)", num(a100p.launch_latency_us, 1),
              num(mip.launch_latency_us, 1)});
  std::cout << hw.to_markdown();
  return 0;
}
