// Shared harness for the figure benches.
//
// Every figure bench does the same three things, matching the paper's
// protocol (Section IV):
//   1. functional verification: run every plotted (family, precision)
//      combination through its frontend at a reduced size, with warm-up
//      repetitions excluded, and check it against the reference GEMM;
//   2. reproduction: print the modeled GFLOPS-vs-size series for the
//      platform's standard sweep — one column per programming model, one
//      table per figure panel;
//   3. efficiency summary: the per-panel mean Eq.-2 efficiencies that feed
//      Table III.
#pragma once

#include <string>
#include <vector>

#include "common/precision.hpp"
#include "perfmodel/platform.hpp"

namespace portabench::bench {

struct PanelSpec {
  std::string title;       ///< e.g. "(a) double precision"
  Precision precision;
};

struct HarnessOptions {
  std::size_t verify_n = 48;     ///< functional verification size
  std::size_t verify_reps = 3;   ///< repetitions (first one is warm-up)
  bool emit_csv = false;
};

/// Run the full harness for one figure: verification + model series +
/// efficiency summary.  Returns the number of verification failures
/// (0 == success), which the bench binary uses as its exit code.
int run_figure(perfmodel::Platform platform, const std::string& figure_name,
               const std::vector<PanelSpec>& panels, const HarnessOptions& options = {});

/// Parse --verify-n / --reps / --csv from argv into HarnessOptions.
HarnessOptions parse_options(int argc, const char* const* argv);

}  // namespace portabench::bench
