// Figure 7: simple GEMM on Wombat's NVIDIA A100 with 32x32 thread blocks
// — CUDA, Kokkos/CUDA, Julia CUDA.jl, Numba-CUDA at double (7a) and
// single (7b) precision, plus the Julia + Numba half-precision panel (7c).
#include "harness.hpp"

int main(int argc, char** argv) {
  using namespace portabench;
  const auto options = bench::parse_options(argc, argv);
  return bench::run_figure(
      perfmodel::Platform::kWombatGpu, "Figure 7",
      {{"(a) double precision, 32x32 blocks", Precision::kDouble},
       {"(b) single precision, 32x32 blocks", Precision::kSingle},
       {"(c) half precision (FP16 inputs, FP32 accumulate)", Precision::kHalfIn}},
      options);
}
