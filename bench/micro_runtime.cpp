// Microbenchmarks of the runtime substrate (google-benchmark).
//
// These measure the *simulation host* cost of the mini-Kokkos and gpusim
// primitives — the overheads the calibrated ModelTraits represent on the
// modeled machines.  Useful for keeping the substrate itself honest (a
// fork-join that costs milliseconds would distort functional timings).
#include <benchmark/benchmark.h>

#include <atomic>
#include <string>
#include <string_view>
#include <vector>

#include "gpusim/launch.hpp"
#include "simrt/parallel.hpp"

namespace {

using namespace portabench;

void BM_ForkJoin(benchmark::State& state) {
  simrt::ThreadsSpace space(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    simrt::parallel_for(space, simrt::RangePolicy(0, 1), [](std::size_t) {});
  }
}
BENCHMARK(BM_ForkJoin)->Arg(1)->Arg(2)->Arg(4)->Unit(benchmark::kMicrosecond);

void BM_ParallelForChunked(benchmark::State& state) {
  simrt::ThreadsSpace space(2);
  const std::size_t n = 1 << 16;
  std::vector<double> data(n, 1.0);
  for (auto _ : state) {
    simrt::parallel_for(space, simrt::RangePolicy(0, n),
                        [&](std::size_t i) { data[i] = data[i] * 1.0000001 + 0.5; });
    benchmark::DoNotOptimize(data[0]);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * n);
}
BENCHMARK(BM_ParallelForChunked)->Unit(benchmark::kMicrosecond);

void BM_ParallelReduce(benchmark::State& state) {
  simrt::ThreadsSpace space(2);
  const std::size_t n = 1 << 16;
  for (auto _ : state) {
    double sum = 0.0;
    simrt::parallel_reduce(space, simrt::RangePolicy(0, n),
                           [](std::size_t i, double& acc) { acc += static_cast<double>(i); },
                           sum);
    benchmark::DoNotOptimize(sum);
  }
}
BENCHMARK(BM_ParallelReduce)->Unit(benchmark::kMicrosecond);

void BM_MDRangeTiled(benchmark::State& state) {
  simrt::ThreadsSpace space(2);
  std::vector<double> data(256 * 256, 0.0);
  for (auto _ : state) {
    simrt::parallel_for(space, simrt::MDRangePolicy2({0, 0}, {256, 256}),
                        [&](std::size_t i, std::size_t j) { data[i * 256 + j] += 1.0; });
    benchmark::DoNotOptimize(data[0]);
  }
}
BENCHMARK(BM_MDRangeTiled)->Unit(benchmark::kMicrosecond);

void BM_GpusimLaunchOverhead(benchmark::State& state) {
  gpusim::DeviceContext ctx(gpusim::GpuSpec::a100());
  for (auto _ : state) {
    gpusim::launch(ctx, {1, 1, 1}, {32, 1, 1}, [](const gpusim::ThreadCtx&) {});
  }
}
BENCHMARK(BM_GpusimLaunchOverhead)->Unit(benchmark::kMicrosecond);

void BM_GpusimThreadRate(benchmark::State& state) {
  gpusim::DeviceContext ctx(gpusim::GpuSpec::a100());
  const std::size_t n = 256;
  std::vector<double> out(n * n, 0.0);
  for (auto _ : state) {
    gpusim::launch(ctx, {n / 16, n / 16, 1}, {16, 16, 1}, [&](const gpusim::ThreadCtx& tc) {
      out[tc.global_y() * n + tc.global_x()] += 1.0;
    });
    benchmark::DoNotOptimize(out[0]);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * n * n);
}
BENCHMARK(BM_GpusimThreadRate)->Unit(benchmark::kMicrosecond);

}  // namespace

// BENCHMARK_MAIN, plus a default JSON artifact: unless the caller already
// passed --benchmark_out, results are mirrored to BENCH_runtime.json so
// the runtime substrate's cost is tracked PR-over-PR alongside
// BENCH_dispatch.json (see docs/PERF.md).
int main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  std::string out_flag = "--benchmark_out=BENCH_runtime.json";
  std::string fmt_flag = "--benchmark_out_format=json";
  bool has_out = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]).starts_with("--benchmark_out=")) has_out = true;
  }
  if (!has_out) {
    args.push_back(out_flag.data());
    args.push_back(fmt_flag.data());
  }
  int arg_count = static_cast<int>(args.size());
  benchmark::Initialize(&arg_count, args.data());
  if (benchmark::ReportUnrecognizedArguments(arg_count, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
