// Productivity analysis: the quantitative version of the paper's
// productivity commentary (Sections I/V/VI) — source burden, mechanism
// invasiveness, and the combined performance-productivity score per
// programming model.
#include <iostream>

#include "common/table.hpp"
#include "portability/metric.hpp"
#include "portability/productivity.hpp"

int main() {
  using namespace portabench;
  using namespace portabench::portability;

  std::cout << "=== Productivity: effort profiles of the Fig. 2/3 implementations ===\n\n";

  const auto profiles = study_profiles();
  Table t({"implementation", "target", "kernel SLOC", "harness SLOC", "mechanism",
           "pinning API", "rebuild/target", "seamless FP16", "compile/JIT (s)",
           "relative effort"});
  for (const auto& p : profiles) {
    t.add_row({p.implementation, p.gpu ? "GPU" : "CPU", std::to_string(p.kernel_sloc),
               std::to_string(p.harness_sloc), std::string(name(p.mechanism)),
               p.thread_pinning_api ? "yes" : "no", p.needs_rebuild_per_target ? "yes" : "no",
               p.seamless_fp16 ? "yes" : "no", std::to_string(p.compile_seconds),
               Table::num(relative_effort(p, profiles), 2)});
  }
  std::cout << t.to_markdown();

  std::cout << "\nPerformance-productivity score (Phi from Table III / relative "
               "effort, CPU+GPU averaged):\n";
  const auto table3 = build_table3();
  Table pp({"family", "Phi (FP64)", "mean relative effort", "PP score"});
  for (Family f : perfmodel::kPortableFamilies) {
    double phi = 0.0;
    for (const auto& fp : table3) {
      if (fp.family == f && fp.precision == Precision::kDouble) phi = fp.phi;
    }
    double effort_sum = 0.0;
    int count = 0;
    for (const auto& p : profiles) {
      if (p.family != f) continue;
      effort_sum += relative_effort(p, profiles);
      ++count;
    }
    const double effort = effort_sum / count;
    pp.add_row({std::string(perfmodel::name(f)), Table::num(phi, 3), Table::num(effort, 2),
                Table::num(pp_score(phi, effort), 3)});
  }
  std::cout << pp.to_markdown();
  std::cout << "\nReading: Julia pairs the best Phi with the lowest source burden —\n"
               "the paper's closing argument for high-productivity LLVM frontends;\n"
               "Kokkos pays template/harness overhead and per-target rebuilds;\n"
               "Numba is cheap to write but its Phi collapses the score.\n";
  return 0;
}
