// Ablation: naive vs shared-memory-tiled GPU GEMM.
//
// The paper deliberately studies hand-rolled naive kernels as a
// performance *lower bound* (Section I).  This bench quantifies the
// headroom that bound leaves: modeled DRAM traffic and rate for the naive
// one-thread-per-element kernel vs the tiled cooperative kernel, plus a
// functional equivalence check on the simulator.
#include <iostream>
#include <vector>

#include "common/rng.hpp"
#include "common/table.hpp"
#include "gemm/kernels_gpu.hpp"
#include "gemm/validate.hpp"
#include "perfmodel/device_specs.hpp"
#include "perfmodel/machine_model.hpp"

int main() {
  using namespace portabench;

  std::cout << "=== Ablation: naive vs shared-memory tiled GEMM (A100, FP64) ===\n\n";
  const perfmodel::GpuMachineModel model(perfmodel::GpuPerfSpec::a100());

  // The tiled kernel stages both A and B tiles through shared memory, so
  // its DRAM traffic is the compulsory 2*n^2 reads (each element loaded
  // n/tile times -> modeled via the tile parameter on *both* operands,
  // i.e. an effective tile of 2x the naive reuse).
  Table t({"n", "naive traffic (GB)", "tiled traffic (GB)", "naive GFLOP/s (modeled)",
           "tiled bound (GFLOP/s)"});
  for (std::size_t n : {4096u, 8192u, 16384u, 20480u}) {
    const auto naive = model.reference_time(Precision::kDouble, n, 32);
    // Tiled: both operands cached per 32x32 tile -> traffic ~ n^3/tile
    // *once* total (B only), A panel reused from shared.
    const double tiled_traffic =
        model.dram_traffic_bytes(Precision::kDouble, n, 64);  // ~2x reuse
    const double flops = 2.0 * static_cast<double>(n) * n * n;
    const double bw = perfmodel::GpuPerfSpec::a100().mem_bw_gbs * 1e9 * 0.85;
    const double peak = perfmodel::GpuPerfSpec::a100().peak_fp64_gflops * 1e9 * 0.80;
    const double tiled_t = std::max(flops / peak, tiled_traffic / bw);
    t.add_row({std::to_string(n), Table::num(naive.dram_bytes / 1e9, 1),
               Table::num(tiled_traffic / 1e9, 1), Table::num(naive.gflops, 1),
               Table::num(flops / tiled_t / 1e9, 1)});
  }
  std::cout << t.to_markdown();

  // Functional equivalence at a reduced size.
  constexpr std::size_t kN = 96;
  gpusim::DeviceContext ctx(gpusim::GpuSpec::a100());
  std::vector<double> hA(kN * kN);
  std::vector<double> hB(kN * kN);
  Xoshiro256 rng(4321);
  fill_uniform(std::span<double>(hA), rng);
  fill_uniform(std::span<double>(hB), rng);
  gpusim::DeviceBuffer<double> dA(ctx, kN * kN);
  gpusim::DeviceBuffer<double> dB(ctx, kN * kN);
  gpusim::DeviceBuffer<double> dC1(ctx, kN * kN);
  gpusim::DeviceBuffer<double> dC2(ctx, kN * kN);
  dA.copy_from_host(hA);
  dB.copy_from_host(hB);
  gemm::GpuLaunchConfig cfg;
  cfg.block = {16, 16, 1};
  gemm::gemm_cuda_style<double>(ctx, cfg, dA, dB, dC1, kN, kN, kN);
  gemm::gemm_tiled_shared<double>(ctx, cfg, dA, dB, dC2, kN, kN, kN);
  std::vector<double> c1(kN * kN);
  std::vector<double> c2(kN * kN);
  dC1.copy_to_host(std::span<double>(c1));
  dC2.copy_to_host(std::span<double>(c2));
  const double err = gemm::max_abs_diff<double>(c1, c2);
  const bool ok = err <= gemm::gemm_tolerance(Precision::kDouble, kN);
  std::cout << "\nfunctional equivalence (n=" << kN << "): max |naive - tiled| = " << err
            << " -> " << (ok ? "OK" : "FAILED") << "\n";
  std::cout << "\nTakeaway: the naive kernel's traffic is ~tile-limited; shared-memory\n"
               "tiling roughly halves DRAM traffic per doubling of effective tile and\n"
               "is the first step of the cuBLAS-class optimizations the paper's\n"
               "lower-bound methodology deliberately excludes.\n";
  return ok ? 0 : 1;
}
