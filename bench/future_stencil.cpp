// Future-work workload: 5-point Jacobi stencil.
//
// Completes the three-point roofline coverage (SpMV ~0.12, stencil ~0.25,
// GEMM >1 flop/byte): a structured-grid solver run through the same
// substrates as the study, with the naive-vs-tiled device ablation and
// the convergence behaviour a PDE user actually cares about.
#include <iostream>

#include "common/table.hpp"
#include "stencil/grid.hpp"
#include "stencil/kernels.hpp"
#include "stencil/model.hpp"

int main() {
  using namespace portabench;
  using namespace portabench::stencil;

  std::cout << "=== Future-work workload: 5-point Jacobi (FP64) ===\n\n";

  // Functional study: the hot-plate problem to convergence.
  std::cout << "hot-plate convergence (tolerance 1e-6, host substrate):\n";
  Table conv({"grid", "sweeps to converge", "interior mean", "top/bottom gradient"});
  simrt::ThreadsSpace space(4);
  for (std::size_t n : {16u, 32u, 64u}) {
    Grid2D grid(n, n);
    grid.set_hot_top(1.0);
    const std::size_t sweeps = solve_jacobi(space, grid, 1e-6, 200000);
    const double mean =
        grid.interior_sum() / static_cast<double>((n - 2) * (n - 2));
    conv.add_row({std::to_string(n) + "x" + std::to_string(n), std::to_string(sweeps),
                  Table::num(mean, 4),
                  Table::num(grid.front()(1, n / 2) / grid.front()(n - 2, n / 2), 1)});
  }
  std::cout << conv.to_markdown();

  // Device equivalence: naive vs shared-memory tiled sweep.
  std::cout << "\ndevice sweep equivalence (64x96 grid): ";
  {
    gpusim::DeviceContext ctx(gpusim::GpuSpec::a100());
    constexpr std::size_t kRows = 64;
    constexpr std::size_t kCols = 96;
    std::vector<double> in(kRows * kCols);
    for (std::size_t i = 0; i < in.size(); ++i) {
      in[i] = static_cast<double>((i * 7919) % 997) / 997.0;
    }
    std::vector<double> naive = in;
    std::vector<double> tiled = in;
    sweep_gpu_naive(ctx, in.data(), naive.data(), kRows, kCols);
    sweep_gpu_tiled(ctx, in.data(), tiled.data(), kRows, kCols);
    bool same = true;
    for (std::size_t i = 0; i < in.size(); ++i) same = same && naive[i] == tiled[i];
    std::cout << (same ? "bitwise identical" : "MISMATCH") << "\n";
    if (!same) return 1;
  }

  // Modeled rates at production scale.
  std::cout << "\nmodeled sweep rates, 8192x8192 grid:\n";
  Table model({"platform", "AI (flop/byte)", "GFLOP/s", "sweeps/s", "note"});
  {
    const auto epyc = predict_stencil_cpu(perfmodel::CpuSpec::epyc_7a53(), 8192, 8192);
    model.add_row({"Crusher EPYC 7A53", Table::num(epyc.arithmetic_intensity, 3),
                   Table::num(epyc.gflops, 1), Table::num(epyc.sweeps_per_second, 1), "-"});
    const auto altra = predict_stencil_cpu(perfmodel::CpuSpec::ampere_altra(), 8192, 8192);
    model.add_row({"Wombat Ampere Altra", Table::num(altra.arithmetic_intensity, 3),
                   Table::num(altra.gflops, 1), Table::num(altra.sweeps_per_second, 1), "-"});
    for (bool tiled : {false, true}) {
      const auto a100 =
          predict_stencil_gpu(perfmodel::GpuPerfSpec::a100(), 8192, 8192, tiled);
      model.add_row({"Wombat A100", Table::num(a100.arithmetic_intensity, 3),
                     Table::num(a100.gflops, 1), Table::num(a100.sweeps_per_second, 1),
                     tiled ? "shared-memory tiled" : "naive"});
    }
    const auto mi =
        predict_stencil_gpu(perfmodel::GpuPerfSpec::mi250x_gcd(), 8192, 8192, true);
    model.add_row({"Crusher MI250X (GCD)", Table::num(mi.arithmetic_intensity, 3),
                   Table::num(mi.gflops, 1), Table::num(mi.sweeps_per_second, 1),
                   "shared-memory tiled"});
  }
  std::cout << model.to_markdown();
  std::cout << "\nTakeaway: at ~0.2-0.25 flop/byte the stencil sits between SpMV and\n"
               "GEMM on every roofline; shared-memory tiling buys the modeled ~1.6x\n"
               "on GPUs, and the tiled kernel is bitwise-equal to the naive one on\n"
               "the simulator — the cooperative-kernel machinery carries a real\n"
               "optimization, not just the paper's lower-bound kernels.\n";
  return 0;
}
