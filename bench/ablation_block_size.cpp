// Ablation: GPU thread-block geometry.
//
// DESIGN.md calls out Kokkos' template-time block heuristics as the
// modeled cause of the paper's A100 slowdown ("select the appropriate
// values for a number of blocks and threads per block ... Templates set
// this kind of optimization").  This bench quantifies the design choice:
// occupancy and modeled tile traffic across block shapes, plus functional
// verification that every shape computes the same GEMM.
// The square-tile rows reuse tune::modeled_block_stats — the SAME
// analytics the autotuner's gpu-block space minimizes — so this
// artifact and the tuner objective cannot drift apart.
#include <cstring>
#include <iostream>
#include <vector>

#include "bench_json.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "gemm/kernels_gpu.hpp"
#include "gemm/validate.hpp"
#include "gpusim/coalescing.hpp"
#include "gpusim/occupancy.hpp"
#include "perfmodel/device_specs.hpp"
#include "perfmodel/machine_model.hpp"
#include "tune/model_objectives.hpp"

int main(int argc, char** argv) {
  using namespace portabench;
  using gpusim::Dim3;

  std::string out_path = "BENCH_ablation_block.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::cerr << "usage: ablation_block_size [--out PATH]\n";
      return 2;
    }
  }

  std::cout << "=== Ablation: thread-block geometry on the A100 ===\n\n";

  const auto spec = gpusim::GpuSpec::a100();
  const perfmodel::GpuMachineModel model(perfmodel::GpuPerfSpec::a100());

  struct Shape {
    Dim3 block;
    const char* note;
  };
  const std::vector<Shape> shapes = {
      {{32, 32, 1}, "paper's hand-picked config"},
      {{16, 16, 1}, "smaller square tile"},
      {{8, 8, 1}, "tiny square tile"},
      {{256, 1, 1}, "flat (Kokkos template heuristic)"},
      {{1024, 1, 1}, "max flat"},
      {{64, 4, 1}, "wide rectangle"},
      {{4, 64, 1}, "tall rectangle (poor coalescing axis)"},
  };

  Table t({"block", "threads", "occupancy", "limiter", "eff. tile",
           "modeled traffic @ n=8192 (GB)", "coalescing expansion", "note"});
  for (const auto& s : shapes) {
    const gpusim::KernelResources res{s.block.volume(), 32, 0};
    const auto occ = gpusim::compute_occupancy(spec, res);
    // The reuse tile of the naive kernel is min(block.x, block.y) on the
    // square-tile axis; flat shapes degenerate to 1-wide reuse.
    const std::size_t tile = std::max<std::size_t>(1, std::min(s.block.x, s.block.y));
    const double traffic = model.dram_traffic_bytes(Precision::kDouble, 8192, tile);
    const auto coalescing =
        gpusim::analyze_gemm_coalescing(spec, s.block, 8192, sizeof(double));
    t.add_row({std::to_string(s.block.x) + "x" + std::to_string(s.block.y),
               std::to_string(s.block.volume()), Table::num(occ.fraction, 2), occ.limiter,
               std::to_string(tile), Table::num(traffic / 1e9, 1),
               Table::num(coalescing.weighted_expansion(8192), 2), s.note});
  }
  std::cout << t.to_markdown();

  std::cout << "\nKokkos MDRange lowering (row on threadIdx.x, transposed vs Fig. 3a):\n";
  {
    const auto kokkos =
        gpusim::analyze_gemm_coalescing(spec, {256, 1, 1}, 8192, sizeof(double), true);
    const auto paper =
        gpusim::analyze_gemm_coalescing(spec, {32, 32, 1}, 8192, sizeof(double), false);
    std::cout << "  Fig. 3a 32x32: weighted sector expansion "
              << Table::num(paper.weighted_expansion(8192), 2)
              << "; Kokkos 256x1 transposed: "
              << Table::num(kokkos.weighted_expansion(8192), 2)
              << "\n  relative bandwidth efficiency "
              << Table::num(paper.weighted_expansion(8192) / kokkos.weighted_expansion(8192), 2)
              << " — the mechanism behind Table III's e_{A100} = 0.260 for Kokkos.\n";
  }

  // Functional check: every shape computes the same matrix.
  std::cout << "\nfunctional cross-check (n=64): ";
  constexpr std::size_t kN = 64;
  gpusim::DeviceContext ctx(spec);
  std::vector<double> hA(kN * kN);
  std::vector<double> hB(kN * kN);
  Xoshiro256 rng(99);
  fill_uniform(std::span<double>(hA), rng);
  fill_uniform(std::span<double>(hB), rng);
  gpusim::DeviceBuffer<double> dA(ctx, kN * kN);
  gpusim::DeviceBuffer<double> dB(ctx, kN * kN);
  dA.copy_from_host(hA);
  dB.copy_from_host(hB);

  std::vector<double> reference;
  bool all_match = true;
  for (const auto& s : shapes) {
    gpusim::DeviceBuffer<double> dC(ctx, kN * kN);
    gemm::GpuLaunchConfig cfg;
    cfg.block = s.block;
    gemm::gemm_cuda_style<double>(ctx, cfg, dA, dB, dC, kN, kN, kN);
    std::vector<double> hC(kN * kN);
    dC.copy_to_host(std::span<double>(hC));
    if (reference.empty()) {
      reference = hC;
    } else {
      all_match = all_match && gemm::max_abs_diff<double>(hC, reference) == 0.0;
    }
  }
  std::cout << (all_match ? "all block shapes agree bitwise" : "MISMATCH") << "\n";
  std::cout << "\nTakeaway: flat/tall shapes lose the square tile's reuse, inflating\n"
               "DRAM traffic ~an order of magnitude — the configuration question the\n"
               "paper raises for Kokkos' A100 results (Section IV-B).\n";

  BenchArtifact artifact("ablation_block_size");
  JsonWriter& w = artifact.writer();
  w.key("model_n");
  w.value(tune::kBlockModelN);
  w.key("square_blocks");
  w.begin_array();
  for (long edge : {4L, 8L, 16L, 32L}) {
    const tune::BlockModelStats s = tune::modeled_block_stats(edge);
    w.begin_object();
    w.key("block_edge");
    w.value(edge);
    w.key("occupancy");
    w.value(s.occupancy);
    w.key("traffic_bytes");
    w.value(s.traffic_bytes);
    w.key("coalescing_expansion");
    w.value(s.expansion);
    w.key("tuner_cost");
    w.value(tune::modeled_block_cost(edge));
    w.end_object();
  }
  w.end_array();
  w.key("functional_match");
  w.value(all_match);
  const int io = artifact.write(out_path);
  if (io != 0) return io;
  return all_match ? 0 : 1;
}
