// Variability table: the analysis the paper waives ("without doing an
// exhaustive variability analysis and only presenting the average
// expected value", Section IV), supplied by the variability model and
// bootstrap confidence intervals.
#include <iostream>

#include "common/stats.hpp"
#include "common/table.hpp"
#include "perfmodel/predict.hpp"
#include "perfmodel/variability.hpp"

int main() {
  using namespace portabench;
  using perfmodel::Family;
  using perfmodel::Platform;

  std::cout << "=== Variability analysis: repeated-run bands per platform ===\n";
  std::cout << "(10 repetitions, first excluded as warm-up — the paper's protocol;\n"
            << " bands from the platform variability model + bootstrap 95% CI)\n\n";

  Table t({"platform", "model", "modeled ms", "mean of 9 reps (ms)", "CV",
           "95% CI (ms)", "cold-start excess"});
  for (Platform p : perfmodel::kAllPlatforms) {
    const auto spec = perfmodel::VariabilitySpec::for_platform(p);
    for (Family f : {Family::kVendor, Family::kJulia}) {
      const std::size_t n = perfmodel::is_gpu(p) ? 8192 : 4096;
      const auto pt = perfmodel::predict(p, f, Precision::kDouble, n);
      if (!pt) continue;
      const double modeled_s =
          2.0 * static_cast<double>(n) * n * n / (pt->gflops * 1.0e9);
      const auto samples = perfmodel::sample_timings(spec, modeled_s, 10,
                                                     0xBEEF + static_cast<int>(f));
      RunStats stats(/*warmup=*/1);
      for (double s : samples) stats.add(s);
      const auto summary = stats.summary();
      const auto ci = bootstrap_mean_ci(stats.sample());
      std::string ci_cell = "[";
      ci_cell += Table::num(ci.lower * 1e3, 2);
      ci_cell += ", ";
      ci_cell += Table::num(ci.upper * 1e3, 2);
      ci_cell += "]";
      std::string cold_cell = Table::num(samples[0] / modeled_s - 1.0, 2);
      cold_cell += "x";
      t.add_row({std::string(perfmodel::arch_label(p)),
                 std::string(perfmodel::implementation_name(p, f)),
                 Table::num(modeled_s * 1e3, 2), Table::num(summary.mean * 1e3, 2),
                 Table::num(summary.stddev / summary.mean, 3), std::move(ci_cell),
                 std::move(cold_cell)});
    }
  }
  std::cout << t.to_markdown();
  std::cout << "\nReading: the warm-up exclusion removes a 0.5-2x cold-start excess;\n"
               "after it, run-to-run CVs sit at 0.8-3% — small against the 10-70%\n"
               "model-to-model gaps of Table III, supporting the paper's choice to\n"
               "report most-likely values (and its caveat that Julia's ~5% MI250X\n"
               "FP32 advantage 'could simply be the variability').\n";
  return 0;
}
