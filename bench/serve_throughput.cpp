// Serving-layer throughput bench: millions of small mixed jobs through
// the launch engine.
//
// Three measured phases, all driven by the deterministic serve::TraceGen
// (same seed → bit-for-bit the same trace):
//
//   small-gemm  the gated mix: tiled-frontend GEMMs in the bucket-batching
//               sweet spot.  Serial baseline replays every job through
//               serve::run_serial (the plain pre-existing frontends, one
//               job at a time); the served run streams the same trace
//               through ServeEngine's sharded queues and batched launches.
//               Every completed job's checksum is compared bitwise against
//               the serial oracle before any number is reported.
//   mixed       the full taxonomy (GEMM x 5 frontends x 3 precisions,
//               SpMV, stencil) at the default trace weights — reported,
//               not gated.
//   latency     open-loop Poisson arrivals against a fresh engine at a
//               rate derived from the measured served throughput; per-job
//               latency is completion time minus *scheduled* arrival
//               (open-loop: queueing delay counts), summarized as
//               p50/p99/p999 via percentile_of.
//
// BENCH_serve.json records sustained req/s, speedup, latency percentiles,
// and the engine's arena/backpressure accounting.  --require-throughput X
// makes the binary exit nonzero unless the small-gemm served/serial
// speedup reaches X — the CI release-bench job pins the PR's 5x target on
// >= 8-core runners.
//
// Usage: serve_throughput [--jobs N] [--latency-jobs N] [--shards N]
//                         [--batch N] [--min-n N] [--max-n N] [--rate R]
//                         [--seed S] [--require-throughput X] [--out PATH]
#include <algorithm>
#include <cmath>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "bench_json.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "common/timer.hpp"
#include "serve/engine.hpp"
#include "serve/serial.hpp"
#include "serve/trace.hpp"

namespace {

using namespace portabench;

struct Options {
  std::size_t jobs = 8000;          // small-gemm phase (mixed runs jobs/2)
  std::size_t latency_jobs = 3000;  // open-loop Poisson phase
  std::size_t shards = 4;
  std::size_t batch = 32;
  std::uint32_t min_n = 32;
  std::uint32_t max_n = 80;
  double rate = 0.0;  // Poisson arrival rate (req/s); 0 = derive from measured
  std::uint64_t seed = 1;
  double require_throughput = 0.0;  // minimum small-gemm speedup; 0 = report only
  std::string out = "BENCH_serve.json";
};

/// Result of replaying one trace serially and then through the engine.
struct PhaseResult {
  std::size_t jobs = 0;
  double serial_s = 0.0;
  double served_s = 0.0;
  double serial_rps = 0.0;
  double served_rps = 0.0;
  double speedup = 0.0;
  std::uint64_t batches = 0;
  std::uint64_t backpressure_rejects = 0;
  std::size_t arena_high_water = 0;
  std::uint64_t arena_grow_events = 0;
  bool bitwise_identical = false;
};

/// Serial oracle + served replay of one trace, with bitwise verification.
PhaseResult run_phase(const Options& opt, const serve::TraceConfig& trace_cfg,
                      std::size_t jobs) {
  PhaseResult r;
  r.jobs = jobs;

  serve::TraceGen gen(trace_cfg);
  std::vector<serve::JobDesc> trace;
  trace.reserve(jobs);
  for (std::size_t i = 0; i < jobs; ++i) trace.push_back(gen.next());

  // Serial baseline: every job through the plain frontends, one at a time.
  std::vector<double> expected(jobs);
  {
    Timer timer;
    for (std::size_t i = 0; i < jobs; ++i) {
      expected[i] = serve::run_serial(trace[i]).checksum;
    }
    r.serial_s = timer.seconds();
  }

  // Served run: same trace through the sharded, batched engine.  Each
  // result lands in its own id-indexed slot, so completion callbacks from
  // different shard flush threads never touch the same element; drain()
  // orders those writes before the verification reads.
  std::vector<double> served(jobs, 0.0);
  std::vector<unsigned char> completed(jobs, 0);
  serve::ServeConfig cfg;
  cfg.shards = opt.shards;
  cfg.batch_jobs = opt.batch;
  cfg.max_n = std::max(trace_cfg.max_n, opt.max_n);
  cfg.on_complete = [&](const serve::JobResult& res) {
    served[res.id] = res.checksum;
    completed[res.id] = res.status == serve::JobStatus::kOk ? 1 : 2;
  };
  {
    serve::ServeEngine engine(cfg);
    Timer timer;
    for (const auto& d : trace) {
      // Bounded-queue backpressure: a full shard sheds the request with a
      // typed reject; the open-throttle bench simply resubmits.
      while (engine.try_submit(d) == serve::AdmitError::kQueueFull) {
      }
    }
    engine.drain();
    r.served_s = timer.seconds();

    const serve::ServeStats st = engine.stats();
    r.batches = st.batches;
    r.backpressure_rejects =
        st.rejected_by[static_cast<std::size_t>(serve::AdmitError::kQueueFull)];
    r.arena_high_water = st.arena_high_water;
    r.arena_grow_events = st.arena_grow_events;
  }

  r.bitwise_identical = true;
  for (std::size_t i = 0; i < jobs; ++i) {
    if (completed[i] != 1 || served[i] != expected[i]) {
      r.bitwise_identical = false;
      std::cerr << "FAILED: job " << i << " (" << name(trace[i].kind) << "/"
                << name(trace[i].frontend) << " n=" << trace[i].n << ") served "
                << served[i] << " vs serial " << expected[i] << "\n";
      break;
    }
  }

  r.serial_rps = static_cast<double>(jobs) / r.serial_s;
  r.served_rps = static_cast<double>(jobs) / r.served_s;
  r.speedup = r.serial_s / r.served_s;
  return r;
}

struct LatencyResult {
  std::size_t jobs = 0;
  double rate_rps = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double p999_ms = 0.0;
  double max_ms = 0.0;
};

/// Open-loop Poisson load: arrivals are scheduled up front from the seed
/// and submitted on schedule regardless of completion progress, so
/// latency includes every queueing effect.
LatencyResult run_latency(const Options& opt, const serve::TraceConfig& trace_cfg,
                          double rate_rps) {
  LatencyResult lr;
  lr.jobs = opt.latency_jobs;
  lr.rate_rps = rate_rps;

  serve::TraceGen gen(trace_cfg);
  std::vector<serve::JobDesc> trace;
  trace.reserve(lr.jobs);
  for (std::size_t i = 0; i < lr.jobs; ++i) trace.push_back(gen.next());

  // Exponential inter-arrival gaps, deterministic for the seed.
  std::vector<double> arrival(lr.jobs);
  Xoshiro256 rng(opt.seed ^ 0x9E3779B97F4A7C15ULL);
  double t = 0.0;
  for (std::size_t i = 0; i < lr.jobs; ++i) {
    const double u = std::min(rng.uniform(), 0.999999999);
    t += -std::log(1.0 - u) / rate_rps;
    arrival[i] = t;
  }

  std::vector<double> done(lr.jobs, 0.0);
  serve::ServeConfig cfg;
  cfg.shards = opt.shards;
  cfg.batch_jobs = opt.batch;
  cfg.max_n = std::max(trace_cfg.max_n, opt.max_n);
  Timer clock;
  cfg.on_complete = [&](const serve::JobResult& res) { done[res.id] = clock.seconds(); };
  serve::ServeEngine engine(cfg);

  clock.reset();
  for (std::size_t i = 0; i < lr.jobs; ++i) {
    while (clock.seconds() < arrival[i]) {
      // open-loop pacing: spin until the scheduled arrival instant
    }
    while (engine.try_submit(trace[i]) == serve::AdmitError::kQueueFull) {
    }
  }
  engine.drain();

  std::vector<double> latency_ms(lr.jobs);
  for (std::size_t i = 0; i < lr.jobs; ++i) {
    latency_ms[i] = (done[i] - arrival[i]) * 1e3;
  }
  lr.p50_ms = percentile_of(latency_ms, 50.0);
  lr.p99_ms = percentile_of(latency_ms, 99.0);
  lr.p999_ms = percentile_of(latency_ms, 99.9);
  lr.max_ms = *std::max_element(latency_ms.begin(), latency_ms.end());
  return lr;
}

void write_phase(JsonWriter& w, const PhaseResult& r) {
  w.begin_object();
  w.key("jobs");
  w.value(r.jobs);
  w.key("serial_s");
  w.value(r.serial_s);
  w.key("served_s");
  w.value(r.served_s);
  w.key("serial_rps");
  w.value(r.serial_rps);
  w.key("served_rps");
  w.value(r.served_rps);
  w.key("speedup");
  w.value(r.speedup);
  w.key("batches");
  w.value(static_cast<std::size_t>(r.batches));
  w.key("backpressure_rejects");
  w.value(static_cast<std::size_t>(r.backpressure_rejects));
  w.key("arena_high_water_bytes");
  w.value(r.arena_high_water);
  w.key("arena_grow_events");
  w.value(static_cast<std::size_t>(r.arena_grow_events));
  w.key("bitwise_identical");
  w.value(r.bitwise_identical);
  w.end_object();
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
      opt.jobs = static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--latency-jobs") == 0 && i + 1 < argc) {
      opt.latency_jobs = static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--shards") == 0 && i + 1 < argc) {
      opt.shards = static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--batch") == 0 && i + 1 < argc) {
      opt.batch = static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--min-n") == 0 && i + 1 < argc) {
      opt.min_n = static_cast<std::uint32_t>(std::strtoul(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--max-n") == 0 && i + 1 < argc) {
      opt.max_n = static_cast<std::uint32_t>(std::strtoul(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--rate") == 0 && i + 1 < argc) {
      opt.rate = std::strtod(argv[++i], nullptr);
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      opt.seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--require-throughput") == 0 && i + 1 < argc) {
      opt.require_throughput = std::strtod(argv[++i], nullptr);
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      opt.out = argv[++i];
    } else {
      std::cerr << "usage: serve_throughput [--jobs N] [--latency-jobs N] "
                   "[--shards N] [--batch N] [--min-n N] [--max-n N] [--rate R] "
                   "[--seed S] [--require-throughput X] [--out PATH]\n";
      return 2;
    }
  }

  std::cout << "=== serve_throughput: sharded batched serving vs serial replay "
            << "(shards = " << opt.shards << ", batch = " << opt.batch << ") ===\n\n";

  // The gated mix: tiled-frontend small GEMMs (the bucket-batching target).
  serve::TraceConfig small_gemm;
  small_gemm.seed = opt.seed;
  small_gemm.min_n = opt.min_n;
  small_gemm.max_n = opt.max_n;
  small_gemm.spmv_weight = 0;
  small_gemm.stencil_weight = 0;
  small_gemm.tiled_only = true;
  const PhaseResult gemm_phase = run_phase(opt, small_gemm, opt.jobs);

  // The full taxonomy at the default trace weights — reported, not gated.
  serve::TraceConfig mixed;
  mixed.seed = opt.seed + 1;
  mixed.min_n = opt.min_n;
  mixed.max_n = opt.max_n;
  const PhaseResult mixed_phase = run_phase(opt, mixed, std::max<std::size_t>(opt.jobs / 2, 1));

  if (!gemm_phase.bitwise_identical || !mixed_phase.bitwise_identical) {
    std::cerr << "FAILED: served results are not bitwise-identical to serial replay\n";
    return 1;
  }

  Table table({"mix", "jobs", "serial req/s", "served req/s", "speedup", "batches",
               "sheds"});
  const auto add = [&](const char* label, const PhaseResult& r) {
    table.add_row({label, std::to_string(r.jobs), Table::num(r.serial_rps, 0),
                   Table::num(r.served_rps, 0), Table::num(r.speedup, 2),
                   std::to_string(r.batches), std::to_string(r.backpressure_rejects)});
  };
  add("small-gemm", gemm_phase);
  add("mixed", mixed_phase);
  std::cout << "-- sustained throughput, bitwise-verified against run_serial --\n"
            << table.to_markdown() << "\n";

  // Open-loop latency at ~60% of the measured served throughput (or the
  // explicit --rate), over the gated small-GEMM mix.
  const double rate = opt.rate > 0.0 ? opt.rate : 0.6 * gemm_phase.served_rps;
  const LatencyResult lat = run_latency(opt, small_gemm, rate);
  std::cout << "-- open-loop Poisson latency @ " << Table::num(lat.rate_rps, 0)
            << " req/s over " << lat.jobs << " jobs --\n"
            << "p50 = " << Table::num(lat.p50_ms, 3) << " ms, p99 = "
            << Table::num(lat.p99_ms, 3) << " ms, p999 = " << Table::num(lat.p999_ms, 3)
            << " ms, max = " << Table::num(lat.max_ms, 3) << " ms\n\n";

  std::cout << "arena: high water = " << gemm_phase.arena_high_water << " bytes, "
            << gemm_phase.arena_grow_events << " grow events (small-gemm mix)\n";

  // --- machine-readable artifact --------------------------------------------
  BenchArtifact artifact("serve_throughput");
  JsonWriter& w = artifact.writer();
  w.key("shards");
  w.value(opt.shards);
  w.key("batch_jobs");
  w.value(opt.batch);
  w.key("min_n");
  w.value(static_cast<std::size_t>(opt.min_n));
  w.key("max_n");
  w.value(static_cast<std::size_t>(opt.max_n));
  w.key("seed");
  w.value(static_cast<std::size_t>(opt.seed));
  w.key("small_gemm");
  write_phase(w, gemm_phase);
  w.key("mixed");
  write_phase(w, mixed_phase);
  w.key("latency");
  w.begin_object();
  w.key("jobs");
  w.value(lat.jobs);
  w.key("rate_rps");
  w.value(lat.rate_rps);
  w.key("p50_ms");
  w.value(lat.p50_ms);
  w.key("p99_ms");
  w.value(lat.p99_ms);
  w.key("p999_ms");
  w.value(lat.p999_ms);
  w.key("max_ms");
  w.value(lat.max_ms);
  w.end_object();
  w.key("required_speedup");
  w.value(opt.require_throughput);
  if (const int rc = artifact.write(opt.out); rc != 0) return rc;

  if (opt.require_throughput > 0.0 && gemm_phase.speedup < opt.require_throughput) {
    std::cerr << "FAILED: small-gemm served speedup " << gemm_phase.speedup
              << "x is below the " << opt.require_throughput << "x requirement\n";
    return 1;
  }
  return 0;
}
