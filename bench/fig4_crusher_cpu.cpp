// Figure 4: Crusher multithreaded CPU performance (AMD EPYC 7A53, 64
// threads across 4 NUMA regions) — double (4a) and single (4b) precision
// for C/OpenMP, Kokkos/OpenMP, Julia Threads, and Python/Numba.
#include "harness.hpp"

int main(int argc, char** argv) {
  using namespace portabench;
  const auto options = bench::parse_options(argc, argv);
  return bench::run_figure(
      perfmodel::Platform::kCrusherCpu, "Figure 4",
      {{"(a) double precision, 64 threads / 4 NUMA", Precision::kDouble},
       {"(b) single precision, 64 threads / 4 NUMA", Precision::kSingle}},
      options);
}
