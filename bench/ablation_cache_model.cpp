// Ablation: trace-driven validation of the analytical CPU traffic law.
//
// perfmodel::CpuMachineModel assumes B re-streams from DRAM once per round
// of concurrent rows unless it fits in the LLC.  Here the cache simulator
// replays the real kernel address streams at reduced sizes through
// EPYC-7A53-shaped and Altra-shaped hierarchies and compares measured
// DRAM bytes against the analytical law evaluated at the same (scaled)
// geometry.
#include <iostream>

#include "cachesim/gemm_trace.hpp"
#include "common/table.hpp"
#include "perfmodel/machine_model.hpp"

int main() {
  using namespace portabench;
  using cachesim::Hierarchy;

  std::cout << "=== Ablation: cache-simulator check of the traffic law ===\n\n";

  // Scaled experiment: a single core with a private LLC share, problem
  // sizes spanning the B-fits / B-doesn't-fit transition of that share.
  struct Config {
    const char* label;
    double llc_share_bytes;
    Hierarchy (*make)();
  };

  std::cout << "scaled single-core geometry (8 KiB L1 + 64 KiB LLC), FP64,\n"
               "rows traced = all of a single-thread GEMM\n";
  Table t({"n", "B bytes", "LLC share", "measured DRAM (KB)", "analytical DRAM (KB)",
           "ratio", "regime"});

  for (std::size_t n : {32u, 64u, 96u, 128u, 160u}) {
    Hierarchy h;
    h.add_level("L1", 8 * 1024, 64, 8);
    h.add_level("LLC-share", 64 * 1024, 64, 16);
    const auto trace = cachesim::trace_openmp_gemm(h, n, 8, 0, n);

    // Analytical law at the same geometry: 1 thread, LLC = the share.
    perfmodel::CpuSpec spec = perfmodel::CpuSpec::epyc_7a53();
    spec.cores = 1;
    spec.numa_domains = 1;
    spec.l3_bytes = 64.0 * 1024.0;
    const perfmodel::CpuMachineModel model(spec);
    const double analytical = model.dram_traffic_bytes(Precision::kDouble, n, 1);

    const double b_bytes = static_cast<double>(n) * n * 8;
    t.add_row({std::to_string(n), Table::num(b_bytes / 1024, 0) + " KB", "64 KB",
               Table::num(static_cast<double>(trace.dram_bytes) / 1024.0, 1),
               Table::num(analytical / 1024.0, 1),
               Table::num(static_cast<double>(trace.dram_bytes) / analytical, 2),
               b_bytes <= 64.0 * 1024.0 ? "B cached" : "B re-streams"});
  }
  std::cout << t.to_markdown();

  std::cout << "\nLayout mirror check (n=96): the Julia column-major walk's traffic\n";
  {
    auto make_scaled = [] {
      Hierarchy h;
      h.add_level("L1", 8 * 1024, 64, 8);
      h.add_level("LLC-share", 64 * 1024, 64, 16);
      return h;
    };
    Hierarchy h1 = make_scaled();
    Hierarchy h2 = make_scaled();
    const auto row_major = cachesim::trace_openmp_gemm(h1, 96, 8, 0, 96);
    const auto col_major = cachesim::trace_julia_gemm(h2, 96, 8, 0, 96);
    std::cout << "  row-major i-k-j: " << row_major.dram_bytes / 1024 << " KB;  "
              << "column-major j-l-i: " << col_major.dram_bytes / 1024 << " KB  "
              << "(Section III: loop nests chosen per layout 'to ensure\n"
                 "   equivalent computational workloads')\n";
  }

  std::cout << "\nTakeaway: the coarse analytical law tracks the simulated hierarchy\n"
               "within ~2x deep inside each regime and reproduces the\n"
               "cached->streaming transition that shapes the figures' large-n\n"
               "behaviour.  Right at the transition (B barely exceeding the LLC)\n"
               "the law's smooth uncached-fraction interpolation undershoots the\n"
               "simulator's LRU cliff — thrashing evicts B before any reuse — a\n"
               "known limit of capacity-fraction traffic models.\n";
  return 0;
}
