// tuned_vs_default: prove the tuning cache helps and never hurts.
//
// For every tunable timed workload (tiled GEMM at each precision, simrt
// dispatch, gpusim launch, serve batching) this bench resolves a tuned
// config — from a warm cache (--cache / PORTABENCH_TUNE_CACHE) when one
// matches this machine's fingerprint, else a bounded in-process search —
// then measures default and tuned interleaved and enforces two
// contracts:
//
//   never worse: if the tuned config fails to beat the default beyond
//     the default's own noise floor, the bench REVERTS it to the default
//     (recorded as "reverted") — so the emitted tuned_ms is >= default
//     only within noise, by construction;
//   bitwise: each workload re-runs under the tuned schedule and checks
//     the results are bit-identical to the default/serial reference
//     (tuning moves schedule knobs, never fp combination order).
//
// Emits BENCH_tune.json.  --require-never-worse and --require-best=R
// turn the contracts into exit-code gates for CI.
#include <algorithm>
#include <cstdint>
#include <cstring>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench_json.hpp"
#include "common/cli.hpp"
#include "common/precision.hpp"
#include "common/rng.hpp"
#include "gemm/kernels_tiled.hpp"
#include "gpusim/device.hpp"
#include "gpusim/engine.hpp"
#include "gpusim/tunables.hpp"
#include "primitives/scan.hpp"
#include "primitives/serial.hpp"
#include "primitives/sort.hpp"
#include "serve/engine.hpp"
#include "serve/serial.hpp"
#include "simrt/mdarray.hpp"
#include "simrt/parallel.hpp"
#include "simrt/tunables.hpp"
#include "tune/cache.hpp"
#include "tune/fingerprint.hpp"
#include "tune/objectives.hpp"
#include "tune/params.hpp"
#include "tune/search.hpp"

namespace {

using namespace portabench;

struct Options {
  std::string out = "BENCH_tune.json";
  std::string cache;          // empty: in-process tune
  double require_best = 0.0;  // 0: no gate
  bool require_never_worse = false;
  bool quick = false;
  int reps = 5;
  double budget_ms = 1500.0;
  std::size_t n = 320;
};

struct WorkloadResult {
  std::string name;
  std::string space;
  std::string precision = "-";
  std::uint32_t size_class = 0;
  tune::Config config;
  double default_ms = 0.0;
  double tuned_ms = 0.0;
  double noise_ms = 0.0;
  bool from_cache = false;
  bool reverted = false;
  bool bitwise_match = true;
};

struct Workload {
  std::string name;
  std::string space;
  std::string precision = "-";
  std::uint32_t size_class = 0;
  tune::Objective objective;
};

// --------------------------------------------------------------------------
// Bitwise contract checks: tuned schedule vs default/serial reference.

template <class T, class Acc>
bool gemm_bitwise_check(const gemm::TileConfig& tuned) {
  constexpr std::size_t n = 96;
  std::vector<T> a(n * n), b(n * n);
  Xoshiro256 rng(7);
  for (std::size_t i = 0; i < n * n; ++i) {
    a[i] = static_cast<T>(rng.uniform() - 0.5);
    b[i] = static_cast<T>(rng.uniform() - 0.5);
  }
  const simrt::RawView2<const T> A(a.data(), n, n);
  const simrt::RawView2<const T> B(b.data(), n, n);

  std::vector<Acc> c_ref(n * n, Acc{});
  {
    simrt::RawView2<Acc> C(c_ref.data(), n, n);
    gemm::gemm_tiled<Acc>(simrt::SerialSpace{}, A, B, C);  // default, serial
  }
  std::vector<Acc> c_tuned(n * n, Acc{});
  {
    simrt::ThreadsSpace space(std::max<std::size_t>(2, std::thread::hardware_concurrency()));
    simrt::RawView2<Acc> C(c_tuned.data(), n, n);
    gemm::gemm_tiled<Acc>(space, A, B, C, tuned);
  }
  return std::memcmp(c_ref.data(), c_tuned.data(), n * n * sizeof(Acc)) == 0;
}

bool gemm_bitwise_for(Precision p, const tune::Config& cfg) {
  gemm::TileConfig tc;
  const tune::SpaceDesc* space = tune::find_space("gemm-tile");
  tc.mc = static_cast<std::size_t>(std::max(1L, tune::config_value(*space, cfg, "mc")));
  tc.kc = static_cast<std::size_t>(std::max(1L, tune::config_value(*space, cfg, "kc")));
  tc.tier = static_cast<int>(tune::config_value(*space, cfg, "tier"));
  switch (p) {
    case Precision::kDouble: return gemm_bitwise_check<double, double>(tc);
    case Precision::kSingle: return gemm_bitwise_check<float, float>(tc);
    case Precision::kHalfIn: return gemm_bitwise_check<half, float>(tc);
  }
  return false;
}

/// parallel_for (disjoint writes) + sum-reduce under default vs tuned
/// dispatch tunables must match bit for bit: the static reduce blocks
/// depend only on the thread count, never on the fork/chunk knobs.
bool dispatch_bitwise(const tune::Config& cfg) {
  const tune::SpaceDesc* space = tune::find_space("dispatch");
  const std::size_t extent = 4097;  // straddles typical cutoff boundaries
  simrt::ThreadsSpace ts(std::max<std::size_t>(2, std::thread::hardware_concurrency()));

  const auto run = [&](std::vector<double>& data, double& sum) {
    simrt::parallel_for(ts, simrt::RangePolicy(0, extent), [&data](std::size_t i) {
      data[i] = static_cast<double>(i) * 1.0000001 + 0.25;
    });
    simrt::parallel_reduce(ts, simrt::RangePolicy(0, extent),
                           [&data](std::size_t i, double& acc) { acc += data[i] * 1.5; },
                           sum);
  };

  std::vector<double> d_def(extent), d_tuned(extent);
  double s_def = 0.0, s_tuned = 0.0;
  const simrt::DispatchTunables prev = simrt::dispatch_tunables();
  simrt::reset_dispatch_tunables();
  run(d_def, s_def);
  simrt::DispatchTunables t;
  t.fork_cutoff =
      static_cast<std::size_t>(std::max(0L, tune::config_value(*space, cfg, "fork_cutoff")));
  t.chunks_per_thread = static_cast<std::size_t>(
      std::max(1L, tune::config_value(*space, cfg, "chunks_per_thread")));
  t.min_grain =
      static_cast<std::size_t>(std::max(1L, tune::config_value(*space, cfg, "min_grain")));
  simrt::set_dispatch_tunables(t);
  run(d_tuned, s_tuned);
  simrt::set_dispatch_tunables(prev);
  return std::memcmp(d_def.data(), d_tuned.data(), extent * sizeof(double)) == 0 &&
         std::memcmp(&s_def, &s_tuned, sizeof(double)) == 0;
}

bool launch_bitwise(const tune::Config& cfg) {
  const tune::SpaceDesc* space = tune::find_space("launch");
  const std::size_t blocks = 257;
  const auto run = [&](std::vector<double>& sink) {
    gpusim::LaunchEngine::shared().run_blocks(
        blocks, blocks * 64,
        [&sink](std::size_t, std::size_t b) { sink[b] += static_cast<double>(b) * 0.5; });
  };
  std::vector<double> s_def(blocks, 1.0), s_tuned(blocks, 1.0);
  const gpusim::LaunchTunables prev = gpusim::launch_tunables();
  gpusim::reset_launch_tunables();
  run(s_def);
  gpusim::LaunchTunables t;
  t.fork_cutoff =
      static_cast<std::size_t>(std::max(0L, tune::config_value(*space, cfg, "fork_cutoff")));
  t.chunks_per_worker = static_cast<std::size_t>(
      std::max(1L, tune::config_value(*space, cfg, "chunks_per_worker")));
  gpusim::set_launch_tunables(t);
  run(s_tuned);
  gpusim::set_launch_tunables(prev);
  return std::memcmp(s_def.data(), s_tuned.data(), blocks * sizeof(double)) == 0;
}

/// Served checksums under the tuned batch size must equal the serial
/// oracle's — batch size changes flush boundaries, never job math.
bool serve_bitwise(const tune::Config& cfg) {
  const tune::SpaceDesc* space = tune::find_space("serve-batch");
  std::vector<serve::JobDesc> jobs;
  std::uint64_t id = 0;
  for (const Precision p : {Precision::kDouble, Precision::kSingle, Precision::kHalfIn}) {
    for (const std::uint32_t n : {24u, 48u, 64u}) {
      serve::JobDesc d;
      d.id = id++;
      d.kind = serve::JobKind::kGemm;
      d.frontend = serve::Frontend::kTiled;
      d.precision = p;
      d.n = n;
      d.seed = 0x9e3779b97f4a7c15ull ^ (id * 2654435761ull);
      jobs.push_back(d);
    }
  }

  std::map<std::uint64_t, double> got;
  // on_complete fires on the serve flush workers, so the collection map
  // needs a real lock.
  std::mutex mu;  // portalint: raw-thread-ok(guards checksum collection from serve completion threads)
  serve::ServeConfig sc;
  sc.batch_jobs = static_cast<std::size_t>(
      std::max(1L, tune::config_value(*space, cfg, "batch_jobs")));
  sc.on_complete = [&](const serve::JobResult& r) {
    const std::lock_guard<std::mutex> lock(mu);  // portalint: raw-thread-ok(see mu above)
    got[r.id] = r.checksum;
  };
  {
    serve::ServeEngine engine(sc);
    for (const serve::JobDesc& d : jobs) {
      if (engine.try_submit(d) != serve::AdmitError::kNone) return false;
    }
    engine.drain();
  }
  for (const serve::JobDesc& d : jobs) {
    const double want = serve::run_serial(d).checksum;
    const auto it = got.find(d.id);
    if (it == got.end()) return false;
    if (std::memcmp(&it->second, &want, sizeof(double)) != 0) return false;
  }
  return true;
}

/// Sorted (key, value) output under the tuned radix schedule must equal
/// std::stable_sort over the key bijection — every knob (digit width,
/// tile, lanes) is pure schedule.
bool radix_bitwise(const tune::Config& cfg) {
  const tune::SpaceDesc* space = tune::find_space("primitives-radix");
  primitives::SortConfig sc;
  sc.radix_bits = static_cast<unsigned>(
      std::clamp(tune::config_value(*space, cfg, "radix_bits"), 1L, 8L));
  sc.chunk = static_cast<std::size_t>(
      std::max(1L, tune::config_value(*space, cfg, "chunk")));
  sc.lanes = static_cast<std::size_t>(
      std::max(1L, tune::config_value(*space, cfg, "lanes")));

  constexpr std::size_t n = 4099;  // prime: ragged tiles and lane slices
  std::vector<std::uint64_t> keys(n), values(n);
  Xoshiro256 rng(11);
  for (std::size_t i = 0; i < n; ++i) {
    keys[i] = rng() & 0xffffull;  // dense duplicates exercise stability
    values[i] = i;
  }
  std::vector<std::uint64_t> ref_keys = keys, ref_values = values;
  primitives::sort_pairs_oracle(std::span<std::uint64_t>(ref_keys),
                                std::span<std::uint64_t>(ref_values));

  gpusim::DeviceContext ctx(gpusim::GpuSpec::a100());
  primitives::device_radix_sort_pairs<std::uint64_t, std::uint64_t>(
      ctx, std::span<std::uint64_t>(keys), std::span<std::uint64_t>(values), sc);
  return std::memcmp(keys.data(), ref_keys.data(), n * sizeof(std::uint64_t)) == 0 &&
         std::memcmp(values.data(), ref_values.data(), n * sizeof(std::uint64_t)) == 0;
}

/// fp exclusive scan under the tuned schedule must equal both the default
/// schedule and the serial oracle bit for bit: chunk/lanes only remap the
/// frozen kSegment slices onto blocks.
bool scan_bitwise(const tune::Config& cfg) {
  const tune::SpaceDesc* space = tune::find_space("primitives-scan");
  primitives::ScanConfig tuned;
  tuned.chunk = static_cast<std::size_t>(
      std::max(1L, tune::config_value(*space, cfg, "chunk")));
  tuned.lanes = static_cast<std::size_t>(
      std::max(1L, tune::config_value(*space, cfg, "lanes")));

  constexpr std::size_t n = 10007;  // prime: ragged final segment
  std::vector<double> in(n);
  Xoshiro256 rng(13);
  for (std::size_t i = 0; i < n; ++i) in[i] = rng.uniform() - 0.5;

  std::vector<double> ref(n);
  primitives::exclusive_scan_oracle(std::span<const double>(in), std::span<double>(ref),
                                    primitives::SumOp<double>{});

  gpusim::DeviceContext ctx(gpusim::GpuSpec::a100());
  std::vector<double> out_def(n), out_tuned(n);
  primitives::device_exclusive_scan(ctx, std::span<const double>(in),
                                    std::span<double>(out_def),
                                    primitives::SumOp<double>{});
  primitives::device_exclusive_scan(ctx, std::span<const double>(in),
                                    std::span<double>(out_tuned),
                                    primitives::SumOp<double>{}, tuned);
  return std::memcmp(out_def.data(), ref.data(), n * sizeof(double)) == 0 &&
         std::memcmp(out_tuned.data(), ref.data(), n * sizeof(double)) == 0;
}

bool bitwise_check(const Workload& w, const tune::Config& cfg) {
  if (w.space == "gemm-tile") {
    for (const Precision p : {Precision::kDouble, Precision::kSingle, Precision::kHalfIn}) {
      if (w.precision == name(p)) return gemm_bitwise_for(p, cfg);
    }
    return false;
  }
  if (w.space == "dispatch") return dispatch_bitwise(cfg);
  if (w.space == "launch") return launch_bitwise(cfg);
  if (w.space == "serve-batch") return serve_bitwise(cfg);
  if (w.space == "primitives-radix") return radix_bitwise(cfg);
  if (w.space == "primitives-scan") return scan_bitwise(cfg);
  return true;
}

// --------------------------------------------------------------------------

double median_of(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  return v.empty() ? 0.0 : v[v.size() / 2];
}

WorkloadResult run_workload(const Workload& w, const tune::TuningCache& cache,
                            std::uint64_t fp_hash, const Options& opt) {
  WorkloadResult r;
  r.name = w.name;
  r.space = w.space;
  r.precision = w.precision;
  r.size_class = w.size_class;

  const tune::SpaceDesc* space = tune::find_space(w.space);
  const tune::Config defaults = tune::default_config(*space);

  // Resolve the tuned candidate: warm cache first, else bounded search.
  const tune::CacheEntry* hit =
      cache.find(w.space, w.precision, w.size_class, fp_hash);
  if (hit != nullptr) {
    r.config = hit->config;
    r.from_cache = true;
  } else {
    tune::SearchOptions so;
    so.reps = opt.quick ? 2 : 3;
    so.warmup = 1;
    so.budget_ms = opt.budget_ms;
    r.config = tune::tune_space(*space, w.objective, so).best;
  }

  // Interleaved default/tuned measurement (drift cancels pairwise).
  (void)w.objective(defaults);  // warmup
  (void)w.objective(r.config);
  std::vector<double> ds, ts;
  for (int i = 0; i < opt.reps; ++i) {
    ds.push_back(w.objective(defaults));
    ts.push_back(w.objective(r.config));
  }
  std::sort(ds.begin(), ds.end());
  r.default_ms = median_of(ds);
  r.tuned_ms = median_of(ts);
  const double iqr = ds[(3 * ds.size()) / 4] - ds[ds.size() / 4];
  r.noise_ms = std::max(iqr, 0.02 * r.default_ms);

  // Never-worse contract: a tuned config that cannot hold its win under
  // re-measurement is not shipped — revert to the default.
  if (r.tuned_ms > r.default_ms + r.noise_ms) {
    r.config = defaults;
    r.tuned_ms = r.default_ms;
    r.reverted = true;
  }

  r.bitwise_match = bitwise_check(w, r.config);
  return r;
}

int run(const Options& opt) {
  const tune::MachineFingerprint fp = tune::local_fingerprint();
  const std::uint64_t fp_hash = tune::fingerprint_hash(fp);

  tune::TuningCache cache;
  if (!opt.cache.empty()) {
    const tune::CacheLoadResult lr = cache.load(opt.cache);
    if (lr.status != tune::CacheLoadStatus::kOk) {
      std::fprintf(stderr, "tuned_vs_default: %s (tuning in-process)\n",
                   lr.warning.empty() ? tune::cache_status_name(lr.status)
                                      : lr.warning.c_str());
    }
  }

  const std::size_t n = opt.quick ? std::min<std::size_t>(opt.n, 160) : opt.n;
  const std::uint32_t sc = serve::size_class(static_cast<std::uint32_t>(n));
  const std::size_t serve_jobs = opt.quick ? 256 : 1024;

  std::vector<Workload> workloads;
  for (const Precision p : {Precision::kDouble, Precision::kSingle, Precision::kHalfIn}) {
    workloads.push_back({std::string("gemm_") + std::string(name(p)), "gemm-tile",
                         std::string(name(p)), sc, tune::gemm_tile_objective(p, n)});
  }
  workloads.push_back({"dispatch", "dispatch", "-", 0, tune::dispatch_objective()});
  workloads.push_back({"launch", "launch", "-", 0, tune::launch_objective()});
  workloads.push_back(
      {"serve_batch", "serve-batch", "-", 0, tune::serve_batch_objective(serve_jobs)});
  workloads.push_back({"prim_radix", "primitives-radix", "-", 0,
                       tune::primitives_radix_objective(opt.quick ? (1u << 15) : (1u << 17))});
  workloads.push_back({"prim_scan", "primitives-scan", "-", 0,
                       tune::primitives_scan_objective(opt.quick ? (1u << 16) : (1u << 19))});

  std::vector<WorkloadResult> results;
  double best_speedup = 1.0;
  bool all_bitwise = true;
  bool never_worse = true;
  for (const Workload& w : workloads) {
    WorkloadResult r = run_workload(w, cache, fp_hash, opt);
    const double speedup = r.tuned_ms > 0.0 ? r.default_ms / r.tuned_ms : 1.0;
    best_speedup = std::max(best_speedup, speedup);
    all_bitwise = all_bitwise && r.bitwise_match;
    never_worse = never_worse && r.tuned_ms <= r.default_ms + r.noise_ms;
    std::printf("%-10s default %9.3f ms  tuned %9.3f ms  x%.2f%s%s%s\n", r.name.c_str(),
                r.default_ms, r.tuned_ms, speedup, r.from_cache ? "  [cache]" : "",
                r.reverted ? "  [reverted]" : "",
                r.bitwise_match ? "" : "  BITWISE MISMATCH");
    results.push_back(std::move(r));
  }

  BenchArtifact artifact("tuned_vs_default");
  JsonWriter& w = artifact.writer();
  w.key("machine");
  w.begin_object();
  w.key("fingerprint_key");
  w.value(tune::fingerprint_key(fp));
  w.key("cores");
  w.value(static_cast<std::size_t>(fp.cores));
  w.key("simd_tier");
  w.value(fp.simd_tier);
  w.end_object();
  w.key("cache_path");
  w.value(opt.cache);
  w.key("gemm_n");
  w.value(n);
  w.key("workloads");
  w.begin_array();
  for (const WorkloadResult& r : results) {
    w.begin_object();
    w.key("name");
    w.value(r.name);
    w.key("space");
    w.value(r.space);
    w.key("precision");
    w.value(r.precision);
    w.key("size_class");
    w.value(static_cast<std::size_t>(r.size_class));
    w.key("default_ms");
    w.value(r.default_ms);
    w.key("tuned_ms");
    w.value(r.tuned_ms);
    w.key("noise_ms");
    w.value(r.noise_ms);
    w.key("speedup");
    w.value(r.tuned_ms > 0.0 ? r.default_ms / r.tuned_ms : 1.0);
    w.key("from_cache");
    w.value(r.from_cache);
    w.key("reverted");
    w.value(r.reverted);
    w.key("bitwise_match");
    w.value(r.bitwise_match);
    w.key("config");
    w.begin_object();
    for (const auto& [k, v] : r.config) {
      w.key(k);
      w.value(v);
    }
    w.end_object();
    w.end_object();
  }
  w.end_array();
  w.key("best_speedup");
  w.value(best_speedup);
  w.key("never_worse");
  w.value(never_worse);
  w.key("all_bitwise");
  w.value(all_bitwise);

  const int io = artifact.write(opt.out);
  if (io != 0) return io;
  if (!all_bitwise) {
    std::fprintf(stderr, "FAILED: tuned schedule changed results bitwise\n");
    return 1;
  }
  if (opt.require_never_worse && !never_worse) {
    std::fprintf(stderr, "FAILED: a tuned config measured worse than default\n");
    return 1;
  }
  if (opt.require_best > 0.0 && best_speedup < opt.require_best) {
    std::fprintf(stderr, "FAILED: best speedup x%.2f below required x%.2f\n",
                 best_speedup, opt.require_best);
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli;
  cli.option("out", "artifact path", "BENCH_tune.json")
      .option("cache", "warm tuning cache (default: $PORTABENCH_TUNE_CACHE)", "")
      .option("require-best", "fail unless some workload speeds up this much", "0")
      .option("reps", "interleaved default/tuned measurement pairs", "0")
      .option("budget-ms", "in-process search budget per space", "0")
      .option("n", "GEMM edge for the gemm-tile workloads", "0")
      .flag("require-never-worse", "fail if tuned measures worse than default")
      .flag("quick", "smoke sizes (also the argless default)");
  try {
    cli.parse(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "tuned_vs_default: %s\n%s", e.what(),
                 cli.usage("tuned_vs_default").c_str());
    return 2;
  }

  Options opt;
  opt.out = cli.get("out");
  opt.cache = cli.get("cache");
  if (opt.cache.empty()) {
    if (const char* env = std::getenv("PORTABENCH_TUNE_CACHE")) opt.cache = env;
  }
  opt.require_best = cli.get_double("require-best");
  opt.require_never_worse = cli.has("require-never-worse");
  // Argless runs are CI smoke runs: default to quick sizes unless the
  // caller asked for specific measurement depth.
  opt.quick = cli.has("quick") ||
              (!cli.has("reps") && !cli.has("n") && !cli.has("budget-ms"));
  if (cli.get_int("reps") > 0) opt.reps = static_cast<int>(cli.get_int("reps"));
  else if (opt.quick) opt.reps = 3;
  if (cli.get_double("budget-ms") > 0) opt.budget_ms = cli.get_double("budget-ms");
  else if (opt.quick) opt.budget_ms = 350.0;
  if (cli.get_int("n") > 0) opt.n = static_cast<std::size_t>(cli.get_int("n"));

  return run(opt);
}
