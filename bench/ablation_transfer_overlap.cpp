// Ablation: data-transfer overlap.
//
// Section IV excludes "initial communication (threads and GPUs)" from the
// measurements, and Section II notes that Kokkos' template-time back ends
// hinder "the overlap of data transfers with computations".  This bench
// puts the transfers back: end-to-end batched GEMM over PCIe4 (Wombat)
// and Infinity Fabric (Crusher), serial vs double-buffered — scheduled
// both analytically (perfmodel) and operationally on gpusim streams,
// cross-checking the two.
#include <cmath>
#include <iostream>

#include "common/table.hpp"
#include "gpusim/stream.hpp"
#include "perfmodel/interconnect.hpp"

namespace {

using namespace portabench;

/// Schedule the batched pipeline on gpusim streams (copy stream + compute
/// stream with events) and return the modeled makespan.
double stream_schedule(gpusim::DeviceContext& ctx, double h2d_s, double kernel_s,
                       double d2h_s, std::size_t batches) {
  gpusim::Stream copy(ctx);
  gpusim::Stream compute(ctx);
  gpusim::Event last_d2h;
  double makespan = 0.0;
  for (std::size_t b = 0; b < batches; ++b) {
    copy.enqueue(h2d_s);
    gpusim::Event in_ready;
    copy.record(in_ready);
    compute.wait(in_ready);
    compute.enqueue(kernel_s);
    gpusim::Event done;
    compute.record(done);
    copy.wait(done);  // D2H shares the copy engine, ordered after H2D of the next batch
    copy.enqueue(d2h_s);
    copy.record(last_d2h);
    makespan = std::max(compute.now(), last_d2h.timestamp());
  }
  return makespan;
}

}  // namespace

int main() {
  using perfmodel::end_to_end_gemm;
  using perfmodel::GpuMachineModel;
  using perfmodel::GpuPerfSpec;
  using perfmodel::LinkSpec;

  std::cout << "=== Ablation: host<->device transfer overlap (batched GEMM) ===\n\n";

  struct Target {
    const char* label;
    GpuMachineModel model;
    LinkSpec link;
    gpusim::GpuSpec functional;
  };
  Target targets[] = {
      {"A100 over PCIe 4.0 x16", GpuMachineModel(GpuPerfSpec::a100()), LinkSpec::pcie4_x16(),
       gpusim::GpuSpec::a100()},
      {"MI250X GCD over Infinity Fabric", GpuMachineModel(GpuPerfSpec::mi250x_gcd()),
       LinkSpec::infinity_fabric(), gpusim::GpuSpec::mi250x_gcd()},
  };

  for (auto& target : targets) {
    std::cout << "--- " << target.label << " (FP64) ---\n";
    Table t({"n", "batches", "kernel (ms)", "H2D+D2H (ms)", "serial (ms)",
             "overlapped (ms)", "speedup", "stream-sched (ms)"});
    gpusim::DeviceContext ctx(target.functional);
    for (std::size_t n : {2048u, 4096u, 8192u}) {
      for (std::size_t batches : {1u, 4u, 16u}) {
        const auto e2e =
            end_to_end_gemm(target.model, target.link, Precision::kDouble, n, batches);
        const double streams =
            stream_schedule(ctx, e2e.h2d_s, e2e.kernel_s, e2e.d2h_s, batches);
        t.add_row({std::to_string(n), std::to_string(batches),
                   Table::num(e2e.kernel_s * 1e3, 2),
                   Table::num((e2e.h2d_s + e2e.d2h_s) * 1e3, 2),
                   Table::num(e2e.serial_s * 1e3, 2), Table::num(e2e.overlapped_s * 1e3, 2),
                   Table::num(e2e.serial_s / e2e.overlapped_s, 2),
                   Table::num(streams * 1e3, 2)});
      }
    }
    std::cout << t.to_markdown() << "\n";
  }
  std::cout << "Takeaway: single-shot GEMM is kernel-dominated (the paper's choice to\n"
               "exclude transfers is benign), but batched pipelines recover nearly the\n"
               "full transfer cost — capability the high-level models must expose\n"
               "(CUDA.jl/AMDGPU.jl do; Kokkos routes it through back-end streams).\n";
  return 0;
}
