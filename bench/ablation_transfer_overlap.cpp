// Ablation: data-transfer overlap.
//
// Section IV excludes "initial communication (threads and GPUs)" from the
// measurements, and Section II notes that Kokkos' template-time back ends
// hinder "the overlap of data transfers with computations".  This bench
// puts the transfers back, three ways:
//
//   analytic     end-to-end batched GEMM over PCIe4 (Wombat) and Infinity
//                Fabric (Crusher), serial vs double-buffered (perfmodel),
//                cross-checked against a two-stream gpusim schedule;
//   scheduled    the sharded pipeline driver (gpusim/pipeline.hpp) fed
//                the modeled Crusher panel times at a transfer/compute-
//                balanced size — the deterministic makespan ratio the
//                --require gate pins (overlap must clear 1.3x);
//   operational  multigpu::gemm_sharded with *throttled* links (modeled
//                link seconds enforced in wall time), overlap on vs off,
//                verified bitwise against the serial oracle.
//
// Usage: ablation_transfer_overlap [--require X] [--out PATH]
#include <algorithm>
#include <cmath>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "bench_json.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "common/timer.hpp"
#include "gpusim/pipeline.hpp"
#include "gpusim/stream.hpp"
#include "gpusim/topology.hpp"
#include "multigpu/gemm.hpp"
#include "perfmodel/interconnect.hpp"
#include "perfmodel/multigpu.hpp"

namespace {

using namespace portabench;

/// Schedule the batched pipeline on gpusim streams (copy stream + compute
/// stream with events) and return the modeled makespan.
double stream_schedule(gpusim::DeviceContext& ctx, double h2d_s, double kernel_s,
                       double d2h_s, std::size_t batches) {
  gpusim::Stream copy(ctx);
  gpusim::Stream compute(ctx);
  gpusim::Event last_d2h;
  double makespan = 0.0;
  for (std::size_t b = 0; b < batches; ++b) {
    copy.enqueue(h2d_s);
    gpusim::Event in_ready;
    copy.record(in_ready);
    compute.wait(in_ready);
    compute.enqueue(kernel_s);
    gpusim::Event done;
    compute.record(done);
    copy.wait(done);  // D2H shares the copy engine, ordered after H2D of the next batch
    copy.enqueue(d2h_s);
    copy.record(last_d2h);
    makespan = std::max(compute.now(), last_d2h.timestamp());
  }
  return makespan;
}

/// Modeled makespan of the panel pipeline driver itself: `panels` panels
/// whose per-stage modeled seconds are given, overlapped or strict.
double pipeline_makespan(gpusim::DeviceContext& ctx, std::size_t panels, double h2d_s,
                         double kernel_s, double d2h_s, bool overlap) {
  gpusim::PipelineOptions opt;
  opt.overlap = overlap;
  const auto stats = gpusim::run_pipeline(
      ctx, panels, opt,
      [&](gpusim::Stream& s, std::size_t, std::size_t) { s.enqueue(h2d_s); },
      [&](gpusim::Stream& s, std::size_t, std::size_t) { s.enqueue(kernel_s); },
      [&](gpusim::Stream& s, std::size_t, std::size_t) { s.enqueue(d2h_s); });
  return stats.modeled_s;
}

}  // namespace

int main(int argc, char** argv) {
  using perfmodel::end_to_end_gemm;
  using perfmodel::GpuMachineModel;
  using perfmodel::GpuPerfSpec;
  using perfmodel::LinkSpec;

  double require = 0.0;  // minimum scheduled overlap speedup; 0 = report only
  std::string out_path = "BENCH_overlap.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--require") == 0 && i + 1 < argc) {
      require = std::strtod(argv[++i], nullptr);
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::cerr << "usage: ablation_transfer_overlap [--require X] [--out PATH]\n";
      return 2;
    }
  }

  std::cout << "=== Ablation: host<->device transfer overlap (batched GEMM) ===\n\n";

  struct Target {
    const char* label;
    GpuMachineModel model;
    LinkSpec link;
    gpusim::GpuSpec functional;
  };
  Target targets[] = {
      {"A100 over PCIe 4.0 x16", GpuMachineModel(GpuPerfSpec::a100()), LinkSpec::pcie4_x16(),
       gpusim::GpuSpec::a100()},
      {"MI250X GCD over Infinity Fabric", GpuMachineModel(GpuPerfSpec::mi250x_gcd()),
       LinkSpec::infinity_fabric(), gpusim::GpuSpec::mi250x_gcd()},
  };

  for (auto& target : targets) {
    std::cout << "--- " << target.label << " (FP64) ---\n";
    Table t({"n", "batches", "kernel (ms)", "H2D+D2H (ms)", "serial (ms)",
             "overlapped (ms)", "speedup", "stream-sched (ms)"});
    gpusim::DeviceContext ctx(target.functional);
    for (std::size_t n : {2048u, 4096u, 8192u}) {
      for (std::size_t batches : {1u, 4u, 16u}) {
        const auto e2e =
            end_to_end_gemm(target.model, target.link, Precision::kDouble, n, batches);
        const double streams =
            stream_schedule(ctx, e2e.h2d_s, e2e.kernel_s, e2e.d2h_s, batches);
        t.add_row({std::to_string(n), std::to_string(batches),
                   Table::num(e2e.kernel_s * 1e3, 2),
                   Table::num((e2e.h2d_s + e2e.d2h_s) * 1e3, 2),
                   Table::num(e2e.serial_s * 1e3, 2), Table::num(e2e.overlapped_s * 1e3, 2),
                   Table::num(e2e.serial_s / e2e.overlapped_s, 2),
                   Table::num(streams * 1e3, 2)});
      }
    }
    std::cout << t.to_markdown() << "\n";
  }

  // --- scheduled: the pipeline driver at a balanced Crusher point ---
  // n where per-panel kernel time matches per-panel A-in + C-out over
  // the 36 GB/s host Infinity Fabric (~2300 for FP64 on an MI250X GCD):
  // the regime where double buffering pays the most.  The makespans are
  // modeled clocks — deterministic on any host, so the gate always runs.
  const std::size_t bal_n = 2304;
  const std::size_t panel_rows = 128;
  const std::size_t panels = 16;
  const GpuMachineModel mi250x(GpuPerfSpec::mi250x_gcd());
  const gpusim::TopologyConfig crusher = gpusim::TopologyConfig::crusher_node(1);
  const double kernel_panel = mi250x.reference_time(Precision::kDouble, bal_n).total_s *
                              static_cast<double>(panel_rows) / static_cast<double>(bal_n);
  const double bytes_panel = static_cast<double>(panel_rows * bal_n) * sizeof(double);
  const double h2d_panel = crusher.h2d_local.seconds(static_cast<std::size_t>(bytes_panel));
  const double d2h_panel = h2d_panel;
  gpusim::DeviceContext sched_ctx(gpusim::GpuSpec::mi250x_gcd());
  const double strict_s =
      pipeline_makespan(sched_ctx, panels, h2d_panel, kernel_panel, d2h_panel, false);
  const double overlap_s =
      pipeline_makespan(sched_ctx, panels, h2d_panel, kernel_panel, d2h_panel, true);
  const double sched_speedup = strict_s / overlap_s;
  std::cout << "Pipeline driver, balanced Crusher point (n=" << bal_n << ", " << panels
            << " panels of " << panel_rows << " rows):\n"
            << "  strict-order " << strict_s * 1e3 << " ms, double-buffered "
            << overlap_s * 1e3 << " ms -> " << sched_speedup << "x\n\n";

  // --- operational: sharded GEMM with throttled links, overlap on/off ---
  // Small host-sized problem; the links enforce their modeled seconds in
  // wall time, so the wall ratio shows real overlap.  Bitwise identity
  // against the serial oracle gates unconditionally.
  const std::size_t m = 1024;
  const std::size_t kk = 512;
  const std::size_t nn = 512;
  std::vector<double> a(m * kk);
  std::vector<double> b(kk * nn);
  std::vector<double> c(m * nn);
  std::vector<double> oracle(m * nn);
  Xoshiro256 rng(0x0F75ull);
  fill_uniform(std::span<double>(a), rng);
  fill_uniform(std::span<double>(b), rng);
  const simrt::RawView2<const double> A(a.data(), m, kk);
  const simrt::RawView2<const double> B(b.data(), kk, nn);
  multigpu::gemm_sharded_oracle<double>(A, B,
                                        simrt::RawView2<double>(oracle.data(), m, nn));

  int failures = 0;
  double wall[2] = {0.0, 0.0};
  double modeled[2] = {0.0, 0.0};
  bool bitwise[2] = {false, false};
  for (const bool overlap : {false, true}) {
    gpusim::TopologyConfig tc = gpusim::TopologyConfig::crusher_node(2);
    tc.throttle_links = true;  // modeled link seconds enforced in wall time
    gpusim::DeviceTopology topo(tc);
    multigpu::GemmShardOptions opt;
    opt.panel_rows = 128;
    opt.overlap = overlap;
    std::fill(c.begin(), c.end(), 0.0);
    Timer timer;
    const auto stats = multigpu::gemm_sharded<double>(
        topo, A, B, simrt::RawView2<double>(c.data(), m, nn), opt);
    wall[overlap ? 1 : 0] = timer.seconds();
    modeled[overlap ? 1 : 0] = stats.modeled_s;
    bitwise[overlap ? 1 : 0] =
        std::memcmp(c.data(), oracle.data(), m * nn * sizeof(double)) == 0;
    if (!bitwise[overlap ? 1 : 0]) {
      std::cout << "BITWISE MISMATCH (overlap=" << overlap << ")\n";
      ++failures;
    }
  }
  std::cout << "Sharded GEMM (m=" << m << ", throttled links, 2 GCDs): strict "
            << wall[0] * 1e3 << " ms wall, overlapped " << wall[1] * 1e3
            << " ms wall (" << wall[0] / wall[1] << "x)\n\n";

  BenchArtifact artifact("ablation_transfer_overlap");
  JsonWriter& w = artifact.writer();
  w.key("required_speedup");
  w.value(require);
  w.key("scheduled");
  w.begin_object();
  w.key("n");
  w.value(bal_n);
  w.key("panels");
  w.value(panels);
  w.key("strict_seconds");
  w.value(strict_s);
  w.key("overlap_seconds");
  w.value(overlap_s);
  w.key("speedup");
  w.value(sched_speedup);
  w.end_object();
  w.key("operational");
  w.begin_object();
  w.key("m");
  w.value(m);
  w.key("strict_wall_seconds");
  w.value(wall[0]);
  w.key("overlap_wall_seconds");
  w.value(wall[1]);
  w.key("strict_modeled_seconds");
  w.value(modeled[0]);
  w.key("overlap_modeled_seconds");
  w.value(modeled[1]);
  w.key("wall_speedup");
  w.value(wall[0] / wall[1]);
  w.key("bitwise_identical");
  w.value(bitwise[0] && bitwise[1]);
  w.end_object();
  if (const int rc = artifact.write(out_path); rc != 0) return rc;

  std::cout << "Takeaway: single-shot GEMM is kernel-dominated (the paper's choice to\n"
               "exclude transfers is benign), but batched pipelines recover nearly the\n"
               "full transfer cost — capability the high-level models must expose\n"
               "(CUDA.jl/AMDGPU.jl do; Kokkos routes it through back-end streams).\n";

  if (failures != 0) return 1;
  if (require > 0.0 && sched_speedup < require) {
    std::cout << "FAILED: scheduled overlap speedup " << sched_speedup
              << "x is below the " << require << "x requirement\n";
    return 1;
  }
  return 0;
}
