// Ablation: CPU thread scaling.
//
// The paper fixes thread counts at the full socket (64 on Crusher, 80 on
// Wombat) and mentions "single node scalability" as the object of study.
// This bench sweeps the thread count through the machine model for each
// programming model's binding policy, showing where the NUMA penalty of
// the unbindable Numba runtime opens up.
#include <iostream>

#include "common/ascii_plot.hpp"
#include "common/table.hpp"
#include "perfmodel/machine_model.hpp"

int main() {
  using namespace portabench;
  using perfmodel::CpuMachineModel;
  using perfmodel::CpuSpec;
  using simrt::BindPolicy;

  std::cout << "=== Ablation: thread scaling on the CPU machine models (FP64, n=8192) ===\n\n";

  struct Target {
    const char* label;
    CpuMachineModel model;
  };
  Target targets[] = {
      {"Crusher EPYC 7A53 (4 NUMA)", CpuMachineModel(CpuSpec::epyc_7a53())},
      {"Wombat Ampere Altra (1 NUMA)", CpuMachineModel(CpuSpec::ampere_altra())},
  };

  for (const auto& target : targets) {
    std::cout << "--- " << target.label << " ---\n";
    const std::size_t max_threads = target.model.spec().cores;
    Table t({"threads", "pinned GFLOP/s", "unpinned GFLOP/s", "pinning gain"});
    std::vector<double> ticks;
    PlotSeries pinned{"pinned (OpenMP/Julia)", {}};
    PlotSeries unpinned{"unpinned (Numba)", {}};
    for (std::size_t threads = 1; threads <= max_threads; threads *= 2) {
      const std::size_t use = std::min(threads, max_threads);
      const double close =
          target.model.reference_time(Precision::kDouble, 8192, use, BindPolicy::kClose)
              .gflops;
      const double none =
          target.model.reference_time(Precision::kDouble, 8192, use, BindPolicy::kNone)
              .gflops;
      t.add_row({std::to_string(use), Table::num(close, 1), Table::num(none, 1),
                 Table::num(close / none, 2)});
      ticks.push_back(static_cast<double>(use));
      pinned.values.push_back(close);
      unpinned.values.push_back(none);
    }
    // Include the full socket if the power-of-two sweep missed it.
    if ((max_threads & (max_threads - 1)) != 0) {
      const double close = target.model
                               .reference_time(Precision::kDouble, 8192, max_threads,
                                               BindPolicy::kClose)
                               .gflops;
      const double none = target.model
                              .reference_time(Precision::kDouble, 8192, max_threads,
                                              BindPolicy::kNone)
                              .gflops;
      t.add_row({std::to_string(max_threads), Table::num(close, 1), Table::num(none, 1),
                 Table::num(close / none, 2)});
      ticks.push_back(static_cast<double>(max_threads));
      pinned.values.push_back(close);
      unpinned.values.push_back(none);
    }
    std::cout << t.to_markdown();
    PlotOptions popt;
    popt.y_label = "GFLOP/s";
    popt.x_label = "threads";
    popt.height = 12;
    std::cout << render_plot({pinned, unpinned}, ticks, popt) << "\n";
  }

  std::cout << "Takeaway: on the single-NUMA Altra both policies coincide; on the\n"
               "4-NUMA EPYC the unpinned curve detaches as soon as threads span\n"
               "domains — the machine-level reason Table III punishes Numba harder\n"
               "on Crusher than its codegen alone would.\n";
  return 0;
}
