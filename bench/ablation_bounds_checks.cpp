// Ablation: bounds-checked vs unchecked array access (@inbounds).
//
// The only ablation measured on the *host* rather than modeled: both
// access paths run the same functional kernel on this machine, so their
// ratio is a real measurement of the checking overhead that Julia's
// @inbounds (Fig. 2c) removes and that Numba's numpy indexing always pays.
// Uses google-benchmark.
#include <benchmark/benchmark.h>

#include "common/rng.hpp"
#include "gemm/kernels_cpu.hpp"
#include "simrt/mdarray.hpp"
#include "simrt/parallel.hpp"

namespace {

using namespace portabench;
using simrt::LayoutLeft;
using simrt::View2;

struct Matrices {
  View2<double, LayoutLeft> A;
  View2<double, LayoutLeft> B;
  View2<double, LayoutLeft> C;
};

Matrices make_matrices(std::size_t n) {
  Matrices m{View2<double, LayoutLeft>(n, n), View2<double, LayoutLeft>(n, n),
             View2<double, LayoutLeft>(n, n)};
  Xoshiro256 rng(1234);
  fill_uniform(std::span<double>(m.A.data(), n * n), rng);
  fill_uniform(std::span<double>(m.B.data(), n * n), rng);
  return m;
}

void BM_JuliaGemmInbounds(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Matrices m = make_matrices(n);
  simrt::SerialSpace space;
  for (auto _ : state) {
    gemm::gemm_julia_style<double>(space, m.A, m.B, m.C, /*inbounds=*/true);
    benchmark::DoNotOptimize(m.C(0, 0));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 2 * n * n * n);
}

void BM_JuliaGemmBoundsChecked(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Matrices m = make_matrices(n);
  simrt::SerialSpace space;
  for (auto _ : state) {
    gemm::gemm_julia_style<double>(space, m.A, m.B, m.C, /*inbounds=*/false);
    benchmark::DoNotOptimize(m.C(0, 0));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 2 * n * n * n);
}

void BM_ViewUncheckedAccess(benchmark::State& state) {
  View2<double, LayoutLeft> v(256, 256);
  double sum = 0.0;
  for (auto _ : state) {
    for (std::size_t j = 0; j < 256; ++j) {
      for (std::size_t i = 0; i < 256; ++i) sum += v(i, j);
    }
    benchmark::DoNotOptimize(sum);
  }
}

void BM_ViewCheckedAccess(benchmark::State& state) {
  View2<double, LayoutLeft> v(256, 256);
  double sum = 0.0;
  for (auto _ : state) {
    for (std::size_t j = 0; j < 256; ++j) {
      for (std::size_t i = 0; i < 256; ++i) sum += v.at(i, j);
    }
    benchmark::DoNotOptimize(sum);
  }
}

BENCHMARK(BM_JuliaGemmInbounds)->Arg(64)->Arg(128)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_JuliaGemmBoundsChecked)->Arg(64)->Arg(128)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_ViewUncheckedAccess)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_ViewCheckedAccess)->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
