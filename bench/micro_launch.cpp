// Launch microbenchmark: the cost of the gpusim execution engine.
//
// Times one n x n naive GEMM launch (the paper's Fig. 3a kernel — the
// workload every GPU figure repeats hundreds of times) through three
// execution strategies, per block-size sweep:
//
//   serial    an embedded copy of the pre-engine launch path: fresh
//             limit validation per launch, 3-deep nested block walk,
//             3-deep nested thread loops — the seed behaviour, kept here
//             (not in src/) purely as the measurement baseline.
//   parallel  gpusim::launch(): block-parallel across the LaunchEngine's
//             worker team with the memoized launch-config cache and the
//             flattened strength-reduced lane walk.
//   pooled    gpusim::launch_blocks(): the same math written as a
//             cooperative kernel whose per-block scratch is carved from
//             the engine's pooled per-worker arenas (zero allocations
//             steady-state).
//
// All three produce bitwise-identical C (verified every sample); the
// ratios serial/parallel and serial/pooled are the engine speedup that
// BENCH_launch.json records.  --require X makes the binary exit nonzero
// unless the best parallel speedup reaches X — the CI release-bench job
// runs `micro_launch --n 512 --require 4` to pin the PR's 4x target.
//
// Usage: micro_launch [--n N] [--samples K] [--threads N] [--require X]
//                     [--out PATH]
#include <algorithm>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "bench_json.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "common/timer.hpp"
#include "gpusim/device.hpp"
#include "gpusim/engine.hpp"
#include "gpusim/launch.hpp"

namespace {

using namespace portabench;

// --- the pre-engine launch path, verbatim semantics -------------------------
//
// A faithful copy of the serial launch this PR replaced: device limits are
// re-derived on every launch (no config cache) and the grid is walked with
// the original 3-deep block nest and 3-deep thread nest.
template <class F>
void legacy_launch(gpusim::DeviceContext& ctx, const gpusim::Dim3& grid,
                   const gpusim::Dim3& block, F&& kernel) {
  ctx.validate_launch(grid, block);
  ctx.note_launch(grid, block);

  gpusim::ThreadCtx tc;
  tc.grid_dim = grid;
  tc.block_dim = block;
  for (std::size_t bz = 0; bz < grid.z; ++bz) {
    for (std::size_t by = 0; by < grid.y; ++by) {
      for (std::size_t bx = 0; bx < grid.x; ++bx) {
        tc.block_idx = {bx, by, bz};
        for (std::size_t tz = 0; tz < block.z; ++tz) {
          for (std::size_t ty = 0; ty < block.y; ++ty) {
            for (std::size_t tx = 0; tx < block.x; ++tx) {
              tc.thread_idx = {tx, ty, tz};
              kernel(tc);
            }
          }
        }
      }
    }
  }
}

struct Options {
  std::size_t n = 256;
  std::size_t samples = 3;
  std::size_t threads = 0;  // 0 == engine default (env / hardware)
  double require = 0.0;     // minimum acceptable best parallel speedup
  std::string out = "BENCH_launch.json";
};

/// Best-of-samples wall time in milliseconds for one launch.
template <class Launch>
double launch_ms(std::size_t samples, Launch&& launch) {
  double best = 1e30;
  for (std::size_t s = 0; s < samples; ++s) {
    Timer timer;
    launch();
    best = std::min(best, timer.seconds());
  }
  return best * 1e3;
}

struct SweepRow {
  std::size_t block;
  double serial_ms;
  double parallel_ms;
  double pooled_ms;
  double speedup_parallel;
  double speedup_pooled;
};

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--n") == 0 && i + 1 < argc) {
      opt.n = static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--samples") == 0 && i + 1 < argc) {
      opt.samples = static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      opt.threads = static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--require") == 0 && i + 1 < argc) {
      opt.require = std::strtod(argv[++i], nullptr);
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      opt.out = argv[++i];
    } else {
      std::cerr << "usage: micro_launch [--n N] [--samples K] [--threads N] "
                   "[--require X] [--out PATH]\n";
      return 2;
    }
  }

  const std::size_t n = opt.n;
  gpusim::DeviceContext ctx(gpusim::GpuSpec::a100());
  auto engine = std::make_shared<gpusim::LaunchEngine>(opt.threads);
  ctx.set_engine(engine);

  std::cout << "=== micro_launch: gpusim engine launch cost (n = " << n
            << " naive GEMM, workers = " << engine->workers() << ") ===\n\n";

  std::vector<double> A(n * n);
  std::vector<double> B(n * n);
  Xoshiro256 rng(42);
  fill_uniform(std::span<double>(A), rng);
  fill_uniform(std::span<double>(B), rng);
  std::vector<double> c_serial(n * n);
  std::vector<double> c_parallel(n * n);
  std::vector<double> c_pooled(n * n);

  // The Fig. 3a per-thread body, shared by all three strategies.
  auto gemm_body = [&](std::span<double> C) {
    return [&, C](const gpusim::ThreadCtx& tc) {
      const std::size_t row = tc.global_y();
      const std::size_t col = tc.global_x();
      if (row < n && col < n) {
        double sum = 0.0;
        for (std::size_t i = 0; i < n; ++i) sum += A[row * n + i] * B[i * n + col];
        C[row * n + col] = sum;
      }
    };
  };

  std::vector<SweepRow> rows;
  for (std::size_t b : {std::size_t{8}, std::size_t{16}, std::size_t{32}}) {
    const gpusim::Dim3 block{b, b, 1};
    const gpusim::Dim3 grid{gpusim::blocks_for(n, b), gpusim::blocks_for(n, b), 1};

    const double serial_ms_v = launch_ms(opt.samples, [&] {
      legacy_launch(ctx, grid, block, gemm_body(c_serial));
    });
    const double parallel_ms_v = launch_ms(opt.samples, [&] {
      gpusim::launch(ctx, grid, block, gemm_body(c_parallel));
    });
    // Cooperative form: per-lane partial sums land in pooled block-shared
    // scratch, the write-back region drains it after the implicit barrier.
    const std::size_t shared_bytes = block.volume() * sizeof(double);
    const double pooled_ms_v = launch_ms(opt.samples, [&] {
      gpusim::launch_blocks(ctx, grid, block, shared_bytes, [&](gpusim::BlockCtx& bc) {
        auto acc = bc.shared<double>(bc.block_dim().volume());
        bc.for_lanes([&](const gpusim::ThreadCtx& tc) {
          const std::size_t row = tc.global_y();
          const std::size_t col = tc.global_x();
          if (row < n && col < n) {
            double sum = 0.0;
            for (std::size_t i = 0; i < n; ++i) sum += A[row * n + i] * B[i * n + col];
            acc[tc.lane_in_block()] = sum;
          }
        });
        bc.for_lanes([&](const gpusim::ThreadCtx& tc) {
          const std::size_t row = tc.global_y();
          const std::size_t col = tc.global_x();
          if (row < n && col < n) c_pooled[row * n + col] = acc[tc.lane_in_block()];
        });
      });
    });

    // Block parallelism must not change a single bit of the result.
    if (c_parallel != c_serial || c_pooled != c_serial) {
      std::cerr << "FAILED: result mismatch at block " << b << "x" << b << "\n";
      return 1;
    }

    rows.push_back({b, serial_ms_v, parallel_ms_v, pooled_ms_v,
                    serial_ms_v / parallel_ms_v, serial_ms_v / pooled_ms_v});
  }

  Table table({"block", "serial (ms)", "parallel (ms)", "pooled (ms)",
               "speedup par", "speedup pool"});
  double best_speedup = 0.0;
  for (const auto& r : rows) {
    best_speedup = std::max(best_speedup, r.speedup_parallel);
    table.add_row({std::to_string(r.block) + "x" + std::to_string(r.block),
                   Table::num(r.serial_ms, 2), Table::num(r.parallel_ms, 2),
                   Table::num(r.pooled_ms, 2), Table::num(r.speedup_parallel, 2),
                   Table::num(r.speedup_pooled, 2)});
  }
  std::cout << "-- one-launch latency, serial seed path vs engine --\n"
            << table.to_markdown() << "\n";

  const gpusim::LaunchCacheStats cache = ctx.launch_cache_stats();
  std::cout << "launch-config cache: " << cache.hits << " hits / " << cache.misses
            << " misses; arena high water = " << engine->arena_high_water()
            << " bytes\n";

  // --- machine-readable artifact --------------------------------------------
  BenchArtifact artifact("micro_launch");
  JsonWriter& w = artifact.writer();
  w.key("n");
  w.value(n);
  w.key("workers");
  w.value(engine->workers());
  w.key("samples");
  w.value(opt.samples);
  w.key("sweep");
  w.begin_array();
  for (const auto& r : rows) {
    w.begin_object();
    w.key("block");
    w.value(r.block);
    w.key("serial_ms");
    w.value(r.serial_ms);
    w.key("parallel_ms");
    w.value(r.parallel_ms);
    w.key("pooled_ms");
    w.value(r.pooled_ms);
    w.key("speedup_parallel");
    w.value(r.speedup_parallel);
    w.key("speedup_pooled");
    w.value(r.speedup_pooled);
    w.end_object();
  }
  w.end_array();
  w.key("best_speedup");
  w.value(best_speedup);
  w.key("cache_hits");
  w.value(cache.hits);
  w.key("cache_misses");
  w.value(cache.misses);
  w.key("arena_high_water_bytes");
  w.value(engine->arena_high_water());
  if (const int rc = artifact.write(opt.out); rc != 0) return rc;

  if (opt.require > 0.0 && best_speedup < opt.require) {
    std::cerr << "FAILED: best parallel speedup " << best_speedup << "x is below the "
              << opt.require << "x requirement\n";
    return 1;
  }
  return 0;
}
