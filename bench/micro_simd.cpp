// SIMD microbenchmark: what the portable simrt::simd layer buys.
//
// Measures the three hot paths the SIMD layer vectorized, each against
// its scalar baseline, and verifies every comparison bitwise (the layer's
// determinism contract says vectorization NEVER changes a result):
//
//   convert      batched half/bfloat16 <-> float conversion (convert_n)
//                vs the per-element scalar entry points half.cpp exports.
//                Same shared core either way — the batched form just runs
//                it W lanes at a time on the best ISA tier.
//   axpy         y[i] = a*x[i] + y[i] through simd<T, native_lanes<T>>
//                vs the scalar loop (mul+add per element on both sides).
//   microkernel  the tiled-GEMM register-blocked micro-kernel over packed
//                panels: scalar baseline vs every ISA tier the host
//                supports, in FLOP/s (this is the paper-facing number —
//                how much inner-loop throughput explicit SIMD recovers).
//   gemm         full gemm_tiled at --n vs an embedded copy of the
//                pre-SIMD implementation (scalar micro-kernel,
//                per-element packing) — the end-to-end delta.
//
// Gates: --require-kernel X fails the run unless the float micro-kernel's
// dispatched-tier FLOP/s reach X times the scalar kernel's; and
// --require-convert X likewise for the batched half<->float conversion
// rate vs per-element (min of the two directions).  The CI release-bench
// job pins 1.5x / 2.0x on AVX2-capable hosts.  BENCH_simd.json records
// everything (see docs/PERF.md).
//
// Usage: micro_simd [--n N] [--samples K] [--require-kernel X]
//                   [--require-convert X] [--out PATH]
#include <algorithm>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "bench_json.hpp"
#include "common/half.hpp"
#include "common/half_convert.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "common/timer.hpp"
#include "gemm/kernels_tiled.hpp"
#include "simrt/mdarray.hpp"
#include "simrt/parallel.hpp"
#include "simrt/simd.hpp"

namespace {

using namespace portabench;
using gemm::tiled::kKC;
using gemm::tiled::kMR;
using gemm::tiled::kNRMax;

struct Options {
  std::size_t n = 512;
  std::size_t samples = 5;
  double require_kernel = 0.0;
  double require_convert = 0.0;
  std::string out = "BENCH_simd.json";
};

/// Best-of-samples wall time in milliseconds.
template <class F>
double best_ms(std::size_t samples, F&& f) {
  double best = 1e300;
  for (std::size_t s = 0; s < samples; ++s) {
    Timer timer;
    f();
    best = std::min(best, timer.seconds() * 1e3);
  }
  return best;
}

// --- the pre-SIMD tiled GEMM, verbatim semantics ----------------------------
//
// A faithful copy of the implementation this PR vectorized: scalar
// micro-kernel inlined in the loop, per-element T->Acc packing.  Kept
// here (not in src/) purely as the end-to-end measurement baseline.
template <class Acc, class Space, class VA, class VB, class VC>
void legacy_gemm_tiled(const Space& space, const VA& A, const VB& B, VC& C) {
  using TC = typename VC::value_type;
  constexpr std::size_t MR = 4, NR = 8, KC = 256, MC = 64;
  const std::size_t m = A.extent(0);
  const std::size_t k = A.extent(1);
  const std::size_t n = B.extent(1);
  const std::size_t n_panels = (n + NR - 1) / NR;
  const std::size_t m_blocks = (m + MC - 1) / MC;
  std::vector<Acc> Bp(n_panels * KC * NR);
  for (std::size_t pc = 0; pc < k; pc += KC) {
    const std::size_t kc = std::min(KC, k - pc);
    for (std::size_t jp = 0; jp < n_panels; ++jp) {
      Acc* panel = Bp.data() + jp * KC * NR;
      const std::size_t j0 = jp * NR;
      const std::size_t nr = std::min(NR, n - j0);
      for (std::size_t l = 0; l < kc; ++l) {
        for (std::size_t jj = 0; jj < nr; ++jj) {
          panel[l * NR + jj] = static_cast<Acc>(B(pc + l, j0 + jj));
        }
        for (std::size_t jj = nr; jj < NR; ++jj) panel[l * NR + jj] = Acc{};
      }
    }
    simrt::parallel_for(space, simrt::RangePolicy(0, m_blocks), [&](std::size_t bi) {
      const std::size_t ic = bi * MC;
      const std::size_t mc = std::min(MC, m - ic);
      const std::size_t m_panels = (mc + MR - 1) / MR;
      std::vector<Acc> Ap(m_panels * kc * MR);
      for (std::size_t ip = 0; ip < m_panels; ++ip) {
        Acc* panel = Ap.data() + ip * kc * MR;
        const std::size_t i0 = ic + ip * MR;
        const std::size_t mr = std::min(MR, m - i0);
        for (std::size_t l = 0; l < kc; ++l) {
          for (std::size_t ii = 0; ii < mr; ++ii) {
            panel[l * MR + ii] = static_cast<Acc>(A(i0 + ii, pc + l));
          }
          for (std::size_t ii = mr; ii < MR; ++ii) panel[l * MR + ii] = Acc{};
        }
      }
      for (std::size_t jp = 0; jp < n_panels; ++jp) {
        const Acc* bp = Bp.data() + jp * KC * NR;
        const std::size_t j0 = jp * NR;
        const std::size_t nr = std::min(NR, n - j0);
        for (std::size_t ip = 0; ip < m_panels; ++ip) {
          const Acc* ap = Ap.data() + ip * kc * MR;
          const std::size_t i0 = ic + ip * MR;
          const std::size_t mr = std::min(MR, m - i0);
          Acc acc[MR][NR] = {};
          for (std::size_t l = 0; l < kc; ++l) {
            const Acc* a = ap + l * MR;
            const Acc* b = bp + l * NR;
            for (std::size_t ii = 0; ii < MR; ++ii) {
              const Acc av = a[ii];
              for (std::size_t jj = 0; jj < NR; ++jj) acc[ii][jj] += av * b[jj];
            }
          }
          for (std::size_t ii = 0; ii < mr; ++ii) {
            for (std::size_t jj = 0; jj < nr; ++jj) {
              C(i0 + ii, j0 + jj) = static_cast<TC>(
                  static_cast<Acc>(C(i0 + ii, j0 + jj)) + acc[ii][jj]);
            }
          }
        }
      }
    });
  }
}

// --- scalar axpy baseline (same two rounded ops per element) ----------------
template <class T>
void axpy_scalar(T a, const T* x, T* y, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) y[i] = a * x[i] + y[i];
}

template <class T>
void axpy_simd(T a, const T* x, T* y, std::size_t n) {
  constexpr std::size_t W = simrt::native_lanes<T>;
  using V = simrt::simd<T, W>;
  const V av(a);
  std::size_t i = 0;
  for (; i + W <= n; i += W) {
    fma(av, V::load(x + i), V::load(y + i)).store(y + i);
  }
  if (i < n) {
    fma(av, V::load_partial(x + i, n - i), V::load_partial(y + i, n - i))
        .store_partial(y + i, n - i);
  }
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--n") == 0 && i + 1 < argc) {
      opt.n = static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--samples") == 0 && i + 1 < argc) {
      opt.samples = static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--require-kernel") == 0 && i + 1 < argc) {
      opt.require_kernel = std::strtod(argv[++i], nullptr);
    } else if (std::strcmp(argv[i], "--require-convert") == 0 && i + 1 < argc) {
      opt.require_convert = std::strtod(argv[++i], nullptr);
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      opt.out = argv[++i];
    } else {
      std::cerr << "usage: micro_simd [--n N] [--samples K] [--require-kernel X]"
                   " [--require-convert X] [--out PATH]\n";
      return 2;
    }
  }

  const simrt::SimdTier tier = simrt::simd_dispatch_tier();
  std::cout << "=== micro_simd: simrt::simd layer vs scalar baselines (dispatch tier = "
            << simrt::simd_tier_name(tier) << ") ===\n\n";

  int failures = 0;
  Xoshiro256 rng(42);

  BenchArtifact artifact("micro_simd");
  JsonWriter& w = artifact.writer();
  w.key("n");
  w.value(opt.n);
  w.key("samples");
  w.value(opt.samples);
  w.key("tier");
  w.value(std::string(simrt::simd_tier_name(tier)));

  // --- convert: batched vs per-element --------------------------------------
  const std::size_t nconv = 1u << 20;
  std::vector<float> fsrc(nconv), fdst_s(nconv), fdst_b(nconv);
  std::vector<half> hsrc(nconv), hdst_s(nconv), hdst_b(nconv);
  std::vector<bfloat16> bsrc(nconv), bdst_s(nconv), bdst_b(nconv);
  for (std::size_t i = 0; i < nconv; ++i) {
    const float v = static_cast<float>(rng.uniform(-4.0, 4.0));
    fsrc[i] = v;
    hsrc[i] = half(v * 1.7f);
    bsrc[i] = bfloat16(v * 0.3f);
  }

  struct ConvRow {
    const char* dir;
    double scalar_ms;
    double batched_ms;
    double speedup;
  };
  std::vector<ConvRow> conv_rows;
  auto conv_case = [&](const char* dir, auto&& scalar_loop, auto&& batched,
                       auto&& bitwise_equal) {
    const double s_ms = best_ms(opt.samples, scalar_loop);
    const double b_ms = best_ms(opt.samples, batched);
    if (!bitwise_equal()) {
      std::cerr << "FAILED: " << dir << " batched result differs from per-element\n";
      ++failures;
    }
    conv_rows.push_back({dir, s_ms, b_ms, s_ms / b_ms});
  };

  conv_case(
      "half->float",
      [&] {
        for (std::size_t i = 0; i < nconv; ++i) fdst_s[i] = static_cast<float>(hsrc[i]);
      },
      [&] { convert_n(hsrc.data(), fdst_b.data(), nconv); },
      [&] { return std::memcmp(fdst_s.data(), fdst_b.data(), nconv * sizeof(float)) == 0; });
  conv_case(
      "float->half",
      [&] {
        for (std::size_t i = 0; i < nconv; ++i) hdst_s[i] = half(fsrc[i]);
      },
      [&] { convert_n(fsrc.data(), hdst_b.data(), nconv); },
      [&] { return std::memcmp(hdst_s.data(), hdst_b.data(), nconv * sizeof(half)) == 0; });
  conv_case(
      "bfloat->float",
      [&] {
        for (std::size_t i = 0; i < nconv; ++i) fdst_s[i] = static_cast<float>(bsrc[i]);
      },
      [&] { convert_n(bsrc.data(), fdst_b.data(), nconv); },
      [&] { return std::memcmp(fdst_s.data(), fdst_b.data(), nconv * sizeof(float)) == 0; });
  conv_case(
      "float->bfloat",
      [&] {
        for (std::size_t i = 0; i < nconv; ++i) bdst_s[i] = bfloat16(fsrc[i]);
      },
      [&] { convert_n(fsrc.data(), bdst_b.data(), nconv); },
      [&] {
        return std::memcmp(bdst_s.data(), bdst_b.data(), nconv * sizeof(bfloat16)) == 0;
      });

  const double convert_speedup_half =
      std::min(conv_rows[0].speedup, conv_rows[1].speedup);
  Table conv_table({"direction", "per-element (ms)", "batched (ms)", "speedup"});
  for (const auto& r : conv_rows) {
    conv_table.add_row({r.dir, Table::num(r.scalar_ms, 2), Table::num(r.batched_ms, 2),
                        Table::num(r.speedup, 2)});
  }
  std::cout << "-- batched conversion, " << nconv << " elements (bitwise-verified) --\n"
            << conv_table.to_markdown() << "\n";

  // --- axpy: simd value type vs scalar loop ---------------------------------
  struct AxpyRow {
    const char* type;
    double scalar_ms;
    double simd_ms;
    double speedup;
  };
  std::vector<AxpyRow> axpy_rows;
  auto axpy_case = [&](const char* type, auto one) {
    using T = decltype(one);
    const std::size_t na = (1u << 20) + 3;  // odd: exercises the masked tail
    std::vector<T> x(na), y0(na), ys(na), yv(na);
    for (std::size_t i = 0; i < na; ++i) {
      x[i] = static_cast<T>(rng.uniform(-1.0, 1.0));
      y0[i] = static_cast<T>(rng.uniform(-1.0, 1.0));
    }
    const T a = static_cast<T>(1.25);
    const double s_ms = best_ms(opt.samples, [&] {
      ys = y0;
      axpy_scalar(a, x.data(), ys.data(), na);
    });
    const double v_ms = best_ms(opt.samples, [&] {
      yv = y0;
      axpy_simd(a, x.data(), yv.data(), na);
    });
    if (std::memcmp(ys.data(), yv.data(), na * sizeof(T)) != 0) {
      std::cerr << "FAILED: axpy " << type << " simd result differs from scalar\n";
      ++failures;
    }
    axpy_rows.push_back({type, s_ms, v_ms, s_ms / v_ms});
  };
  axpy_case("float", 0.0f);
  axpy_case("double", 0.0);

  Table axpy_table({"type", "scalar (ms)", "simd (ms)", "speedup"});
  for (const auto& r : axpy_rows) {
    axpy_table.add_row({r.type, Table::num(r.scalar_ms, 2), Table::num(r.simd_ms, 2),
                        Table::num(r.speedup, 2)});
  }
  std::cout << "-- axpy y = a*x + y (bitwise-verified; scalar loop is already\n"
               "   auto-vectorized to the baseline ISA, so gains come from wider tiers) --\n"
            << axpy_table.to_markdown() << "\n";

  // --- microkernel: packed-panel FLOP/s per tier ----------------------------
  struct KernelRow {
    std::string label;
    double ms;
    double gflops;
    double speedup;
  };
  std::vector<KernelRow> kernel_rows;
  double kernel_ratio_float = 1.0;
  auto kernel_case = [&](const char* type, auto one) {
    using Acc = decltype(one);
    const std::size_t kc = kKC;
    const std::size_t reps = 20000;
    std::vector<Acc> ap(kc * kMR), bp(kc * kNRMax), acc(kMR * kNRMax), ref(kMR * kNRMax);
    for (auto& v : ap) v = static_cast<Acc>(rng.uniform(-1.0, 1.0));
    for (auto& v : bp) v = static_cast<Acc>(rng.uniform(-1.0, 1.0));

    const auto scalar_mk = gemm::tiled_detail::microkernel_for_tier<Acc>(
        simrt::SimdTier::kScalar);
    scalar_mk.fn(ap.data(), bp.data(), kc, ref.data());
    const double scalar_ms = best_ms(opt.samples, [&] {
      for (std::size_t r = 0; r < reps; ++r) scalar_mk.fn(ap.data(), bp.data(), kc, acc.data());
    });
    const double scalar_gflops =
        2.0 * static_cast<double>(kc * kMR * scalar_mk.nr * reps) / (scalar_ms * 1e6);
    kernel_rows.push_back({std::string(type) + "/scalar", scalar_ms, scalar_gflops, 1.0});

    for (simrt::SimdTier t : {simrt::SimdTier::kAvx2, simrt::SimdTier::kAvx512}) {
      if (!simrt::simd_tier_available(t)) continue;
      const auto mk = gemm::tiled_detail::microkernel_for_tier<Acc>(t);
      if (mk.tier != t) continue;  // no tuned kernel for this tier/type
      mk.fn(ap.data(), bp.data(), kc, acc.data());
      // Bitwise check vs the scalar kernel at the SAME panel geometry
      // (NR changes how the packed bp array is interpreted).
      if (mk.nr == gemm::tiled::kNR) {
        gemm::tiled_detail::microkernel_scalar<Acc, gemm::tiled::kNR>(ap.data(), bp.data(),
                                                                      kc, ref.data());
      } else {
        gemm::tiled_detail::microkernel_scalar<Acc, kNRMax>(ap.data(), bp.data(), kc,
                                                            ref.data());
      }
      const bool same =
          std::memcmp(acc.data(), ref.data(), kMR * mk.nr * sizeof(Acc)) == 0;
      if (!same) {
        std::cerr << "FAILED: " << type << " micro-kernel tier "
                  << simrt::simd_tier_name(t) << " differs from scalar\n";
        ++failures;
      }
      const double ms = best_ms(opt.samples, [&] {
        for (std::size_t r = 0; r < reps; ++r) mk.fn(ap.data(), bp.data(), kc, acc.data());
      });
      const double gflops =
          2.0 * static_cast<double>(kc * kMR * mk.nr * reps) / (ms * 1e6);
      const double speedup = gflops / scalar_gflops;
      kernel_rows.push_back({std::string(type) + "/" +
                                 std::string(simrt::simd_tier_name(t)),
                             ms, gflops, speedup});
      if (std::strcmp(type, "float") == 0 && mk.tier == tier) kernel_ratio_float = speedup;
    }
  };
  kernel_case("float", 0.0f);
  kernel_case("double", 0.0);

  Table kernel_table({"kernel", "ms", "GFLOP/s", "vs scalar"});
  for (const auto& r : kernel_rows) {
    kernel_table.add_row(
        {r.label, Table::num(r.ms, 2), Table::num(r.gflops, 2), Table::num(r.speedup, 2)});
  }
  std::cout << "-- GEMM micro-kernel over packed panels (FLOPs-normalized; "
               "bitwise-verified) --\n"
            << kernel_table.to_markdown() << "\n";

  // --- gemm: end-to-end tiled GEMM vs the pre-SIMD implementation -----------
  struct GemmRow {
    const char* type;
    double legacy_ms;
    double simd_ms;
    double speedup;
  };
  std::vector<GemmRow> gemm_rows;
  {
    const std::size_t n = opt.n;
    simrt::SerialSpace space;
    simrt::View2<float> A(n, n), B(n, n), C_legacy(n, n), C_simd(n, n);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        A(i, j) = static_cast<float>(rng.uniform(-1.0, 1.0));
        B(i, j) = static_cast<float>(rng.uniform(-1.0, 1.0));
      }
    }
    const double legacy_ms = best_ms(opt.samples, [&] {
      for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < n; ++j) C_legacy(i, j) = 0.0f;
      }
      legacy_gemm_tiled<float>(space, A, B, C_legacy);
    });
    const double simd_ms = best_ms(opt.samples, [&] {
      for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < n; ++j) C_simd(i, j) = 0.0f;
      }
      gemm::gemm_tiled<float>(space, A, B, C_simd);
    });
    bool same = true;
    for (std::size_t i = 0; i < n && same; ++i) {
      for (std::size_t j = 0; j < n && same; ++j) {
        const float a = C_legacy(i, j);
        const float b = C_simd(i, j);
        same = std::memcmp(&a, &b, sizeof(float)) == 0;
      }
    }
    if (!same) {
      std::cerr << "FAILED: gemm_tiled result differs from the pre-SIMD baseline\n";
      ++failures;
    }
    gemm_rows.push_back({"float", legacy_ms, simd_ms, legacy_ms / simd_ms});
  }

  Table gemm_table({"type", "pre-SIMD (ms)", "simd (ms)", "speedup"});
  for (const auto& r : gemm_rows) {
    gemm_table.add_row({r.type, Table::num(r.legacy_ms, 2), Table::num(r.simd_ms, 2),
                        Table::num(r.speedup, 2)});
  }
  std::cout << "-- full tiled GEMM, n=" << opt.n << " (bitwise-verified) --\n"
            << gemm_table.to_markdown() << "\n";

  // --- machine-readable artifact --------------------------------------------
  w.key("convert");
  w.begin_array();
  for (const auto& r : conv_rows) {
    w.begin_object();
    w.key("direction");
    w.value(r.dir);
    w.key("scalar_ms");
    w.value(r.scalar_ms);
    w.key("batched_ms");
    w.value(r.batched_ms);
    w.key("speedup");
    w.value(r.speedup);
    w.end_object();
  }
  w.end_array();
  w.key("axpy");
  w.begin_array();
  for (const auto& r : axpy_rows) {
    w.begin_object();
    w.key("type");
    w.value(r.type);
    w.key("scalar_ms");
    w.value(r.scalar_ms);
    w.key("simd_ms");
    w.value(r.simd_ms);
    w.key("speedup");
    w.value(r.speedup);
    w.end_object();
  }
  w.end_array();
  w.key("microkernel");
  w.begin_array();
  for (const auto& r : kernel_rows) {
    w.begin_object();
    w.key("kernel");
    w.value(r.label);
    w.key("ms");
    w.value(r.ms);
    w.key("gflops");
    w.value(r.gflops);
    w.key("speedup");
    w.value(r.speedup);
    w.end_object();
  }
  w.end_array();
  w.key("gemm");
  w.begin_array();
  for (const auto& r : gemm_rows) {
    w.begin_object();
    w.key("type");
    w.value(r.type);
    w.key("legacy_ms");
    w.value(r.legacy_ms);
    w.key("simd_ms");
    w.value(r.simd_ms);
    w.key("speedup");
    w.value(r.speedup);
    w.end_object();
  }
  w.end_array();
  w.key("kernel_ratio_float");
  w.value(kernel_ratio_float);
  w.key("convert_speedup_half");
  w.value(convert_speedup_half);
  if (const int rc = artifact.write(opt.out); rc != 0) return rc;

  if (opt.require_kernel > 0.0 && kernel_ratio_float < opt.require_kernel) {
    std::cerr << "FAILED: float micro-kernel speedup " << kernel_ratio_float
              << "x is below the " << opt.require_kernel << "x requirement\n";
    ++failures;
  }
  if (opt.require_convert > 0.0 && convert_speedup_half < opt.require_convert) {
    std::cerr << "FAILED: batched half conversion speedup " << convert_speedup_half
              << "x is below the " << opt.require_convert << "x requirement\n";
    ++failures;
  }
  if (failures != 0) {
    std::cerr << failures << " FAILURES\n";
    return 1;
  }
  return 0;
}
