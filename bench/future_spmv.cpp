// Future-work workload: sparse matrix-vector multiplication.
//
// Section VI: "Future work should continue to explore their use in more
// complex HPC workloads."  This bench runs the SpMV extension end to
// end: functional kernels per programming-model convention (CSR
// row-parallel for C/OpenMP/Kokkos/Numba, CSC columns for Julia, scalar
// and vector GPU kernels), cross-validated, profiled nvprof-style, with
// the memory-bound roofline model supplying the modeled rates — the
// opposite corner of the roofline from the paper's GEMM.
#include <iostream>
#include <vector>

#include "common/table.hpp"
#include "gpusim/profiler.hpp"
#include "spmv/kernels.hpp"
#include "spmv/model.hpp"

int main() {
  using namespace portabench;
  using namespace portabench::spmv;

  std::cout << "=== Future-work workload: SpMV (FP64) ===\n\n";

  // Functional study at host-tractable size.
  constexpr std::size_t kRows = 2000;
  constexpr std::size_t kNnzPerRow = 16;
  const auto A = random_csr<double>(kRows, kRows, kNnzPerRow, 99);
  A.validate();
  std::vector<double> x(kRows);
  Xoshiro256 rng(100);
  fill_uniform(std::span<double>(x), rng);

  std::vector<double> reference(kRows);
  spmv_reference<double>(A, x, std::span<double>(reference));

  auto max_diff = [&](std::span<const double> y) {
    double worst = 0.0;
    for (std::size_t i = 0; i < kRows; ++i) {
      worst = std::max(worst, std::abs(y[i] - reference[i]));
    }
    return worst;
  };

  Table func({"kernel", "convention", "max error", "status"});
  {
    simrt::ThreadsSpace space(4);
    std::vector<double> y(kRows);
    spmv_csr_row_parallel<double>(space, A, x, std::span<double>(y));
    func.add_row({"row-parallel (C/OpenMP, Kokkos, Numba)", "CSR",
                  Table::num(max_diff(y), 14), max_diff(y) < 1e-10 ? "OK" : "FAILED"});

    const auto csc = csr_to_csc(A);
    std::vector<double> y2(kRows);
    spmv_csc_column_parallel<double>(space, csc, x, std::span<double>(y2));
    func.add_row({"column-parallel + privatized y (Julia)", "CSC",
                  Table::num(max_diff(y2), 14), max_diff(y2) < 1e-10 ? "OK" : "FAILED"});
  }

  gpusim::Profiler prof;
  {
    gpusim::DeviceContext ctx(gpusim::GpuSpec::a100());
    gpusim::DeviceBuffer<double> dx(ctx, kRows);
    gpusim::DeviceBuffer<double> dy(ctx, kRows);
    dx.copy_from_host(x);
    prof.record_transfer(gpusim::TransferRecord::Direction::kH2D, kRows * sizeof(double));

    spmv_gpu_scalar<double>(ctx, A, dx, dy);
    prof.record_launch("spmv_scalar(row/thread)", {gpusim::blocks_for(kRows, 128), 1, 1},
                       {128, 1, 1});
    std::vector<double> y(kRows);
    dy.copy_to_host(std::span<double>(y));
    prof.record_transfer(gpusim::TransferRecord::Direction::kD2H, kRows * sizeof(double));
    func.add_row({"GPU scalar (CUDA/Numba shape)", "CSR", Table::num(max_diff(y), 14),
                  max_diff(y) < 1e-10 ? "OK" : "FAILED"});

    spmv_gpu_vector<double>(ctx, A, dx, dy);
    prof.record_launch("spmv_vector(warp/row)", {kRows, 1, 1},
                       {ctx.spec().warp_size, 1, 1});
    dy.copy_to_host(std::span<double>(y));
    func.add_row({"GPU vector (warp per row)", "CSR", Table::num(max_diff(y), 14),
                  max_diff(y) < 1e-10 ? "OK" : "FAILED"});
  }
  std::cout << func.to_markdown();
  std::cout << "\n" << prof.report() << "\n";

  // Modeled rates at production scale.
  std::cout << "modeled SpMV rates, 1M rows x 64 nnz/row (memory-bound roofline):\n";
  Table model({"platform", "AI (flop/byte)", "modeled GFLOP/s", "% of FP64 peak"});
  const std::size_t rows = 1 << 20;
  const std::size_t nnz = rows * 64;
  {
    const auto epyc = perfmodel::CpuSpec::epyc_7a53();
    const auto p = predict_spmv_cpu(epyc, rows, nnz);
    model.add_row({"Crusher EPYC 7A53", Table::num(p.arithmetic_intensity, 3),
                   Table::num(p.gflops, 1),
                   Table::num(100.0 * p.gflops / epyc.peak_gflops(Precision::kDouble), 1)});
    const auto altra = perfmodel::CpuSpec::ampere_altra();
    const auto q = predict_spmv_cpu(altra, rows, nnz);
    model.add_row({"Wombat Ampere Altra", Table::num(q.arithmetic_intensity, 3),
                   Table::num(q.gflops, 1),
                   Table::num(100.0 * q.gflops / altra.peak_gflops(Precision::kDouble), 1)});
    const auto mi = perfmodel::GpuPerfSpec::mi250x_gcd();
    const auto r = predict_spmv_gpu(mi, rows, nnz);
    model.add_row({"Crusher MI250X (GCD)", Table::num(r.arithmetic_intensity, 3),
                   Table::num(r.gflops, 1), Table::num(100.0 * r.gflops / mi.peak_fp64_gflops, 1)});
    const auto a100 = perfmodel::GpuPerfSpec::a100();
    const auto s = predict_spmv_gpu(a100, rows, nnz);
    model.add_row({"Wombat A100", Table::num(s.arithmetic_intensity, 3),
                   Table::num(s.gflops, 1),
                   Table::num(100.0 * s.gflops / a100.peak_fp64_gflops, 1)});
  }
  std::cout << model.to_markdown();
  std::cout << "\nTakeaway: at ~0.1 flop/byte every platform runs at a few percent of\n"
               "peak — programming-model codegen differences (the GEMM story) fade\n"
               "and memory-system quality dominates, which is why portability\n"
               "studies need workloads from both ends of the roofline.\n";
  return 0;
}
