// Host ceiling: measured Eq.-2 efficiencies of the naive Fig. 2 CPU
// kernels against the optimized tiled/packed GEMM frontend.
//
// The paper normalizes each portable model against the *vendor* library
// on the target machine (Eq. 2).  On the simulation host the analogous
// ceiling is the optimized C++ frontend (gemm/kernels_tiled.hpp): this
// bench runs all four naive frontends and the tiled one functionally at
// the same size, verifies every result against the reference GEMM, and
// reports what fraction of the tuned-native rate each model's idiom
// reaches — the measured headroom the paper's lower-bound methodology
// deliberately leaves on the table.
//
// Exit code is nonzero if any run fails verification or if the tiled
// ceiling is not the fastest implementation (it must be a ceiling).
//
// Usage: host_ceiling_gemm [--n N] [--threads N] [--out PATH]
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "bench_json.hpp"
#include "common/table.hpp"
#include "models/runner.hpp"
#include "portability/metric.hpp"

int main(int argc, char** argv) {
  using namespace portabench;
  using perfmodel::Family;
  using perfmodel::Platform;

  std::size_t n = 512;
  std::size_t threads = 2;
  std::string out_path = "BENCH_ceiling.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--n") == 0 && i + 1 < argc) {
      n = static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      threads = static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::cerr << "usage: host_ceiling_gemm [--n N] [--threads N] [--out PATH]\n";
      return 2;
    }
  }

  const double flops = 2.0 * static_cast<double>(n) * n * n;
  std::cout << "=== Host ceiling: naive Fig. 2 kernels vs optimized tiled GEMM (n=" << n
            << ", double, " << threads << " host threads) ===\n\n";

  struct Row {
    std::string name;
    double seconds = 0.0;
    double gflops = 0.0;
    bool verified = false;
  };
  std::vector<Row> rows;

  auto measure = [&](models::ModelRunner& runner) {
    Row row;
    row.name = std::string(runner.name());
    models::RunConfig cfg;
    cfg.n = n;
    cfg.host_threads = threads;
    cfg.precision = Precision::kDouble;
    cfg.verify = false;
    const auto warm = runner.run(cfg);  // warm-up rep (paper protocol)
    cfg.verify = true;
    const auto timed = runner.run(cfg);
    row.seconds = std::min(warm.host_seconds, timed.host_seconds);
    row.gflops = flops / row.seconds / 1e9;
    row.verified = timed.verified;
    rows.push_back(row);
  };

  auto ceiling = models::make_optimized_cpu_runner(Platform::kCrusherCpu);
  measure(*ceiling);
  const Row ceiling_row = rows.front();

  for (Family f : perfmodel::kAllFamilies) {
    auto runner = models::make_runner(Platform::kCrusherCpu, f);
    measure(*runner);
  }

  int failures = 0;
  Table t({"implementation", "host s", "GFLOP/s", "e_i vs ceiling", "verified"});
  for (const auto& row : rows) {
    const double eff = portability::ceiling_efficiency(row.seconds, ceiling_row.seconds);
    t.add_row({row.name, Table::num(row.seconds, 4), Table::num(row.gflops, 2),
               Table::num(eff, 3), row.verified ? "yes" : "NO"});
    if (!row.verified) ++failures;
    if (&row != &rows.front() && row.seconds < ceiling_row.seconds) {
      std::cout << "CEILING VIOLATION: " << row.name << " beat the tiled kernel\n";
      ++failures;
    }
  }
  std::cout << t.to_markdown() << "\n";

  BenchArtifact artifact("host_ceiling_gemm");
  JsonWriter& w = artifact.writer();
  w.key("n");
  w.value(n);
  w.key("host_threads");
  w.value(threads);
  w.key("results");
  w.begin_array();
  for (const auto& row : rows) {
    w.begin_object();
    w.key("name");
    w.value(row.name);
    w.key("host_seconds");
    w.value(row.seconds);
    w.key("gflops");
    w.value(row.gflops);
    w.key("efficiency_vs_ceiling");
    w.value(portability::ceiling_efficiency(row.seconds, ceiling_row.seconds));
    w.key("verified");
    w.value(row.verified);
    w.end_object();
  }
  w.end_array();
  if (const int rc = artifact.write(out_path); rc != 0) return rc;

  if (failures != 0) {
    std::cout << failures << " FAILURES\n";
    return 1;
  }
  std::cout << "tiled ceiling holds: every naive kernel slower, all runs verified\n";
  return 0;
}
