// Ablation: multi-device scaling (beyond the paper's single-GPU runs).
//
// Crusher carries 8 MI250X GCDs per node and Wombat 2 A100s; the paper
// measures one device.  This bench models the next experiment: strong-
// and weak-scaling the GEMM across the node's devices with host-link
// contention, the obvious continuation of the paper's "single node
// scalability" framing (Section I).
#include <iostream>

#include "common/table.hpp"
#include "perfmodel/multigpu.hpp"

namespace {

using namespace portabench;

void print_sweep(const char* title, const std::vector<perfmodel::MultiGpuPoint>& sweep) {
  std::cout << title << "\n";
  Table t({"devices", "kernel (ms)", "staging (ms)", "total (ms)", "speedup",
           "efficiency"});
  for (const auto& p : sweep) {
    t.add_row({std::to_string(p.devices), Table::num(p.kernel_s * 1e3, 2),
               Table::num(p.transfer_s * 1e3, 2), Table::num(p.total_s * 1e3, 2),
               Table::num(p.speedup, 2), Table::num(p.efficiency, 3)});
  }
  std::cout << t.to_markdown() << "\n";
}

}  // namespace

int main() {
  using perfmodel::GpuMachineModel;
  using perfmodel::GpuPerfSpec;
  using perfmodel::LinkSpec;

  std::cout << "=== Ablation: multi-device scaling (FP64, n = 16384) ===\n\n";

  const GpuMachineModel mi250x(GpuPerfSpec::mi250x_gcd());
  print_sweep("Crusher node: 8 MI250X GCDs, strong scaling (one GEMM row-split)",
              perfmodel::strong_scaling_gemm(mi250x, LinkSpec::infinity_fabric(),
                                             Precision::kDouble, 16384, 8));
  print_sweep("Crusher node: 8 GCDs, weak scaling (one GEMM per GCD)",
              perfmodel::weak_scaling_gemm(mi250x, LinkSpec::infinity_fabric(),
                                           Precision::kDouble, 16384, 8));

  const GpuMachineModel a100(GpuPerfSpec::a100());
  print_sweep("Wombat node: 2 A100s, strong scaling",
              perfmodel::strong_scaling_gemm(a100, LinkSpec::pcie4_x16(),
                                             Precision::kDouble, 16384, 2));

  std::cout << "Takeaway: strong scaling pays twice — the full-B broadcast grows the\n"
               "per-device staging share while the kernel shrinks — whereas weak\n"
               "scaling holds ~constant efficiency until the shared host bandwidth\n"
               "saturates.  The programming-model question (does the frontend expose\n"
               "multi-device placement at all?) sits on top: CUDA.jl/AMDGPU.jl and\n"
               "Kokkos do; Numba requires manual context juggling.\n";
  return 0;
}
