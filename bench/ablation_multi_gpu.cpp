// Ablation: multi-device scaling (beyond the paper's single-GPU runs).
//
// Crusher carries 8 MI250X GCDs per node and Wombat 2 A100s; the paper
// measures one device.  This bench runs the next experiment both ways:
//
//   modeled   strong/weak-scaling curves from perfmodel (host-link
//             contention + per-device efficiency loss), unchanged from
//             the original ablation tables;
//   measured  the real sharded GEMM pipeline (multigpu::gemm_sharded) on
//             the simulated Crusher topology at 1/2/4 GCDs, wall-clock
//             throughput with NUMA-pinned per-device engines, every run
//             verified bitwise against the single-device serial oracle.
//
// The measured sweep is cross-checked against the NUMA-aware predicted
// curve (perfmodel::sharded_pipeline_gemm): the two must rank the device
// counts identically (model_rank_match), the shape agreement the release
// gate pins.  --require X fails the run when the 4-GCD speedup is below
// X (CI passes 3 on >= 8-core runners, 0 elsewhere).
//
// Usage: ablation_multi_gpu [--n N] [--require X] [--out PATH]
#include <algorithm>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "bench_json.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "common/timer.hpp"
#include "gpusim/topology.hpp"
#include "multigpu/gemm.hpp"
#include "perfmodel/multigpu.hpp"

namespace {

using namespace portabench;

void print_sweep(const char* title, const std::vector<perfmodel::MultiGpuPoint>& sweep) {
  std::cout << title << "\n";
  Table t({"devices", "kernel (ms)", "staging (ms)", "total (ms)", "speedup",
           "efficiency"});
  for (const auto& p : sweep) {
    t.add_row({std::to_string(p.devices), Table::num(p.kernel_s * 1e3, 2),
               Table::num(p.transfer_s * 1e3, 2), Table::num(p.total_s * 1e3, 2),
               Table::num(p.speedup, 2), Table::num(p.efficiency, 3)});
  }
  std::cout << t.to_markdown() << "\n";
}

struct MeasuredPoint {
  std::size_t devices = 0;
  double wall_s = 0.0;
  double modeled_s = 0.0;
  double speedup = 1.0;
  bool bitwise = false;
};

}  // namespace

int main(int argc, char** argv) {
  using perfmodel::GpuMachineModel;
  using perfmodel::GpuPerfSpec;
  using perfmodel::LinkSpec;

  std::size_t n = 768;
  double require = 0.0;  // minimum 4-GCD speedup; 0 = report only
  std::string out_path = "BENCH_multigpu.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--n") == 0 && i + 1 < argc) {
      n = static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--require") == 0 && i + 1 < argc) {
      require = std::strtod(argv[++i], nullptr);
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::cerr << "usage: ablation_multi_gpu [--n N] [--require X] [--out PATH]\n";
      return 2;
    }
  }

  std::cout << "=== Ablation: multi-device scaling (FP64) ===\n\n";

  // --- modeled curves (the original ablation tables, n = 16384) ---
  const GpuMachineModel mi250x(GpuPerfSpec::mi250x_gcd());
  const auto strong = perfmodel::strong_scaling_gemm(
      mi250x, LinkSpec::infinity_fabric(), Precision::kDouble, 16384, 8);
  print_sweep("Crusher node: 8 MI250X GCDs, strong scaling (one GEMM row-split)", strong);
  print_sweep("Crusher node: 8 GCDs, weak scaling (one GEMM per GCD)",
              perfmodel::weak_scaling_gemm(mi250x, LinkSpec::infinity_fabric(),
                                           Precision::kDouble, 16384, 8));
  const GpuMachineModel a100(GpuPerfSpec::a100());
  print_sweep("Wombat node: 2 A100s, strong scaling",
              perfmodel::strong_scaling_gemm(a100, LinkSpec::pcie4_x16(),
                                             Precision::kDouble, 16384, 2));

  // --- measured sharded pipeline at 1/2/4 GCDs, host-sized problem ---
  const std::size_t m = n;
  const std::size_t k = n;
  std::vector<double> a(m * k);
  std::vector<double> b(k * n);
  std::vector<double> c(m * n);
  Xoshiro256 rng(0xB0A7ull);
  fill_uniform(std::span<double>(a), rng);
  fill_uniform(std::span<double>(b), rng);
  const simrt::RawView2<const double> A(a.data(), m, k);
  const simrt::RawView2<const double> B(b.data(), k, n);

  std::vector<double> oracle(m * n);
  multigpu::gemm_sharded_oracle<double>(A, B,
                                        simrt::RawView2<double>(oracle.data(), m, n));

  const std::size_t device_counts[] = {1, 2, 4};
  std::vector<MeasuredPoint> measured;
  int failures = 0;
  for (const std::size_t g : device_counts) {
    gpusim::TopologyConfig tc = gpusim::TopologyConfig::crusher_node(g);
    tc.throttle_links = false;  // scaling run: links modeled, not enforced
    gpusim::DeviceTopology topo(tc);

    multigpu::GemmShardOptions opt;
    opt.panel_rows = 128;
    // Warm-up rep (paper protocol: first rep carries thread spin-up),
    // then the timed rep.
    std::fill(c.begin(), c.end(), 0.0);
    (void)multigpu::gemm_sharded<double>(topo, A, B,
                                         simrt::RawView2<double>(c.data(), m, n), opt);
    std::fill(c.begin(), c.end(), 0.0);
    Timer timer;
    const auto stats = multigpu::gemm_sharded<double>(
        topo, A, B, simrt::RawView2<double>(c.data(), m, n), opt);
    MeasuredPoint p;
    p.devices = g;
    p.wall_s = timer.seconds();
    p.modeled_s = stats.modeled_s;
    p.bitwise = std::memcmp(c.data(), oracle.data(), m * n * sizeof(double)) == 0;
    if (!p.bitwise) {
      std::cout << "BITWISE MISMATCH at " << g << " devices\n";
      ++failures;
    }
    measured.push_back(p);
  }
  for (auto& p : measured) p.speedup = measured.front().wall_s / p.wall_s;

  // The NUMA-aware predicted curve at the same device counts must rank
  // them like the measured wall times do.
  perfmodel::ShardedGemmParams params;
  params.n = n;
  params.panel_rows = 128;
  const auto predicted = perfmodel::sharded_pipeline_gemm(
      mi250x, perfmodel::NodeShape::crusher(), Precision::kDouble, params, 4);
  std::vector<double> pred_totals;
  std::vector<double> meas_totals;
  for (const auto& p : measured) {
    pred_totals.push_back(predicted[p.devices - 1].total_s);
    meas_totals.push_back(p.wall_s);
  }
  const bool rank_match = perfmodel::ranks_agree(pred_totals, meas_totals);

  std::cout << "Measured: sharded GEMM pipeline, n = " << n << ", NUMA-pinned GCDs\n";
  Table t({"devices", "wall (ms)", "modeled (ms)", "predicted (ms)", "speedup",
           "bitwise"});
  for (const auto& p : measured) {
    t.add_row({std::to_string(p.devices), Table::num(p.wall_s * 1e3, 2),
               Table::num(p.modeled_s * 1e3, 2),
               Table::num(predicted[p.devices - 1].total_s * 1e3, 2),
               Table::num(p.speedup, 2), p.bitwise ? "yes" : "NO"});
  }
  std::cout << t.to_markdown() << "\n";
  std::cout << "model rank match (predicted vs measured ordering): "
            << (rank_match ? "yes" : "NO") << "\n\n";

  BenchArtifact artifact("ablation_multi_gpu");
  JsonWriter& w = artifact.writer();
  w.key("n");
  w.value(n);
  w.key("required_speedup");
  w.value(require);
  w.key("measured");
  w.begin_array();
  for (const auto& p : measured) {
    w.begin_object();
    w.key("devices");
    w.value(p.devices);
    w.key("wall_seconds");
    w.value(p.wall_s);
    w.key("modeled_seconds");
    w.value(p.modeled_s);
    w.key("predicted_seconds");
    w.value(predicted[p.devices - 1].total_s);
    w.key("speedup");
    w.value(p.speedup);
    w.key("bitwise_identical");
    w.value(p.bitwise);
    w.end_object();
  }
  w.end_array();
  w.key("model_rank_match");
  w.value(rank_match);
  w.key("speedup_4gcd");
  w.value(measured.back().speedup);
  if (const int rc = artifact.write(out_path); rc != 0) return rc;

  std::cout << "Takeaway: strong scaling pays twice — the full-B broadcast grows the\n"
               "per-device staging share while the kernel shrinks — whereas weak\n"
               "scaling holds ~constant efficiency until the shared host bandwidth\n"
               "saturates.  The programming-model question (does the frontend expose\n"
               "multi-device placement at all?) sits on top: CUDA.jl/AMDGPU.jl and\n"
               "Kokkos do; Numba requires manual context juggling.\n";

  if (failures != 0) return 1;
  // The shape gates only apply where the host has cores to scale across
  // (CI passes --require 3 on >= 8-core runners); small hosts oversub-
  // scribe 4 topologies' worth of workers and legitimately rank oddly.
  if (require > 0.0 && !rank_match) {
    std::cout << "FAILED: predicted multi-GCD curve does not rank like the measured one\n";
    return 1;
  }
  if (require > 0.0 && measured.back().speedup < require) {
    std::cout << "FAILED: 4-GCD speedup " << measured.back().speedup << "x is below the "
              << require << "x requirement\n";
    return 1;
  }
  return 0;
}
