// Roofline report: where the naive GEMM sits on each device's roofline.
//
// Supporting analysis for Figs. 4-7: arithmetic intensity of the naive
// kernel per precision, each device's ridge point, and whether the
// machine model classifies the kernel as compute- or memory-bound across
// the sweep — the mechanism behind the flat large-n plateaus.
#include <iostream>

#include "common/table.hpp"
#include "perfmodel/predict.hpp"

int main() {
  using namespace portabench;
  using perfmodel::Platform;

  std::cout << "=== Roofline placement of the naive GEMM ===\n\n";

  for (Platform p : perfmodel::kAllPlatforms) {
    std::cout << "--- " << perfmodel::name(p) << " ---\n";
    Table t({"precision", "n", "AI (flop/byte)", "ridge (flop/byte)", "bound",
             "vendor GFLOP/s"});
    for (Precision prec : {Precision::kDouble, Precision::kSingle}) {
      for (std::size_t n : {4096u, 16384u}) {
        double peak = 0.0;
        double bw = 0.0;
        double traffic = 0.0;
        double gflops = 0.0;
        bool memory_bound = false;
        if (perfmodel::is_gpu(p)) {
          const auto model = perfmodel::gpu_model_for(p);
          peak = model.spec().peak_gflops(prec);
          bw = model.spec().mem_bw_gbs;
          const auto ref = model.reference_time(prec, n);
          traffic = ref.dram_bytes;
          gflops = ref.gflops;
          memory_bound = ref.memory_bound;
        } else {
          const auto model = perfmodel::cpu_model_for(p);
          peak = model.spec().peak_gflops(prec);
          bw = model.spec().mem_bw_gbs;
          const auto ref = model.reference_time(prec, n, model.spec().cores,
                                                simrt::BindPolicy::kClose);
          traffic = ref.dram_bytes;
          gflops = ref.gflops;
          memory_bound = ref.memory_bound;
        }
        const double flops = 2.0 * static_cast<double>(n) * n * n;
        const double ai = flops / traffic;
        const double ridge = peak / bw;
        t.add_row({std::string(name(prec)), std::to_string(n), Table::num(ai, 1),
                   Table::num(ridge, 1), memory_bound ? "memory" : "compute",
                   Table::num(gflops, 1)});
      }
    }
    std::cout << t.to_markdown() << "\n";
  }
  std::cout << "Reading: with warm caches the naive kernel's effective AI sits above\n"
               "every device's ridge point at small n (compute-bound plateaus) and\n"
               "approaches it from above as B outgrows the caches — the shape of the\n"
               "figures' curves.\n";
  return 0;
}
