// Figure 6: simple GEMM on Crusher's AMD MI250X GPU with 32x32 thread
// blocks — HIP, Kokkos/HIP, Julia AMDGPU.jl at double (6a) and single
// (6b) precision, plus the Julia-only half-precision panel (6c).
// Python/Numba is absent: its AMD GPU support is deprecated.
#include "harness.hpp"

int main(int argc, char** argv) {
  using namespace portabench;
  const auto options = bench::parse_options(argc, argv);
  return bench::run_figure(
      perfmodel::Platform::kCrusherGpu, "Figure 6",
      {{"(a) double precision, 32x32 blocks", Precision::kDouble},
       {"(b) single precision, 32x32 blocks", Precision::kSingle},
       {"(c) half precision (FP16 inputs, FP32 accumulate)", Precision::kHalfIn}},
      options);
}
