// Half-precision study: the numerics behind Figs. 5c/6c/7c.
//
// Explores the FP16 design space the paper touches: binary16 vs bfloat16
// representation error, the FP16-in/FP32-accumulate scheme of Fig. 1c vs
// all-FP16 accumulation, and the random-number quirk that forces Numba's
// matrices of ones.
#include <cmath>
#include <iostream>
#include <vector>

#include "common/half.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "gemm/kernels_cpu.hpp"
#include "gemm/reference.hpp"
#include "simrt/mdarray.hpp"
#include "simrt/parallel.hpp"

namespace {

using namespace portabench;
using simrt::LayoutRight;
using simrt::View2;

/// GEMM with FP16 inputs and *FP16* accumulation (what Fig. 1c avoids).
void gemm_fp16_accumulate(const View2<half, LayoutRight>& A,
                          const View2<half, LayoutRight>& B,
                          View2<float, LayoutRight>& C) {
  const std::size_t n = A.extent(0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      half acc(0.0f);
      for (std::size_t l = 0; l < n; ++l) acc += A(i, l) * B(l, j);
      C(i, j) = static_cast<float>(acc);
    }
  }
}

}  // namespace

int main() {
  std::cout << "=== Half-precision study (Figs. 5c / 6c / 7c numerics) ===\n\n";

  // 1. Representation error of the two 16-bit formats.
  std::cout << "1. representation error over uniform [0,1) samples:\n";
  {
    Xoshiro256 rng(2024);
    double worst_half = 0.0;
    double worst_bf16 = 0.0;
    for (int i = 0; i < 100000; ++i) {
      const float x = static_cast<float>(rng.uniform());
      worst_half = std::max(worst_half,
                            std::abs(static_cast<double>(static_cast<float>(half(x))) - x));
      worst_bf16 = std::max(
          worst_bf16, std::abs(static_cast<double>(static_cast<float>(bfloat16(x))) - x));
    }
    Table t({"format", "mantissa bits", "max abs error", "max finite"});
    t.add_row({"binary16 (half)", "10", Table::num(worst_half, 7), "65504"});
    t.add_row({"bfloat16", "7", Table::num(worst_bf16, 7), "~3.4e38"});
    std::cout << t.to_markdown() << "\n";
  }

  // 2. Accumulation scheme: FP32 accumulate (Fig. 1c) vs all-FP16.
  std::cout << "2. accumulation scheme at growing k (error vs FP64 reference):\n";
  {
    Table t({"n=k", "FP16-in / FP32-acc max err", "FP16-in / FP16-acc max err"});
    simrt::SerialSpace space;
    for (std::size_t n : {16u, 64u, 256u, 1024u}) {
      View2<half, LayoutRight> A(n, n);
      View2<half, LayoutRight> B(n, n);
      Xoshiro256 rng(7 + n);
      fill_uniform(std::span<half>(A.data(), n * n), rng);
      fill_uniform(std::span<half>(B.data(), n * n), rng);

      // FP64 ground truth on the same (exactly representable) inputs.
      View2<double, LayoutRight> A64(n, n);
      View2<double, LayoutRight> B64(n, n);
      for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < n; ++j) {
          A64(i, j) = static_cast<double>(A(i, j));
          B64(i, j) = static_cast<double>(B(i, j));
        }
      }
      View2<double, LayoutRight> C64(n, n);
      gemm::reference_gemm<double>(A64, B64, C64);

      View2<float, LayoutRight> C_mixed(n, n);
      gemm::gemm_openmp_style<float>(space, A, B, C_mixed);
      View2<float, LayoutRight> C_fp16(n, n);
      gemm_fp16_accumulate(A, B, C_fp16);

      double err_mixed = 0.0;
      double err_fp16 = 0.0;
      for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < n; ++j) {
          err_mixed = std::max(err_mixed, std::abs(C_mixed(i, j) - C64(i, j)));
          err_fp16 = std::max(err_fp16, std::abs(C_fp16(i, j) - C64(i, j)));
        }
      }
      t.add_row({std::to_string(n), Table::num(err_mixed, 5), Table::num(err_fp16, 5)});
    }
    std::cout << t.to_markdown();
    std::cout << "  (FP16 accumulation error grows ~linearly in k and loses whole\n"
                 "   digits by k=1024 — why Fig. 1c accumulates in FP32.)\n\n";
  }

  // 3. The numpy Float16 quirk: matrices of ones make C == k exactly.
  std::cout << "3. Numba's matrices-of-ones workaround (Section IV-A):\n";
  {
    constexpr std::size_t kN = 512;
    View2<half, LayoutRight> A(kN, kN);
    View2<half, LayoutRight> B(kN, kN);
    fill_constant(std::span<half>(A.data(), kN * kN), half(1.0f));
    fill_constant(std::span<half>(B.data(), kN * kN), half(1.0f));
    View2<float, LayoutRight> C(kN, kN);
    simrt::SerialSpace space;
    gemm::gemm_numba_style<float>(space, A, B, C);
    bool exact = true;
    for (std::size_t i = 0; i < kN && exact; ++i) {
      for (std::size_t j = 0; j < kN; ++j) exact = exact && C(i, j) == float(kN);
    }
    std::cout << "  every C entry == k == " << kN << ": " << (exact ? "yes" : "NO")
              << " — ones-input GEMM exercises no mantissa variety, so FP16\n"
                 "  benchmarks built this way measure bandwidth, not arithmetic.\n";
  }
  return 0;
}
