// gemm_sweep: the Appendix-A launch scripts as one CLI tool.
//
// The paper drives each experiment with a bash loop over matrix sizes
// (Figs. 8/9 of the appendix).  This tool is the equivalent driver for
// the reproduction: pick a platform, precision, and size list; it runs
// the functional kernels (with warm-up exclusion) and emits one CSV row
// per (model, size) with checksum, host timing stats, and the modeled
// target-machine GFLOPS.
//
//   ./gemm_sweep --platform=crusher-gpu --precision=fp32
//                --sizes=64,128,256 --reps=5    (one command line)
#include <iostream>

#include "common/cli.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "models/runner.hpp"
#include "perfmodel/predict.hpp"

int main(int argc, char** argv) {
  using namespace portabench;
  using models::make_runner;
  using perfmodel::Family;
  using perfmodel::Platform;

  CliParser cli;
  cli.option("platform", "crusher-cpu | wombat-cpu | crusher-gpu | wombat-gpu", "crusher-cpu")
      .option("precision", "fp64 | fp32 | fp16", "fp64")
      .option("sizes", "comma-separated functional sizes", "32,64,128")
      .option("reps", "repetitions per size (first is warm-up)", "5")
      .option("seed", "RNG seed", "5309");
  try {
    cli.parse(argc, argv);
  } catch (const config_error& e) {
    std::cerr << e.what() << "\n" << cli.usage(argv[0]);
    return 2;
  }

  Platform platform;
  const std::string p = cli.get("platform");
  if (p == "crusher-cpu") {
    platform = Platform::kCrusherCpu;
  } else if (p == "wombat-cpu") {
    platform = Platform::kWombatCpu;
  } else if (p == "crusher-gpu") {
    platform = Platform::kCrusherGpu;
  } else if (p == "wombat-gpu") {
    platform = Platform::kWombatGpu;
  } else {
    std::cerr << "unknown platform: " << p << "\n";
    return 2;
  }
  Precision precision;
  const std::string prec = cli.get("precision");
  if (prec == "fp64") {
    precision = Precision::kDouble;
  } else if (prec == "fp32") {
    precision = Precision::kSingle;
  } else if (prec == "fp16") {
    precision = Precision::kHalfIn;
  } else {
    std::cerr << "unknown precision: " << prec << "\n";
    return 2;
  }
  const auto sizes = cli.get_size_list("sizes");
  const auto reps = static_cast<std::size_t>(cli.get_int("reps"));

  Table csv({"platform", "model", "precision", "n", "reps_recorded", "host_mean_s",
             "host_stddev_s", "checksum", "verified", "model_gflops"});
  int failures = 0;
  for (Family f : perfmodel::kAllFamilies) {
    auto runner = make_runner(platform, f);
    if (!runner || !runner->supports(precision)) continue;
    for (std::size_t n : sizes) {
      models::RunConfig config;
      config.n = n;
      config.precision = precision;
      config.seed = static_cast<std::uint64_t>(cli.get_int("seed"));
      RunStats stats(/*warmup=*/1);
      double checksum = 0.0;
      double model_gflops = 0.0;
      bool verified = true;
      for (std::size_t r = 0; r < reps; ++r) {
        const auto result = runner->run(config);
        stats.add(result.host_seconds);
        checksum = result.checksum;
        model_gflops = result.model_gflops;
        verified = verified && result.verified;
      }
      if (!verified) ++failures;
      const auto s = stats.summary();
      csv.add_row({std::string(perfmodel::arch_label(platform)),
                   std::string(runner->name()), std::string(name(precision)),
                   std::to_string(n), std::to_string(s.count), Table::num(s.mean, 6),
                   Table::num(s.stddev, 6), Table::num(checksum, 3),
                   verified ? "yes" : "NO", Table::num(model_gflops, 1)});
    }
  }
  std::cout << csv.to_csv();
  return failures == 0 ? 0 : 1;
}
