// Portability report: the paper's Section V analysis as a reusable tool —
// per-platform efficiencies, Phi under three metric definitions, and the
// Pennycook cascade showing how each added platform erodes a model's
// score.
//
//   ./portability_report [--csv]
#include <iostream>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "portability/metric.hpp"

int main(int argc, char** argv) {
  using namespace portabench;
  using perfmodel::Family;

  CliParser cli;
  cli.flag("csv", "emit CSV instead of Markdown");
  try {
    cli.parse(argc, argv);
  } catch (const config_error& e) {
    std::cerr << e.what() << "\n" << cli.usage(argv[0]);
    return 2;
  }
  const bool csv = cli.has("csv");

  std::cout << "=== Performance portability report (modeled study) ===\n\n";
  const auto table = portability::build_table3();

  Table report({"family", "precision", "platform", "efficiency", "supported"});
  for (const auto& fp : table) {
    for (const auto& e : fp.entries) {
      report.add_row({std::string(perfmodel::name(fp.family)),
                      std::string(name(fp.precision)),
                      std::string(perfmodel::arch_label(e.platform)),
                      e.supported ? Table::num(e.efficiency, 3) : "-",
                      e.supported ? "yes" : "no"});
    }
  }
  std::cout << (csv ? report.to_csv() : report.to_markdown());

  std::cout << "\nPhi_M under alternative definitions:\n";
  Table phi({"family", "precision", "Eq.(1)", "Pennycook", "harmonic/supported"});
  for (const auto& fp : table) {
    phi.add_row({std::string(perfmodel::name(fp.family)),
                 std::string(name(fp.precision)),
                 Table::num(portability::phi_arithmetic(fp.entries), 3),
                 Table::num(portability::phi_pennycook(fp.entries), 3),
                 Table::num(portability::phi_harmonic_supported(fp.entries), 3)});
  }
  std::cout << (csv ? phi.to_csv() : phi.to_markdown());

  std::cout << "\nPennycook cascades (best platform first):\n";
  for (const auto& fp : table) {
    if (fp.precision != Precision::kDouble) continue;
    std::cout << "  " << perfmodel::name(fp.family) << ": ";
    bool first = true;
    for (double v : portability::cascade(fp.entries)) {
      if (!first) std::cout << " -> ";
      std::cout << Table::num(v, 3);
      first = false;
    }
    std::cout << "\n";
  }
  return 0;
}
