// Custom kernel: using the library's substrates for a workload that is
// *not* GEMM — a 5-point Jacobi stencil — to show that the mini-Kokkos
// runtime and the SIMT simulator are general-purpose, not GEMM-shaped.
//
// The same stencil runs three ways and is cross-validated:
//   1. serial reference,
//   2. host-parallel via simrt (MDRangePolicy + Threads space),
//   3. device-style via gpusim (2-D grid of 16x16 blocks).
#include <cmath>
#include <iostream>
#include <vector>

#include "gpusim/launch.hpp"
#include "gpusim/memory.hpp"
#include "simrt/mdarray.hpp"
#include "simrt/parallel.hpp"

namespace {

using namespace portabench;
using simrt::LayoutRight;
using simrt::View2;

constexpr std::size_t kN = 256;
constexpr int kSweeps = 50;

/// One Jacobi sweep: out = average of the 4 neighbours of in.
template <class In, class Out>
void sweep_serial(const In& in, Out& out) {
  for (std::size_t i = 1; i < kN - 1; ++i) {
    for (std::size_t j = 1; j < kN - 1; ++j) {
      out(i, j) = 0.25 * (in(i - 1, j) + in(i + 1, j) + in(i, j - 1) + in(i, j + 1));
    }
  }
}

void init_boundary(View2<double, LayoutRight>& grid) {
  for (std::size_t j = 0; j < kN; ++j) grid(0, j) = 1.0;  // hot top edge
}

double interior_sum(const View2<double, LayoutRight>& grid) {
  double sum = 0.0;
  for (std::size_t i = 1; i < kN - 1; ++i) {
    for (std::size_t j = 1; j < kN - 1; ++j) sum += grid(i, j);
  }
  return sum;
}

}  // namespace

int main() {
  std::cout << "5-point Jacobi stencil, " << kN << "x" << kN << ", " << kSweeps
            << " sweeps — same kernel through three substrates\n\n";

  // 1. Serial reference.
  View2<double, LayoutRight> ref_a(kN, kN);
  View2<double, LayoutRight> ref_b(kN, kN);
  init_boundary(ref_a);
  init_boundary(ref_b);
  for (int s = 0; s < kSweeps; ++s) {
    sweep_serial(ref_a, ref_b);
    std::swap(ref_a, ref_b);
  }
  const double reference = interior_sum(ref_a);
  std::cout << "serial reference      interior sum = " << reference << "\n";

  // 2. Host-parallel via the mini-Kokkos runtime.
  View2<double, LayoutRight> par_a(kN, kN);
  View2<double, LayoutRight> par_b(kN, kN);
  init_boundary(par_a);
  init_boundary(par_b);
  simrt::ThreadsSpace space(4);
  for (int s = 0; s < kSweeps; ++s) {
    simrt::parallel_for(space, simrt::MDRangePolicy2({1, 1}, {kN - 1, kN - 1}),
                        [&](std::size_t i, std::size_t j) {
                          par_b(i, j) = 0.25 * (par_a(i - 1, j) + par_a(i + 1, j) +
                                                par_a(i, j - 1) + par_a(i, j + 1));
                        });
    std::swap(par_a, par_b);
  }
  const double parallel_sum = interior_sum(par_a);
  std::cout << "simrt Threads(4)      interior sum = " << parallel_sum << "\n";

  // 3. Device-style via the SIMT simulator.
  gpusim::DeviceContext ctx(gpusim::GpuSpec::a100());
  gpusim::DeviceBuffer<double> dev_a(ctx, kN * kN);
  gpusim::DeviceBuffer<double> dev_b(ctx, kN * kN);
  {
    std::vector<double> host(kN * kN, 0.0);
    for (std::size_t j = 0; j < kN; ++j) host[j] = 1.0;
    dev_a.copy_from_host(host);
    dev_b.copy_from_host(host);
  }
  double* a = dev_a.data();
  double* b = dev_b.data();
  const gpusim::Dim3 block{16, 16, 1};
  const gpusim::Dim3 grid{gpusim::blocks_for(kN, 16), gpusim::blocks_for(kN, 16), 1};
  for (int s = 0; s < kSweeps; ++s) {
    gpusim::launch(ctx, grid, block, [=](const gpusim::ThreadCtx& tc) {
      const std::size_t i = tc.global_y();
      const std::size_t j = tc.global_x();
      if (i >= 1 && i < kN - 1 && j >= 1 && j < kN - 1) {
        b[i * kN + j] = 0.25 * (a[(i - 1) * kN + j] + a[(i + 1) * kN + j] +
                                a[i * kN + j - 1] + a[i * kN + j + 1]);
      }
    });
    std::swap(a, b);
  }
  std::vector<double> device_result(kN * kN);
  (kSweeps % 2 == 0 ? dev_a : dev_b).copy_to_host(std::span<double>(device_result));
  double device_sum = 0.0;
  for (std::size_t i = 1; i < kN - 1; ++i) {
    for (std::size_t j = 1; j < kN - 1; ++j) device_sum += device_result[i * kN + j];
  }
  std::cout << "gpusim 16x16 blocks   interior sum = " << device_sum << "\n";
  std::cout << "device counters: " << ctx.counters().kernel_launches << " launches, "
            << ctx.counters().threads_executed << " threads\n\n";

  const bool ok = std::abs(parallel_sum - reference) < 1e-9 * std::abs(reference) &&
                  std::abs(device_sum - reference) < 1e-9 * std::abs(reference);
  std::cout << (ok ? "all three substrates agree" : "MISMATCH") << "\n";
  return ok ? 0 : 1;
}
