// KernelAbstractions portability: one kernel source, two GPU vendors.
//
// Section III-B: "Julia also provides the KernelAbstractions.jl package
// for writing portable kernels while still maintaining dependence on
// either CUArray or ROCArray."  The paper measures the vendor-specific
// CUDA.jl/AMDGPU.jl paths; this example runs the portable-layer frontend
// on *both* simulated GPUs from the same call site and compares its
// modeled cost against the direct back ends — the portability-vs-overhead
// trade the paper's related work debates.
#include <iostream>

#include "common/table.hpp"
#include "models/gpu_runners.hpp"

int main() {
  using namespace portabench;
  using models::JuliaGpuRunner;
  using models::KernelAbstractionsRunner;
  using perfmodel::Platform;

  std::cout << "=== KernelAbstractions.jl: one kernel, both GPU vendors ===\n\n";

  models::RunConfig config;
  config.n = 64;

  Table t({"platform", "frontend", "verified", "checksum", "modeled GFLOP/s",
           "abstraction cost"});
  for (Platform p : {Platform::kWombatGpu, Platform::kCrusherGpu}) {
    JuliaGpuRunner direct(p);
    KernelAbstractionsRunner portable(p);
    const auto direct_result = direct.run(config);
    const auto portable_result = portable.run(config);
    t.add_row({std::string(perfmodel::name(p)), std::string(direct.name()),
               direct_result.verified ? "yes" : "NO",
               Table::num(direct_result.checksum, 2),
               Table::num(direct_result.model_gflops, 1), "-"});
    t.add_row({std::string(perfmodel::name(p)), std::string(portable.name()),
               portable_result.verified ? "yes" : "NO",
               Table::num(portable_result.checksum, 2),
               Table::num(portable_result.model_gflops, 1),
               Table::num(1.0 - portable_result.model_gflops / direct_result.model_gflops,
                          3)});
    // Same seed, same column-major kernel: identical numerics.
    if (direct_result.checksum != portable_result.checksum) {
      std::cerr << "checksum mismatch between direct and portable layers!\n";
      return 1;
    }
  }
  std::cout << t.to_markdown();
  std::cout << "\nThe portable layer reproduces the direct back ends' numerics exactly\n"
               "and costs ~" << Table::num((1.0 - KernelAbstractionsRunner::kAbstractionFactor) * 100, 0)
            << "% modeled dispatch overhead — the price of single-source GPU code\n"
               "until the vendor-specific packages are subsumed.\n";
  return 0;
}
