// Batched GEMM mini-app: the "more complex HPC workload" direction the
// paper's conclusion points at, built entirely from the library's public
// API.
//
// A batch of small matrices (the deep-learning / block-sparse shape GEMM
// dominates in practice) is multiplied three ways:
//   1. host, Julia-convention rank-3 views (A[:, :, b]) with the Fig. 2c
//      kernel per slice;
//   2. host, hierarchical TeamPolicy kernel (one team per output row);
//   3. device, per-batch kernels pipelined over a stream with modeled
//      H2D/compute/D2H overlap (the Section II transfer-overlap theme).
// All three validate against the blocked reference, and the overlap
// schedule's modeled makespan is compared against the serial schedule.
#include <iostream>
#include <vector>

#include "common/rng.hpp"
#include "common/table.hpp"
#include "gemm/kernels_cpu.hpp"
#include "gemm/kernels_gpu.hpp"
#include "gemm/reference.hpp"
#include "gemm/validate.hpp"
#include "gpusim/stream.hpp"
#include "perfmodel/interconnect.hpp"
#include "simrt/view3.hpp"

int main() {
  using namespace portabench;
  using simrt::LayoutLeft;
  using simrt::View2;
  using simrt::View3;

  constexpr std::size_t kBatch = 12;
  constexpr std::size_t kN = 48;
  std::cout << "batched GEMM: " << kBatch << " batches of " << kN << "x" << kN
            << " (FP64)\n\n";

  // Julia convention: batch along the last axis of a rank-3 array.
  View3<double, LayoutLeft> A(kN, kN, kBatch);
  View3<double, LayoutLeft> B(kN, kN, kBatch);
  View3<double, LayoutLeft> C_slice(kN, kN, kBatch);
  View3<double, LayoutLeft> C_team(kN, kN, kBatch);
  Xoshiro256 rng(777);
  fill_uniform(std::span<double>(A.data(), A.size()), rng);
  fill_uniform(std::span<double>(B.data(), B.size()), rng);

  simrt::ThreadsSpace space(4);

  // 1. Per-slice Julia-style kernels over rank-3 slices.
  for (std::size_t b = 0; b < kBatch; ++b) {
    auto Ab = A.slice(b);
    auto Bb = B.slice(b);
    auto Cb = C_slice.slice(b);
    gemm::gemm_julia_style<double>(space, Ab, Bb, Cb);
  }

  // 2. Hierarchical team kernel per slice.
  for (std::size_t b = 0; b < kBatch; ++b) {
    auto Ab = A.slice(b);
    auto Bb = B.slice(b);
    auto Cb = C_team.slice(b);
    gemm::gemm_team_style<double>(space, Ab, Bb, Cb);
  }

  // Validate both against the reference.
  double worst_slice = 0.0;
  double worst_team = 0.0;
  for (std::size_t b = 0; b < kBatch; ++b) {
    auto Ab = A.slice(b);
    auto Bb = B.slice(b);
    View2<double, LayoutLeft> C_ref(kN, kN);
    gemm::reference_gemm<double>(Ab, Bb, C_ref);
    auto Cs = C_slice.slice(b);
    auto Ct = C_team.slice(b);
    worst_slice = std::max(worst_slice, gemm::max_abs_diff(Cs, C_ref));
    worst_team = std::max(worst_team, gemm::max_abs_diff(Ct, C_ref));
  }
  const double tol = gemm::gemm_tolerance(Precision::kDouble, kN);
  std::cout << "host slice kernel  max error " << worst_slice << (worst_slice <= tol ? "  OK" : "  FAILED")
            << "\nhost team kernel   max error " << worst_team << (worst_team <= tol ? "  OK" : "  FAILED")
            << "\n\n";

  // 3. Device path: per-batch kernel launches pipelined on a stream.
  gpusim::DeviceContext ctx(gpusim::GpuSpec::mi250x_gcd());
  const perfmodel::GpuMachineModel machine(perfmodel::GpuPerfSpec::mi250x_gcd());
  const auto link = perfmodel::LinkSpec::infinity_fabric();
  const auto e2e = perfmodel::end_to_end_gemm(machine, link, Precision::kDouble, kN, kBatch);

  // Functional run of every batch on the simulator, verifying one slice.
  bool device_ok = true;
  for (std::size_t b = 0; b < kBatch; ++b) {
    std::vector<double> hA(kN * kN);
    std::vector<double> hB(kN * kN);
    auto Ab = A.slice(b);
    auto Bb = B.slice(b);
    for (std::size_t j = 0; j < kN; ++j) {
      for (std::size_t i = 0; i < kN; ++i) {
        hA[i + j * kN] = Ab(i, j);
        hB[i + j * kN] = Bb(i, j);
      }
    }
    gpusim::DeviceBuffer<double> dA(ctx, kN * kN);
    gpusim::DeviceBuffer<double> dB(ctx, kN * kN);
    gpusim::DeviceBuffer<double> dC(ctx, kN * kN);
    dA.copy_from_host(hA);
    dB.copy_from_host(hB);
    gemm::gemm_julia_gpu_style<double>(ctx, gemm::GpuLaunchConfig{}, dA, dB, dC, kN, kN, kN);
    std::vector<double> hC(kN * kN);
    dC.copy_to_host(std::span<double>(hC));
    auto Cs = C_slice.slice(b);
    for (std::size_t j = 0; j < kN && device_ok; ++j) {
      for (std::size_t i = 0; i < kN; ++i) {
        if (std::abs(hC[i + j * kN] - Cs(i, j)) > tol) device_ok = false;
      }
    }
  }
  std::cout << "device batch       " << (device_ok ? "all batches match host  OK" : "MISMATCH")
            << "\n";
  std::cout << "device counters: " << ctx.counters().kernel_launches << " launches, "
            << ctx.counters().bytes_h2d / 1024 << " KiB H2D\n\n";

  Table t({"schedule", "modeled makespan (ms)"});
  t.add_row({"serial (H2D; kernel; D2H per batch)", Table::num(e2e.serial_s * 1e3, 3)});
  t.add_row({"double-buffered pipeline", Table::num(e2e.overlapped_s * 1e3, 3)});
  std::cout << t.to_markdown();
  std::cout << "\npipeline speedup: " << Table::num(e2e.serial_s / e2e.overlapped_s, 2)
            << "x — small batched problems are transfer-bound, exactly where\n"
               "stream overlap (and the high-level models' access to it) matters.\n";

  return (worst_slice <= tol && worst_team <= tol && device_ok) ? 0 : 1;
}
