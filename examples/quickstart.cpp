// Quickstart: run one hand-rolled GEMM through every programming-model
// frontend on one platform and print what the library gives you — a
// verified functional result plus the modeled performance on the target
// machine.
//
//   ./quickstart [--platform=crusher-gpu] [--n=64] [--precision=fp64]
#include <iostream>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "models/runner.hpp"
#include "perfmodel/platform.hpp"

int main(int argc, char** argv) {
  using namespace portabench;
  using models::make_runner;
  using perfmodel::Family;
  using perfmodel::Platform;

  CliParser cli;
  cli.option("platform", "crusher-cpu | wombat-cpu | crusher-gpu | wombat-gpu", "wombat-gpu")
      .option("n", "matrix size for the functional run", "64")
      .option("precision", "fp64 | fp32 | fp16", "fp64");
  try {
    cli.parse(argc, argv);
  } catch (const config_error& e) {
    std::cerr << e.what() << "\n" << cli.usage(argv[0]);
    return 2;
  }

  Platform platform;
  const std::string p = cli.get("platform");
  if (p == "crusher-cpu") {
    platform = Platform::kCrusherCpu;
  } else if (p == "wombat-cpu") {
    platform = Platform::kWombatCpu;
  } else if (p == "crusher-gpu") {
    platform = Platform::kCrusherGpu;
  } else if (p == "wombat-gpu") {
    platform = Platform::kWombatGpu;
  } else {
    std::cerr << "unknown platform: " << p << "\n";
    return 2;
  }

  Precision precision;
  const std::string prec = cli.get("precision");
  if (prec == "fp64") {
    precision = Precision::kDouble;
  } else if (prec == "fp32") {
    precision = Precision::kSingle;
  } else if (prec == "fp16") {
    precision = Precision::kHalfIn;
  } else {
    std::cerr << "unknown precision: " << prec << "\n";
    return 2;
  }

  models::RunConfig config;
  config.n = static_cast<std::size_t>(cli.get_int("n"));
  config.precision = precision;

  std::cout << "simple GEMM (" << name(precision) << ", n=" << config.n << ") on "
            << perfmodel::name(platform) << "\n\n";
  Table t({"model", "verified", "max error", "checksum", "modeled GFLOP/s",
           "JIT (s, first call)"});
  for (Family f : perfmodel::kAllFamilies) {
    auto runner = make_runner(platform, f);
    if (!runner || !runner->supports(precision)) continue;
    const auto r = runner->run(config);
    t.add_row({std::string(runner->name()), r.verified ? "yes" : "NO",
               Table::num(r.max_error, 10), Table::num(r.checksum, 2),
               Table::num(r.model_gflops, 1), Table::num(r.jit_seconds, 2)});
  }
  std::cout << t.to_markdown();
  std::cout << "\nNext steps: bench/fig*  reproduce the paper's figures;\n"
               "examples/portability_report computes Phi for all models.\n";
  return 0;
}
